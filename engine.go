package alchemist

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"alchemist/internal/core"
	"alchemist/internal/obs"
	"alchemist/internal/vm"
	"alchemist/internal/xtrace"
)

// DefaultCacheSize is the compiled-program cache capacity of an Engine
// built without WithCacheSize.
const DefaultCacheSize = 64

// DefaultProgramCost is the program footprint — instruction count plus
// constant count (string pool and global initializers) — charged as one
// cache cost unit. WithCacheSize(n) budgets n units, so n typical
// programs (well under DefaultProgramCost footprint each, costing one
// unit apiece) fit exactly as under the old entry-count semantics, while
// a program k times the default footprint charges k units and displaces
// proportionally more of the cache.
const DefaultProgramCost = 4096

// CompileOptions selects compilation behaviour and is part of the
// program-cache key: the same source compiled with different options
// occupies distinct cache entries.
type CompileOptions struct {
	// Optimize runs the optimization passes (constant folding,
	// unreachable-code elimination) before PCs are assigned.
	Optimize bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of profiling runs an Engine executes
// concurrently in ProfileBatch / ProfileEach. Values < 1 fall back to
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCacheSize sets the compiled-program cache budget in units of
// DefaultProgramCost footprint — for typical programs, the entry count.
// 0 keeps DefaultCacheSize; negative disables caching entirely. A
// single program larger than the whole budget is still cached (alone)
// rather than thrashing.
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// WithDefaultProfileConfig sets the ProfileConfig used by batch jobs
// that do not carry their own config.
func WithDefaultProfileConfig(cfg ProfileConfig) Option {
	return func(e *Engine) { e.defProfile = cfg }
}

// WithCompileOptions sets the options Engine.Compile uses; CompileWith
// always overrides them per call.
func WithCompileOptions(co CompileOptions) Option {
	return func(e *Engine) { e.defCompile = co }
}

// WithRegistry installs the metrics registry the Engine instruments
// itself into, letting several engines (or other subsystems) share one
// registry behind a single /metrics endpoint. Without it each Engine
// creates its own private registry, available via Metrics().
func WithRegistry(r *obs.Registry) Option {
	return func(e *Engine) { e.reg = r }
}

// CacheStats reports compiled-program cache behaviour.
type CacheStats struct {
	// Hits and Misses count Compile/CompileWith lookups.
	Hits   int64
	Misses int64
	// Coalesced counts misses that waited on a concurrent compile of the
	// same key instead of compiling redundantly (singleflight).
	Coalesced int64
	// Evictions counts entries dropped to stay within the cost budget.
	Evictions int64
	// Entries is the current cache population.
	Entries int
	// Cost is the cached programs' total footprint in DefaultProgramCost
	// units; eviction keeps it within the WithCacheSize budget.
	Cost int64
}

// Engine is the long-lived service entry point: it owns a compiled-
// program LRU cache and a bounded worker pool for concurrent batch
// profiling. An Engine is safe for concurrent use by multiple
// goroutines; the zero value is not usable — construct one with
// NewEngine.
//
// Every engine instruments itself into an obs.Registry (its own, or one
// shared via WithRegistry): cache traffic, compiles, worker-pool queue
// depth and in-flight jobs, per-job wall time, VM dispatch-loop
// counters, and profiler shadow/pool activity. Metrics() exposes the
// registry; obs.StartServer serves it over HTTP.
//
// The free functions of this package (Compile, Program.Profile, ...)
// remain as deprecated wrappers over a package-default Engine.
type Engine struct {
	workers    int
	cacheCap   int
	defProfile ProfileConfig
	defCompile CompileOptions

	reg *obs.Registry
	em  *engineMetrics
	vmm *vm.Metrics

	// sem bounds concurrent batch profiling runs across all
	// ProfileBatch/ProfileEach calls on this Engine.
	sem chan struct{}

	// scratch recycles per-worker profiling buffers (shadow memory,
	// construct pool) across batch jobs.
	scratch sync.Pool

	mu     sync.Mutex
	cache  map[programKey]*list.Element
	order  *list.List // front = most recently used
	flight map[programKey]*compileFlight
	cost   int64 // total cached cost, DefaultProgramCost units
	stats  CacheStats
}

// engineMetrics is the Engine's pre-resolved instrument set.
type engineMetrics struct {
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	coalesced      *obs.Counter
	compiles       *obs.Counter
	compileErrors  *obs.Counter
	cacheEntries   *obs.Gauge
	cacheCost      *obs.Gauge

	queueDepth   *obs.Gauge
	inflightJobs *obs.Gauge
	jobs         *obs.Counter
	jobErrors    *obs.Counter
	jobWall      *obs.Histogram

	scratchGets *obs.Counter
	scratchPuts *obs.Counter
	scratchNews *obs.Counter

	shadowLoads   *obs.Counter
	shadowStores  *obs.Counter
	poolReused    *obs.Counter
	poolAllocated *obs.Counter
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	return &engineMetrics{
		cacheHits: r.Counter("alchemist_engine_cache_hits_total",
			"Compiled-program cache lookups served from the cache."),
		cacheMisses: r.Counter("alchemist_engine_cache_misses_total",
			"Compiled-program cache lookups that had to compile or wait."),
		cacheEvictions: r.Counter("alchemist_engine_cache_evictions_total",
			"Cache entries dropped to stay within the cost budget."),
		coalesced: r.Counter("alchemist_engine_singleflight_coalesced_total",
			"Cache misses that waited on an in-flight compile of the same key."),
		compiles: r.Counter("alchemist_engine_compiles_total",
			"Full lexer/parser/sema/compile pipeline runs."),
		compileErrors: r.Counter("alchemist_engine_compile_errors_total",
			"Compile pipeline runs that failed."),
		cacheEntries: r.Gauge("alchemist_engine_cache_entries",
			"Current compiled-program cache population."),
		cacheCost: r.Gauge("alchemist_engine_cache_cost_units",
			"Current cache footprint in DefaultProgramCost units."),
		queueDepth: r.Gauge("alchemist_engine_queue_depth",
			"Batch jobs waiting for a worker slot."),
		inflightJobs: r.Gauge("alchemist_engine_inflight_jobs",
			"Batch jobs currently executing."),
		jobs: r.Counter("alchemist_engine_jobs_total",
			"Batch profiling jobs completed, including failed ones."),
		jobErrors: r.Counter("alchemist_engine_job_errors_total",
			"Batch profiling jobs that failed (including cancellations)."),
		jobWall: r.Histogram("alchemist_engine_job_wall_seconds",
			"Wall-clock time of one batch profiling job.", nil),
		scratchGets: r.Counter("alchemist_engine_scratch_gets_total",
			"Profiling scratch buffers checked out of the worker pool."),
		scratchPuts: r.Counter("alchemist_engine_scratch_puts_total",
			"Profiling scratch buffers returned to the worker pool."),
		scratchNews: r.Counter("alchemist_engine_scratch_news_total",
			"Profiling scratch buffers newly allocated by the pool."),
		shadowLoads: r.Counter("alchemist_profile_shadow_loads_total",
			"Shadow-memory read records across profiled runs."),
		shadowStores: r.Counter("alchemist_profile_shadow_stores_total",
			"Shadow-memory write records across profiled runs."),
		poolReused: r.Counter("alchemist_profile_pool_reused_total",
			"Construct-pool acquisitions served by recycling a retired node."),
		poolAllocated: r.Counter("alchemist_profile_pool_allocated_total",
			"Construct-pool nodes allocated fresh."),
	}
}

// programKey identifies one cache entry: the source identity plus every
// compile option that changes the produced bytecode.
type programKey struct {
	name     string
	srcHash  [sha256.Size]byte
	optimize bool
}

type programEntry struct {
	key  programKey
	prog *Program
	cost int64
}

// compileFlight is one in-flight compile that concurrent misses of the
// same key wait on instead of compiling redundantly.
type compileFlight struct {
	done chan struct{}
	prog *Program
	err  error
}

// NewEngine builds an Engine. With no options it caches up to
// DefaultCacheSize programs and profiles batches with GOMAXPROCS
// workers.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{cacheCap: DefaultCacheSize}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.cacheCap == 0 {
		e.cacheCap = DefaultCacheSize
	}
	if e.reg == nil {
		e.reg = obs.NewRegistry()
	}
	e.em = newEngineMetrics(e.reg)
	e.vmm = vm.NewMetrics(e.reg)
	e.scratch.New = func() any {
		e.em.scratchNews.Inc()
		return &core.Scratch{}
	}
	e.sem = make(chan struct{}, e.workers)
	if e.cacheCap > 0 {
		e.cache = make(map[programKey]*list.Element)
		e.order = list.New()
		e.flight = make(map[programKey]*compileFlight)
	}
	return e
}

// Workers reports the batch-profiling concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// Metrics returns the registry this Engine instruments itself into —
// the one installed with WithRegistry, or the Engine's private one.
// Serve it with obs.StartServer or render it with WritePrometheus /
// WriteJSON.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// CacheStats returns a snapshot of the compiled-program cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// programCost charges a compiled program's footprint (instructions plus
// constants) in DefaultProgramCost units, minimum one.
func programCost(p *Program) int64 {
	foot := int64(p.ir.NumPCs) + int64(len(p.ir.Strings)) + int64(len(p.ir.GlobalInit))
	units := (foot + DefaultProgramCost - 1) / DefaultProgramCost
	if units < 1 {
		units = 1
	}
	return units
}

// Compile returns the compiled program for (name, src), reusing the
// cache when the same source was compiled with the same options before.
// Hot sources therefore skip the lexer/parser/sema/compile pipeline
// entirely. The returned *Program is shared: it is immutable after
// compilation and safe for concurrent Run/Profile calls.
func (e *Engine) Compile(ctx context.Context, name, src string) (*Program, error) {
	return e.CompileWith(ctx, name, src, e.defCompile)
}

// CompileWith is Compile with explicit per-call options. Concurrent
// misses of the same (source, options) key are singleflighted: one call
// compiles while the others wait for its result, so a thundering herd
// on a cold source costs one pipeline run, not one per caller.
func (e *Engine) CompileWith(ctx context.Context, name, src string, co CompileOptions) (*Program, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, sp := xtrace.StartSpan(ctx, "compile")
	defer sp.End()
	if e.cache == nil { // caching disabled
		sp.SetAttr("cache", "off")
		return e.compileCounted(name, src, co)
	}
	key := programKey{name: name, srcHash: sha256.Sum256([]byte(src)), optimize: co.Optimize}

	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.order.MoveToFront(el)
		e.stats.Hits++
		e.em.cacheHits.Inc()
		prog := el.Value.(*programEntry).prog
		e.mu.Unlock()
		sp.SetAttr("cache", "hit")
		return prog, nil
	}
	e.stats.Misses++
	e.em.cacheMisses.Inc()
	if fl, ok := e.flight[key]; ok {
		// Coalesce onto the in-flight compile of the same key.
		e.stats.Coalesced++
		e.em.coalesced.Inc()
		e.mu.Unlock()
		sp.SetAttr("cache", "coalesced")
		select {
		case <-fl.done:
			return fl.prog, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &compileFlight{done: make(chan struct{})}
	e.flight[key] = fl
	e.mu.Unlock()
	sp.SetAttr("cache", "miss")

	// Compile outside the lock: a slow compile must not stall cache hits
	// on other sources. Waiters for this key block on fl.done instead.
	prog, err := e.compileCounted(name, src, co)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}

	e.mu.Lock()
	fl.prog, fl.err = prog, err
	delete(e.flight, key)
	if err == nil {
		e.insertLocked(key, prog)
	}
	e.mu.Unlock()
	close(fl.done)
	return prog, err
}

// compileCounted runs the compile pipeline under the pipeline counters.
func (e *Engine) compileCounted(name, src string, co CompileOptions) (*Program, error) {
	e.em.compiles.Inc()
	prog, err := compileProgram(name, src, co)
	if err != nil {
		e.em.compileErrors.Inc()
	}
	return prog, err
}

// insertLocked caches prog under key and evicts from the LRU tail until
// the total cost fits the budget again. The newest entry is never
// evicted, so one oversized program caches alone instead of thrashing.
func (e *Engine) insertLocked(key programKey, prog *Program) {
	if el, ok := e.cache[key]; ok { // lost a benign race; adopt
		e.order.MoveToFront(el)
		return
	}
	cost := programCost(prog)
	el := e.order.PushFront(&programEntry{key: key, prog: prog, cost: cost})
	e.cache[key] = el
	e.cost += cost
	for e.cost > int64(e.cacheCap) && e.order.Len() > 1 {
		oldest := e.order.Back()
		ent := oldest.Value.(*programEntry)
		e.order.Remove(oldest)
		delete(e.cache, ent.key)
		e.cost -= ent.cost
		e.stats.Evictions++
		e.em.cacheEvictions.Inc()
	}
	e.stats.Entries = e.order.Len()
	e.stats.Cost = e.cost
	e.em.cacheEntries.Set(int64(e.order.Len()))
	e.em.cacheCost.Set(e.cost)
}

// Run executes p without instrumentation under ctx.
func (e *Engine) Run(ctx context.Context, p *Program, cfg RunConfig) (*RunResult, error) {
	cfg.metrics = e.vmm
	return p.RunCtx(ctx, cfg)
}

// Profile executes p sequentially under the profiler under ctx. A
// config requesting parallel execution is rejected with
// ErrProfileNeedsSequential.
func (e *Engine) Profile(ctx context.Context, p *Program, cfg ProfileConfig) (*Profile, *RunResult, error) {
	cfg.metrics = e.vmm
	sc := e.scratchGet()
	defer e.scratchPut(sc)
	cfg.scratch = sc
	prof, res, err := p.ProfileCtx(ctx, cfg)
	e.flushProfileStats(prof)
	return prof, res, err
}

// ProfileJob is one profiling run within a batch: an input stream plus
// an optional per-job config.
type ProfileJob struct {
	// Input is served to the program via the in()/inlen() builtins.
	Input []int64
	// Config overrides the engine's default profile config for this job.
	// When nil the engine default applies. In both cases a non-nil
	// Input above replaces the config's Input field.
	Config *ProfileConfig
	// OnProgress, when set, receives the job's executed instruction
	// count: every vm.CancelCheckInterval steps — piggybacked on the
	// dispatch loop's existing cancellation check, so it costs nothing
	// extra per instruction — and once more with the final total when
	// the job completes. Reports are monotonically non-decreasing and
	// delivered from the job's worker goroutine; the callback must be
	// safe for concurrent use across jobs. It overrides any OnProgress
	// in the job's config.
	OnProgress func(steps int64)
}

// BatchResult is the outcome of one ProfileJob.
type BatchResult struct {
	// Job indexes into the jobs slice passed to ProfileBatch/ProfileEach.
	Job int
	// Profile and Run are set when Err is nil.
	Profile *Profile
	Run     *RunResult
	// Err is the job's failure, including ctx.Err() for jobs abandoned
	// after cancellation.
	Err error
}

// profileJobConfig resolves the effective config for one job.
func (e *Engine) profileJobConfig(job ProfileJob) ProfileConfig {
	cfg := e.defProfile
	if job.Config != nil {
		cfg = *job.Config
	}
	if job.Input != nil {
		cfg.Input = job.Input
	}
	if job.OnProgress != nil {
		cfg.OnProgress = job.OnProgress
	}
	return cfg
}

func (e *Engine) scratchGet() *core.Scratch {
	e.em.scratchGets.Inc()
	return e.scratch.Get().(*core.Scratch)
}

func (e *Engine) scratchPut(sc *core.Scratch) {
	e.em.scratchPuts.Inc()
	e.scratch.Put(sc)
}

// flushProfileStats folds one finished profile's shadow-memory and
// construct-pool counters into the registry. Nil profiles are ignored.
func (e *Engine) flushProfileStats(prof *Profile) {
	if prof == nil {
		return
	}
	e.em.shadowLoads.Add(prof.Shadow.Loads)
	e.em.shadowStores.Add(prof.Shadow.Stores)
	e.em.poolReused.Add(prof.Pool.Reused)
	e.em.poolAllocated.Add(prof.Pool.Allocated)
}

// runJob executes one batch job on a worker slot: scratch buffers come
// from the per-worker pool, the VM reports into the engine's registry,
// and the job's wall time lands in the jobWall histogram.
func (e *Engine) runJob(ctx context.Context, p *Program, i int, job ProfileJob) BatchResult {
	cfg := e.profileJobConfig(job)
	cfg.metrics = e.vmm
	sc := e.scratchGet()
	cfg.scratch = sc

	_, sp := xtrace.StartSpan(ctx, "profile")
	sp.SetAttr("batch_job", strconv.Itoa(i))

	e.em.inflightJobs.Add(1)
	start := time.Now()
	var (
		prof *Profile
		res  *RunResult
		err  error
	)
	// The worker goroutine inherits any job_id/endpoint pprof labels from
	// its spawner; batch_job narrows CPU samples to this run.
	pprof.Do(ctx, pprof.Labels("batch_job", strconv.Itoa(i)), func(ctx context.Context) {
		prof, res, err = p.ProfileCtx(ctx, cfg)
	})
	e.em.jobWall.Observe(time.Since(start).Seconds())
	e.em.inflightJobs.Add(-1)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()

	e.scratchPut(sc)
	e.flushProfileStats(prof)
	e.em.jobs.Inc()
	if err != nil {
		e.em.jobErrors.Inc()
	}
	return BatchResult{Job: i, Profile: prof, Run: res, Err: err}
}

// fanOut schedules n jobs onto the engine's worker pool, streaming one
// result per job in completion order on the returned channel (closed
// after the last result). Jobs wait in the queue-depth gauge until a
// worker slot frees; cancellation fails not-yet-started jobs via abort.
func fanOut[R any](e *Engine, ctx context.Context, n int, run func(i int) R, abort func(i int, err error) R) <-chan R {
	out := make(chan R, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			e.em.queueDepth.Add(1)
			select {
			case e.sem <- struct{}{}:
				e.em.queueDepth.Add(-1)
				defer func() { <-e.sem }()
			case <-ctx.Done():
				e.em.queueDepth.Add(-1)
				e.em.jobs.Inc()
				e.em.jobErrors.Inc()
				out <- abort(i, ctx.Err())
				return
			}
			out <- run(i)
		}(i)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// ProfileEach fans the jobs over the engine's worker pool and streams
// one BatchResult per job in completion order. The returned channel is
// closed after the last result. Cancelling ctx aborts running jobs
// (each observes it within one VM step-check window) and fails
// not-yet-started ones with ctx.Err().
func (e *Engine) ProfileEach(ctx context.Context, p *Program, jobs []ProfileJob) <-chan BatchResult {
	if ctx == nil { // tolerate nil like every other entry point
		ctx = context.Background()
	}
	return fanOut(e, ctx, len(jobs),
		func(i int) BatchResult { return e.runJob(ctx, p, i, jobs[i]) },
		func(i int, err error) BatchResult { return BatchResult{Job: i, Err: err} })
}

// ProfileBatch profiles p over all jobs concurrently and merges the
// per-job profiles, in job order, into one union profile — equivalent
// to (and byte-identical with, via WriteJSON) calling Profile per job
// sequentially and passing the results to Merge. The per-job results
// are returned in job order alongside the merged profile. If any job
// fails, the merged profile is nil and the error is the failure of the
// lowest-indexed failing job.
func (e *Engine) ProfileBatch(ctx context.Context, p *Program, jobs []ProfileJob) (*Profile, []BatchResult, error) {
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("alchemist: ProfileBatch needs at least one job")
	}
	results := make([]BatchResult, len(jobs))
	for r := range e.ProfileEach(ctx, p, jobs) {
		results[r.Job] = r
	}
	profiles := make([]*Profile, len(jobs))
	for i, r := range results {
		if r.Err != nil {
			return nil, results, fmt.Errorf("alchemist: batch job %d: %w", i, r.Err)
		}
		profiles[i] = r.Profile
	}
	merged, err := Merge(profiles...)
	if err != nil {
		return nil, results, err
	}
	return merged, results, nil
}

// RunJob is one uninstrumented execution within a batch: an input
// stream plus an optional per-job run config.
type RunJob struct {
	// Input is served to the program via the in()/inlen() builtins.
	Input []int64
	// Config overrides the engine's default run config (the RunConfig
	// embedded in the default profile config) for this job. In both
	// cases a non-nil Input above replaces the config's Input field.
	Config *RunConfig
	// OnProgress mirrors ProfileJob.OnProgress: executed-step reports
	// every vm.CancelCheckInterval steps plus a final total, delivered
	// from the job's worker goroutine. It overrides any OnProgress in
	// the job's config.
	OnProgress func(steps int64)
}

// RunBatchResult is the outcome of one RunJob.
type RunBatchResult struct {
	// Job indexes into the jobs slice passed to RunBatch/RunEach.
	Job int
	// Run is set when Err is nil.
	Run *RunResult
	// Err is the job's failure, including ctx.Err() for jobs abandoned
	// after cancellation.
	Err error
}

// runJobConfig resolves the effective run config for one job.
func (e *Engine) runJobConfig(job RunJob) RunConfig {
	cfg := e.defProfile.RunConfig
	if job.Config != nil {
		cfg = *job.Config
	}
	if job.Input != nil {
		cfg.Input = job.Input
	}
	if job.OnProgress != nil {
		cfg.OnProgress = job.OnProgress
	}
	return cfg
}

// runRunJob executes one plain-run batch job on a worker slot, counted
// under the same job metrics as profiling jobs.
func (e *Engine) runRunJob(ctx context.Context, p *Program, i int, job RunJob) RunBatchResult {
	cfg := e.runJobConfig(job)
	cfg.metrics = e.vmm

	_, sp := xtrace.StartSpan(ctx, "run")
	sp.SetAttr("batch_job", strconv.Itoa(i))

	e.em.inflightJobs.Add(1)
	start := time.Now()
	var (
		res *RunResult
		err error
	)
	pprof.Do(ctx, pprof.Labels("batch_job", strconv.Itoa(i)), func(ctx context.Context) {
		res, err = p.RunCtx(ctx, cfg)
	})
	e.em.jobWall.Observe(time.Since(start).Seconds())
	e.em.inflightJobs.Add(-1)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()

	e.em.jobs.Inc()
	if err != nil {
		e.em.jobErrors.Inc()
	}
	return RunBatchResult{Job: i, Run: res, Err: err}
}

// RunEach fans uninstrumented executions over the engine's worker pool
// — the same pool ProfileEach draws from, so mixed run/profile load
// shares one concurrency bound — and streams one RunBatchResult per job
// in completion order. The returned channel is closed after the last
// result.
func (e *Engine) RunEach(ctx context.Context, p *Program, jobs []RunJob) <-chan RunBatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	return fanOut(e, ctx, len(jobs),
		func(i int) RunBatchResult { return e.runRunJob(ctx, p, i, jobs[i]) },
		func(i int, err error) RunBatchResult { return RunBatchResult{Job: i, Err: err} })
}

// RunBatch executes p over all jobs concurrently, mirroring
// ProfileBatch for plain runs: results come back in job order, and the
// returned error is the failure of the lowest-indexed failing job (the
// per-job results still carry every individual outcome).
func (e *Engine) RunBatch(ctx context.Context, p *Program, jobs []RunJob) ([]RunBatchResult, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("alchemist: RunBatch needs at least one job")
	}
	results := make([]RunBatchResult, len(jobs))
	for r := range e.RunEach(ctx, p, jobs) {
		results[r.Job] = r
	}
	for i, r := range results {
		if r.Err != nil {
			return results, fmt.Errorf("alchemist: batch job %d: %w", i, r.Err)
		}
	}
	return results, nil
}

// defaultEngine backs the deprecated package-level facade functions.
var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the package-default Engine used by the
// deprecated free functions. It is created on first use with default
// options.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}
