package alchemist

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
)

// DefaultCacheSize is the compiled-program cache capacity of an Engine
// built without WithCacheSize.
const DefaultCacheSize = 64

// CompileOptions selects compilation behaviour and is part of the
// program-cache key: the same source compiled with different options
// occupies distinct cache entries.
type CompileOptions struct {
	// Optimize runs the optimization passes (constant folding,
	// unreachable-code elimination) before PCs are assigned.
	Optimize bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the number of profiling runs an Engine executes
// concurrently in ProfileBatch / ProfileEach. Values < 1 fall back to
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCacheSize sets the compiled-program cache capacity in entries.
// 0 keeps DefaultCacheSize; negative disables caching entirely.
func WithCacheSize(n int) Option {
	return func(e *Engine) { e.cacheCap = n }
}

// WithDefaultProfileConfig sets the ProfileConfig used by batch jobs
// that do not carry their own config.
func WithDefaultProfileConfig(cfg ProfileConfig) Option {
	return func(e *Engine) { e.defProfile = cfg }
}

// WithCompileOptions sets the options Engine.Compile uses; CompileWith
// always overrides them per call.
func WithCompileOptions(co CompileOptions) Option {
	return func(e *Engine) { e.defCompile = co }
}

// CacheStats reports compiled-program cache behaviour.
type CacheStats struct {
	// Hits and Misses count Compile/CompileWith lookups.
	Hits   int64
	Misses int64
	// Evictions counts entries dropped to stay within capacity.
	Evictions int64
	// Entries is the current cache population.
	Entries int
}

// Engine is the long-lived service entry point: it owns a compiled-
// program LRU cache and a bounded worker pool for concurrent batch
// profiling. An Engine is safe for concurrent use by multiple
// goroutines; the zero value is not usable — construct one with
// NewEngine.
//
// The free functions of this package (Compile, Program.Profile, ...)
// remain as deprecated wrappers over a package-default Engine.
type Engine struct {
	workers    int
	cacheCap   int
	defProfile ProfileConfig
	defCompile CompileOptions

	// sem bounds concurrent batch profiling runs across all
	// ProfileBatch/ProfileEach calls on this Engine.
	sem chan struct{}

	mu    sync.Mutex
	cache map[programKey]*list.Element
	order *list.List // front = most recently used
	stats CacheStats
}

// programKey identifies one cache entry: the source identity plus every
// compile option that changes the produced bytecode.
type programKey struct {
	name     string
	srcHash  [sha256.Size]byte
	optimize bool
}

type programEntry struct {
	key  programKey
	prog *Program
}

// NewEngine builds an Engine. With no options it caches up to
// DefaultCacheSize programs and profiles batches with GOMAXPROCS
// workers.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{cacheCap: DefaultCacheSize}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	if e.cacheCap == 0 {
		e.cacheCap = DefaultCacheSize
	}
	e.sem = make(chan struct{}, e.workers)
	if e.cacheCap > 0 {
		e.cache = make(map[programKey]*list.Element)
		e.order = list.New()
	}
	return e
}

// Workers reports the batch-profiling concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// CacheStats returns a snapshot of the compiled-program cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Compile returns the compiled program for (name, src), reusing the
// cache when the same source was compiled with the same options before.
// Hot sources therefore skip the lexer/parser/sema/compile pipeline
// entirely. The returned *Program is shared: it is immutable after
// compilation and safe for concurrent Run/Profile calls.
func (e *Engine) Compile(ctx context.Context, name, src string) (*Program, error) {
	return e.CompileWith(ctx, name, src, e.defCompile)
}

// CompileWith is Compile with explicit per-call options.
func (e *Engine) CompileWith(ctx context.Context, name, src string, co CompileOptions) (*Program, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if e.cache == nil { // caching disabled
		return compileProgram(name, src, co)
	}
	key := programKey{name: name, srcHash: sha256.Sum256([]byte(src)), optimize: co.Optimize}

	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.order.MoveToFront(el)
		e.stats.Hits++
		prog := el.Value.(*programEntry).prog
		e.mu.Unlock()
		return prog, nil
	}
	e.stats.Misses++
	e.mu.Unlock()

	// Compile outside the lock: a slow compile must not stall cache hits
	// on other sources. Two racing compiles of the same source both
	// succeed; the first to insert wins and the other adopts it.
	prog, err := compileProgram(name, src, co)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[key]; ok {
		e.order.MoveToFront(el)
		return el.Value.(*programEntry).prog, nil
	}
	el := e.order.PushFront(&programEntry{key: key, prog: prog})
	e.cache[key] = el
	for e.order.Len() > e.cacheCap {
		oldest := e.order.Back()
		e.order.Remove(oldest)
		delete(e.cache, oldest.Value.(*programEntry).key)
		e.stats.Evictions++
	}
	e.stats.Entries = e.order.Len()
	return prog, nil
}

// Run executes p without instrumentation under ctx.
func (e *Engine) Run(ctx context.Context, p *Program, cfg RunConfig) (*RunResult, error) {
	return p.RunCtx(ctx, cfg)
}

// Profile executes p sequentially under the profiler under ctx. A
// config requesting parallel execution is rejected with
// ErrProfileNeedsSequential.
func (e *Engine) Profile(ctx context.Context, p *Program, cfg ProfileConfig) (*Profile, *RunResult, error) {
	return p.ProfileCtx(ctx, cfg)
}

// ProfileJob is one profiling run within a batch: an input stream plus
// an optional per-job config.
type ProfileJob struct {
	// Input is served to the program via the in()/inlen() builtins.
	Input []int64
	// Config overrides the engine's default profile config for this job.
	// When nil the engine default applies. In both cases a non-nil
	// Input above replaces the config's Input field.
	Config *ProfileConfig
}

// BatchResult is the outcome of one ProfileJob.
type BatchResult struct {
	// Job indexes into the jobs slice passed to ProfileBatch/ProfileEach.
	Job int
	// Profile and Run are set when Err is nil.
	Profile *Profile
	Run     *RunResult
	// Err is the job's failure, including ctx.Err() for jobs abandoned
	// after cancellation.
	Err error
}

// profileJobConfig resolves the effective config for one job.
func (e *Engine) profileJobConfig(job ProfileJob) ProfileConfig {
	cfg := e.defProfile
	if job.Config != nil {
		cfg = *job.Config
	}
	if job.Input != nil {
		cfg.Input = job.Input
	}
	return cfg
}

// ProfileEach fans the jobs over the engine's worker pool and streams
// one BatchResult per job in completion order. The returned channel is
// closed after the last result. Cancelling ctx aborts running jobs
// (each observes it within one VM step-check window) and fails
// not-yet-started ones with ctx.Err().
func (e *Engine) ProfileEach(ctx context.Context, p *Program, jobs []ProfileJob) <-chan BatchResult {
	if ctx == nil { // tolerate nil like every other entry point
		ctx = context.Background()
	}
	out := make(chan BatchResult, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		go func(i int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
				defer func() { <-e.sem }()
			case <-ctx.Done():
				out <- BatchResult{Job: i, Err: ctx.Err()}
				return
			}
			prof, res, err := p.ProfileCtx(ctx, e.profileJobConfig(jobs[i]))
			out <- BatchResult{Job: i, Profile: prof, Run: res, Err: err}
		}(i)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// ProfileBatch profiles p over all jobs concurrently and merges the
// per-job profiles, in job order, into one union profile — equivalent
// to (and byte-identical with, via WriteJSON) calling Profile per job
// sequentially and passing the results to Merge. The per-job results
// are returned in job order alongside the merged profile. If any job
// fails, the merged profile is nil and the error is the failure of the
// lowest-indexed failing job.
func (e *Engine) ProfileBatch(ctx context.Context, p *Program, jobs []ProfileJob) (*Profile, []BatchResult, error) {
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("alchemist: ProfileBatch needs at least one job")
	}
	results := make([]BatchResult, len(jobs))
	for r := range e.ProfileEach(ctx, p, jobs) {
		results[r.Job] = r
	}
	profiles := make([]*Profile, len(jobs))
	for i, r := range results {
		if r.Err != nil {
			return nil, results, fmt.Errorf("alchemist: batch job %d: %w", i, r.Err)
		}
		profiles[i] = r.Profile
	}
	merged, err := Merge(profiles...)
	if err != nil {
		return nil, results, err
	}
	return merged, results, nil
}

// defaultEngine backs the deprecated package-level facade functions.
var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the package-default Engine used by the
// deprecated free functions. It is created on first use with default
// options.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
