package alchemist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"alchemist"
)

const batchSrc = `// batch.mc
int hist[256];
int total;

void handle(int v) {
	int acc = 0;
	for (int k = 0; k < 40; k++) {
		acc += (v * 31 + k) & 255;
	}
	hist[v & 255] += acc;
	total += acc;
}

int main() {
	for (int i = 0; i < inlen(); i++) {
		handle(in(i));
	}
	out(total);
	return 0;
}`

func batchInputs() [][]int64 {
	inputs := make([][]int64, 3)
	for j := range inputs {
		in := make([]int64, 30)
		for i := range in {
			in[i] = int64(i*7 + j*13)
		}
		inputs[j] = in
	}
	return inputs
}

// TestEngineCompileCache: identical (name, source, options) hit the
// cache and return the identical *Program; distinct options miss.
func TestEngineCompileCache(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithCacheSize(2))

	p1, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Compile of identical source did not hit the cache")
	}
	if st := eng.CacheStats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats after hit = %+v, want Hits=1 Misses=1 Entries=1", st)
	}

	// Same source, different options: distinct entry, distinct program.
	p3, err := eng.CompileWith(ctx, "batch.mc", batchSrc, alchemist.CompileOptions{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("Optimize compile returned the unoptimized cache entry")
	}
	if st := eng.CacheStats(); st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats after optimize miss = %+v, want Misses=2 Entries=2", st)
	}

	// Capacity is 2: a third distinct entry evicts the LRU one
	// (batch.mc unoptimized was used least recently... MoveToFront puts
	// the optimize entry first, so the plain entry is evicted only after
	// another insert).
	if _, err := eng.Compile(ctx, "other.mc", "int main() { return 0; }"); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats after eviction = %+v, want Evictions=1 Entries=2", st)
	}

	// The evicted program recompiles to a fresh pointer.
	p4, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Error("evicted entry still served from cache")
	}
}

// TestEngineCacheDisabled: negative cache size compiles fresh each time.
func TestEngineCacheDisabled(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithCacheSize(-1))
	p1, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("cache disabled but programs shared")
	}
	if st := eng.CacheStats(); st != (alchemist.CacheStats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
}

// TestEngineCompileConcurrent: racing compiles of one source converge on
// one cached program.
func TestEngineCompileConcurrent(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine()
	progs := make([]*alchemist.Program, 16)
	var wg sync.WaitGroup
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := eng.Compile(ctx, "batch.mc", batchSrc)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(progs); i++ {
		if progs[i] != progs[0] {
			t.Fatalf("compile %d returned a different program", i)
		}
	}
	if st := eng.CacheStats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestProfileBatchMatchesSequentialMerge: the concurrent batch produces
// a merged profile byte-identical (via WriteJSON) to sequentially
// profiling each input and merging.
func TestProfileBatchMatchesSequentialMerge(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithWorkers(3))
	prog, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	inputs := batchInputs()

	// Sequential reference: Profile per input, then Merge.
	seq := make([]*alchemist.Profile, len(inputs))
	for i, in := range inputs {
		p, _, err := prog.ProfileCtx(ctx, alchemist.ProfileConfig{
			RunConfig: alchemist.RunConfig{Input: in},
		})
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = p
	}
	want, err := alchemist.Merge(seq...)
	if err != nil {
		t.Fatal(err)
	}

	jobs := make([]alchemist.ProfileJob, len(inputs))
	for i, in := range inputs {
		jobs[i] = alchemist.ProfileJob{Input: in}
	}
	got, results, err := eng.ProfileBatch(ctx, prog, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Job != i || r.Err != nil || r.Profile == nil || r.Run == nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}

	var wantJSON, gotJSON bytes.Buffer
	if err := alchemist.WriteJSON(&wantJSON, want); err != nil {
		t.Fatal(err)
	}
	if err := alchemist.WriteJSON(&gotJSON, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Errorf("batch JSON differs from sequential merge JSON:\nbatch: %.400s\nseq:   %.400s",
			gotJSON.String(), wantJSON.String())
	}
}

// TestProfileEachStreams: every job reports exactly once with its index.
func TestProfileEachStreams(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithWorkers(2))
	prog, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]alchemist.ProfileJob, 5)
	for i := range jobs {
		jobs[i] = alchemist.ProfileJob{Input: []int64{int64(i), int64(i + 1)}}
	}
	seen := make(map[int]bool)
	for r := range eng.ProfileEach(ctx, prog, jobs) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", r.Job, r.Err)
		}
		if seen[r.Job] {
			t.Fatalf("job %d reported twice", r.Job)
		}
		seen[r.Job] = true
	}
	if len(seen) != len(jobs) {
		t.Errorf("saw %d results, want %d", len(seen), len(jobs))
	}
}

// TestProfileBatchJobError: a failing job surfaces its error and fails
// the batch.
func TestProfileBatchJobError(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine()
	prog, err := eng.Compile(ctx, "oob.mc", `int main() { out(in(0)); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	merged, results, err := eng.ProfileBatch(ctx, prog, []alchemist.ProfileJob{
		{Input: []int64{7}},
		{Input: []int64{}}, // in(0) out of range
	})
	if err == nil || merged != nil {
		t.Fatalf("batch = (%v, %v), want error", merged, err)
	}
	if results[0].Err != nil || results[1].Err == nil {
		t.Errorf("per-job errors = [%v, %v]", results[0].Err, results[1].Err)
	}
}

// TestProfileBatchCancel: cancelling the context fails the batch with
// context.Canceled.
func TestProfileBatchCancel(t *testing.T) {
	eng := alchemist.NewEngine(alchemist.WithWorkers(1))
	src := `int main() { int s = 0; for (int i = 0; i < 100000000; i++) { s += i; } out(s); return 0; }`
	prog, err := eng.Compile(context.Background(), "long.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err = eng.ProfileBatch(ctx, prog, []alchemist.ProfileJob{{}, {}, {}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancelled batch took %v", elapsed)
	}
}

// TestProfileBatchNilContext: a nil context is tolerated like every
// other entry point, not a panic in the worker goroutines.
func TestProfileBatchNilContext(t *testing.T) {
	eng := alchemist.NewEngine()
	prog, err := eng.Compile(nil, "nilctx.mc", `int main() { out(inlen()); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	merged, _, err := eng.ProfileBatch(nil, prog, []alchemist.ProfileJob{
		{Input: []int64{1}}, {Input: []int64{2, 3}},
	})
	if err != nil || merged == nil {
		t.Fatalf("batch = (%v, %v)", merged, err)
	}
}

// TestProfileRejectsParallel: profiling must not silently override a
// parallel config — it errors instead.
func TestProfileRejectsParallel(t *testing.T) {
	prog, err := alchemist.CompileCtx(context.Background(), "p.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []alchemist.ProfileConfig{
		{RunConfig: alchemist.RunConfig{Parallel: true}},
		{RunConfig: alchemist.RunConfig{SimWorkers: 2}},
	} {
		if _, _, err := prog.Profile(cfg); !errors.Is(err, alchemist.ErrProfileNeedsSequential) {
			t.Errorf("Profile(%+v) err = %v, want ErrProfileNeedsSequential", cfg, err)
		}
	}
	// Engine.Profile enforces the same contract.
	if _, _, err := alchemist.DefaultEngine().Profile(context.Background(), prog,
		alchemist.ProfileConfig{RunConfig: alchemist.RunConfig{Parallel: true}}); !errors.Is(err, alchemist.ErrProfileNeedsSequential) {
		t.Errorf("Engine.Profile err = %v, want ErrProfileNeedsSequential", err)
	}
}

// TestWithDefaultProfileConfig: batch jobs without a config inherit the
// engine default, with the job input substituted.
func TestWithDefaultProfileConfig(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithDefaultProfileConfig(alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{StepLimit: 50},
	}))
	prog, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, results, err := eng.ProfileBatch(ctx, prog, []alchemist.ProfileJob{
		{Input: []int64{1, 2, 3}},
	})
	if err == nil {
		t.Fatal("expected the inherited StepLimit to trap")
	}
	if r := results[0]; r.Err == nil || !errContains(r.Err, "step limit") {
		t.Errorf("job err = %v, want step-limit trap", r.Err)
	}
}

func errContains(err error, sub string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(sub))
}

// TestCompileCtxCancelled: compilation respects an already-cancelled
// context.
func TestCompileCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := alchemist.CompileCtx(ctx, "x.mc", "int main() { return 0; }"); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompileCtx err = %v, want context.Canceled", err)
	}
}

// TestDeprecatedFacade: the free functions still work as wrappers over
// the default engine.
func TestDeprecatedFacade(t *testing.T) {
	src := fmt.Sprintf("int main() { out(%d); return 0; }", 41)
	prog, err := alchemist.Compile("facade.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(alchemist.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 41 {
		t.Fatalf("output = %v", res.Output)
	}
	prog2, err := alchemist.Compile("facade.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	if prog2 != prog {
		t.Error("default engine did not cache the facade compile")
	}
}
