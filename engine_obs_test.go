package alchemist_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"alchemist"
	"alchemist/internal/obs"
)

// counter reads a registry counter by name without creating noise: the
// engine registered all of its metrics at construction, so the lookup
// always finds an existing instrument.
func counter(r *obs.Registry, name string) int64 {
	return r.Counter(name, "").Value()
}

// TestEngineSingleflight: a thundering herd on one cold source costs one
// compile; everyone else hits the cache or coalesces onto the in-flight
// compile. The invariant compiles + hits + coalesced == lookups holds
// regardless of scheduling.
func TestEngineSingleflight(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine()
	const n = 16

	start := make(chan struct{})
	progs := make([]*alchemist.Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p, err := eng.Compile(ctx, "herd.mc", `int main() { return 42; }`)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("compile %d returned a different program", i)
		}
	}
	st := eng.CacheStats()
	compiles := counter(eng.Metrics(), "alchemist_engine_compiles_total")
	if st.Hits+st.Misses != n {
		t.Errorf("hits(%d) + misses(%d) != %d lookups", st.Hits, st.Misses, n)
	}
	if compiles+st.Hits+st.Coalesced != n {
		t.Errorf("compiles(%d) + hits(%d) + coalesced(%d) != %d lookups",
			compiles, st.Hits, st.Coalesced, n)
	}
	if compiles != 1 {
		t.Errorf("compiles = %d, want exactly 1 for a singleflighted herd", compiles)
	}
	if got := counter(eng.Metrics(), "alchemist_engine_singleflight_coalesced_total"); got != st.Coalesced {
		t.Errorf("coalesced metric = %d, CacheStats.Coalesced = %d", got, st.Coalesced)
	}
}

// bigSrc synthesizes a program whose compiled footprint exceeds
// DefaultProgramCost instructions, so it charges more than one cache
// cost unit.
func bigSrc() string {
	var sb strings.Builder
	sb.WriteString("int main() {\n  int s = 0;\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "  s = s * 3 + %d;\n", i)
	}
	sb.WriteString("  out(s);\n  return 0;\n}\n")
	return sb.String()
}

// TestEngineCostEviction: cache pressure is charged by program footprint,
// not entry count — one big program displaces proportionally more.
func TestEngineCostEviction(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithCacheSize(2))

	if _, err := eng.Compile(ctx, "big.mc", bigSrc()); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Cost < 2 {
		t.Fatalf("big program cost = %d units, want >= 2 (footprint too small to exercise the cost model)", st.Cost)
	}
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats after big insert = %+v, want Entries=1 Evictions=0", st)
	}

	// A one-unit program pushes the total over budget; the big program is
	// the LRU entry and goes first.
	if _, err := eng.Compile(ctx, "small.mc", `int main() { return 1; }`); err != nil {
		t.Fatal(err)
	}
	st = eng.CacheStats()
	if st.Evictions != 1 || st.Entries != 1 || st.Cost != 1 {
		t.Errorf("stats after small insert = %+v, want Evictions=1 Entries=1 Cost=1", st)
	}
}

// TestEngineOversizedProgramCachesAlone: a program larger than the whole
// budget still caches (alone) instead of thrashing on every lookup.
func TestEngineOversizedProgramCachesAlone(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithCacheSize(1))

	p1, err := eng.Compile(ctx, "big.mc", bigSrc())
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Entries != 1 || st.Evictions != 0 || st.Cost < 2 {
		t.Fatalf("stats = %+v, want the oversized program cached alone", st)
	}
	p2, err := eng.Compile(ctx, "big.mc", bigSrc())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("oversized program was not served from the cache")
	}
}

// TestEngineMetricsEndpoint is the acceptance golden: after one
// engine-driven profile, /metrics serves nonzero VM step and cache
// counters in the Prometheus text format.
func TestEngineMetricsEndpoint(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine()
	prog, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Profile(ctx, prog, alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{Input: []int64{1, 2, 3}},
	}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(eng.Metrics()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)

	metric := func(name string) int64 {
		t.Helper()
		m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("metric %s missing from /metrics:\n%s", name, body)
		}
		v, _ := strconv.ParseInt(m[1], 10, 64)
		return v
	}
	if steps := metric("alchemist_vm_steps_total"); steps <= 0 {
		t.Errorf("alchemist_vm_steps_total = %d, want > 0", steps)
	}
	if runs := metric("alchemist_vm_runs_total"); runs != 1 {
		t.Errorf("alchemist_vm_runs_total = %d, want 1", runs)
	}
	if misses := metric("alchemist_engine_cache_misses_total"); misses != 1 {
		t.Errorf("alchemist_engine_cache_misses_total = %d, want 1", misses)
	}
	metric("alchemist_engine_cache_hits_total") // present, zero is fine
	if loads := metric("alchemist_profile_shadow_loads_total"); loads <= 0 {
		t.Errorf("alchemist_profile_shadow_loads_total = %d, want > 0", loads)
	}
}

// TestEngineScratchAccounting: every batch job checks one scratch buffer
// out and back in; the sync.Pool allocates at most one per concurrent
// worker.
func TestEngineScratchAccounting(t *testing.T) {
	ctx := context.Background()
	const workers, jobCount = 2, 6
	eng := alchemist.NewEngine(alchemist.WithWorkers(workers))
	prog, err := eng.Compile(ctx, "batch.mc", batchSrc)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]alchemist.ProfileJob, jobCount)
	for i := range jobs {
		jobs[i] = alchemist.ProfileJob{Input: []int64{int64(i), int64(i * 2)}}
	}
	if _, _, err := eng.ProfileBatch(ctx, prog, jobs); err != nil {
		t.Fatal(err)
	}

	reg := eng.Metrics()
	gets := counter(reg, "alchemist_engine_scratch_gets_total")
	puts := counter(reg, "alchemist_engine_scratch_puts_total")
	news := counter(reg, "alchemist_engine_scratch_news_total")
	if gets != jobCount || puts != jobCount {
		t.Errorf("scratch gets = %d puts = %d, want both %d", gets, puts, jobCount)
	}
	if news < 1 || news > jobCount {
		t.Errorf("scratch news = %d, want within [1, %d]", news, jobCount)
	}
	if got := counter(reg, "alchemist_engine_jobs_total"); got != jobCount {
		t.Errorf("jobs = %d, want %d", got, jobCount)
	}
	if got := counter(reg, "alchemist_profile_pool_allocated_total"); got <= 0 {
		t.Errorf("pool allocated = %d, want > 0", got)
	}
}

// TestProfileJobOnProgress: per-job progress reports are monotonic and
// end with the job's exact final step count.
func TestProfileJobOnProgress(t *testing.T) {
	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithWorkers(2))
	// Long enough that every job crosses several check windows.
	src := `int main() { int s = 0; for (int i = 0; i < 30000; i++) { s += in(i % inlen()); } out(s); return 0; }`
	prog, err := eng.Compile(ctx, "prog.mc", src)
	if err != nil {
		t.Fatal(err)
	}

	const jobCount = 3
	var mu sync.Mutex
	reports := make([][]int64, jobCount)
	jobs := make([]alchemist.ProfileJob, jobCount)
	for i := range jobs {
		i := i
		jobs[i] = alchemist.ProfileJob{
			Input: []int64{int64(i), 5, 9},
			OnProgress: func(steps int64) {
				mu.Lock()
				reports[i] = append(reports[i], steps)
				mu.Unlock()
			},
		}
	}
	_, results, err := eng.ProfileBatch(ctx, prog, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(reports[i]) < 2 {
			t.Fatalf("job %d delivered %d reports, want >= 2", i, len(reports[i]))
		}
		for k := 1; k < len(reports[i]); k++ {
			if reports[i][k] < reports[i][k-1] {
				t.Errorf("job %d reports not monotonic: %v", i, reports[i])
				break
			}
		}
		if last := reports[i][len(reports[i])-1]; last != r.Run.Steps {
			t.Errorf("job %d final report = %d, want Run.Steps = %d", i, last, r.Run.Steps)
		}
	}
}

// TestProfileJobOnProgressCancel: cancelling mid-batch aborts the
// running job and fails queued jobs with context.Canceled.
func TestProfileJobOnProgressCancel(t *testing.T) {
	eng := alchemist.NewEngine(alchemist.WithWorkers(1))
	src := `int main() { int s = 0; for (int i = 0; i < 100000000; i++) { s += i; } out(s); return 0; }`
	prog, err := eng.Compile(context.Background(), "long.mc", src)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Jobs start in arbitrary order, so every job cancels on its first
	// progress report: whichever runs first aborts itself mid-run, and
	// the queued jobs fail without starting.
	onFirst := func(int64) { cancel() }
	jobs := []alchemist.ProfileJob{
		{OnProgress: onFirst}, {OnProgress: onFirst}, {OnProgress: onFirst},
	}
	merged, results, err := eng.ProfileBatch(ctx, prog, jobs)
	if merged != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("batch = (%v, %v), want context.Canceled", merged, err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d err = %v, want context.Canceled", i, r.Err)
		}
	}
}
