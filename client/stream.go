package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// EventStream follows one job's SSE event log. It reconnects on
// connection cuts and transient server errors, resuming with
// Last-Event-ID so no event is lost, and deduplicates on Seq so no
// event is delivered twice. After the terminal event has been returned,
// Next returns io.EOF.
type EventStream struct {
	c     *Client
	jobID string

	// traceID groups every connection attempt of this stream — including
	// resumes after cuts — into one trace on the server.
	traceID string

	// next is the Seq the caller has not seen yet; reconnects ask the
	// server to resume from it.
	next int

	body    io.ReadCloser
	scanner *bufio.Scanner
	done    bool
	err     error
}

// StreamEvents opens a resumable event stream for a job, starting at
// event seq `from` (0 streams the whole log). The connection is made
// lazily on the first Next call.
func (c *Client) StreamEvents(jobID string, from int) *EventStream {
	if from < 0 {
		from = 0
	}
	return &EventStream{c: c, jobID: jobID, next: from, traceID: newTraceID()}
}

// Next blocks until the next unseen event arrives and returns it.
// Connection cuts and retryable server errors are healed internally by
// reconnecting with Last-Event-ID; the caller only sees the gap-free
// event sequence. After the terminal event, Next returns io.EOF. A
// non-retryable error (bad job ID, context cancellation, retry budget
// exhausted) is returned as-is and is sticky.
func (es *EventStream) Next(ctx context.Context) (Event, error) {
	if es.err != nil {
		return Event{}, es.err
	}
	if es.done {
		es.err = io.EOF
		return Event{}, io.EOF
	}
	ev, err := es.next1(ctx)
	if err != nil {
		es.err = err
		es.disconnect()
		return Event{}, err
	}
	if ev.Terminal() {
		es.done = true
		es.disconnect()
	}
	return ev, nil
}

// next1 reads events until one with Seq >= es.next shows up,
// reconnecting across failures. Replayed events below es.next (the
// server resends from an older point, or our Last-Event-ID raced a
// cut) are skipped silently.
func (es *EventStream) next1(ctx context.Context) (Event, error) {
	attempt := 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return Event{}, err
		}
		if es.body == nil {
			if attempt >= es.c.maxAttempts {
				return Event{}, fmt.Errorf("alchemist api: event stream for job %s: giving up after %d attempts: %w", es.jobID, attempt, lastErr)
			}
			if attempt > 0 {
				var hint time.Duration
				var ae *APIError
				if errors.As(lastErr, &ae) {
					hint = ae.RetryAfter
				}
				if err := es.c.sleep(ctx, es.c.backoff(attempt-1, hint)); err != nil {
					return Event{}, err
				}
			}
			attempt++
			if err := es.connect(ctx); err != nil {
				var ae *APIError
				if errors.As(err, &ae) && !ae.Temporary() {
					return Event{}, err
				}
				lastErr = err
				continue
			}
		}
		ev, err := es.readEvent()
		if err != nil {
			// Mid-stream cut: reconnect and resume. The successful
			// connection does not reset the budget to zero outright, but
			// delivering an event does (below), so a flapping link that
			// still makes progress is never abandoned.
			es.disconnect()
			lastErr = fmt.Errorf("alchemist api: event stream for job %s cut: %w", es.jobID, err)
			continue
		}
		if ev.Seq < es.next {
			continue // replay of an event we already delivered
		}
		es.next = ev.Seq + 1
		return ev, nil
	}
}

// connect opens the SSE response, resuming from es.next.
func (es *EventStream) connect(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, es.c.base+"/v1/jobs/"+es.jobID+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("traceparent", traceparent(es.traceID))
	if es.c.apiKey != "" {
		req.Header.Set("X-Api-Key", es.c.apiKey)
	}
	if es.next > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(es.next-1))
	}
	resp, err := es.c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("alchemist api: connecting event stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return decodeError(resp, body)
	}
	es.body = resp.Body
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	es.scanner = sc
	return nil
}

// readEvent parses one SSE event from the open stream. Keepalive
// comments and unknown fields are skipped per the SSE grammar.
func (es *EventStream) readEvent() (Event, error) {
	var data strings.Builder
	sawData := false
	for es.scanner.Scan() {
		line := es.scanner.Text()
		switch {
		case line == "":
			if !sawData {
				continue // e.g. the blank line after a ": keepalive" comment
			}
			var ev Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return Event{}, fmt.Errorf("decoding event payload: %w", err)
			}
			return ev, nil
		case strings.HasPrefix(line, ":"):
			// comment (keepalive)
		case strings.HasPrefix(line, "data:"):
			if sawData {
				data.WriteByte('\n')
			}
			sawData = true
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// event:/id: lines — the payload repeats both, so nothing to do.
		}
	}
	if err := es.scanner.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.ErrUnexpectedEOF
}

func (es *EventStream) disconnect() {
	if es.body != nil {
		es.body.Close()
		es.body = nil
		es.scanner = nil
	}
}

// Close releases the stream's connection. Next returns the prior sticky
// error, or io.EOF, afterwards.
func (es *EventStream) Close() error {
	es.disconnect()
	if !es.done && es.err == nil {
		es.err = errors.New("alchemist api: event stream closed")
	}
	return nil
}
