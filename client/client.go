// Package client is the Go SDK for the alchemist profiling service
// (internal/server, CLI `alchemist serve`). It wraps the v1 JSON API
// with the retry discipline a flaky network demands:
//
//   - capped exponential backoff with full jitter on 429, 503, other
//     5xx, and connection errors, honoring the server's Retry-After /
//     retry_after_ms hints;
//   - an auto-generated Idempotency-Key on every job submission, so a
//     retried submit never double-enqueues work;
//   - an SSE event stream that reconnects with Last-Event-ID and
//     deduplicates, delivering each job's event log exactly once and in
//     order across connection cuts and server restarts.
//
// The zero-config path:
//
//	c := client.New("http://127.0.0.1:8080")
//	st, err := c.SubmitAndWait(ctx, client.JobRequest{
//		Kind: "profile", SourceSpec: client.SourceSpec{Workload: "gzip"},
//	})
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a connection to one alchemist server. It is safe for
// concurrent use.
type Client struct {
	base   string
	hc     *http.Client
	apiKey string

	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration

	rngMu sync.Mutex
	rng   *mrand.Rand

	// sleep is swappable for tests.
	sleep func(context.Context, time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, fault injection, timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithAPIKey attaches an X-Api-Key header to every request.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.apiKey = key }
}

// WithRetry tunes the retry policy: at most maxAttempts tries per
// request (minimum 1), exponential backoff starting at base and capped
// at maxDelay, with full jitter.
func WithRetry(maxAttempts int, base, maxDelay time.Duration) Option {
	return func(c *Client) {
		c.maxAttempts = max(1, maxAttempts)
		if base > 0 {
			c.baseDelay = base
		}
		if maxDelay > 0 {
			c.maxDelay = maxDelay
		}
	}
}

// WithRandSeed seeds the jitter source for reproducible backoff
// schedules in tests.
func WithRandSeed(seed int64) Option {
	return func(c *Client) { c.rng = mrand.New(mrand.NewSource(seed)) }
}

// New builds a Client for the server at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{},
		maxAttempts: 8,
		baseDelay:   100 * time.Millisecond,
		maxDelay:    5 * time.Second,
		rng:         mrand.New(mrand.NewSource(time.Now().UnixNano())),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the server base URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// backoff computes the sleep before retry attempt `attempt` (0-based):
// full jitter over an exponentially growing cap, except that a server
// hint (Retry-After) is taken as the floor — the server knows its queue
// better than our schedule does.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.baseDelay << attempt
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	c.rngMu.Lock()
	jittered := time.Duration(c.rng.Float64() * float64(d))
	c.rngMu.Unlock()
	if hint > 0 && jittered < hint {
		return hint
	}
	return jittered
}

// decodeError turns a non-2xx response into an *APIError, folding in
// the Retry-After header and envelope hint.
func decodeError(resp *http.Response, body []byte) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: "internal", Message: strings.TrimSpace(string(body))}
	var env struct {
		Error struct {
			Code         string `json:"code"`
			Message      string `json:"message"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.RetryAfter = time.Duration(env.Error.RetryAfterMS) * time.Millisecond
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" && ae.RetryAfter == 0 {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}

// retryableStatus reports whether a status is worth retrying: 429 and
// every 5xx (the server marks its transient failures — drain, abort,
// saturation — with Retry-After hints on these).
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do issues method path with the JSON body and decodes a 2xx response
// into out (unless out is nil), retrying transient failures. extraHdr
// is reattached on every attempt, which is what keeps a retried job
// submission on its original Idempotency-Key. One W3C trace ID is
// minted per call and shared by every attempt (each attempt gets a
// fresh parent span ID), so however many retries a request takes, the
// server sees — and its access log and job timeline record — a single
// trace.
func (c *Client) do(ctx context.Context, method, path string, body []byte, extraHdr map[string]string, out any) error {
	traceID := newTraceID()
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			var hint time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) {
				hint = ae.RetryAfter
			}
			if err := c.sleep(ctx, c.backoff(attempt-1, hint)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.apiKey != "" {
			req.Header.Set("X-Api-Key", c.apiKey)
		}
		req.Header.Set("traceparent", traceparent(traceID))
		for k, v := range extraHdr {
			req.Header.Set(k, v)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Connection-level failure: the server may never have seen
			// the request, or may have processed it and lost the
			// response. Both are safe to retry here — submissions carry
			// idempotency keys.
			lastErr = fmt.Errorf("alchemist api: %s %s: %w", method, path, err)
			continue
		}
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			lastErr = fmt.Errorf("alchemist api: reading %s %s response: %w", method, path, readErr)
			continue
		}
		if resp.StatusCode >= 400 {
			ae := decodeError(resp, respBody)
			if retryableStatus(resp.StatusCode) {
				lastErr = ae
				continue
			}
			return ae
		}
		if out != nil {
			if err := json.Unmarshal(respBody, out); err != nil {
				return fmt.Errorf("alchemist api: decoding %s %s response: %w", method, path, err)
			}
		}
		return nil
	}
	return fmt.Errorf("alchemist api: giving up after %d attempts: %w", c.maxAttempts, lastErr)
}

// doJSON marshals in (unless nil) and issues the request through the
// retry loop.
func (c *Client) doJSON(ctx context.Context, method, path string, in any, extraHdr map[string]string, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	return c.do(ctx, method, path, body, extraHdr, out)
}

// Compile compiles a program on the server, warming its program cache.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*CompileResponse, error) {
	var out CompileResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/compile", req, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Profile profiles an input suite synchronously and returns the merged
// profile.
func (c *Client) Profile(ctx context.Context, req ProfileRequest) (*ProfileResponse, error) {
	var out ProfileResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/profile", req, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advise profiles an input suite and returns ranked transformation
// guidance.
func (c *Client) Advise(ctx context.Context, req ProfileRequest) (*AdviseResponse, error) {
	var out AdviseResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/advise", req, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Run executes an input suite synchronously.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/run", req, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// newIdemKey mints a fresh idempotency key.
func newIdemKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to something unique enough; crypto/rand does not
		// fail on supported platforms.
		return fmt.Sprintf("idem-%d", time.Now().UnixNano())
	}
	return "idem-" + hex.EncodeToString(b[:])
}

// newTraceID mints a 16-byte W3C trace-context trace ID, hex-encoded.
func newTraceID() string { return randHex(16) }

// traceparent formats a version-00 W3C traceparent header carrying
// traceID, with a fresh parent span ID — call it once per attempt.
func traceparent(traceID string) string {
	return "00-" + traceID + "-" + randHex(8) + "-01"
}

// randHex returns n random bytes, hex-encoded.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// Never emit an all-zero (invalid) ID; a time-derived value is
		// unique enough for the fallback path.
		return fmt.Sprintf("%0*x", 2*n, time.Now().UnixNano())
	}
	return hex.EncodeToString(b)
}
