package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// SubmitJob submits an async job. A fresh Idempotency-Key is minted
// once per call and reattached on every retry, so however many times
// the submission is re-sent over a flaky link, the server enqueues the
// work at most once (a replayed submission returns the original job
// with IdempotentReplay set).
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var out JobStatus
	hdr := map[string]string{"Idempotency-Key": newIdemKey()}
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", req, hdr, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job's status, including the result payload when it
// has succeeded.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobTrace fetches a job's span timeline.
func (c *Client) JobTrace(ctx context.Context, id string) (*JobTrace, error) {
	var out JobTrace
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListJobsOptions filters and pages GET /v1/jobs.
type ListJobsOptions struct {
	// State keeps only jobs in that state ("" = all).
	State JobState
	// Limit caps the page size (0 = server default).
	Limit int
	// PageToken continues a previous listing.
	PageToken string
}

// ListJobs fetches one page of the job listing.
func (c *Client) ListJobs(ctx context.Context, opts ListJobsOptions) (*JobList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.PageToken != "" {
		q.Set("page_token", opts.PageToken)
	}
	path := "/v1/jobs"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out JobList
	if err := c.doJSON(ctx, http.MethodGet, path, nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob blocks until the job reaches a terminal state, following its
// SSE event stream (reconnecting and resuming as needed) and falling
// back to polling if streaming keeps failing. It returns the final
// status with the result payload included.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	st, err := c.waitStream(ctx, id)
	if err == nil && st.State.Terminal() {
		return st, nil
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Either streaming kept failing, or the stream ended on a job that is
	// somehow still live (a dying server can emit a terminal "interrupted"
	// event for work that a requeue-on-recovery restart then resurrects).
	// Polling is the arbiter: the status endpoint never lies.
	return c.pollJob(ctx, id)
}

// waitStream drives the event stream to its terminal event.
func (c *Client) waitStream(ctx context.Context, id string) (*JobStatus, error) {
	es := c.StreamEvents(id, 0)
	defer es.Close()
	for {
		_, err := es.Next(ctx)
		if errors.Is(err, io.EOF) {
			return c.Job(ctx, id)
		}
		if err != nil {
			return nil, err
		}
	}
}

// pollJob is the streaming fallback: plain status polls with a gentle
// backoff.
func (c *Client) pollJob(ctx context.Context, id string) (*JobStatus, error) {
	delay := 50 * time.Millisecond
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, delay); err != nil {
			return nil, err
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// SubmitAndWait submits a job and blocks until it finishes, combining
// SubmitJob's idempotent retry with WaitJob's resumable stream. It is
// the one-call path that survives 429s, 5xx bursts, dropped
// connections, and a server restart (with a durable, requeueing server
// the job itself survives too).
func (c *Client) SubmitAndWait(ctx context.Context, req JobRequest) (*JobStatus, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, err
	}
	if st.State.Terminal() {
		return c.Job(ctx, st.ID)
	}
	return c.WaitJob(ctx, st.ID)
}
