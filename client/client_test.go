package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alchemist"
	"alchemist/internal/server"
)

const loopSrc = `
int main() {
	int n = in(0);
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	out(s);
	return 0;
}
`

// instantSleep makes the client's backoff schedule take zero wall time
// while still recording what it would have slept.
func instantSleep(c *Client, record *[]time.Duration) {
	var mu sync.Mutex
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*record = append(*record, d)
		mu.Unlock()
		return ctx.Err()
	}
}

func newRealServer(t *testing.T, mod func(*server.Options)) *httptest.Server {
	t.Helper()
	opts := server.Options{
		Engine:           alchemist.NewEngine(alchemist.WithWorkers(2)),
		ProgressInterval: -1,
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls int32
	var keys []string
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		switch n {
		case 1:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"draining","message":"draining","retry_after_ms":250}}`)
		case 2:
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"rate_limited","message":"slow down","retry_after_ms":100}}`)
		default:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"job-1","kind":"run","state":"queued"}`)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, WithRandSeed(1))
	var slept []time.Duration
	instantSleep(c, &slept)

	st, err := c.SubmitJob(context.Background(), JobRequest{Kind: "run"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" {
		t.Fatalf("ID = %q, want job-1", st.ID)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	// Every retry must reuse the original idempotency key.
	if keys[0] == "" || keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("idempotency keys not stable across retries: %q", keys)
	}
	// The server's hints are the backoff floor: 250ms then 100ms.
	if len(slept) != 2 || slept[0] < 250*time.Millisecond || slept[1] < 100*time.Millisecond {
		t.Fatalf("slept = %v, want floors [>=250ms >=100ms]", slept)
	}
}

func TestDoesNotRetryClientErrors(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"bad_request","message":"no such workload"}}`)
	}))
	defer ts.Close()

	c := New(ts.URL)
	var slept []time.Duration
	instantSleep(c, &slept)

	_, err := c.SubmitJob(context.Background(), JobRequest{Kind: "run"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Code != "bad_request" {
		t.Fatalf("err = %v, want 400 bad_request APIError", err)
	}
	if ae.Temporary() {
		t.Fatal("400 must not be Temporary")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (4xx is not retryable)", calls)
	}
}

func TestGivesUpAfterMaxAttempts(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":{"code":"internal","message":"boom"}}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(3, time.Millisecond, time.Millisecond))
	var slept []time.Duration
	instantSleep(c, &slept)

	_, err := c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want wrapped 500 APIError", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestRetriesConnectionErrors(t *testing.T) {
	// A server that is immediately closed: every dial is refused.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()

	c := New(ts.URL, WithRetry(2, time.Millisecond, time.Millisecond))
	var slept []time.Duration
	instantSleep(c, &slept)

	_, err := c.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("err = %v, want giving-up error after connection failures", err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
}

func TestAPIKeyHeaderAttached(t *testing.T) {
	var got string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get("X-Api-Key")
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithAPIKey("sekrit"))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "sekrit" {
		t.Fatalf("X-Api-Key = %q, want sekrit", got)
	}
}

func TestBackoffHonorsHintAsFloor(t *testing.T) {
	c := New("http://invalid", WithRandSeed(42), WithRetry(8, 10*time.Millisecond, 100*time.Millisecond))
	for attempt := 0; attempt < 8; attempt++ {
		if d := c.backoff(attempt, 777*time.Millisecond); d < 777*time.Millisecond {
			t.Fatalf("backoff(%d, 777ms) = %v, below the hint floor", attempt, d)
		}
		if d := c.backoff(attempt, 0); d > 100*time.Millisecond {
			t.Fatalf("backoff(%d, 0) = %v, above the cap", attempt, d)
		}
	}
}

func TestSubmitAndWaitAgainstRealServer(t *testing.T) {
	ts := newRealServer(t, nil)
	c := New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind:       "run",
		SourceSpec: SourceSpec{Name: "loop", Source: loopSrc, Inputs: [][]int64{{1000}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobSucceeded {
		t.Fatalf("state = %s (err %q), want succeeded", st.State, st.Error)
	}
	if len(st.Result) == 0 {
		t.Fatal("terminal status has no result payload")
	}
	var res RunResponse
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 1 || len(res.Runs) != 1 || res.Runs[0].Output[0] != 499500 {
		t.Fatalf("result = %+v, want one run with output 499500", res)
	}
}

func TestStreamEventsOrderedAndTerminates(t *testing.T) {
	ts := newRealServer(t, nil)
	c := New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.SubmitJob(ctx, JobRequest{
		Kind:       "run",
		SourceSpec: SourceSpec{Name: "loop", Source: loopSrc, Inputs: [][]int64{{5000}}},
	})
	if err != nil {
		t.Fatal(err)
	}

	es := c.StreamEvents(st.ID, 0)
	defer es.Close()
	want := 0
	sawTerminal := false
	for {
		ev, err := es.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("event seq = %d, want %d (gap or duplicate)", ev.Seq, want)
		}
		want++
		if ev.Terminal() {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal event")
	}
	if want == 0 {
		t.Fatal("stream delivered no events")
	}
	// After EOF the stream stays EOF.
	if _, err := es.Next(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("post-terminal Next = %v, want io.EOF", err)
	}
}

func TestStreamEventsResumeFromSeq(t *testing.T) {
	ts := newRealServer(t, nil)
	c := New(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.SubmitAndWait(ctx, JobRequest{
		Kind:       "run",
		SourceSpec: SourceSpec{Name: "loop", Source: loopSrc, Inputs: [][]int64{{1000}}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Resume from seq 1: event 0 must not be replayed to us.
	es := c.StreamEvents(st.ID, 1)
	defer es.Close()
	first, err := es.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 {
		t.Fatalf("resumed stream first seq = %d, want 1", first.Seq)
	}
}

func TestWaitJobPollFallback(t *testing.T) {
	// A server whose events endpoint always 404s (no SSE support), to
	// force WaitJob onto the polling path.
	var polls int32
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"job_not_found","message":"nope"}}`)
			return
		}
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		if n < 3 {
			fmt.Fprint(w, `{"id":"j1","state":"running"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j1","state":"succeeded","result":{"ok":true}}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(2, time.Millisecond, time.Millisecond))
	var slept []time.Duration
	instantSleep(c, &slept)

	st, err := c.WaitJob(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobSucceeded {
		t.Fatalf("state = %s, want succeeded", st.State)
	}
	if polls < 3 {
		t.Fatalf("polls = %d, want >= 3", polls)
	}
}
