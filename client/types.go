package client

import (
	"encoding/json"
	"fmt"
	"time"
)

// The wire types mirror the server's v1 JSON surface. They are defined
// here (rather than shared with internal/server) so that importing the
// SDK never leaks an internal package into a consumer's API.

// SourceSpec names the program and input suite a request operates on:
// either inline mini-C source (with optional explicit input streams) or
// an embedded workload (with optional input scales).
type SourceSpec struct {
	// Name labels inline source in diagnostics.
	Name string `json:"name,omitempty"`
	// Source is inline mini-C source text. Exactly one of Source /
	// Workload must be set.
	Source string `json:"source,omitempty"`
	// Workload selects an embedded workload by name.
	Workload string `json:"workload,omitempty"`
	// Inputs are explicit input streams, one batch job per stream
	// (inline source only).
	Inputs [][]int64 `json:"inputs,omitempty"`
	// Scales are workload input scales, one batch job per scale.
	Scales []int `json:"scales,omitempty"`
	// Optimize compiles with the optimization passes.
	Optimize bool `json:"optimize,omitempty"`
	// MemWords overrides the VM memory size (inline source only).
	MemWords int64 `json:"mem_words,omitempty"`
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Name     string `json:"name,omitempty"`
	Source   string `json:"source,omitempty"`
	Workload string `json:"workload,omitempty"`
	Optimize bool   `json:"optimize,omitempty"`
}

// CompileResponse reports the compiled program's shape.
type CompileResponse struct {
	Name         string `json:"name"`
	Functions    int    `json:"functions"`
	Instructions int    `json:"instructions"`
}

// ProfileRequest is the body of POST /v1/profile and /v1/advise.
type ProfileRequest struct {
	SourceSpec
	// TimeoutMS bounds the work's wall-clock time.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Top truncates the response to the N hottest constructs (0 = all).
	Top int `json:"top,omitempty"`
}

// RunSummary is one batch job's execution outcome.
type RunSummary struct {
	Job       int     `json:"job"`
	Steps     int64   `json:"steps"`
	Ret       int64   `json:"ret"`
	Output    []int64 `json:"output,omitempty"`
	OutputLen int     `json:"output_len"`
}

// ProfileResponse carries the union profile over the input suite. The
// profile payload is left raw: decode it into your own structure, or
// feed it to tooling as-is.
type ProfileResponse struct {
	Name    string          `json:"name"`
	Jobs    int             `json:"jobs"`
	Profile json.RawMessage `json:"profile"`
	Runs    []RunSummary    `json:"runs"`
}

// AdviceItem is one transformation suggestion.
type AdviceItem struct {
	Action string `json:"action"`
	Text   string `json:"text"`
}

// AdviceReport is the advisor's judgment of one construct.
type AdviceReport struct {
	Label          int          `json:"label"`
	Name           string       `json:"name"`
	Kind           string       `json:"kind"`
	Line           int          `json:"line"`
	Func           string       `json:"func"`
	Parallelizable bool         `json:"parallelizable"`
	Score          float64      `json:"score"`
	Advice         []AdviceItem `json:"advice"`
}

// AdviseResponse is the ranked guidance for the profiled suite.
type AdviseResponse struct {
	Name    string         `json:"name"`
	Jobs    int            `json:"jobs"`
	Reports []AdviceReport `json:"reports"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	SourceSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Parallel  bool  `json:"parallel,omitempty"`
}

// RunResponse carries the per-job execution outcomes.
type RunResponse struct {
	Name string       `json:"name"`
	Jobs int          `json:"jobs"`
	Runs []RunSummary `json:"runs"`
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Kind selects the work: "profile", "advise", or "run".
	Kind string `json:"kind"`
	SourceSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Top       int   `json:"top,omitempty"`
	Parallel  bool  `json:"parallel,omitempty"`
}

// JobState is the lifecycle of an async job.
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobSucceeded   JobState = "succeeded"
	JobFailed      JobState = "failed"
	JobInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final.
func (st JobState) Terminal() bool {
	return st == JobSucceeded || st == JobFailed || st == JobInterrupted
}

// JobProgress is one batch job's progress snapshot.
type JobProgress struct {
	Job   int   `json:"job"`
	Steps int64 `json:"steps"`
	Done  bool  `json:"done"`
}

// JobStatus is the wire form of an async job.
type JobStatus struct {
	ID         string        `json:"id"`
	Kind       string        `json:"kind"`
	State      JobState      `json:"state"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Error      string        `json:"error,omitempty"`
	Progress   []JobProgress `json:"progress,omitempty"`
	TotalSteps int64         `json:"total_steps"`
	// Result is the job's result payload (kind-dependent shape), set on
	// succeeded jobs fetched via Job / SubmitAndWait.
	Result json.RawMessage `json:"result,omitempty"`
	// IdempotentReplay marks a submission that was answered with an
	// existing job via its Idempotency-Key.
	IdempotentReplay bool `json:"idempotent_replay,omitempty"`
	// TraceID is the W3C trace ID the job's span timeline records under
	// (the submitting request's trace, when it carried one).
	TraceID string `json:"trace_id,omitempty"`
	// Spans counts timeline entries recorded so far; fetch them with
	// JobTrace.
	Spans int `json:"spans,omitempty"`
}

// SpanRecord is one finished span in a job's trace timeline.
type SpanRecord struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_span_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// JobTrace is the body of GET /v1/jobs/{id}/trace: the job's persisted
// span timeline (admission, queue wait, compile, per-scale runs,
// journal appends, SSE deliveries), which survives server restarts
// alongside the event log.
type JobTrace struct {
	ID      string       `json:"id"`
	State   JobState     `json:"state"`
	TraceID string       `json:"trace_id,omitempty"`
	Spans   []SpanRecord `json:"spans"`
	// DroppedSpans counts spans discarded past the server's per-job cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

// JobList is the paginated body of GET /v1/jobs.
type JobList struct {
	Jobs          []JobStatus `json:"jobs"`
	NextPageToken string      `json:"next_page_token,omitempty"`
}

// Event is one entry in a job's ordered event log. Seq increases by one
// per event within a job; the SSE stream's id: field carries it, which
// is what makes resumption exact.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "progress"
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Error carries the failure message on terminal events.
	Error string `json:"error,omitempty"`
	// Job, Steps, and TotalSteps are set on "progress" events.
	Job        int   `json:"job,omitempty"`
	Steps      int64 `json:"steps,omitempty"`
	TotalSteps int64 `json:"total_steps,omitempty"`
}

// Terminal reports whether the event ends its job's stream.
func (ev Event) Terminal() bool {
	return ev.Type == "state" && ev.State.Terminal()
}

// APIError is a non-2xx response decoded from the server's uniform
// error envelope {"error": {"code", "message", "retry_after_ms"?}}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("rate_limited",
	// "quota_exceeded", "queue_saturated", ...).
	Code string
	// Message is the human-readable explanation.
	Message string
	// RetryAfter is the server's backoff hint (from the Retry-After
	// header or retry_after_ms in the envelope), 0 if absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("alchemist api: %d %s: %s", e.Status, e.Code, e.Message)
}

// Temporary reports whether the request may succeed if retried: 429,
// 503, and every other 5xx.
func (e *APIError) Temporary() bool {
	return e.Status == 429 || e.Status >= 500
}
