package core

import (
	"alchemist/internal/indexing"
	"alchemist/internal/shadow"
)

// Scratch holds the per-run profiling buffers that dominate allocation
// churn — the shadow memory and the construct pool — so back-to-back
// profiling runs (the Engine batch path) can recycle them instead of
// reallocating tens of megabytes per job. A Scratch may be used by at
// most one profiler at a time; pool them (sync.Pool) for concurrency.
// The zero value is ready: buffers are created on first use and replaced
// whenever a run's geometry (memory extent, reader slots) is
// incompatible with the retained ones.
type Scratch struct {
	shadow *shadow.Memory
	pool   *indexing.Pool
}

// acquire returns reset-or-fresh buffers for a run over memWords of flat
// memory with the given reader-slot bound, retaining them in the Scratch
// for the next acquire. prealloc only applies when a fresh construct
// pool must be built; a retained pool keeps its node population (reuse
// is accounted like a warm preallocation by Pool.Reset).
func (s *Scratch) acquire(memWords int64, readerSlots, prealloc int) (*indexing.Pool, *shadow.Memory) {
	wantSlots := readerSlots
	if wantSlots <= 0 {
		wantSlots = shadow.DefaultReaderSlots
	}
	if s.shadow != nil && s.shadow.Words() >= memWords && s.shadow.Slots() == wantSlots {
		s.shadow.Reset()
	} else {
		s.shadow = shadow.New(memWords, readerSlots)
	}
	if s.pool != nil {
		s.pool.Reset()
	} else {
		s.pool = indexing.NewPool(prealloc)
	}
	return s.pool, s.shadow
}
