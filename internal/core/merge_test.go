package core_test

import (
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/vm"
)

// mergeSrc exhibits an input-dependent dependence: the conflict on
// shared only occurs when the input asks for it, so single-input
// profiles are incomplete and merging recovers the union.
const mergeSrc = `
int shared;
int sink;
void work(int mode) {
	int s = 0;
	for (int i = 0; i < 200; i++) { s += i; }
	if (mode == 1) {
		shared = s;
	}
	sink = s;
}
int main() {
	for (int i = 0; i < 3; i++) {
		work(in(0));
		sink = shared + 1;
	}
	return 0;
}
`

func TestMergeUnionsEdges(t *testing.T) {
	prog, err := compile.Build("m.mc", mergeSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(input []int64) *core.Profile {
		p, _, err := core.ProfileProgram(prog, vm.Config{Input: input}, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p0 := run([]int64{0}) // no write to shared
	p1 := run([]int64{1}) // conflict exercised

	hasSharedRAW := func(p *core.Profile) bool {
		w := p.ConstructForFunc("work")
		if w == nil {
			return false
		}
		return len(w.ViolatingEdges(core.RAW)) > 0
	}
	if hasSharedRAW(p0) {
		t.Fatal("mode-0 input should not exercise the conflict")
	}
	if !hasSharedRAW(p1) {
		t.Fatal("mode-1 input should exercise the conflict")
	}

	m, err := core.Merge(p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	if !hasSharedRAW(m) {
		t.Error("merged profile lost the mode-1 conflict")
	}
	if m.TotalSteps != p0.TotalSteps+p1.TotalSteps {
		t.Error("TotalSteps not summed")
	}
	w0 := p0.ConstructForFunc("work")
	w1 := p1.ConstructForFunc("work")
	wm := m.ConstructForFunc("work")
	if wm.Instances != w0.Instances+w1.Instances {
		t.Errorf("instances %d != %d + %d", wm.Instances, w0.Instances, w1.Instances)
	}
	if wm.Ttotal != w0.Ttotal+w1.Ttotal {
		t.Error("Ttotal not summed")
	}
}

func TestMergeKeepsMinDistance(t *testing.T) {
	src := `
int v;
int s;
void produce(int d) {
	v = 1;
	int i = 0;
	while (i < d) { i++; }
}
int main() {
	produce(in(0));
	s = v;
	return 0;
}`
	prog, err := compile.Build("d.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(d int64) *core.Profile {
		p, _, err := core.ProfileProgram(prog, vm.Config{Input: []int64{d}}, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	far := run(800) // long distance between v=1 and the read
	near := run(3)  // short distance

	dist := func(p *core.Profile) int64 {
		c := p.ConstructForFunc("produce")
		for _, e := range c.Edges {
			if e.Type == core.RAW {
				return e.MinDist
			}
		}
		return -1
	}
	if dist(far) <= dist(near) {
		t.Fatalf("test setup broken: far %d, near %d", dist(far), dist(near))
	}
	m, err := core.Merge(far, near)
	if err != nil {
		t.Fatal(err)
	}
	if got := dist(m); got != dist(near) {
		t.Errorf("merged MinDist = %d, want the smaller %d", got, dist(near))
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := core.Merge(); err == nil {
		t.Error("empty merge should fail")
	}
	progA, err := compile.Build("a.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := compile.Build("b.mc", `int main() { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := core.ProfileProgram(progA, vm.Config{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pb, _, err := core.ProfileProgram(progB, vm.Config{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Merge(pa, pb); err == nil {
		t.Error("cross-program merge should fail")
	}
	// Single profile merge is the identity.
	m, err := core.Merge(pa)
	if err != nil || m != pa {
		t.Error("single merge should return the input")
	}
}
