package core

import (
	"fmt"
	"sort"
)

// Merge combines profiles collected from several runs of the same
// program on different inputs. The paper notes that "the completeness of
// the dependencies identified by Alchemist is a function of the test
// inputs used to run the profiler" (§II); merging lets a user profile a
// program over an input suite and judge constructs against the union of
// observed dependences:
//
//   - Ttotal, Instances, and edge counts are summed;
//   - per static edge the minimum distance across runs is kept (the
//     minimum still bounds the exploitable concurrency);
//   - construct counts and nesting counters are summed.
//
// All profiles must come from the same compiled program (labels are
// global PCs).
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("core: nothing to merge")
	}
	base := profiles[0]
	for _, p := range profiles[1:] {
		if p.Program != base.Program {
			return nil, fmt.Errorf("core: profiles come from different programs")
		}
	}
	if len(profiles) == 1 {
		return base, nil
	}

	merged := &Profile{
		Program:    base.Program,
		NestDirect: map[uint64]int64{},
		byLabel:    map[int]*ConstructStat{},
	}
	type edgeAgg struct {
		minDist int64
		count   int64
	}
	perLabel := map[int]*ConstructStat{}
	perLabelEdges := map[int]map[EdgeKey]*edgeAgg{}

	for _, p := range profiles {
		merged.TotalSteps += p.TotalSteps
		merged.DynamicConstructs += p.DynamicConstructs
		merged.Pool.Allocated += p.Pool.Allocated
		merged.Pool.Reused += p.Pool.Reused
		merged.Pool.Rotations += p.Pool.Rotations
		merged.Shadow.Loads += p.Shadow.Loads
		merged.Shadow.Stores += p.Shadow.Stores
		merged.Shadow.EvictedReaders += p.Shadow.EvictedReaders
		merged.Shadow.PagesAllocated += p.Shadow.PagesAllocated
		for k, v := range p.NestDirect {
			merged.NestDirect[k] += v
		}
		for _, c := range p.Constructs {
			mc := perLabel[c.Label]
			if mc == nil {
				mc = &ConstructStat{
					Label:    c.Label,
					Kind:     c.Kind,
					Pos:      c.Pos,
					FuncName: c.FuncName,
				}
				perLabel[c.Label] = mc
				perLabelEdges[c.Label] = map[EdgeKey]*edgeAgg{}
			}
			if mc.Instances == 0 || (c.Instances > 0 && c.MinDur < mc.MinDur) {
				mc.MinDur = c.MinDur
			}
			if c.MaxDur > mc.MaxDur {
				mc.MaxDur = c.MaxDur
			}
			mc.Ttotal += c.Ttotal
			mc.Instances += c.Instances
			edges := perLabelEdges[c.Label]
			for _, e := range c.Edges {
				k := EdgeKey{HeadPC: int32(e.HeadPC), TailPC: int32(e.TailPC), Type: e.Type}
				agg := edges[k]
				if agg == nil {
					edges[k] = &edgeAgg{minDist: e.MinDist, count: e.Count}
				} else {
					agg.count += e.Count
					if e.MinDist < agg.minDist {
						agg.minDist = e.MinDist
					}
				}
			}
		}
	}

	for label, mc := range perLabel {
		for k, agg := range perLabelEdges[label] {
			mc.Edges = append(mc.Edges, Edge{
				HeadPC:  int(k.HeadPC),
				TailPC:  int(k.TailPC),
				Type:    k.Type,
				MinDist: agg.minDist,
				Count:   agg.count,
				HeadPos: base.Program.PosOf(int(k.HeadPC)),
				TailPos: base.Program.PosOf(int(k.TailPC)),
			})
		}
		sort.Slice(mc.Edges, func(i, j int) bool {
			if mc.Edges[i].MinDist != mc.Edges[j].MinDist {
				return mc.Edges[i].MinDist < mc.Edges[j].MinDist
			}
			if mc.Edges[i].HeadPC != mc.Edges[j].HeadPC {
				return mc.Edges[i].HeadPC < mc.Edges[j].HeadPC
			}
			return mc.Edges[i].TailPC < mc.Edges[j].TailPC
		})
		merged.Constructs = append(merged.Constructs, mc)
		merged.byLabel[label] = mc
	}
	merged.StaticConstructs = int64(len(merged.Constructs))
	sort.Slice(merged.Constructs, func(i, j int) bool {
		if merged.Constructs[i].Ttotal != merged.Constructs[j].Ttotal {
			return merged.Constructs[i].Ttotal > merged.Constructs[j].Ttotal
		}
		return merged.Constructs[i].Label < merged.Constructs[j].Label
	})
	return merged, nil
}
