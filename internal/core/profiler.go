package core

import (
	"alchemist/internal/indexing"
	"alchemist/internal/ir"
	"alchemist/internal/shadow"
	"alchemist/internal/vm"
)

// Options tune a profiling run.
type Options struct {
	// TrackWAR and TrackWAW enable anti- and output-dependence profiling
	// (RAW is always on).
	TrackWAR bool
	TrackWAW bool
	// ReaderSlots bounds distinct reader PCs tracked per memory word
	// (default shadow.DefaultReaderSlots).
	ReaderSlots int
	// PoolPrealloc warms the construct pool with this many nodes
	// (default 65536; the paper pre-allocates one million). Because the
	// pool is FIFO, its size also sets how many construct completions
	// pass before a node can be recycled; undersized pools can drop
	// cross-boundary edges of *enclosing* constructs whose windows are
	// still live when an inner head node gets recycled — a subtlety the
	// paper's Theorem 1 (argued per-instance) masks with its 1M-entry
	// pool. Violating edges of the retired construct itself are never
	// lost.
	PoolPrealloc int
	// PoolProbe bounds head probing per acquisition (default 32).
	PoolProbe int
	// DisablePoolReuse turns lazy retirement off: every construct
	// instance gets a fresh node, growing the index tree without bound
	// (the baseline the Table I pool exists to avoid; ablation only).
	DisablePoolReuse bool
	// TrackNesting enables the direct-nesting counters needed by the
	// Fig. 6(b) removal analysis (on by default via DefaultOptions).
	TrackNesting bool
	// MemWords must match the VM's flat memory size; the Profiler
	// constructor fills it in.
	MemWords int64
	// Scratch, when non-nil, recycles the shadow memory and construct
	// pool retained in it across runs (Engine batch path). The Scratch
	// must not be shared by concurrent profilers.
	Scratch *Scratch
}

// DefaultOptions enables the full profile.
func DefaultOptions() Options {
	return Options{TrackWAR: true, TrackWAW: true, TrackNesting: true}
}

// Profiler implements vm.Tracer. Create one with NewProfiler, pass it as
// Config.Tracer to a sequential VM, run the program, then call Finish.
type Profiler struct {
	prog *ir.Program
	opts Options

	time int64

	// IDS: the execution index stack. frames[i] is the stack index of the
	// i-th active procedure construct.
	stack  []*indexing.Construct
	frames []int

	pool   *indexing.Pool
	shadow *shadow.Memory

	profiles map[int]*constructProfile
	nest     map[uint64]int64
	dynamic  int64
}

var _ vm.Tracer = (*Profiler)(nil)

// NewProfiler builds a profiler for prog whose VM uses memWords of flat
// memory.
func NewProfiler(prog *ir.Program, memWords int64, opts Options) *Profiler {
	if memWords == 0 {
		memWords = 1 << 22
	}
	prealloc := opts.PoolPrealloc
	if prealloc == 0 {
		prealloc = 1 << 16
	}
	var pool *indexing.Pool
	var mem *shadow.Memory
	if opts.Scratch != nil {
		pool, mem = opts.Scratch.acquire(memWords, opts.ReaderSlots, prealloc)
	} else {
		pool = indexing.NewPool(prealloc)
		mem = shadow.New(memWords, opts.ReaderSlots)
	}
	pool.MaxProbe = 32
	if opts.PoolProbe > 0 {
		pool.MaxProbe = opts.PoolProbe
	}
	pool.DisableReuse = opts.DisablePoolReuse
	return &Profiler{
		prog:     prog,
		opts:     opts,
		pool:     pool,
		shadow:   mem,
		profiles: make(map[int]*constructProfile),
		nest:     make(map[uint64]int64),
	}
}

// Time returns the current timestamp (executed instructions).
func (p *Profiler) Time() int64 { return p.time }

// Depth returns the current index-stack depth (active constructs).
func (p *Profiler) Depth() int { return len(p.stack) }

// Finish snapshots the profile. The VM must have completed.
func (p *Profiler) Finish() *Profile {
	// Close anything still open (main's constructs are popped by
	// ExitFunc, so this only matters for aborted runs).
	for len(p.stack) > 0 {
		p.popTop()
	}
	return finalize(p.prog, p.time, p.profiles, p.nest, p.pool.Stats(), p.shadow.Stats(), p.dynamic)
}

func (p *Profiler) profileFor(label int, kind indexing.Kind) *constructProfile {
	cp := p.profiles[label]
	if cp == nil {
		cp = &constructProfile{label: label, kind: kind, edges: make(map[EdgeKey]*EdgeStat)}
		p.profiles[label] = cp
	}
	return cp
}

// top returns the innermost active construct (nil only before main's
// EnterFunc).
func (p *Profiler) top() *indexing.Construct {
	if len(p.stack) == 0 {
		return nil
	}
	return p.stack[len(p.stack)-1]
}

// push enters a new construct instance (Table I IDS.push).
func (p *Profiler) push(label int, kind indexing.Kind, popPC int) {
	c := p.pool.Acquire(p.time, label, kind, popPC, p.top())
	p.stack = append(p.stack, c)
	p.dynamic++
	cp := p.profileFor(label, kind)
	cp.nesting++
	if p.opts.TrackNesting && c.Parent != nil {
		p.nest[NestKey(label, c.Parent.Label)]++
	}
}

// popTop closes the innermost construct (Table I IDS.pop): record Texit,
// aggregate the profile when the recursion counter drains, and hand the
// node to the pool for lazy retirement.
func (p *Profiler) popTop() {
	n := len(p.stack) - 1
	c := p.stack[n]
	p.stack = p.stack[:n]
	c.Texit = p.time
	cp := p.profiles[c.Label]
	cp.nesting--
	if cp.nesting == 0 {
		dur := c.Texit - c.Tenter
		cp.ttotal += dur
		cp.inst++
		if cp.inst == 1 || dur < cp.minDur {
			cp.minDur = dur
		}
		if dur > cp.maxDur {
			cp.maxDur = dur
		}
	}
	p.pool.Release(c)
}

// popDownThrough closes every construct above stack index idx and the one
// at idx itself. Children must close before parents, so an early-closing
// parent (a loop iteration ended by rule 4, or a returning procedure)
// drags its still-open children with it.
func (p *Profiler) popDownThrough(idx int) {
	for len(p.stack) > idx {
		p.popTop()
	}
}

// ---------- vm.Tracer ----------

// Step advances time and applies rule 5: close every construct whose
// immediate post-dominator is this instruction.
func (p *Profiler) Step(gpc int) {
	p.time++
	for n := len(p.stack); n > 0; n = len(p.stack) {
		if p.stack[n-1].PopPC != gpc {
			return
		}
		p.popTop()
	}
}

// FuncLabel returns the construct label used for procedure constructs of
// the function based at gpc `base`. Procedures get a negative label space
// so a function whose first instruction is a predicate branch (label ==
// base) cannot collide with that branch's construct.
func FuncLabel(base int) int { return -base - 1 }

// IsFuncLabel reports whether label denotes a procedure construct, and
// returns the function's base PC.
func IsFuncLabel(label int) (base int, ok bool) {
	if label < 0 {
		return -label - 1, true
	}
	return 0, false
}

// EnterFunc applies rule 1: open the procedure construct and remember the
// frame boundary.
func (p *Profiler) EnterFunc(f *ir.Func) {
	p.frames = append(p.frames, len(p.stack))
	p.push(FuncLabel(f.Base), indexing.KindFunc, ir.NoPopPC)
}

// ExitFunc applies rule 2, closing the procedure construct together with
// any constructs left open by early returns.
func (p *Profiler) ExitFunc(f *ir.Func) {
	if len(p.frames) == 0 {
		return
	}
	marker := p.frames[len(p.frames)-1]
	p.frames = p.frames[:len(p.frames)-1]
	p.popDownThrough(marker)
}

// Branch applies rules 3 and 4.
func (p *Profiler) Branch(in *ir.Instr, gpc int, taken bool) {
	if !in.IsLoopPred {
		// Rule 3: a non-loop predicate opens a construct regardless of
		// the direction taken; it closes at its immediate post-dominator.
		p.push(gpc, indexing.KindCond, in.PopPC)
		return
	}
	// Rule 4, restricted to taken branches: a taken loop predicate closes
	// the previous iteration of the same loop (if one is open in this
	// frame) and opens the next. The untaken direction leaves the last
	// iteration to be closed by rule 5 at the loop's post-dominator.
	if !taken {
		return
	}
	frame := 0
	if len(p.frames) > 0 {
		frame = p.frames[len(p.frames)-1]
	}
	for i := len(p.stack) - 1; i > frame; i-- {
		if p.stack[i].Label == gpc {
			p.popDownThrough(i)
			break
		}
	}
	p.push(gpc, indexing.KindLoop, in.PopPC)
}

// Load records a read; a prior write to the same address is the head of a
// RAW dependence ending here.
func (p *Profiler) Load(addr int64, gpc int) {
	node := p.top()
	w, ok := p.shadow.Load(addr, int32(gpc), p.time, node)
	if ok {
		p.profileDep(RAW, w.PC, w.Node, w.Time, int32(gpc))
	}
}

// Store records a write; the previous write is the head of a WAW
// dependence and each read since it the head of a WAR dependence.
func (p *Profiler) Store(addr int64, gpc int) {
	node := p.top()
	if !p.opts.TrackWAR && !p.opts.TrackWAW {
		p.shadow.Store(addr, int32(gpc), p.time, node)
		return
	}
	prev, hadPrev, readers := p.shadow.Store(addr, int32(gpc), p.time, node)
	if p.opts.TrackWAW && hadPrev {
		p.profileDep(WAW, prev.PC, prev.Node, prev.Time, int32(gpc))
	}
	if p.opts.TrackWAR {
		for i := range readers {
			r := &readers[i]
			p.profileDep(WAR, r.PC, r.Node, r.Time, int32(gpc))
		}
	}
}

// profileDep is the Table II bottom-up walk: starting from the construct
// instance that contained the dependence head, update the profile of
// every enclosing construct that has completed (the dependence crosses
// its boundary into its continuation) and stop at the first still-active
// construct (for it, and all its ancestors, the dependence is internal).
func (p *Profiler) profileDep(t DepType, headPC int32, headNode *indexing.Construct, headTime int64, tailPC int32) {
	dist := p.time - headTime
	key := EdgeKey{HeadPC: headPC, TailPC: tailPC, Type: t}
	for c := headNode; c != nil && c.InWindow(headTime); c = c.Parent {
		cp := p.profiles[c.Label]
		if cp == nil {
			// The node was recycled for a label we have not seen close
			// yet; InWindow should have rejected it, but stay safe.
			return
		}
		st := cp.edges[key]
		if st == nil {
			cp.edges[key] = &EdgeStat{MinDist: dist, Count: 1}
		} else {
			st.Count++
			if dist < st.MinDist {
				st.MinDist = dist
			}
		}
	}
}
