package core_test

import (
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/vm"
)

// TestReaderSlotsBoundWARRecall: with one reader slot, only the latest
// reading PC survives until the next write, so some WAR edges vanish.
// The reads happen inside a completed helper so the WAR edges are
// cross-boundary (reads and the write inside one loop iteration would be
// intra-construct and rightly invisible).
func TestReaderSlotsBoundWARRecall(t *testing.T) {
	src := `
int v;
int s1;
int s2;
int s3;
void readv() {
	s1 = v + 1;
	s2 = v + 2;
	s3 = v + 3;
}
int main() {
	for (int i = 0; i < 10; i++) {
		readv();
		v = i;
	}
	return 0;
}`
	warEdges := func(slots int) int {
		opts := core.DefaultOptions()
		opts.ReaderSlots = slots
		p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := p.ConstructForFunc("readv")
		if r == nil {
			t.Fatal("readv missing")
		}
		return r.CountEdges(core.WAR)
	}
	one := warEdges(1)
	four := warEdges(4)
	if one != 1 {
		t.Errorf("k=1 WAR edges = %d, want exactly the latest reader", one)
	}
	// With 4 slots all three reading PCs are retained: the write at v=i
	// sees three WAR heads.
	if four != 3 {
		t.Errorf("k=4 WAR edges = %d, want 3", four)
	}
}

// TestNestTrackingDisabled: nesting counters can be turned off.
func TestNestTrackingDisabled(t *testing.T) {
	src := `
int g;
void f() { g = g + 1; }
int main() {
	for (int i = 0; i < 5; i++) { f(); }
	return 0;
}`
	opts := core.Options{TrackWAR: true, TrackWAW: true, TrackNesting: false}
	p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NestDirect) != 0 {
		t.Errorf("nest counters recorded despite TrackNesting=false: %d", len(p.NestDirect))
	}
	// The profile itself is unaffected.
	if f := p.ConstructForFunc("f"); f == nil || f.Instances != 5 {
		t.Errorf("profile degraded: %+v", p.ConstructForFunc("f"))
	}
}

// TestPoolProbeOption: probe depth 1 still produces a correct profile
// (it only affects reuse opportunities).
func TestPoolProbeOption(t *testing.T) {
	src := `
int g;
int main() {
	for (int i = 0; i < 500; i++) { g = g + i; }
	return g;
}`
	opts := core.DefaultOptions()
	opts.PoolProbe = 1
	opts.PoolPrealloc = 8
	p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == 1 {
			loop = c
		}
	}
	if loop == nil || loop.Instances != 500 {
		t.Fatalf("loop profile wrong: %+v", loop)
	}
}

// TestProfilesIdenticalAcrossPoolSizes checks Theorem 1's actual
// guarantee: pool size never changes durations, instance counts, or the
// *violating* edge set. (Non-violating edges whose heads retired before
// the tail executed may be dropped with a small pool — they satisfy
// Tdep > Tdur by construction and cannot change any judgment.)
func TestProfilesIdenticalAcrossPoolSizes(t *testing.T) {
	src := `
int v;
int s;
void produce() { v = v + 1; }
int main() {
	for (int i = 0; i < 200; i++) {
		produce();
		s = v;
	}
	return 0;
}`
	prog, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(prealloc int) *core.Profile {
		opts := core.DefaultOptions()
		opts.PoolPrealloc = prealloc
		p, _, err := core.ProfileProgram(prog, vm.Config{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	small := run(1 << 16)
	big := run(1 << 20)
	if len(small.Constructs) != len(big.Constructs) {
		t.Fatalf("construct counts differ: %d vs %d", len(small.Constructs), len(big.Constructs))
	}
	for i := range small.Constructs {
		a, b := small.Constructs[i], big.Constructs[i]
		if a.Label != b.Label || a.Ttotal != b.Ttotal || a.Instances != b.Instances {
			t.Fatalf("construct %d differs: %+v vs %+v", i, a, b)
		}
		for _, ty := range []core.DepType{core.RAW, core.WAR, core.WAW} {
			va, vb := a.ViolatingEdges(ty), b.ViolatingEdges(ty)
			if len(va) != len(vb) {
				t.Fatalf("violating %v edges differ on %d: %d vs %d", ty, a.Label, len(va), len(vb))
			}
			for j := range va {
				if va[j] != vb[j] {
					t.Fatalf("violating edge %d differs: %+v vs %+v", j, va[j], vb[j])
				}
			}
		}
		// The large pool may retain additional non-violating edges.
		if len(b.Edges) < len(a.Edges) {
			t.Fatalf("bigger pool lost edges on %d: %d vs %d", a.Label, len(b.Edges), len(a.Edges))
		}
	}
}

// TestSmallPoolDropsOnlyEnclosingEdges documents the Theorem 1 subtlety
// this reproduction uncovered: with an undersized pool, an inner head
// node can be recycled while an enclosing construct's window is still
// live, so the Table II walk aborts early and the enclosing construct
// loses that edge. The retired construct itself never loses a violating
// edge, and a paper-sized pool never exhibits the effect. The small
// pool's per-construct edges are always a subset of the large pool's.
func TestSmallPoolDropsOnlyEnclosingEdges(t *testing.T) {
	src := `
int v;
int s;
void produce() { v = v + 1; }
int main() {
	for (int i = 0; i < 200; i++) {
		produce();
		s = v;
	}
	return 0;
}`
	run := func(prealloc int) *core.Profile {
		opts := core.DefaultOptions()
		opts.PoolPrealloc = prealloc
		p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	small := run(4)
	big := run(1 << 16)

	smallEdges, bigEdges := 0, 0
	for _, bc := range big.Constructs {
		sc := small.Construct(bc.Label)
		if sc == nil {
			t.Fatalf("construct %d missing from small-pool profile", bc.Label)
		}
		bigEdges += len(bc.Edges)
		smallEdges += len(sc.Edges)
		// Subset check: every small-pool edge appears in the big-pool
		// profile (with an equal or smaller min distance there).
		index := map[core.EdgeKey]core.Edge{}
		for _, e := range bc.Edges {
			index[core.EdgeKey{HeadPC: int32(e.HeadPC), TailPC: int32(e.TailPC), Type: e.Type}] = e
		}
		for _, e := range sc.Edges {
			be, ok := index[core.EdgeKey{HeadPC: int32(e.HeadPC), TailPC: int32(e.TailPC), Type: e.Type}]
			if !ok {
				t.Fatalf("small-pool edge %+v absent from big-pool profile", e)
			}
			if be.MinDist > e.MinDist {
				t.Fatalf("big pool has larger min distance: %+v vs %+v", be, e)
			}
		}
		// Per-construct self judgment is preserved: the produce construct
		// keeps its own violating edges even at pool size 4.
		if bc.FuncName == "produce" && bc.Kind == 0 {
			if len(sc.ViolatingEdges(core.RAW)) != len(bc.ViolatingEdges(core.RAW)) {
				t.Errorf("produce lost its own violating RAW edges with a small pool")
			}
		}
	}
	if smallEdges > bigEdges {
		t.Errorf("small pool has more edges (%d) than big (%d)", smallEdges, bigEdges)
	}
}
