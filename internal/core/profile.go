// Package core implements the Alchemist dependence-distance profiler: it
// consumes VM instrumentation events, maintains the execution index tree
// online (paper Fig. 5 rules and Table I), detects RAW/WAR/WAW
// dependences through shadow memory, and attributes each dependence to
// every enclosing completed construct bottom-up (Table II).
package core

import (
	"fmt"
	"sort"

	"alchemist/internal/indexing"
	"alchemist/internal/ir"
	"alchemist/internal/shadow"
	"alchemist/internal/source"
)

// DepType classifies a dependence edge.
type DepType uint8

const (
	// RAW is a read-after-write (true) dependence.
	RAW DepType = iota
	// WAR is a write-after-read (anti) dependence.
	WAR
	// WAW is a write-after-write (output) dependence.
	WAW
)

func (d DepType) String() string {
	switch d {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	default:
		return "?"
	}
}

// EdgeKey identifies a static dependence edge within one construct's
// profile: head and tail instruction PCs plus the dependence type.
type EdgeKey struct {
	HeadPC int32
	TailPC int32
	Type   DepType
}

// EdgeStat aggregates the dynamic instances of a static edge. The paper
// keeps only the minimum distance, because the minimum bounds the
// exploitable concurrency; we additionally count occurrences.
type EdgeStat struct {
	MinDist int64
	Count   int64
}

// constructProfile is the online per-label profile (PROFILE[pc] in the
// paper).
type constructProfile struct {
	label   int
	kind    indexing.Kind
	ttotal  int64
	minDur  int64
	maxDur  int64
	inst    int64
	nesting int64 // recursion depth counter (§III.B recursion fix)
	edges   map[EdgeKey]*EdgeStat
}

// Edge is a finalized static dependence edge of one construct.
type Edge struct {
	HeadPC  int
	TailPC  int
	Type    DepType
	MinDist int64
	Count   int64
	HeadPos source.Pos
	TailPos source.Pos
}

// Violates reports whether this edge hinders running the construct as a
// future: the minimal observed distance does not exceed the construct's
// duration, so in the parallel schedule the tail could run before the
// head completes (paper §II).
func (e Edge) Violates(dur int64) bool { return e.MinDist <= dur }

// ConstructStat is the finalized profile of one static construct.
type ConstructStat struct {
	// Label is the global PC of the construct head.
	Label int
	// Kind says whether the construct is a procedure, loop, or
	// conditional.
	Kind indexing.Kind
	// Pos is the source location of the construct head.
	Pos source.Pos
	// FuncName is the enclosing (or, for KindFunc, the named) function.
	FuncName string
	// Ttotal is the total instruction count spent in the construct,
	// counting each recursive nest once (§III.B).
	Ttotal int64
	// MinDur and MaxDur bound the individual instance durations (an
	// extension over the paper's aggregate profile: skewed instance
	// durations flag constructs whose mean is unrepresentative).
	MinDur int64
	MaxDur int64
	// Instances is the number of completed outermost instances; for loops
	// this counts iterations, as in the paper's Fig. 2 profile.
	Instances int64
	// Edges are the static dependence edges from this construct to its
	// continuation, sorted by ascending minimal distance.
	Edges []Edge
}

// MeanDur returns the average instance duration, the Tdur against which
// dependence distances are compared.
func (c *ConstructStat) MeanDur() int64 {
	if c.Instances == 0 {
		return 0
	}
	return c.Ttotal / c.Instances
}

// ViolatingEdges returns this construct's edges of type t with
// MinDist <= MeanDur (the "violating static dependences" of Fig. 6).
func (c *ConstructStat) ViolatingEdges(t DepType) []Edge {
	dur := c.MeanDur()
	var out []Edge
	for _, e := range c.Edges {
		if e.Type == t && e.Violates(dur) {
			out = append(out, e)
		}
	}
	return out
}

// CountEdges returns the number of edges of type t.
func (c *ConstructStat) CountEdges(t DepType) int {
	n := 0
	for _, e := range c.Edges {
		if e.Type == t {
			n++
		}
	}
	return n
}

// Profile is the result of one profiled execution.
type Profile struct {
	// Program is the profiled program.
	Program *ir.Program
	// TotalSteps is the executed instruction count (the profile's time
	// unit).
	TotalSteps int64
	// Constructs holds one entry per static construct that completed at
	// least one instance, sorted by descending Ttotal.
	Constructs []*ConstructStat
	// StaticConstructs is the number of distinct construct labels
	// executed; DynamicConstructs the total instance count (Table III's
	// Static/Dynamic columns).
	StaticConstructs  int64
	DynamicConstructs int64
	// NestDirect[child<<32|parent] counts how many instances of construct
	// `child` were pushed directly under an instance of construct
	// `parent`; used by the Fig. 6(b) "remove constructs parallelized
	// along with C1" analysis.
	NestDirect map[uint64]int64
	// Pool reports construct-pool behaviour (Theorem 1 validation).
	Pool indexing.PoolStats
	// Shadow reports shadow-memory behaviour.
	Shadow shadow.Stats

	byLabel map[int]*ConstructStat
}

// Construct returns the stats for the construct headed at global PC
// label, or nil.
func (p *Profile) Construct(label int) *ConstructStat {
	return p.byLabel[label]
}

// ConstructAtLine returns the first construct (highest Ttotal) whose head
// is on the given 1-based source line, preferring kind k; nil if none.
func (p *Profile) ConstructAtLine(line int, k indexing.Kind) *ConstructStat {
	var fallback *ConstructStat
	for _, c := range p.Constructs {
		if c.Pos.Line != line {
			continue
		}
		if c.Kind == k {
			return c
		}
		if fallback == nil {
			fallback = c
		}
	}
	return fallback
}

// ConstructForFunc returns the procedure construct of the named function.
func (p *Profile) ConstructForFunc(name string) *ConstructStat {
	f := p.Program.FindFunc(name)
	if f == nil {
		return nil
	}
	return p.byLabel[FuncLabel(f.Base)]
}

// NestKey packs a (child, parent) construct label pair.
func NestKey(child, parent int) uint64 {
	return uint64(uint32(child))<<32 | uint64(uint32(parent))
}

// TotalViolating sums the violating static edges of type t across all
// constructs (the Fig. 6 normalization denominator).
func (p *Profile) TotalViolating(t DepType) int {
	n := 0
	for _, c := range p.Constructs {
		n += len(c.ViolatingEdges(t))
	}
	return n
}

// String renders a one-line summary.
func (p *Profile) String() string {
	return fmt.Sprintf("profile: %d steps, %d static / %d dynamic constructs",
		p.TotalSteps, p.StaticConstructs, p.DynamicConstructs)
}

// finalize converts the online profiles into the exported Profile.
func finalize(prog *ir.Program, totalSteps int64, profiles map[int]*constructProfile,
	nest map[uint64]int64, pool indexing.PoolStats, sh shadow.Stats, dynamic int64) *Profile {

	p := &Profile{
		Program:           prog,
		TotalSteps:        totalSteps,
		StaticConstructs:  int64(len(profiles)),
		DynamicConstructs: dynamic,
		NestDirect:        nest,
		Pool:              pool,
		Shadow:            sh,
		byLabel:           make(map[int]*ConstructStat, len(profiles)),
	}
	for label, cp := range profiles {
		cs := &ConstructStat{
			Label:     label,
			Kind:      cp.kind,
			Ttotal:    cp.ttotal,
			MinDur:    cp.minDur,
			MaxDur:    cp.maxDur,
			Instances: cp.inst,
		}
		if base, ok := IsFuncLabel(label); ok {
			if f := prog.FuncAt(base); f != nil {
				cs.FuncName = f.Name
				cs.Pos = f.Pos
			}
		} else {
			cs.Pos = prog.PosOf(label)
			if f := prog.FuncAt(label); f != nil {
				cs.FuncName = f.Name
			}
		}
		for k, st := range cp.edges {
			cs.Edges = append(cs.Edges, Edge{
				HeadPC:  int(k.HeadPC),
				TailPC:  int(k.TailPC),
				Type:    k.Type,
				MinDist: st.MinDist,
				Count:   st.Count,
				HeadPos: prog.PosOf(int(k.HeadPC)),
				TailPos: prog.PosOf(int(k.TailPC)),
			})
		}
		sort.Slice(cs.Edges, func(i, j int) bool {
			if cs.Edges[i].MinDist != cs.Edges[j].MinDist {
				return cs.Edges[i].MinDist < cs.Edges[j].MinDist
			}
			if cs.Edges[i].HeadPC != cs.Edges[j].HeadPC {
				return cs.Edges[i].HeadPC < cs.Edges[j].HeadPC
			}
			return cs.Edges[i].TailPC < cs.Edges[j].TailPC
		})
		p.Constructs = append(p.Constructs, cs)
		p.byLabel[label] = cs
	}
	sort.Slice(p.Constructs, func(i, j int) bool {
		if p.Constructs[i].Ttotal != p.Constructs[j].Ttotal {
			return p.Constructs[i].Ttotal > p.Constructs[j].Ttotal
		}
		return p.Constructs[i].Label < p.Constructs[j].Label
	})
	return p
}
