package core_test

import (
	"testing"

	"alchemist/internal/core"
	"alchemist/internal/indexing"
	"alchemist/internal/vm"
)

func profile(t *testing.T, src string, opts core.Options) *core.Profile {
	t.Helper()
	p, _, err := core.ProfileSource("test.mc", src, vm.Config{}, opts)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	return p
}

func profileDefault(t *testing.T, src string) *core.Profile {
	return profile(t, src, core.DefaultOptions())
}

func TestFunctionConstructCounts(t *testing.T) {
	src := `
int g;
void f() { g = g + 1; }
int main() {
	f();
	f();
	f();
	return 0;
}`
	p := profileDefault(t, src)
	f := p.ConstructForFunc("f")
	if f == nil {
		t.Fatal("no construct for f")
	}
	if f.Instances != 3 {
		t.Errorf("f instances = %d, want 3", f.Instances)
	}
	if f.Kind != indexing.KindFunc {
		t.Errorf("f kind = %v", f.Kind)
	}
	m := p.ConstructForFunc("main")
	if m == nil || m.Instances != 1 {
		t.Fatalf("main construct %+v", m)
	}
	if m.Ttotal <= f.Ttotal {
		t.Errorf("main Ttotal %d should exceed f Ttotal %d", m.Ttotal, f.Ttotal)
	}
}

func TestLoopIterationsAreInstances(t *testing.T) {
	src := `
int g;
int main() {
	int i = 0;
	while (i < 10) {
		g = g + i;
		i++;
	}
	return 0;
}`
	p := profileDefault(t, src)
	// The while loop is the only loop construct.
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loop = c
			break
		}
	}
	if loop == nil {
		t.Fatal("no loop construct found")
	}
	if loop.Instances != 10 {
		t.Errorf("loop instances = %d, want 10 (one per iteration)", loop.Instances)
	}
}

// TestCrossIterationRAW mirrors the paper's core scenario: a value
// written in one iteration and read in the next is a cross-boundary
// dependence for the loop but internal to the function.
func TestCrossIterationRAW(t *testing.T) {
	src := `
int acc;
int main() {
	for (int i = 0; i < 20; i++) {
		acc = acc + i;
	}
	return 0;
}`
	p := profileDefault(t, src)
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loop = c
			break
		}
	}
	if loop == nil {
		t.Fatal("no loop construct")
	}
	raws := 0
	for _, e := range loop.Edges {
		if e.Type == core.RAW {
			raws++
		}
	}
	if raws == 0 {
		t.Fatalf("loop should carry a RAW edge on acc; edges: %+v", loop.Edges)
	}
	// The dependence is internal to main: main's profile must not list it
	// as a cross-boundary edge, because main never completes before the
	// accesses.
	m := p.ConstructForFunc("main")
	for _, e := range m.Edges {
		if e.Type == core.RAW {
			t.Fatalf("main should have no cross-boundary RAW edges, got %+v", e)
		}
	}
	// Cross-iteration distance is tiny compared to nothing: it violates.
	if v := loop.ViolatingEdges(core.RAW); len(v) == 0 {
		t.Error("cross-iteration RAW should violate the loop's duration")
	}
}

// TestIndependentIterationsNoViolation is the parallelizable-loop case:
// iterations write disjoint array cells, so the loop has no violating RAW
// edges.
func TestIndependentIterationsNoViolation(t *testing.T) {
	src := `
int a[64];
int main() {
	for (int i = 0; i < 64; i++) {
		a[i] = i * 3;
	}
	int s = 0;
	for (int i = 0; i < 64; i++) {
		s += a[i];
	}
	out(s);
	return 0;
}`
	p := profileDefault(t, src)
	// First loop (the writer): no RAW edge should have it as a violating
	// construct, since each cell is written once and read much later.
	var loops []*core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loops = append(loops, c)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("want 2 loop constructs, got %d", len(loops))
	}
	for _, l := range loops {
		for _, e := range l.ViolatingEdges(core.RAW) {
			// Reads in loop 2 happen >= one full loop after the writes;
			// the only short-distance deps would be spurious.
			t.Errorf("unexpected violating RAW edge %+v on loop at %s", e, l.Pos)
		}
	}
}

// TestFig4cIndexing replays the paper's Fig. 4(c): nested while loops.
// The dependence between s4/s5 across outer iterations must land on both
// loop constructs but not on the procedure.
func TestFig4cIndexing(t *testing.T) {
	src := `
int x;
int limit;
void D() {
	int i = 0;
	while (i < 3) {
		x = x + 1;
		int j = 0;
		while (j < 2) {
			x = x + 2;
			j++;
		}
		i++;
	}
}
int main() {
	D();
	return 0;
}`
	p := profileDefault(t, src)
	var inner, outer *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind != indexing.KindLoop {
			continue
		}
		if outer == nil || c.Pos.Line < outer.Pos.Line {
			outer, inner = c, outer
		} else {
			inner = c
		}
	}
	if inner == nil || outer == nil {
		t.Fatal("expected two loop constructs")
	}
	if outer.Pos.Line > inner.Pos.Line {
		outer, inner = inner, outer
	}
	if outer.Instances != 3 {
		t.Errorf("outer iterations = %d, want 3", outer.Instances)
	}
	if inner.Instances != 6 {
		t.Errorf("inner iterations = %d, want 6 (2 per outer iteration)", inner.Instances)
	}
	// x crosses both loop boundaries.
	if len(outer.ViolatingEdges(core.RAW)) == 0 {
		t.Error("outer loop should carry RAW edges on x")
	}
	if len(inner.ViolatingEdges(core.RAW)) == 0 {
		t.Error("inner loop should carry RAW edges on x")
	}
	// The procedure D completes only once; no cross-boundary dep inside
	// one call should be attributed to it.
	d := p.ConstructForFunc("D")
	if n := len(d.ViolatingEdges(core.RAW)); n != 0 {
		t.Errorf("D should have no cross-boundary RAW edges, got %d", n)
	}
}

// TestContextSensitivityInsufficient reproduces §III.B's F/i/j/A/B
// example: four dependences with the same calling context land on four
// different constructs.
func TestContextSensitivityInsufficient(t *testing.T) {
	src := `
int withinJ;
int acrossJ;
int acrossI;
int acrossF;
void A(int i, int j) {
	withinJ = 1;
	if (j == 0) { acrossJ = 1; }
	if (i == 0 && j == 0) {
		acrossI = 1;
		acrossF = acrossF + 1;
	}
}
void B(int i, int j) {
	int t = withinJ;
	if (j == 1) { t = acrossJ; }
	if (i == 1 && j == 0) { t = acrossI; }
	if (i == 0 && j == 0) { t = acrossF; }
	out(t);
}
void F() {
	for (int i = 0; i < 2; i++) {
		for (int j = 0; j < 2; j++) {
			A(i, j);
			B(i, j);
		}
	}
}
int main() {
	F();
	F();
	return 0;
}`
	p := profileDefault(t, src)

	var loops []*core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loops = append(loops, c)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Pos.Line > inner.Pos.Line {
		outer, inner = inner, outer
	}

	hasEdgeOn := func(c *core.ConstructStat, varLoad string) bool {
		// Identify edges by the tail's source line: B's reads are each on
		// a distinct line.
		for _, e := range c.Edges {
			if e.Type != core.RAW {
				continue
			}
			line := p.Program.File.Line(e.TailPos.Line)
			if len(line) > 0 && contains(line, varLoad) {
				return true
			}
		}
		return false
	}

	// Case 1: within the same j iteration -> attributed to A (procedure)
	// but NOT to the j loop.
	aProc := p.ConstructForFunc("A")
	if !hasEdgeOn(aProc, "withinJ") {
		t.Error("A should carry the within-iteration dep on withinJ")
	}
	if hasEdgeOn(inner, "withinJ") {
		t.Error("inner loop must not carry the within-iteration dep on withinJ")
	}
	// Case 2: crosses the j loop but not the i loop.
	if !hasEdgeOn(inner, "acrossJ") {
		t.Error("inner loop should carry the cross-j dep on acrossJ")
	}
	if hasEdgeOn(outer, "acrossJ") {
		t.Error("outer loop must not carry the cross-j dep on acrossJ")
	}
	// Case 3: crosses the i loop but stays within one call to F.
	if !hasEdgeOn(outer, "acrossI") {
		t.Error("outer loop should carry the cross-i dep on acrossI")
	}
	fProc := p.ConstructForFunc("F")
	if hasEdgeOn(fProc, "acrossI") {
		t.Error("F must not carry the cross-i dep on acrossI")
	}
	// Case 4: crosses calls to F.
	if !hasEdgeOn(fProc, "acrossF") {
		t.Error("F should carry the cross-call dep on acrossF")
	}
}

func contains(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestWARWAWDetection validates anti- and output-dependence profiling.
func TestWARWAWDetection(t *testing.T) {
	src := `
int v;
int sink;
void produce() { v = 1; }
void consume() { sink = v; }
void overwrite() { v = 2; }
int main() {
	for (int r = 0; r < 5; r++) {
		produce();
		consume();
		overwrite();
	}
	return 0;
}`
	p := profileDefault(t, src)
	prod := p.ConstructForFunc("produce")
	cons := p.ConstructForFunc("consume")
	if n := prod.CountEdges(core.RAW); n == 0 {
		t.Error("produce should have a RAW edge to consume")
	}
	if n := prod.CountEdges(core.WAW); n == 0 {
		t.Error("produce should have a WAW edge to overwrite")
	}
	if n := cons.CountEdges(core.WAR); n == 0 {
		t.Error("consume should have a WAR edge to overwrite")
	}
}

func TestWARDisabled(t *testing.T) {
	src := `
int v;
int s;
int main() {
	for (int i = 0; i < 3; i++) {
		s = v;
		v = i;
	}
	return 0;
}`
	opts := core.DefaultOptions()
	opts.TrackWAR = false
	opts.TrackWAW = false
	p := profile(t, src, opts)
	for _, c := range p.Constructs {
		if n := c.CountEdges(core.WAR); n != 0 {
			t.Errorf("WAR edges present with tracking disabled: %d", n)
		}
		if n := c.CountEdges(core.WAW); n != 0 {
			t.Errorf("WAW edges present with tracking disabled: %d", n)
		}
	}
}

// TestRecursionAggregation checks the §III.B recursion fix: nested
// activations must not double-count Ttotal.
func TestRecursionAggregation(t *testing.T) {
	src := `
int g;
void rec(int n) {
	g = g + 1;
	if (n > 0) rec(n - 1);
}
int main() {
	rec(9);
	return 0;
}`
	p := profileDefault(t, src)
	rec := p.ConstructForFunc("rec")
	if rec.Instances != 1 {
		t.Errorf("outermost rec instances = %d, want 1", rec.Instances)
	}
	m := p.ConstructForFunc("main")
	if rec.Ttotal > m.Ttotal {
		t.Errorf("rec Ttotal %d exceeds main %d: recursion double-counted", rec.Ttotal, m.Ttotal)
	}
}

// TestDistances verifies Tdep is measured in executed instructions and
// minimal distances are kept.
func TestDistances(t *testing.T) {
	src := `
int v;
int s1;
int s2;
void produce() { v = 7; }
int main() {
	produce();
	s1 = v;
	int i = 0;
	while (i < 100) { i++; }
	s2 = v;
	return 0;
}`
	p := profileDefault(t, src)
	prod := p.ConstructForFunc("produce")
	var raw []core.Edge
	for _, e := range prod.Edges {
		if e.Type == core.RAW {
			raw = append(raw, e)
		}
	}
	if len(raw) != 2 {
		t.Fatalf("want 2 static RAW edges out of produce, got %+v", raw)
	}
	// Edges are sorted by ascending distance: near read then far read.
	if raw[0].MinDist >= raw[1].MinDist {
		t.Errorf("distances not ordered: %d then %d", raw[0].MinDist, raw[1].MinDist)
	}
	if raw[1].MinDist < 100 {
		t.Errorf("far read distance %d should reflect the 100-iteration delay", raw[1].MinDist)
	}
}

// TestMinimalDistanceKept: an edge exercised many times keeps the
// minimum.
func TestMinimalDistanceKept(t *testing.T) {
	src := `
int v;
int s;
void produce(int d) {
	v = d;
	int i = 0;
	while (i < d) { i++; }
}
int main() {
	for (int k = 0; k < 2; k++) {
		produce(k == 0 ? 500 : 5);
		s = v;
	}
	return 0;
}`
	p := profileDefault(t, src)
	prod := p.ConstructForFunc("produce")
	var raw *core.Edge
	for i := range prod.Edges {
		if prod.Edges[i].Type == core.RAW {
			raw = &prod.Edges[i]
			break
		}
	}
	if raw == nil {
		t.Fatal("no RAW edge out of produce")
	}
	if raw.Count < 2 {
		t.Errorf("edge count = %d, want >= 2", raw.Count)
	}
	// The second call produces a much shorter distance; MinDist must
	// reflect it (well under the 500-iteration spin).
	if raw.MinDist > 100 {
		t.Errorf("MinDist = %d, want the short-distance instance", raw.MinDist)
	}
}

// TestFutureCandidate is the paper's headline condition: a construct
// whose RAW distances all exceed its duration is a future candidate.
func TestFutureCandidate(t *testing.T) {
	src := `
int result;
int sink;
void work() {
	int s = 0;
	for (int i = 0; i < 50; i++) { s += i; }
	result = s;
}
void unrelated() {
	int s = 0;
	for (int i = 0; i < 2000; i++) { s += i; }
	sink = s;
}
int main() {
	work();
	unrelated();
	int r = result;
	out(r);
	return 0;
}`
	p := profileDefault(t, src)
	w := p.ConstructForFunc("work")
	if w == nil {
		t.Fatal("no work construct")
	}
	var raw []core.Edge
	for _, e := range w.Edges {
		if e.Type == core.RAW {
			raw = append(raw, e)
		}
	}
	if len(raw) == 0 {
		t.Fatal("work should have a RAW edge to the read of result")
	}
	dur := w.MeanDur()
	for _, e := range raw {
		if e.Violates(dur) {
			t.Errorf("edge %+v violates dur %d; work should be a future candidate", e, dur)
		}
	}
	if len(w.ViolatingEdges(core.RAW)) != 0 {
		t.Error("work should have no violating RAW edges")
	}
}

func TestProfileBookkeeping(t *testing.T) {
	src := `
int g;
int main() {
	for (int i = 0; i < 8; i++) {
		if (i % 2 == 0) { g = g + 1; }
	}
	return 0;
}`
	p := profileDefault(t, src)
	if p.TotalSteps == 0 {
		t.Error("TotalSteps not recorded")
	}
	if p.StaticConstructs < 3 { // main, loop, if (plus the % cond chain)
		t.Errorf("static constructs = %d, want >= 3", p.StaticConstructs)
	}
	if p.DynamicConstructs < 1+8+8 {
		t.Errorf("dynamic constructs = %d, want >= 17", p.DynamicConstructs)
	}
	// Ranked ordering by Ttotal.
	for i := 1; i < len(p.Constructs); i++ {
		if p.Constructs[i-1].Ttotal < p.Constructs[i].Ttotal {
			t.Fatal("constructs not sorted by Ttotal")
		}
	}
	// Nesting counters recorded for Fig. 6(b) analysis.
	if len(p.NestDirect) == 0 {
		t.Error("nesting counters missing")
	}
}

// TestPoolReuseBounded checks Theorem 1 in practice: a long loop of tiny
// constructs must recycle pool nodes instead of growing without bound.
func TestPoolReuseBounded(t *testing.T) {
	src := `
int g;
int main() {
	for (int i = 0; i < 20000; i++) {
		g = g + 1;
	}
	return 0;
}`
	opts := core.DefaultOptions()
	opts.PoolPrealloc = 64
	p := profile(t, src, opts)
	if p.Pool.Reused == 0 {
		t.Error("pool never reused a node over 20000 iterations")
	}
	if p.Pool.Allocated > 10000 {
		t.Errorf("pool allocated %d nodes; lazy retirement is not bounding memory", p.Pool.Allocated)
	}
}

func TestBreakAndEarlyReturnConstructs(t *testing.T) {
	// Early returns and breaks leave constructs open; they must be closed
	// by the enclosing pop and not corrupt the stack.
	src := `
int g;
int find(int target) {
	for (int i = 0; i < 100; i++) {
		g = g + 1;
		if (i == target) { return i; }
		if (i > 90) { break; }
	}
	return 0-1;
}
int main() {
	out(find(5));
	out(find(200));
	out(find(0));
	return 0;
}`
	p := profileDefault(t, src)
	f := p.ConstructForFunc("find")
	if f.Instances != 3 {
		t.Errorf("find instances = %d, want 3", f.Instances)
	}
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loop = c
		}
	}
	if loop == nil {
		t.Fatal("no loop construct")
	}
	// 6 iterations (run 1: 0..5) + 92 (run 2: 0..91) + 1 (run 3: i==0).
	if loop.Instances != 6+92+1 {
		t.Errorf("loop iterations = %d, want 99", loop.Instances)
	}
}
