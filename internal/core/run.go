package core

import (
	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/vm"
)

// ProfileProgram runs prog sequentially under the profiler and returns
// the dependence profile together with the VM result.
func ProfileProgram(prog *ir.Program, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	if vmCfg.MemWords == 0 {
		vmCfg.MemWords = 1 << 22
	}
	if opts.MemWords == 0 {
		opts.MemWords = vmCfg.MemWords
	}
	prof := NewProfiler(prog, opts.MemWords, opts)
	vmCfg.Parallel = false
	vmCfg.Tracer = prof
	m, err := vm.New(prog, vmCfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	return prof.Finish(), res, nil
}

// ProfileSource compiles mini-C source text and profiles it.
func ProfileSource(name, src string, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	prog, err := compile.Build(name, src)
	if err != nil {
		return nil, nil, err
	}
	return ProfileProgram(prog, vmCfg, opts)
}

// RunProgram executes prog without instrumentation (the Table III "Orig."
// configuration).
func RunProgram(prog *ir.Program, vmCfg vm.Config) (*vm.Result, error) {
	vmCfg.Tracer = nil
	m, err := vm.New(prog, vmCfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}
