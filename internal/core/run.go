package core

import (
	"context"

	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/vm"
)

// ProfileProgramCtx runs prog sequentially under the profiler and returns
// the dependence profile together with the VM result. Cancelling ctx
// aborts the run within one VM step-check window; the error is then
// ctx.Err().
func ProfileProgramCtx(ctx context.Context, prog *ir.Program, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	if vmCfg.MemWords == 0 {
		vmCfg.MemWords = 1 << 22
	}
	if opts.MemWords == 0 {
		opts.MemWords = vmCfg.MemWords
	}
	prof := NewProfiler(prog, opts.MemWords, opts)
	vmCfg.Parallel = false
	vmCfg.Tracer = prof
	m, err := vm.New(prog, vmCfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.RunCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	return prof.Finish(), res, nil
}

// ProfileProgram is ProfileProgramCtx without cancellation.
func ProfileProgram(prog *ir.Program, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	return ProfileProgramCtx(context.Background(), prog, vmCfg, opts)
}

// ProfileSourceCtx compiles mini-C source text and profiles it under ctx.
func ProfileSourceCtx(ctx context.Context, name, src string, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	prog, err := compile.Build(name, src)
	if err != nil {
		return nil, nil, err
	}
	return ProfileProgramCtx(ctx, prog, vmCfg, opts)
}

// ProfileSource compiles mini-C source text and profiles it.
func ProfileSource(name, src string, vmCfg vm.Config, opts Options) (*Profile, *vm.Result, error) {
	return ProfileSourceCtx(context.Background(), name, src, vmCfg, opts)
}

// RunProgramCtx executes prog without instrumentation (the Table III
// "Orig." configuration) under ctx.
func RunProgramCtx(ctx context.Context, prog *ir.Program, vmCfg vm.Config) (*vm.Result, error) {
	vmCfg.Tracer = nil
	m, err := vm.New(prog, vmCfg)
	if err != nil {
		return nil, err
	}
	return m.RunCtx(ctx)
}

// RunProgram is RunProgramCtx without cancellation.
func RunProgram(prog *ir.Program, vmCfg vm.Config) (*vm.Result, error) {
	return RunProgramCtx(context.Background(), prog, vmCfg)
}
