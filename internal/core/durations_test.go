package core_test

import (
	"testing"

	"alchemist/internal/core"
)

// TestMinMaxDurations checks the per-construct duration bounds extension:
// a function called with very different workloads must show a wide
// min/max spread around the mean.
func TestMinMaxDurations(t *testing.T) {
	src := `
int sink;
void work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i; }
	sink = s;
}
int main() {
	work(5);
	work(500);
	work(50);
	return 0;
}`
	p := profileDefault(t, src)
	w := p.ConstructForFunc("work")
	if w == nil {
		t.Fatal("work missing")
	}
	if w.Instances != 3 {
		t.Fatalf("instances = %d", w.Instances)
	}
	if w.MinDur <= 0 || w.MaxDur <= 0 {
		t.Fatalf("durations not tracked: min=%d max=%d", w.MinDur, w.MaxDur)
	}
	if w.MinDur >= w.MaxDur {
		t.Errorf("min %d should be well below max %d", w.MinDur, w.MaxDur)
	}
	mean := w.MeanDur()
	if !(w.MinDur <= mean && mean <= w.MaxDur) {
		t.Errorf("mean %d outside [min %d, max %d]", mean, w.MinDur, w.MaxDur)
	}
	// The sum of instance durations is Ttotal; with 3 instances the
	// bounds sandwich it.
	if w.Ttotal < w.MinDur*3 || w.Ttotal > w.MaxDur*3 {
		t.Errorf("Ttotal %d inconsistent with bounds", w.Ttotal)
	}
}

// TestDurationsUniformLoop: iteration durations of a uniform loop are
// near-identical.
func TestDurationsUniformLoop(t *testing.T) {
	src := `
int g;
int main() {
	for (int i = 0; i < 50; i++) {
		g = g + i;
	}
	return g;
}`
	p := profileDefault(t, src)
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == 1 {
			loop = c
		}
	}
	if loop == nil {
		t.Fatal("no loop")
	}
	if loop.MaxDur-loop.MinDur > 2 {
		t.Errorf("uniform loop durations spread too wide: [%d,%d]", loop.MinDur, loop.MaxDur)
	}
}
