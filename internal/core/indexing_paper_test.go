package core_test

import (
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/indexing"
	"alchemist/internal/vm"
)

// TestFig4aProcedureNesting replays paper Fig. 4(a): statements nested in
// procedures A and B; B nested in A. The profile must show one instance
// of each procedure construct and attribute A-to-continuation deps to A.
func TestFig4aProcedureNesting(t *testing.T) {
	src := `
int s1v;
int s2v;
void B() {
	s2v = s1v + 1;
}
void A() {
	s1v = 1;
	B();
}
int main() {
	A();
	out(s2v);
	return 0;
}`
	p := profileDefault(t, src)
	a := p.ConstructForFunc("A")
	b := p.ConstructForFunc("B")
	if a.Instances != 1 || b.Instances != 1 {
		t.Errorf("instances A=%d B=%d", a.Instances, b.Instances)
	}
	// The s1v write -> read pair is inside A (B nested in A): no
	// cross-boundary edge on A for it. B reads s1v written by A before B
	// started: that head is in A's still-active instance -> no edge
	// either. The only cross edge: s2v written in B, read in main after A
	// completes -> attributed to both B and A.
	hasS2 := func(c *core.ConstructStat) bool {
		for _, e := range c.Edges {
			if e.Type == core.RAW {
				return true
			}
		}
		return false
	}
	if !hasS2(b) {
		t.Error("B should carry the s2v edge to main")
	}
	if !hasS2(a) {
		t.Error("A should carry the s2v edge to main (B nested in A)")
	}
}

// TestFig4bConditionalNesting replays Fig. 4(b): nested if constructs.
// The inner conditional is a construct nested within the outer one.
func TestFig4bConditionalNesting(t *testing.T) {
	src := `
int s3v;
int s4v;
int sink;
void C(int p, int q) {
	if (p) {
		s3v = s3v + 1;
		if (q) {
			s4v = s4v + 1;
		}
	}
}
int main() {
	for (int i = 0; i < 4; i++) {
		C(1, i % 2);
		sink = s3v + s4v;
	}
	return 0;
}`
	p := profileDefault(t, src)
	var outer, inner *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind != indexing.KindCond || c.FuncName != "C" {
			continue
		}
		if outer == nil {
			outer = c
		} else {
			inner = c
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("expected two conditional constructs in C")
	}
	if outer.Pos.Line > inner.Pos.Line {
		outer, inner = inner, outer
	}
	// Rule 3: conditionals push regardless of direction, so both run 4
	// times... the inner if only executes when the outer branch is taken
	// (always, here), so both have 4 instances.
	if outer.Instances != 4 {
		t.Errorf("outer if instances = %d, want 4", outer.Instances)
	}
	if inner.Instances != 4 {
		t.Errorf("inner if instances = %d, want 4", inner.Instances)
	}
	// Nesting counters recorded the inner-in-outer relation.
	if p.NestDirect[core.NestKey(inner.Label, outer.Label)] != 4 {
		t.Errorf("nesting inner-in-outer = %d, want 4",
			p.NestDirect[core.NestKey(inner.Label, outer.Label)])
	}
	// Cross-call s3v/s4v self-dependences land on both conditionals and
	// the method, not only on the innermost.
	if outer.CountEdges(core.RAW) == 0 {
		t.Error("outer conditional lost its cross-boundary RAW edges")
	}
}

// TestStackDepthBounded checks Theorem 1's L term: the index stack depth
// tracks lexical nesting plus calls, not iteration counts.
func TestStackDepthBounded(t *testing.T) {
	src := `
int g;
int rec(int n) {
	if (n == 0) { return g; }
	for (int i = 0; i < 2; i++) {
		g = g + i;
	}
	return rec(n - 1);
}
int main() {
	out(rec(10));
	for (int i = 0; i < 1000; i++) {
		for (int j = 0; j < 3; j++) {
			g = g + j;
		}
	}
	return g;
}`
	prog, err := compile.Build("depth.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prof := core.NewProfiler(prog, 0, core.DefaultOptions())
	m, err := vm.New(prog, vm.Config{Tracer: &depthWatcher{Profiler: prof, t: t, max: 80}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	prof.Finish()
}

// depthWatcher wraps the profiler and asserts stack depth stays bounded.
type depthWatcher struct {
	*core.Profiler
	t   *testing.T
	max int
}

func (d *depthWatcher) Step(gpc int) {
	d.Profiler.Step(gpc)
	if d.Profiler.Depth() > d.max {
		d.t.Fatalf("index stack depth %d exceeded bound %d", d.Profiler.Depth(), d.max)
	}
}

// TestFinishAfterAbort: a run that traps mid-execution still yields a
// well-formed profile (open constructs are closed at Finish).
func TestFinishAfterAbort(t *testing.T) {
	src := `
int g;
int main() {
	for (int i = 0; i < 100; i++) {
		g = g + i;
		if (i == 50) {
			int boom = 1 / (i - 50);
			out(boom);
		}
	}
	return 0;
}`
	prog, err := compile.Build("abort.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prof := core.NewProfiler(prog, 0, core.DefaultOptions())
	m, err := vm.New(prog, vm.Config{Tracer: prof})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("expected division trap")
	}
	p := prof.Finish()
	if p.TotalSteps == 0 {
		t.Error("no steps recorded")
	}
	mainC := p.ConstructForFunc("main")
	if mainC == nil || mainC.Instances != 1 {
		t.Fatalf("main construct after abort: %+v", mainC)
	}
	// The loop's completed iterations are all accounted.
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop {
			loop = c
		}
	}
	if loop == nil || loop.Instances < 50 {
		t.Errorf("loop instances after abort: %+v", loop)
	}
}

// TestSpawnProfilesAsCall: under the profiler, spawn degenerates to a
// call (the paper profiles the sequential program), and the spawned
// function's construct is properly nested.
func TestSpawnProfilesAsCall(t *testing.T) {
	src := `
int acc[4];
void work(int i) {
	for (int k = 0; k < 20; k++) {
		acc[i] = acc[i] + k;
	}
}
int main() {
	for (int i = 0; i < 4; i++) {
		spawn work(i);
	}
	sync;
	out(acc[0] + acc[3]);
	return 0;
}`
	p := profileDefault(t, src)
	w := p.ConstructForFunc("work")
	if w == nil || w.Instances != 4 {
		t.Fatalf("work construct: %+v", w)
	}
	// Disjoint writes: no violating RAW edges between work instances.
	for _, e := range w.ViolatingEdges(core.RAW) {
		headFn := p.Program.FuncAt(e.HeadPC)
		tailFn := p.Program.FuncAt(e.TailPC)
		if headFn != nil && tailFn != nil && headFn.Name == "work" && tailFn.Name == "work" {
			t.Errorf("work-to-work violating RAW on disjoint cells: %+v", e)
		}
	}
}

// TestProfileReportIntegration smoke-tests the whole path on a program
// using every construct kind at once.
func TestProfileAllConstructKinds(t *testing.T) {
	src := `
int g[8];
int total;
int step(int x) {
	return (x % 3 == 0) ? x * 2 : x + 1;
}
int main() {
	int i = 0;
	do {
		for (int j = 0; j < 8; j++) {
			if (j % 2 == 0 && i > 0) {
				g[j] = g[j] + step(j);
			}
		}
		while (total < i * 10) {
			total = total + 1;
		}
		i++;
	} while (i < 5);
	out(total);
	return 0;
}`
	p := profileDefault(t, src)
	kinds := map[indexing.Kind]int{}
	for _, c := range p.Constructs {
		kinds[c.Kind]++
	}
	if kinds[indexing.KindFunc] < 2 || kinds[indexing.KindLoop] < 3 || kinds[indexing.KindCond] < 2 {
		t.Errorf("construct kind coverage: %v", kinds)
	}
	text := strings.TrimSpace(p.String())
	if !strings.Contains(text, "static") {
		t.Errorf("String() = %q", text)
	}
}
