// Package shadow implements the shadow memory Alchemist uses to detect
// RAW, WAR, and WAW dependences.
//
// For every flat-memory word the shadow keeps the last write (the only
// source of true RAW and direct WAW dependences) and a small, bounded set
// of reads-since-last-write, one slot per distinct reading PC (the
// sources of WAR dependences). Bounding the reader set trades WAR-edge
// recall for memory; the slot count is configurable and ablated in the
// benchmark suite. Shadow pages are allocated lazily so untouched memory
// costs nothing.
package shadow

import "alchemist/internal/indexing"

// Access describes one memory access: which instruction performed it,
// when, and inside which construct instance.
type Access struct {
	Time int64
	Node *indexing.Construct
	PC   int32
}

// DefaultReaderSlots is the default per-word bound on distinct reader PCs
// tracked between writes.
const DefaultReaderSlots = 4

// pageWords is the shadow page granule.
const pageWords = 4096

type page struct {
	writes   []Access // len pageWords
	hasWrite []bool
	readers  []Access // len pageWords*K, K slots per word
	nReaders []uint8
}

// Memory is the shadow memory for one profiled execution. It is not safe
// for concurrent use; profiling is sequential by design.
type Memory struct {
	pages []*page
	k     int

	// scratch reuses one slice for Store's reader report.
	scratch []Access

	// Stats.
	loads, stores   int64
	evictedReaders  int64
	pagesAllocated  int64
	droppedOutRange int64
}

// Stats reports shadow counters for ablation and diagnostics.
type Stats struct {
	Loads, Stores  int64
	EvictedReaders int64
	PagesAllocated int64
	OutOfRange     int64
}

// New creates shadow memory covering memWords of flat memory, tracking up
// to readerSlots distinct reader PCs per word (0 means
// DefaultReaderSlots).
func New(memWords int64, readerSlots int) *Memory {
	if readerSlots <= 0 {
		readerSlots = DefaultReaderSlots
	}
	nPages := (memWords + pageWords - 1) / pageWords
	return &Memory{
		pages:   make([]*page, nPages),
		k:       readerSlots,
		scratch: make([]Access, 0, readerSlots),
	}
}

// Words returns the flat-memory extent this shadow covers, and Slots the
// per-word reader bound; both identify compatible reuses via Reset.
func (m *Memory) Words() int64 { return int64(len(m.pages)) * pageWords }

// Slots returns the per-word reader-PC bound.
func (m *Memory) Slots() int { return m.k }

// Reset clears every recorded access so the Memory can shadow a fresh
// run, keeping the already-allocated pages (the point of reuse: batch
// jobs of the same program touch the same pages). Counters restart at
// zero; retained pages are not re-counted in PagesAllocated, so per-run
// stats only report allocations the run itself caused.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		if p == nil {
			continue
		}
		clear(p.hasWrite)
		clear(p.nReaders)
	}
	m.loads, m.stores = 0, 0
	m.evictedReaders = 0
	m.pagesAllocated = 0
	m.droppedOutRange = 0
}

// Stats returns a snapshot of the counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Loads: m.loads, Stores: m.stores,
		EvictedReaders: m.evictedReaders,
		PagesAllocated: m.pagesAllocated,
		OutOfRange:     m.droppedOutRange,
	}
}

func (m *Memory) pageFor(addr int64) (*page, int64) {
	if addr < 0 {
		return nil, 0
	}
	pi := addr / pageWords
	if pi >= int64(len(m.pages)) {
		return nil, 0
	}
	p := m.pages[pi]
	if p == nil {
		p = &page{
			writes:   make([]Access, pageWords),
			hasWrite: make([]bool, pageWords),
			readers:  make([]Access, pageWords*int64(m.k)),
			nReaders: make([]uint8, pageWords),
		}
		m.pages[pi] = p
		m.pagesAllocated++
	}
	return p, addr % pageWords
}

// Load records a read of addr and returns the last write to addr, which
// is the head of a RAW dependence ending at this read.
func (m *Memory) Load(addr int64, pc int32, time int64, node *indexing.Construct) (raw Access, hasRAW bool) {
	m.loads++
	p, off := m.pageFor(addr)
	if p == nil {
		m.droppedOutRange++
		return Access{}, false
	}
	// Record the reader: update an existing slot with the same PC, use a
	// free slot, or evict the stalest entry.
	base := off * int64(m.k)
	n := int64(p.nReaders[off])
	slot := int64(-1)
	for i := int64(0); i < n; i++ {
		if p.readers[base+i].PC == pc {
			slot = base + i
			break
		}
	}
	if slot < 0 {
		if n < int64(m.k) {
			slot = base + n
			p.nReaders[off]++
		} else {
			oldest := base
			for i := int64(1); i < n; i++ {
				if p.readers[base+i].Time < p.readers[oldest].Time {
					oldest = base + i
				}
			}
			slot = oldest
			m.evictedReaders++
		}
	}
	p.readers[slot] = Access{Time: time, Node: node, PC: pc}

	if p.hasWrite[off] {
		return p.writes[off], true
	}
	return Access{}, false
}

// Store records a write of addr. It returns the previous write (the head
// of a WAW dependence) and the reads performed since that write (the
// heads of WAR dependences). The returned reader slice is only valid
// until the next call on this Memory.
func (m *Memory) Store(addr int64, pc int32, time int64, node *indexing.Construct) (prev Access, hadPrev bool, readers []Access) {
	m.stores++
	p, off := m.pageFor(addr)
	if p == nil {
		m.droppedOutRange++
		return Access{}, false, nil
	}
	prev, hadPrev = p.writes[off], p.hasWrite[off]
	base := off * int64(m.k)
	n := int64(p.nReaders[off])
	m.scratch = m.scratch[:0]
	for i := int64(0); i < n; i++ {
		m.scratch = append(m.scratch, p.readers[base+i])
	}
	p.nReaders[off] = 0
	p.writes[off] = Access{Time: time, Node: node, PC: pc}
	p.hasWrite[off] = true
	return prev, hadPrev, m.scratch
}
