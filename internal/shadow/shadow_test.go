package shadow

import (
	"testing"
	"testing/quick"

	"alchemist/internal/indexing"
)

func node() *indexing.Construct { return &indexing.Construct{} }

func TestRAWDetection(t *testing.T) {
	m := New(1<<16, 0)
	n := node()
	if _, ok := m.Load(100, 1, 10, n); ok {
		t.Error("read of never-written address reported a RAW")
	}
	m.Store(100, 2, 20, n)
	w, ok := m.Load(100, 3, 30, n)
	if !ok || w.PC != 2 || w.Time != 20 {
		t.Errorf("RAW = %+v, %v", w, ok)
	}
	// A second write supersedes the first as RAW source.
	m.Store(100, 4, 40, n)
	w, ok = m.Load(100, 5, 50, n)
	if !ok || w.PC != 4 {
		t.Errorf("RAW after overwrite = %+v", w)
	}
}

func TestWAWAndWAR(t *testing.T) {
	m := New(1<<16, 0)
	n := node()
	m.Store(7, 1, 10, n)
	m.Load(7, 2, 20, n)
	m.Load(7, 3, 30, n)
	prev, had, readers := m.Store(7, 4, 40, n)
	if !had || prev.PC != 1 {
		t.Errorf("WAW prev = %+v, %v", prev, had)
	}
	if len(readers) != 2 {
		t.Fatalf("WAR readers = %d", len(readers))
	}
	pcs := map[int32]bool{readers[0].PC: true, readers[1].PC: true}
	if !pcs[2] || !pcs[3] {
		t.Errorf("WAR readers pcs = %v", pcs)
	}
	// Readers are cleared by the store.
	_, _, readers = m.Store(7, 5, 50, n)
	if len(readers) != 0 {
		t.Errorf("readers not cleared: %v", readers)
	}
}

func TestSameReaderPCUpdates(t *testing.T) {
	m := New(1<<16, 0)
	n := node()
	m.Store(9, 1, 5, n)
	m.Load(9, 2, 10, n)
	m.Load(9, 2, 30, n) // same pc, later time
	_, _, readers := m.Store(9, 3, 40, n)
	if len(readers) != 1 {
		t.Fatalf("readers = %d, want 1 slot for one pc", len(readers))
	}
	if readers[0].Time != 30 {
		t.Errorf("reader time = %d, want the latest (30)", readers[0].Time)
	}
}

func TestReaderEviction(t *testing.T) {
	m := New(1<<16, 2) // only 2 reader slots
	n := node()
	m.Store(9, 1, 5, n)
	m.Load(9, 10, 10, n)
	m.Load(9, 11, 11, n)
	m.Load(9, 12, 12, n) // evicts the stalest (pc 10)
	_, _, readers := m.Store(9, 2, 20, n)
	if len(readers) != 2 {
		t.Fatalf("readers = %d", len(readers))
	}
	pcs := map[int32]bool{readers[0].PC: true, readers[1].PC: true}
	if pcs[10] || !pcs[11] || !pcs[12] {
		t.Errorf("eviction kept wrong readers: %v", pcs)
	}
	if m.Stats().EvictedReaders != 1 {
		t.Errorf("evictions = %d", m.Stats().EvictedReaders)
	}
}

func TestPageLaziness(t *testing.T) {
	m := New(1<<20, 0)
	n := node()
	m.Store(5, 1, 1, n)
	m.Store(5000, 1, 2, n)
	m.Store(500_000, 1, 3, n)
	if got := m.Stats().PagesAllocated; got != 3 {
		t.Errorf("pages = %d, want 3", got)
	}
	// Re-touching the same pages allocates nothing new.
	m.Load(6, 2, 4, n)
	if got := m.Stats().PagesAllocated; got != 3 {
		t.Errorf("pages after reuse = %d", got)
	}
}

func TestOutOfRange(t *testing.T) {
	m := New(1024, 0)
	n := node()
	if _, ok := m.Load(-5, 1, 1, n); ok {
		t.Error("negative address reported RAW")
	}
	if _, had, _ := m.Store(1<<30, 1, 2, n); had {
		t.Error("oversized address reported WAW")
	}
	if m.Stats().OutOfRange != 2 {
		t.Errorf("OutOfRange = %d", m.Stats().OutOfRange)
	}
}

func TestCounts(t *testing.T) {
	m := New(1024, 0)
	n := node()
	m.Load(1, 1, 1, n)
	m.Load(2, 1, 2, n)
	m.Store(1, 1, 3, n)
	st := m.Stats()
	if st.Loads != 2 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// oracle is a straightforward reference implementation with the same
// bounded-reader semantics, for the property test.
type oracle struct {
	k       int
	write   map[int64]Access
	readers map[int64][]Access
}

func newOracle(k int) *oracle {
	return &oracle{k: k, write: map[int64]Access{}, readers: map[int64][]Access{}}
}

func (o *oracle) load(addr int64, pc int32, time int64) (Access, bool) {
	rs := o.readers[addr]
	replaced := false
	for i := range rs {
		if rs[i].PC == pc {
			rs[i].Time = time
			replaced = true
		}
	}
	if !replaced {
		if len(rs) < o.k {
			rs = append(rs, Access{PC: pc, Time: time})
		} else {
			oldest := 0
			for i := 1; i < len(rs); i++ {
				if rs[i].Time < rs[oldest].Time {
					oldest = i
				}
			}
			rs[oldest] = Access{PC: pc, Time: time}
		}
	}
	o.readers[addr] = rs
	w, ok := o.write[addr]
	return w, ok
}

func (o *oracle) store(addr int64, pc int32, time int64) (Access, bool, []Access) {
	prev, had := o.write[addr]
	rs := o.readers[addr]
	delete(o.readers, addr)
	o.write[addr] = Access{PC: pc, Time: time}
	return prev, had, rs
}

// TestAgainstOracle drives random access sequences through both
// implementations and compares every report.
func TestAgainstOracle(t *testing.T) {
	type op struct {
		IsStore bool
		Addr    uint16
		PC      uint8
	}
	f := func(ops []op) bool {
		m := New(1<<16, 3)
		o := newOracle(3)
		time := int64(0)
		for _, operation := range ops {
			time++
			addr := int64(operation.Addr % 512) // force collisions
			pc := int32(operation.PC%16) + 1
			if operation.IsStore {
				gPrev, gHad, gReaders := m.Store(addr, pc, time, nil)
				wPrev, wHad, wReaders := o.store(addr, pc, time)
				if gHad != wHad {
					return false
				}
				if gHad && (gPrev.PC != wPrev.PC || gPrev.Time != wPrev.Time) {
					return false
				}
				if len(gReaders) != len(wReaders) {
					return false
				}
				gset := map[int64]bool{}
				for _, r := range gReaders {
					gset[int64(r.PC)<<32|r.Time] = true
				}
				for _, r := range wReaders {
					if !gset[int64(r.PC)<<32|r.Time] {
						return false
					}
				}
			} else {
				gw, gok := m.Load(addr, pc, time, nil)
				ww, wok := o.load(addr, pc, time)
				if gok != wok {
					return false
				}
				if gok && (gw.PC != ww.PC || gw.Time != ww.Time) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
