// Package compile lowers a type-checked mini-C AST to ir bytecode and
// annotates it with the construct metadata Alchemist needs: which branches
// are loop predicates and where each predicate's construct closes (the
// global PC of its immediate post-dominator).
package compile

import (
	"fmt"

	"alchemist/internal/ast"
	"alchemist/internal/cfg"
	"alchemist/internal/dom"
	"alchemist/internal/ir"
	"alchemist/internal/opt"
	"alchemist/internal/parser"
	"alchemist/internal/sema"
	"alchemist/internal/source"
	"alchemist/internal/token"
)

// Build parses, checks, and compiles mini-C source text.
func Build(name, src string) (*ir.Program, error) {
	return BuildConfig(name, src, Config{})
}

// Config selects compilation options.
type Config struct {
	// Optimize enables the opt package's passes (constant folding,
	// unreachable-code elimination) before PCs are assigned.
	Optimize bool
}

// BuildConfig parses, checks, and compiles with explicit options.
func BuildConfig(name, src string, cfg Config) (*ir.Program, error) {
	file := source.NewFile(name, src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}
	info := sema.Check(prog, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return CompileConfig(info, cfg)
}

// Compile lowers a checked program. The sema info must be error-free.
func Compile(info *sema.Info) (*ir.Program, error) {
	return CompileConfig(info, Config{})
}

// CompileConfig lowers a checked program with options.
func CompileConfig(info *sema.Info, cfg Config) (*ir.Program, error) {
	p := &ir.Program{File: info.Program.File}

	// Lay out globals: address 0 is reserved as null.
	next := int64(1)
	p.GlobalAddr = make([]int64, len(info.Globals))
	p.GlobalArray = make([]ir.ArrayRef, len(info.Globals))
	p.GlobalInit = make([]int64, len(info.Globals))
	for i, g := range info.Globals {
		p.GlobalNames = append(p.GlobalNames, g.Name)
		if g.Kind == sema.GlobalArray {
			size, _ := sema.ConstValue(g.Decl.Size)
			if size < 0 || size > ir.MaxArrayLen {
				return nil, fmt.Errorf("%s: global array %q has invalid size %d", g.Pos, g.Name, size)
			}
			p.GlobalArray[i] = ir.MakeArrayRef(next, size)
			next += size
		} else {
			p.GlobalAddr[i] = next
			if g.Decl.Init != nil {
				v, _ := sema.ConstValue(g.Decl.Init)
				p.GlobalInit[i] = v
			}
			next++
		}
	}
	p.GlobalWords = next

	// Compile functions in declaration order.
	funcIR := make(map[string]*ir.Func)
	for _, f := range info.Program.Funcs {
		fi := info.Funcs[f.Name]
		if fi == nil || fi.Decl != f {
			continue
		}
		irf := &ir.Func{Name: f.Name, NParams: len(fi.Params), Pos: f.Pos()}
		p.Funcs = append(p.Funcs, irf)
		funcIR[f.Name] = irf
	}
	for _, f := range info.Program.Funcs {
		irf := funcIR[f.Name]
		if irf == nil {
			continue
		}
		fc := &funcCompiler{
			prog:    p,
			info:    info,
			fi:      info.Funcs[f.Name],
			fn:      irf,
			funcIR:  funcIR,
			nextReg: info.Funcs[f.Name].NumSlots,
		}
		if err := fc.compile(); err != nil {
			return nil, err
		}
	}
	p.Main = funcIR["main"]
	if cfg.Optimize {
		opt.Program(p)
	}
	p.Finalize()
	annotateConstructs(p)
	return p, nil
}

// annotateConstructs computes, for every branch, the global PC at which
// its construct closes: the first instruction of the branch block's
// immediate post-dominator.
func annotateConstructs(p *ir.Program) {
	for _, f := range p.Funcs {
		g := cfg.New(f)
		pdt := dom.PostDominators(g)
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op != ir.OpBr {
				continue
			}
			b := g.BlockOf(i)
			ip := pdt.Idom[b.ID]
			if ip == -1 || ip == g.Exit || g.Blocks[ip].Start == g.Blocks[ip].End {
				in.PopPC = ir.NoPopPC
				continue
			}
			in.PopPC = f.GPC(g.Blocks[ip].Start)
		}
	}
}

type funcCompiler struct {
	prog   *ir.Program
	info   *sema.Info
	fi     *sema.FuncInfo
	fn     *ir.Func
	funcIR map[string]*ir.Func

	nextReg int // temp watermark
	maxReg  int

	loops []*loopCtx
}

type loopCtx struct {
	breakPatches    []int
	continuePatches []int
}

func (fc *funcCompiler) compile() error {
	body := fc.fi.Decl.Body
	if err := fc.stmt(body); err != nil {
		return err
	}
	// Implicit return at the end of the function.
	end := body.LBrace
	if n := len(body.List); n > 0 {
		end = body.List[n-1].Pos()
	}
	if fc.fi.Decl.Returns == ast.TypeInt {
		// Falling off the end of an int function returns 0.
		r := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpConst, A: r, Imm: 0, Pos: end})
		fc.emit(ir.Instr{Op: ir.OpRet, A: r, Pos: end})
	} else {
		fc.emit(ir.Instr{Op: ir.OpRet, A: -1, Pos: end})
	}
	fc.fn.NumRegs = fc.maxRegs()
	return nil
}

func (fc *funcCompiler) maxRegs() int {
	n := fc.fi.NumSlots
	if fc.maxReg > n {
		n = fc.maxReg
	}
	return n
}

func (fc *funcCompiler) emit(in ir.Instr) int {
	fc.fn.Code = append(fc.fn.Code, in)
	return len(fc.fn.Code) - 1
}

func (fc *funcCompiler) here() int { return len(fc.fn.Code) }

func (fc *funcCompiler) temp() int {
	r := fc.nextReg
	fc.nextReg++
	if fc.nextReg > fc.maxReg {
		fc.maxReg = fc.nextReg
	}
	return r
}

// resetTemps releases expression temporaries between statements.
func (fc *funcCompiler) resetTemps() { fc.nextReg = fc.fi.NumSlots }

func (fc *funcCompiler) patch(idx, target int) {
	in := &fc.fn.Code[idx]
	switch in.Op {
	case ir.OpJmp:
		in.Targets[0] = target
	case ir.OpBr:
		if in.Targets[0] == -1 {
			in.Targets[0] = target
		}
		if in.Targets[1] == -1 {
			in.Targets[1] = target
		}
	}
}

// ---------- Statements ----------

func (fc *funcCompiler) stmt(s ast.Stmt) error {
	if s == nil {
		return nil
	}
	fc.resetTemps()
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			if err := fc.stmt(sub); err != nil {
				return err
			}
		}
		return nil
	case *ast.DeclStmt:
		return fc.localDecl(x.Decl)
	case *ast.ExprStmt:
		_, err := fc.exprDiscard(x.X)
		return err
	case *ast.AssignStmt:
		return fc.assign(x)
	case *ast.IfStmt:
		return fc.ifStmt(x)
	case *ast.WhileStmt:
		return fc.whileStmt(x)
	case *ast.BreakStmt:
		if len(fc.loops) == 0 {
			return fmt.Errorf("%s: break outside loop", x.Pos())
		}
		idx := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: x.Pos()})
		lc := fc.loops[len(fc.loops)-1]
		lc.breakPatches = append(lc.breakPatches, idx)
		return nil
	case *ast.ContinueStmt:
		if len(fc.loops) == 0 {
			return fmt.Errorf("%s: continue outside loop", x.Pos())
		}
		idx := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: x.Pos()})
		lc := fc.loops[len(fc.loops)-1]
		lc.continuePatches = append(lc.continuePatches, idx)
		return nil
	case *ast.ReturnStmt:
		if x.X == nil {
			fc.emit(ir.Instr{Op: ir.OpRet, A: -1, Pos: x.Pos()})
			return nil
		}
		r, err := fc.expr(x.X)
		if err != nil {
			return err
		}
		fc.emit(ir.Instr{Op: ir.OpRet, A: r, Pos: x.Pos()})
		return nil
	case *ast.SpawnStmt:
		callee := fc.info.CalleeFunc[x.Call]
		if callee == nil {
			return fmt.Errorf("%s: spawn target is not a user function", x.Pos())
		}
		args, err := fc.callArgs(x.Call)
		if err != nil {
			return err
		}
		target := fc.funcIR[callee.Decl.Name]
		target.IsSpawnable = true
		fc.emit(ir.Instr{Op: ir.OpSpawn, Callee: target, Args: args, Pos: x.Pos()})
		return nil
	case *ast.SyncStmt:
		fc.emit(ir.Instr{Op: ir.OpSync, Pos: x.Pos()})
		return nil
	}
	return fmt.Errorf("%s: unsupported statement %T", s.Pos(), s)
}

func (fc *funcCompiler) localDecl(d *ast.VarDecl) error {
	sym := fc.symbolForDecl(d)
	if sym == nil {
		return fmt.Errorf("%s: internal: no symbol for local %q", d.Pos(), d.Name)
	}
	switch {
	case d.IsArray && d.Init != nil:
		r, err := fc.expr(d.Init)
		if err != nil {
			return err
		}
		fc.emit(ir.Instr{Op: ir.OpMov, A: sym.Slot, B: r, Pos: d.Pos()})
	case d.IsArray:
		r, err := fc.expr(d.Size)
		if err != nil {
			return err
		}
		fc.emit(ir.Instr{Op: ir.OpAlloc, A: sym.Slot, B: r, Pos: d.Pos()})
	case d.Init != nil:
		r, err := fc.expr(d.Init)
		if err != nil {
			return err
		}
		fc.emit(ir.Instr{Op: ir.OpMov, A: sym.Slot, B: r, Pos: d.Pos()})
	default:
		fc.emit(ir.Instr{Op: ir.OpConst, A: sym.Slot, Imm: 0, Pos: d.Pos()})
	}
	return nil
}

func (fc *funcCompiler) symbolForDecl(d *ast.VarDecl) *sema.Symbol {
	for _, l := range fc.fi.Locals {
		if l.Decl == d {
			return l
		}
	}
	return nil
}

func (fc *funcCompiler) assign(a *ast.AssignStmt) error {
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		sym := fc.info.Uses[lhs]
		if sym == nil {
			return fmt.Errorf("%s: unresolved %q", lhs.Pos(), lhs.Name)
		}
		switch sym.Kind {
		case sema.LocalScalar, sema.ParamScalar, sema.LocalArray, sema.ParamArray:
			if a.Op == token.Assign {
				r, err := fc.expr(a.RHS)
				if err != nil {
					return err
				}
				fc.emit(ir.Instr{Op: ir.OpMov, A: sym.Slot, B: r, Pos: lhs.Pos()})
				return nil
			}
			r, err := fc.expr(a.RHS)
			if err != nil {
				return err
			}
			op := binOpFor(token.BinaryForAssign(a.Op))
			fc.emit(ir.Instr{Op: op, A: sym.Slot, B: sym.Slot, C: r, Pos: lhs.Pos()})
			return nil
		case sema.GlobalScalar:
			addr := fc.prog.GlobalAddr[fc.globalIndex(sym)]
			if a.Op == token.Assign {
				r, err := fc.expr(a.RHS)
				if err != nil {
					return err
				}
				fc.emit(ir.Instr{Op: ir.OpStoreG, B: r, Imm: addr, Pos: lhs.Pos()})
				return nil
			}
			cur := fc.temp()
			fc.emit(ir.Instr{Op: ir.OpLoadG, A: cur, Imm: addr, Pos: lhs.Pos()})
			r, err := fc.expr(a.RHS)
			if err != nil {
				return err
			}
			dst := fc.temp()
			op := binOpFor(token.BinaryForAssign(a.Op))
			fc.emit(ir.Instr{Op: op, A: dst, B: cur, C: r, Pos: lhs.Pos()})
			fc.emit(ir.Instr{Op: ir.OpStoreG, B: dst, Imm: addr, Pos: lhs.Pos()})
			return nil
		default:
			return fmt.Errorf("%s: cannot assign to %s %q", lhs.Pos(), sym.Kind, lhs.Name)
		}
	case *ast.IndexExpr:
		baseReg, idxReg, err := fc.indexOperands(lhs)
		if err != nil {
			return err
		}
		if a.Op == token.Assign {
			r, err := fc.expr(a.RHS)
			if err != nil {
				return err
			}
			fc.emit(ir.Instr{Op: ir.OpStoreEl, A: baseReg, B: idxReg, C: r, Pos: lhs.Pos()})
			return nil
		}
		cur := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpLoadEl, A: cur, B: baseReg, C: idxReg, Pos: lhs.Pos()})
		r, err := fc.expr(a.RHS)
		if err != nil {
			return err
		}
		dst := fc.temp()
		op := binOpFor(token.BinaryForAssign(a.Op))
		fc.emit(ir.Instr{Op: op, A: dst, B: cur, C: r, Pos: lhs.Pos()})
		fc.emit(ir.Instr{Op: ir.OpStoreEl, A: baseReg, B: idxReg, C: dst, Pos: lhs.Pos()})
		return nil
	}
	return fmt.Errorf("%s: invalid assignment target", a.LHS.Pos())
}

func (fc *funcCompiler) ifStmt(s *ast.IfStmt) error {
	cond, err := fc.expr(s.Cond)
	if err != nil {
		return err
	}
	br := fc.emit(ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]int{-1, -1}, Pos: s.Pos(), PopPC: ir.NoPopPC})
	fc.fn.Code[br].Targets[0] = fc.here()
	if err := fc.stmt(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		fc.fn.Code[br].Targets[1] = fc.here()
		return nil
	}
	skip := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: s.Else.Pos()})
	fc.fn.Code[br].Targets[1] = fc.here()
	if err := fc.stmt(s.Else); err != nil {
		return err
	}
	fc.patch(skip, fc.here())
	return nil
}

func (fc *funcCompiler) whileStmt(s *ast.WhileStmt) error {
	head := fc.here()
	fc.resetTemps()
	cond, err := fc.expr(s.Cond)
	if err != nil {
		return err
	}
	br := fc.emit(ir.Instr{
		Op: ir.OpBr, A: cond, Targets: [2]int{-1, -1},
		Pos: s.Pos(), IsLoopPred: true, PopPC: ir.NoPopPC,
	})
	fc.fn.Code[br].Targets[0] = fc.here()

	lc := &loopCtx{}
	fc.loops = append(fc.loops, lc)
	if err := fc.stmt(s.Body); err != nil {
		return err
	}
	fc.loops = fc.loops[:len(fc.loops)-1]

	postStart := fc.here()
	if s.Post != nil {
		if err := fc.stmt(s.Post); err != nil {
			return err
		}
	}
	fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{head, -1}, Pos: s.Pos()})
	exit := fc.here()
	fc.fn.Code[br].Targets[1] = exit
	for _, idx := range lc.breakPatches {
		fc.patch(idx, exit)
	}
	for _, idx := range lc.continuePatches {
		fc.patch(idx, postStart)
	}
	return nil
}

// ---------- Expressions ----------

func binOpFor(k token.Kind) ir.Op {
	switch k {
	case token.Plus:
		return ir.OpAdd
	case token.Minus:
		return ir.OpSub
	case token.Star:
		return ir.OpMul
	case token.Slash:
		return ir.OpDiv
	case token.Percent:
		return ir.OpMod
	case token.Amp:
		return ir.OpAnd
	case token.Or:
		return ir.OpOr
	case token.Xor:
		return ir.OpXor
	case token.Shl:
		return ir.OpShl
	case token.Shr:
		return ir.OpShr
	case token.Eq:
		return ir.OpEq
	case token.Ne:
		return ir.OpNe
	case token.Lt:
		return ir.OpLt
	case token.Le:
		return ir.OpLe
	case token.Gt:
		return ir.OpGt
	case token.Ge:
		return ir.OpGe
	}
	return ir.OpInvalid
}

// exprDiscard compiles an expression for side effects only. Void calls get
// A == -1; other expressions compile normally and the value is ignored.
func (fc *funcCompiler) exprDiscard(e ast.Expr) (int, error) {
	if call, ok := e.(*ast.CallExpr); ok {
		return fc.call(call, true)
	}
	return fc.expr(e)
}

// expr compiles e and returns the register holding its value.
func (fc *funcCompiler) expr(e ast.Expr) (int, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		r := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpConst, A: r, Imm: x.Val, Pos: x.Pos()})
		return r, nil
	case *ast.StrLit:
		return 0, fmt.Errorf("%s: string literal outside print", x.Pos())
	case *ast.Ident:
		return fc.identValue(x)
	case *ast.UnaryExpr:
		r, err := fc.expr(x.X)
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		var op ir.Op
		switch x.Op {
		case token.Minus:
			op = ir.OpNeg
		case token.Not:
			op = ir.OpLNot
		case token.Tilde:
			op = ir.OpBNot
		default:
			return 0, fmt.Errorf("%s: bad unary op %s", x.Pos(), x.Op)
		}
		fc.emit(ir.Instr{Op: op, A: dst, B: r, Pos: x.Pos()})
		return dst, nil
	case *ast.BinaryExpr:
		if x.Op == token.LAnd || x.Op == token.LOr {
			return fc.shortCircuit(x)
		}
		a, err := fc.expr(x.X)
		if err != nil {
			return 0, err
		}
		b, err := fc.expr(x.Y)
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		fc.emit(ir.Instr{Op: binOpFor(x.Op), A: dst, B: a, C: b, Pos: x.Pos()})
		return dst, nil
	case *ast.CondExpr:
		return fc.condExpr(x)
	case *ast.IndexExpr:
		baseReg, idxReg, err := fc.indexOperands(x)
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpLoadEl, A: dst, B: baseReg, C: idxReg, Pos: x.Pos()})
		return dst, nil
	case *ast.CallExpr:
		return fc.call(x, false)
	}
	return 0, fmt.Errorf("%s: unsupported expression %T", e.Pos(), e)
}

func (fc *funcCompiler) identValue(x *ast.Ident) (int, error) {
	sym := fc.info.Uses[x]
	if sym == nil {
		return 0, fmt.Errorf("%s: unresolved %q", x.Pos(), x.Name)
	}
	switch sym.Kind {
	case sema.LocalScalar, sema.ParamScalar, sema.LocalArray, sema.ParamArray:
		return sym.Slot, nil
	case sema.GlobalScalar:
		r := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpLoadG, A: r, Imm: fc.prog.GlobalAddr[fc.globalIndex(sym)], Pos: x.Pos()})
		return r, nil
	case sema.GlobalArray:
		r := fc.temp()
		ref := fc.prog.GlobalArray[fc.globalIndex(sym)]
		fc.emit(ir.Instr{Op: ir.OpConst, A: r, Imm: int64(ref), Pos: x.Pos()})
		return r, nil
	}
	return 0, fmt.Errorf("%s: bad symbol kind for %q", x.Pos(), x.Name)
}

func (fc *funcCompiler) globalIndex(sym *sema.Symbol) int { return sym.Slot }

func (fc *funcCompiler) indexOperands(x *ast.IndexExpr) (baseReg, idxReg int, err error) {
	baseReg, err = fc.expr(x.X)
	if err != nil {
		return 0, 0, err
	}
	idxReg, err = fc.expr(x.Index)
	if err != nil {
		return 0, 0, err
	}
	return baseReg, idxReg, nil
}

func (fc *funcCompiler) shortCircuit(x *ast.BinaryExpr) (int, error) {
	dst := fc.temp()
	a, err := fc.expr(x.X)
	if err != nil {
		return 0, err
	}
	br := fc.emit(ir.Instr{Op: ir.OpBr, A: a, Targets: [2]int{-1, -1}, Pos: x.Pos(), PopPC: ir.NoPopPC})
	evalY := func() error {
		b, err := fc.expr(x.Y)
		if err != nil {
			return err
		}
		zero := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpConst, A: zero, Imm: 0, Pos: x.Pos()})
		fc.emit(ir.Instr{Op: ir.OpNe, A: dst, B: b, C: zero, Pos: x.Pos()})
		return nil
	}
	if x.Op == token.LAnd {
		// taken -> evaluate Y; not taken -> dst = 0
		fc.fn.Code[br].Targets[0] = fc.here()
		if err := evalY(); err != nil {
			return 0, err
		}
		skip := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: x.Pos()})
		fc.fn.Code[br].Targets[1] = fc.here()
		fc.emit(ir.Instr{Op: ir.OpConst, A: dst, Imm: 0, Pos: x.Pos()})
		fc.patch(skip, fc.here())
		return dst, nil
	}
	// LOr: taken -> dst = 1; not taken -> evaluate Y
	fc.fn.Code[br].Targets[0] = fc.here()
	fc.emit(ir.Instr{Op: ir.OpConst, A: dst, Imm: 1, Pos: x.Pos()})
	skip := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: x.Pos()})
	fc.fn.Code[br].Targets[1] = fc.here()
	if err := evalY(); err != nil {
		return 0, err
	}
	fc.patch(skip, fc.here())
	return dst, nil
}

func (fc *funcCompiler) condExpr(x *ast.CondExpr) (int, error) {
	dst := fc.temp()
	cond, err := fc.expr(x.Cond)
	if err != nil {
		return 0, err
	}
	br := fc.emit(ir.Instr{Op: ir.OpBr, A: cond, Targets: [2]int{-1, -1}, Pos: x.Pos(), PopPC: ir.NoPopPC})
	fc.fn.Code[br].Targets[0] = fc.here()
	t, err := fc.expr(x.Then)
	if err != nil {
		return 0, err
	}
	fc.emit(ir.Instr{Op: ir.OpMov, A: dst, B: t, Pos: x.Then.Pos()})
	skip := fc.emit(ir.Instr{Op: ir.OpJmp, Targets: [2]int{-1, -1}, Pos: x.Pos()})
	fc.fn.Code[br].Targets[1] = fc.here()
	e, err := fc.expr(x.Else)
	if err != nil {
		return 0, err
	}
	fc.emit(ir.Instr{Op: ir.OpMov, A: dst, B: e, Pos: x.Else.Pos()})
	fc.patch(skip, fc.here())
	return dst, nil
}

func (fc *funcCompiler) callArgs(call *ast.CallExpr) ([]int, error) {
	var args []int
	for _, a := range call.Args {
		r, err := fc.expr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return args, nil
}

func (fc *funcCompiler) call(call *ast.CallExpr, discard bool) (int, error) {
	if b, ok := fc.info.CalleeBuiltin[call]; ok {
		return fc.builtinCall(call, b)
	}
	callee := fc.info.CalleeFunc[call]
	if callee == nil {
		return 0, fmt.Errorf("%s: unresolved call to %q", call.Pos(), call.Fun.Name)
	}
	args, err := fc.callArgs(call)
	if err != nil {
		return 0, err
	}
	dst := -1
	if callee.Decl.Returns == ast.TypeInt && !discard {
		dst = fc.temp()
	}
	fc.emit(ir.Instr{Op: ir.OpCall, A: dst, Callee: fc.funcIR[callee.Decl.Name], Args: args, Pos: call.Pos()})
	if dst == -1 {
		dst = 0
	}
	return dst, nil
}

func (fc *funcCompiler) builtinCall(call *ast.CallExpr, b sema.Builtin) (int, error) {
	switch b {
	case sema.BuiltinPrint:
		for _, a := range call.Args {
			if s, ok := a.(*ast.StrLit); ok {
				idx := int64(len(fc.prog.Strings))
				fc.prog.Strings = append(fc.prog.Strings, s.Val)
				fc.emit(ir.Instr{Op: ir.OpPrintStr, Imm: idx, Pos: a.Pos()})
				continue
			}
			r, err := fc.expr(a)
			if err != nil {
				return 0, err
			}
			fc.emit(ir.Instr{Op: ir.OpPrintVal, B: r, Pos: a.Pos()})
		}
		fc.emit(ir.Instr{Op: ir.OpPrintNL, Pos: call.Pos()})
		return 0, nil
	case sema.BuiltinLen:
		r, err := fc.expr(call.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpLen, A: dst, B: r, Pos: call.Pos()})
		return dst, nil
	case sema.BuiltinAlloc:
		r, err := fc.expr(call.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpAlloc, A: dst, B: r, Pos: call.Pos()})
		return dst, nil
	default:
		args, err := fc.callArgs(call)
		if err != nil {
			return 0, err
		}
		dst := fc.temp()
		fc.emit(ir.Instr{Op: ir.OpCallB, A: dst, Builtin: b, Args: args, Pos: call.Pos()})
		return dst, nil
	}
}
