package compile_test

import (
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/vm"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGlobalLayout(t *testing.T) {
	p := build(t, `
int a;
int b = 7;
int arr[10];
int c;
int main() { return a + b + arr[0] + c; }
`)
	// Address 0 is reserved; scalars and arrays are laid out in
	// declaration order.
	if p.GlobalAddr[0] != 1 {
		t.Errorf("a addr = %d", p.GlobalAddr[0])
	}
	if p.GlobalAddr[1] != 2 || p.GlobalInit[1] != 7 {
		t.Errorf("b addr/init = %d/%d", p.GlobalAddr[1], p.GlobalInit[1])
	}
	arr := p.GlobalArray[2]
	if arr.Base() != 3 || arr.Len() != 10 {
		t.Errorf("arr ref = (%d,%d)", arr.Base(), arr.Len())
	}
	if p.GlobalAddr[3] != 13 {
		t.Errorf("c addr = %d", p.GlobalAddr[3])
	}
	if p.GlobalWords != 14 {
		t.Errorf("GlobalWords = %d", p.GlobalWords)
	}
	if len(p.GlobalNames) != 4 || p.GlobalNames[2] != "arr" {
		t.Errorf("names = %v", p.GlobalNames)
	}
}

func TestLoopBranchMetadata(t *testing.T) {
	p := build(t, `
int g;
int main() {
	int i = 0;
	while (i < 10) {
		g += i;
		i++;
	}
	return g;
}
`)
	main := p.FindFunc("main")
	var loopBr *ir.Instr
	var loopIdx int
	for i := range main.Code {
		in := &main.Code[i]
		if in.Op == ir.OpBr && in.IsLoopPred {
			loopBr = in
			loopIdx = i
		}
	}
	if loopBr == nil {
		t.Fatal("no loop predicate branch")
	}
	// The loop construct closes at the branch's false target (the loop
	// exit), which must equal the PopPC.
	if loopBr.PopPC == ir.NoPopPC {
		t.Fatal("loop branch has no PopPC")
	}
	exit := loopBr.Targets[1]
	if loopBr.PopPC != main.GPC(exit) {
		t.Errorf("PopPC = %d, want gpc of exit %d", loopBr.PopPC, main.GPC(exit))
	}
	if loopBr.Targets[0] != loopIdx+1 {
		t.Errorf("loop body target = %d, want fallthrough %d", loopBr.Targets[0], loopIdx+1)
	}
}

func TestIfBranchPopPC(t *testing.T) {
	p := build(t, `
int g;
int main() {
	int x = in(0);
	if (x > 0) {
		g = 1;
	}
	g = g + 2;
	return g;
}
`)
	main := p.FindFunc("main")
	var br *ir.Instr
	for i := range main.Code {
		in := &main.Code[i]
		if in.Op == ir.OpBr && !in.IsLoopPred {
			br = in
		}
	}
	if br == nil {
		t.Fatal("no if branch")
	}
	// The if construct closes at the join: the false target.
	if br.PopPC != main.GPC(br.Targets[1]) {
		t.Errorf("if PopPC = %d, want join %d", br.PopPC, main.GPC(br.Targets[1]))
	}
}

func TestIfWithReturnPopPCIsFunctionExit(t *testing.T) {
	p := build(t, `
int f(int x) {
	if (x > 0) {
		return 1;
	}
	return 2;
}
int main() { return f(in(0)); }
`)
	f := p.FindFunc("f")
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op == ir.OpBr {
			if in.PopPC != ir.NoPopPC {
				t.Errorf("branch with both arms returning: PopPC = %d, want NoPopPC", in.PopPC)
			}
		}
	}
}

func TestShortCircuitCompiles(t *testing.T) {
	p := build(t, `
int main() {
	int a = in(0);
	int b = in(1);
	return (a > 0 && b > 0) || a == b;
}
`)
	main := p.FindFunc("main")
	brs := 0
	for i := range main.Code {
		if main.Code[i].Op == ir.OpBr && !main.Code[i].IsLoopPred {
			brs++
		}
	}
	if brs < 2 {
		t.Errorf("short-circuit lowering produced %d branches, want >= 2", brs)
	}
}

func TestDoWhileKeepsLoopPredicate(t *testing.T) {
	// do-while desugars to while(1); the constant condition must still be
	// a real loop-predicate branch so iterations become construct
	// instances (rule 4 applies).
	p := build(t, `
int g;
int main() {
	int i = 0;
	do { g += i; i++; } while (i < 3);
	return g;
}
`)
	main := p.FindFunc("main")
	found := false
	for i := range main.Code {
		if main.Code[i].Op == ir.OpBr && main.Code[i].IsLoopPred {
			found = true
		}
	}
	if !found {
		t.Error("do-while lost its loop predicate")
	}
}

func TestStringPool(t *testing.T) {
	p := build(t, `
int main() {
	print("a", 1, "b");
	print("a");
	return 0;
}
`)
	// Strings are pooled per occurrence (no dedup required, but all
	// reachable).
	if len(p.Strings) < 3 {
		t.Errorf("strings = %v", p.Strings)
	}
	main := p.FindFunc("main")
	prints := map[ir.Op]int{}
	for i := range main.Code {
		prints[main.Code[i].Op]++
	}
	if prints[ir.OpPrintStr] != 3 || prints[ir.OpPrintVal] != 1 || prints[ir.OpPrintNL] != 2 {
		t.Errorf("print ops = %v", prints)
	}
}

func TestCompoundAssignGlobal(t *testing.T) {
	p := build(t, `
int g;
int main() { g += 5; return g; }
`)
	main := p.FindFunc("main")
	// Compound assignment on a global must load, add, store.
	seq := []ir.Op{}
	for i := range main.Code {
		switch main.Code[i].Op {
		case ir.OpLoadG, ir.OpStoreG, ir.OpAdd:
			seq = append(seq, main.Code[i].Op)
		}
	}
	want := []ir.Op{ir.OpLoadG, ir.OpAdd, ir.OpStoreG, ir.OpLoadG}
	if len(seq) != len(want) {
		t.Fatalf("memory op sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("memory op sequence = %v, want %v", seq, want)
		}
	}
}

func TestVoidCallDiscardsResult(t *testing.T) {
	p := build(t, `
int f() { return 3; }
int main() { f(); return 0; }
`)
	main := p.FindFunc("main")
	for i := range main.Code {
		in := &main.Code[i]
		if in.Op == ir.OpCall && in.A != -1 {
			t.Errorf("discarded call stores into r%d", in.A)
		}
	}
}

func TestSpawnMarksCallee(t *testing.T) {
	p := build(t, `
void w(int i) {}
int main() { spawn w(1); sync; return 0; }
`)
	if f := p.FindFunc("w"); !f.IsSpawnable {
		t.Error("spawn target not marked spawnable")
	}
}

func TestNumRegsCoversTemps(t *testing.T) {
	p := build(t, `
int main() {
	int a = 1;
	int b = 2;
	return (a + b) * (a - b) + (a * b) / (1 + a * a + b * b);
}
`)
	main := p.FindFunc("main")
	for i := range main.Code {
		in := &main.Code[i]
		for _, r := range []int{in.A, in.B, in.C} {
			if r >= main.NumRegs {
				t.Fatalf("instr %d uses r%d >= NumRegs %d", i, r, main.NumRegs)
			}
		}
		for _, r := range in.Args {
			if r >= main.NumRegs {
				t.Fatalf("instr %d arg r%d >= NumRegs %d", i, r, main.NumRegs)
			}
		}
	}
}

func TestBranchTargetsInRange(t *testing.T) {
	for _, src := range []string{
		`int main() { for (int i = 0; i < 3; i++) { if (i == 1) { continue; } if (i == 2) { break; } } return 0; }`,
		`int main() { int i = 0; while (i < 3) { i++; } return i; }`,
		`int main() { int x = in(0); return x > 0 ? (x < 10 ? 1 : 2) : 3; }`,
		`int main() { int x = in(0); return x > 0 && (x | 1) < 9 || x == 4; }`,
	} {
		p := build(t, src)
		for _, f := range p.Funcs {
			for i := range f.Code {
				in := &f.Code[i]
				switch in.Op {
				case ir.OpJmp:
					if in.Targets[0] < 0 || in.Targets[0] >= len(f.Code) {
						t.Fatalf("%s: jmp target %d out of range", src, in.Targets[0])
					}
				case ir.OpBr:
					for _, tgt := range in.Targets {
						if tgt < 0 || tgt >= len(f.Code) {
							t.Fatalf("%s: br target %d out of range", src, tgt)
						}
					}
				}
			}
		}
	}
}

// TestKitchenSinkExecutes drives every lowering path (all compound
// assignment operators, local array forms, nested control flow, ternary
// discard, every builtin) through the VM and checks the result.
func TestKitchenSinkExecutes(t *testing.T) {
	src := `
int gs = 10;
int ga[8];
int sum(int a[], int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += a[i]; }
	return s;
}
int main() {
	int x = 7;
	x += 3;
	x -= 1;
	x *= 2;
	x /= 3;
	x %= 5;
	x <<= 4;
	x >>= 2;
	x &= 0xff;
	x |= 0x10;
	x ^= 0x3;
	gs += x;
	gs -= 1;
	gs *= 2;
	ga[0] = 5;
	ga[0] += 2;
	ga[0] <<= 1;
	int la[4];
	la[1] = 9;
	int lb[] = alloc(3);
	lb[2] = 4;
	int cond = (x > 0) ? sum(ga, 8) : sum(la, 4);
	1 + 2;
	sum(lb, 3);
	srand(7);
	int r1 = rand();
	srand(7);
	assert(r1 == rand());
	out(x);
	out(gs);
	out(cond);
	out(la[1] + lb[2]);
	out(len(lb));
	return 0;
}`
	prog := build(t, src)
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Independently compute the scalar chain.
	x := int64(7)
	x += 3
	x -= 1
	x *= 2
	x /= 3
	x %= 5
	x <<= 4
	x >>= 2
	x &= 0xff
	x |= 0x10
	x ^= 0x3
	gs := int64(10)
	gs += x
	gs -= 1
	gs *= 2
	ga0 := int64(5)
	ga0 += 2
	ga0 <<= 1
	want := []int64{x, gs, ga0, 9 + 4, 3}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

// TestCompileErrorsSurface covers compile-stage failure paths.
func TestCompileErrorsSurface(t *testing.T) {
	// Oversized global array trips the compile-time layout check.
	if _, err := compile.Build("big.mc", `int g[999999999]; int main() { return 0; }`); err == nil {
		t.Error("oversized global accepted")
	}
}
