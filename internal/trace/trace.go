// Package trace records VM instrumentation events and replays them into
// the profiler offline.
//
// Alchemist's defining design choice is being an *online* profiler: it
// never materializes the execution trace (paper §V contrasts it with
// trace-based tools like ParaMeter). This package implements the
// whole-trace baseline: a Recorder captures every event, and Replay feeds
// a recorded trace through the same profiling algorithm. The differential
// test in trace_test.go shows the two produce identical profiles; the
// benchmark quantifies the trace memory the online design avoids.
package trace

import (
	"fmt"

	"alchemist/internal/core"
	"alchemist/internal/ir"
	"alchemist/internal/vm"
)

// Kind tags one recorded event.
type Kind uint8

// Event kinds.
const (
	KStep Kind = iota
	KLoad
	KStore
	KEnter
	KExit
	KBranchTaken
	KBranchNotTaken
)

func (k Kind) String() string {
	switch k {
	case KStep:
		return "step"
	case KLoad:
		return "load"
	case KStore:
		return "store"
	case KEnter:
		return "enter"
	case KExit:
		return "exit"
	case KBranchTaken:
		return "br+"
	case KBranchNotTaken:
		return "br-"
	default:
		return "?"
	}
}

// Event is one instrumentation event. GPC is the global PC (for
// enter/exit it is the function base); Addr carries the memory address
// for loads/stores.
type Event struct {
	Addr int64
	GPC  int32
	Kind Kind
}

// Recorder implements vm.Tracer by appending events.
type Recorder struct {
	Events []Event
}

var _ vm.Tracer = (*Recorder)(nil)

// Step records an instruction retirement.
func (r *Recorder) Step(gpc int) {
	r.Events = append(r.Events, Event{Kind: KStep, GPC: int32(gpc)})
}

// Load records a tracked read.
func (r *Recorder) Load(addr int64, gpc int) {
	r.Events = append(r.Events, Event{Kind: KLoad, GPC: int32(gpc), Addr: addr})
}

// Store records a tracked write.
func (r *Recorder) Store(addr int64, gpc int) {
	r.Events = append(r.Events, Event{Kind: KStore, GPC: int32(gpc), Addr: addr})
}

// EnterFunc records a frame entry.
func (r *Recorder) EnterFunc(f *ir.Func) {
	r.Events = append(r.Events, Event{Kind: KEnter, GPC: int32(f.Base)})
}

// ExitFunc records a frame exit.
func (r *Recorder) ExitFunc(f *ir.Func) {
	r.Events = append(r.Events, Event{Kind: KExit, GPC: int32(f.Base)})
}

// Branch records a resolved conditional branch.
func (r *Recorder) Branch(in *ir.Instr, gpc int, taken bool) {
	k := KBranchNotTaken
	if taken {
		k = KBranchTaken
	}
	r.Events = append(r.Events, Event{Kind: k, GPC: int32(gpc)})
}

// Bytes reports the in-memory size of the recorded trace.
func (r *Recorder) Bytes() int64 {
	return int64(len(r.Events)) * 16
}

// Record runs prog sequentially, capturing the full event trace along
// with the VM result.
func Record(prog *ir.Program, cfg vm.Config) (*Recorder, *vm.Result, error) {
	rec := &Recorder{}
	cfg.Parallel = false
	cfg.Tracer = rec
	m, err := vm.New(prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, nil, err
	}
	return rec, res, nil
}

// Replay feeds a recorded trace through a fresh profiler, producing the
// same profile the online run would have produced.
func Replay(prog *ir.Program, events []Event, memWords int64, opts core.Options) (*core.Profile, error) {
	p := core.NewProfiler(prog, memWords, opts)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KStep:
			p.Step(int(ev.GPC))
		case KLoad:
			p.Load(ev.Addr, int(ev.GPC))
		case KStore:
			p.Store(ev.Addr, int(ev.GPC))
		case KEnter:
			f := prog.FuncAt(int(ev.GPC))
			if f == nil || f.Base != int(ev.GPC) {
				return nil, fmt.Errorf("trace: enter event for unknown function base %d", ev.GPC)
			}
			p.EnterFunc(f)
		case KExit:
			f := prog.FuncAt(int(ev.GPC))
			if f == nil {
				return nil, fmt.Errorf("trace: exit event for unknown function base %d", ev.GPC)
			}
			p.ExitFunc(f)
		case KBranchTaken, KBranchNotTaken:
			in := prog.InstrAt(int(ev.GPC))
			if in == nil || in.Op != ir.OpBr {
				return nil, fmt.Errorf("trace: branch event at non-branch pc %d", ev.GPC)
			}
			p.Branch(in, int(ev.GPC), ev.Kind == KBranchTaken)
		default:
			return nil, fmt.Errorf("trace: unknown event kind %d", ev.Kind)
		}
	}
	return p.Finish(), nil
}
