package trace_test

import (
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/progs"
	"alchemist/internal/trace"
	"alchemist/internal/vm"
)

// equalProfiles compares every construct and edge of two profiles.
func equalProfiles(t *testing.T, online, offline *core.Profile) {
	t.Helper()
	if online.TotalSteps != offline.TotalSteps {
		t.Errorf("steps: %d vs %d", online.TotalSteps, offline.TotalSteps)
	}
	if online.StaticConstructs != offline.StaticConstructs {
		t.Errorf("static: %d vs %d", online.StaticConstructs, offline.StaticConstructs)
	}
	if online.DynamicConstructs != offline.DynamicConstructs {
		t.Errorf("dynamic: %d vs %d", online.DynamicConstructs, offline.DynamicConstructs)
	}
	if len(online.Constructs) != len(offline.Constructs) {
		t.Fatalf("construct counts differ: %d vs %d", len(online.Constructs), len(offline.Constructs))
	}
	for i, a := range online.Constructs {
		b := offline.Constructs[i]
		if a.Label != b.Label || a.Kind != b.Kind || a.Ttotal != b.Ttotal ||
			a.Instances != b.Instances || a.MinDur != b.MinDur || a.MaxDur != b.MaxDur {
			t.Fatalf("construct %d differs:\n  online  %+v\n  offline %+v", i, a, b)
		}
		if len(a.Edges) != len(b.Edges) {
			t.Fatalf("construct %d edge counts: %d vs %d", i, len(a.Edges), len(b.Edges))
		}
		for j := range a.Edges {
			if a.Edges[j] != b.Edges[j] {
				t.Fatalf("construct %d edge %d differs:\n  %+v\n  %+v", i, j, a.Edges[j], b.Edges[j])
			}
		}
	}
	for k, v := range online.NestDirect {
		if offline.NestDirect[k] != v {
			t.Fatalf("nest counter %d differs: %d vs %d", k, v, offline.NestDirect[k])
		}
	}
}

// TestReplayEqualsOnline is the differential test: the offline
// (whole-trace) baseline must reproduce the online profile exactly, for
// every workload.
func TestReplayEqualsOnline(t *testing.T) {
	for _, w := range progs.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := compile.Build(w.Name+".mc", w.Source)
			if err != nil {
				t.Fatal(err)
			}
			scale := w.SmallScale
			if w.Name == "bzip2" {
				// bzip2's small scale still yields a ~10M-event trace;
				// one block per file keeps this differential test quick.
				scale = 1200
			}
			input := w.InputFor(scale)
			cfg := vm.Config{Input: input, MemWords: w.MemWords}

			online, _, err := core.ProfileProgram(prog, cfg, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			rec, _, err := trace.Record(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			offline, err := trace.Replay(prog, rec.Events, w.MemWords, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			equalProfiles(t, online, offline)
			t.Logf("%s: trace %d events (%d MB) vs online O(pool) memory",
				w.Name, len(rec.Events), rec.Bytes()>>20)
		})
	}
}

// TestTraceShape sanity-checks the recorded event stream.
func TestTraceShape(t *testing.T) {
	prog, err := compile.Build("t.mc", `
int g;
void f() { g = g + 1; }
int main() {
	for (int i = 0; i < 3; i++) { f(); }
	return g;
}`)
	if err != nil {
		t.Fatal(err)
	}
	rec, res, err := trace.Record(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, ev := range rec.Events {
		counts[ev.Kind]++
	}
	if int64(counts[trace.KStep]) != res.Steps {
		t.Errorf("step events %d != executed steps %d", counts[trace.KStep], res.Steps)
	}
	// main + 3 calls to f.
	if counts[trace.KEnter] != 4 || counts[trace.KExit] != 4 {
		t.Errorf("enter/exit = %d/%d, want 4/4", counts[trace.KEnter], counts[trace.KExit])
	}
	// f performs one load and one store per call; main's loop none.
	if counts[trace.KLoad] < 3 || counts[trace.KStore] < 3 {
		t.Errorf("load/store = %d/%d", counts[trace.KLoad], counts[trace.KStore])
	}
	// 3 taken + 1 not-taken loop branch evaluations... plus none else.
	if counts[trace.KBranchTaken] != 3 || counts[trace.KBranchNotTaken] != 1 {
		t.Errorf("branches = %d taken / %d not", counts[trace.KBranchTaken], counts[trace.KBranchNotTaken])
	}
	if rec.Bytes() != int64(len(rec.Events))*16 {
		t.Error("Bytes() inconsistent")
	}
}

// TestReplayRejectsCorruptTraces checks the replay validators.
func TestReplayRejectsCorruptTraces(t *testing.T) {
	prog, err := compile.Build("t.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]trace.Event{
		{{Kind: trace.KEnter, GPC: 999}},
		{{Kind: trace.KBranchTaken, GPC: 0}}, // pc 0 is not a branch here
		{{Kind: trace.Kind(99)}},
	}
	for i, evs := range cases {
		if _, err := trace.Replay(prog, evs, 0, core.DefaultOptions()); err == nil {
			t.Errorf("case %d: corrupt trace accepted", i)
		}
	}
}

// BenchmarkOnlineVsTrace quantifies the paper's design point: online
// profiling avoids materializing multi-million-event traces.
func BenchmarkOnlineVsTrace(b *testing.B) {
	w := progs.Gzip()
	prog, err := compile.Build("gzip.mc", w.Source)
	if err != nil {
		b.Fatal(err)
	}
	input := w.InputFor(w.SmallScale)
	cfg := vm.Config{Input: input, MemWords: w.MemWords}
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.ProfileProgram(prog, cfg, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("record+replay", func(b *testing.B) {
		var traceBytes int64
		for i := 0; i < b.N; i++ {
			rec, _, err := trace.Record(prog, cfg)
			if err != nil {
				b.Fatal(err)
			}
			traceBytes = rec.Bytes()
			if _, err := trace.Replay(prog, rec.Events, w.MemWords, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(traceBytes), "trace-bytes")
	})
}
