package cfg_test

import (
	"strings"
	"testing"

	"alchemist/internal/cfg"
	"alchemist/internal/compile"
	"alchemist/internal/ir"
)

func buildFunc(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	prog, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FindFunc(name)
	if f == nil {
		t.Fatalf("no function %s", name)
	}
	return f
}

func TestStraightLine(t *testing.T) {
	f := buildFunc(t, `int main() { int a = 1; int b = 2; return a + b; }`, "main")
	g := cfg.New(f)
	// The body block plus the unreachable implicit-return tail the
	// compiler emits after the explicit return, plus the virtual exit.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d: %s", len(g.Blocks), g)
	}
	body := g.BlockOf(0)
	if body.Start != 0 {
		t.Errorf("body span [%d,%d)", body.Start, body.End)
	}
	if f.Code[body.End-1].Op != ir.OpRet {
		t.Errorf("body does not end in ret")
	}
	if len(body.Succs) != 1 || body.Succs[0] != g.Exit {
		t.Errorf("succs = %v", body.Succs)
	}
}

func TestIfElse(t *testing.T) {
	f := buildFunc(t, `
int main() {
	int x = in(0);
	int r;
	if (x > 0) { r = 1; } else { r = 2; }
	return r;
}`, "main")
	g := cfg.New(f)
	// Find the branch block: it must have two successors.
	var brBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.Start < b.End && f.Code[b.End-1].Op == ir.OpBr {
			brBlock = b
		}
	}
	if brBlock == nil {
		t.Fatal("no branch block")
	}
	if len(brBlock.Succs) != 2 {
		t.Fatalf("branch succs = %v", brBlock.Succs)
	}
	// Both arms converge on the return block.
	a, b := g.Blocks[brBlock.Succs[0]], g.Blocks[brBlock.Succs[1]]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Errorf("arms do not converge: %v vs %v", a.Succs, b.Succs)
	}
}

func TestLoopBackEdge(t *testing.T) {
	f := buildFunc(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 3; i++) { s += i; }
	return s;
}`, "main")
	g := cfg.New(f)
	// There must be a back edge: some block whose successor has a lower
	// or equal start.
	back := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if g.Blocks[s].Start <= b.Start && b.Start < b.End {
				back = true
			}
		}
	}
	if !back {
		t.Error("no back edge found in loop CFG")
	}
}

func TestMultipleReturnsEdgeToExit(t *testing.T) {
	f := buildFunc(t, `
int f(int x) {
	if (x > 0) { return 1; }
	return 2;
}
int main() { return f(in(0)); }`, "f")
	g := cfg.New(f)
	preds := g.Blocks[g.Exit].Preds
	if len(preds) < 2 {
		t.Errorf("exit preds = %v, want >= 2 (one per return)", preds)
	}
}

func TestBlockOfConsistency(t *testing.T) {
	f := buildFunc(t, `
int main() {
	int s = 0;
	for (int i = 0; i < 3; i++) {
		if (i % 2 == 0) { s += i; } else { s -= i; }
	}
	return s;
}`, "main")
	g := cfg.New(f)
	for i := range f.Code {
		b := g.BlockOf(i)
		if i < b.Start || i >= b.End {
			t.Fatalf("instruction %d mapped to block [%d,%d)", i, b.Start, b.End)
		}
	}
	// Every non-exit block has at least one successor and all edges are
	// symmetric with Preds.
	for _, b := range g.Blocks {
		if b.ID == g.Exit {
			continue
		}
		if b.Start < b.End && len(b.Succs) == 0 {
			t.Errorf("block %d has no successors", b.ID)
		}
		for _, s := range b.Succs {
			found := false
			for _, p := range g.Blocks[s].Preds {
				if p == b.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from preds", b.ID, s)
			}
		}
	}
}

func TestEmptyFunc(t *testing.T) {
	g := cfg.New(&ir.Func{Name: "empty"})
	if len(g.Blocks) != 1 || g.Exit != 0 {
		t.Errorf("empty function CFG: %s", g)
	}
}

func TestString(t *testing.T) {
	f := buildFunc(t, `int main() { return 0; }`, "main")
	s := cfg.New(f).String()
	if !strings.Contains(s, "cfg main") || !strings.Contains(s, "(exit)") {
		t.Errorf("String() = %q", s)
	}
}
