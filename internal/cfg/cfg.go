// Package cfg builds control-flow graphs over ir functions.
//
// A Graph partitions a function's instructions into basic blocks and adds
// a single virtual exit block that every OpRet edges to, so post-dominance
// is well defined even with multiple returns. Blocks that sit on infinite
// loops (no path to any return) simply have no path to the exit block;
// the dominance package treats them as having no post-dominator.
package cfg

import (
	"fmt"
	"strings"

	"alchemist/internal/ir"
)

// Block is a basic block: instructions [Start, End) of the function.
type Block struct {
	ID    int
	Start int // first instruction index
	End   int // one past the last instruction index
	Succs []int
	Preds []int
}

// Graph is the CFG of one function. Block 0 is the entry block; the block
// with ID Exit is the virtual exit (Start == End == len(code)).
type Graph struct {
	Fn     *ir.Func
	Blocks []*Block
	Exit   int
	// blockOf maps each instruction index to its block ID.
	blockOf []int
}

// BlockOf returns the block containing instruction idx.
func (g *Graph) BlockOf(idx int) *Block { return g.Blocks[g.blockOf[idx]] }

// New builds the CFG for fn.
func New(fn *ir.Func) *Graph {
	n := len(fn.Code)
	if n == 0 {
		g := &Graph{Fn: fn}
		exit := &Block{ID: 0}
		g.Blocks = []*Block{exit}
		g.Exit = 0
		return g
	}

	leader := make([]bool, n)
	leader[0] = true
	for i := range fn.Code {
		in := &fn.Code[i]
		switch in.Op {
		case ir.OpJmp:
			leader[in.Targets[0]] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpBr:
			leader[in.Targets[0]] = true
			leader[in.Targets[1]] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpRet:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	g := &Graph{Fn: fn, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || leader[i] {
			b := &Block{ID: len(g.Blocks), Start: start, End: i}
			g.Blocks = append(g.Blocks, b)
			for j := start; j < i; j++ {
				g.blockOf[j] = b.ID
			}
			start = i
		}
	}
	exit := &Block{ID: len(g.Blocks), Start: n, End: n}
	g.Blocks = append(g.Blocks, exit)
	g.Exit = exit.ID

	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for _, b := range g.Blocks {
		if b.ID == g.Exit || b.Start == b.End {
			continue
		}
		last := &fn.Code[b.End-1]
		switch last.Op {
		case ir.OpJmp:
			addEdge(b.ID, g.blockOf[last.Targets[0]])
		case ir.OpBr:
			addEdge(b.ID, g.blockOf[last.Targets[0]])
			t1 := g.blockOf[last.Targets[1]]
			if len(b.Succs) == 0 || b.Succs[0] != t1 {
				addEdge(b.ID, t1)
			} else {
				// Both arms target the same block; keep a single edge.
				addEdge(b.ID, t1)
			}
		case ir.OpRet:
			addEdge(b.ID, g.Exit)
		default:
			if b.End < n {
				addEdge(b.ID, g.blockOf[b.End])
			} else {
				addEdge(b.ID, g.Exit)
			}
		}
	}
	return g
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Fn.Name)
	for _, b := range g.Blocks {
		tag := ""
		if b.ID == g.Exit {
			tag = " (exit)"
		}
		fmt.Fprintf(&sb, "  B%d [%d,%d)%s -> %v\n", b.ID, b.Start, b.End, tag, b.Succs)
	}
	return sb.String()
}
