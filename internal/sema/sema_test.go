package sema_test

import (
	"strings"
	"testing"
	"testing/quick"

	"alchemist/internal/ast"
	"alchemist/internal/parser"
	"alchemist/internal/sema"
	"alchemist/internal/source"
)

func check(t *testing.T, src string) *sema.Info {
	t.Helper()
	file := source.NewFile("t.mc", src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags.Err())
	}
	info := sema.Check(prog, &diags)
	if diags.HasErrors() {
		t.Fatalf("check: %v", diags.Err())
	}
	return info
}

func checkErr(t *testing.T, src, want string) {
	t.Helper()
	file := source.NewFile("t.mc", src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if !diags.HasErrors() {
		sema.Check(prog, &diags)
	}
	err := diags.Err()
	if err == nil {
		t.Fatalf("check %q: want error %q", src, want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("check %q: error %q does not contain %q", src, err, want)
	}
}

func TestSymbolKinds(t *testing.T) {
	info := check(t, `
int gs;
int ga[4];
int f(int ps, int pa[]) {
	int ls;
	int la[4];
	return ps + ls + pa[0] + la[0] + gs + ga[0];
}
int main() { return 0; }
`)
	wantKinds := map[string]sema.SymbolKind{
		"gs": sema.GlobalScalar,
		"ga": sema.GlobalArray,
	}
	for _, g := range info.Globals {
		if k, ok := wantKinds[g.Name]; ok && g.Kind != k {
			t.Errorf("%s kind = %v, want %v", g.Name, g.Kind, k)
		}
	}
	f := info.Funcs["f"]
	if f == nil {
		t.Fatal("no f")
	}
	if len(f.Params) != 2 {
		t.Fatalf("params = %d", len(f.Params))
	}
	if f.Params[0].Kind != sema.ParamScalar || f.Params[1].Kind != sema.ParamArray {
		t.Error("param kinds wrong")
	}
	if len(f.Locals) != 2 {
		t.Fatalf("locals = %d", len(f.Locals))
	}
	if f.Locals[0].Kind != sema.LocalScalar || f.Locals[1].Kind != sema.LocalArray {
		t.Error("local kinds wrong")
	}
	// Slots are densely assigned: params first.
	if f.Params[0].Slot != 0 || f.Params[1].Slot != 1 ||
		f.Locals[0].Slot != 2 || f.Locals[1].Slot != 3 {
		t.Error("slot assignment wrong")
	}
	if f.NumSlots != 4 {
		t.Errorf("NumSlots = %d", f.NumSlots)
	}
}

func TestShadowing(t *testing.T) {
	info := check(t, `
int x;
int main() {
	int x = 1;
	{
		int x = 2;
		out(x);
	}
	out(x);
	return x;
}
`)
	main := info.Funcs["main"]
	if len(main.Locals) != 2 {
		t.Fatalf("locals = %d, want 2 (two nested x's)", len(main.Locals))
	}
	// Each ident use resolves to some symbol; count how many distinct
	// symbols the x uses touch.
	seen := map[*sema.Symbol]bool{}
	for id, sym := range info.Uses {
		if id.Name == "x" {
			seen[sym] = true
		}
	}
	if len(seen) != 2 {
		t.Errorf("x uses resolve to %d symbols, want 2 (global x is fully shadowed)", len(seen))
	}
}

func TestBuiltinResolution(t *testing.T) {
	info := check(t, `
int a[4];
int main() {
	print("v", 1);
	out(len(a));
	int b[] = alloc(in(0) + inlen());
	srand(1);
	assert(rand() >= 0);
	return len(b);
}
`)
	found := map[sema.Builtin]bool{}
	for _, b := range info.CalleeBuiltin {
		found[b] = true
	}
	for _, want := range []sema.Builtin{
		sema.BuiltinPrint, sema.BuiltinOut, sema.BuiltinLen, sema.BuiltinAlloc,
		sema.BuiltinIn, sema.BuiltinInLen, sema.BuiltinSrand, sema.BuiltinRand,
		sema.BuiltinAssert,
	} {
		if !found[want] {
			t.Errorf("builtin %d not resolved", want)
		}
	}
}

func TestExprTypes(t *testing.T) {
	info := check(t, `
int a[4];
int main() {
	int x = a[1] + 2;
	int b[] = alloc(3);
	return x + len(b);
}
`)
	arrays, ints := 0, 0
	for _, tk := range info.Types {
		switch tk {
		case ast.TypeArray:
			arrays++
		case ast.TypeInt:
			ints++
		}
	}
	if arrays == 0 || ints == 0 {
		t.Errorf("types arrays=%d ints=%d", arrays, ints)
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { int a[4]; return a + 1; }`, "expected an int expression"},
		{`int main() { int a[4]; a[0] = a; return 0; }`, "needs an int value"},
		{`int main() { int x = 3; return x[0]; }`, "not an array"},
		{`int main() { int a[4]; a += 1; return 0; }`, "only supports plain assignment"},
		{`int main() { return 1[0]; }`, "only named arrays"},
		{`void f() {} void f2() { return 3; }  int main() { return 0; }`, "void function"},
		{`int f() { return; } int main() { return 0; }`, "missing return value"},
		{`int f(int a[]) { return 0; } int main() { return f(3); }`, "must be int[]"},
		{`int f(int a) { return 0; } int g[2]; int main() { return f(g); }`, "must be int"},
		{`int f(int a) { return a; } int main() { return f(1, 2); }`, "takes 1 arguments"},
		{`int main() { return print(1); }`, "expected an int expression"},
		{`int main() { out(); return 0; }`, `takes 1 argument`},
		{`int len() { return 0; } int main() { return 0; }`, "shadows a builtin"},
		{`int g[]; int main() { return 0; }`, "must have a constant size"},
		{`int g[2+x]; int main() { return 0; }`, "must be a constant"},
		{`int main() { int a[]; return 0; }`, "needs a size or an initializer"},
		{`int main() { int a[] = 3; return 0; }`, "must be an array expression"},
		{`int main(int x) { return 0; }`, "main must take no parameters"},
		{`void main() {} void main() {} `, "duplicate function"},
		{`int g; int g; int main() { return 0; }`, "duplicate global"},
		{`int f(int a, int a) { return 0; } int main() { return 0; }`, "duplicate parameter"},
	}
	for _, tc := range cases {
		checkErr(t, tc.src, tc.want)
	}
}

func TestConstValue(t *testing.T) {
	cases := []struct {
		expr string
		want int64
		ok   bool
	}{
		{"5", 5, true},
		{"2 + 3 * 4", 14, true},
		{"-(7)", -7, true},
		{"~0", -1, true},
		{"!3", 0, true},
		{"!0", 1, true},
		{"1 << 10", 1024, true},
		{"256 >> 4", 16, true},
		{"12 / 4", 3, true},
		{"13 % 4", 1, true},
		{"7 & 3", 3, true},
		{"4 | 1", 5, true},
		{"6 ^ 3", 5, true},
		{"10 - 4", 6, true},
		{"1 / 0", 0, false},
		{"1 % 0", 0, false},
		{"x + 1", 0, false},
		{"in(0)", 0, false},
	}
	for _, tc := range cases {
		prog, err := parser.ParseSource("c.mc", "int main() { return "+tc.expr+"; }")
		if err != nil {
			t.Fatalf("%s: %v", tc.expr, err)
		}
		ret := prog.FindFunc("main").Body.List[0].(*ast.ReturnStmt)
		got, ok := sema.ConstValue(ret.X)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ConstValue(%s) = %d,%v want %d,%v", tc.expr, got, ok, tc.want, tc.ok)
		}
	}
}

// TestConstValueMatchesArithmetic checks the compile-time evaluator
// against Go semantics on random operand pairs.
func TestConstValueMatchesArithmetic(t *testing.T) {
	ops := []struct {
		op string
		fn func(a, b int64) int64
	}{
		{"+", func(a, b int64) int64 { return a + b }},
		{"-", func(a, b int64) int64 { return a - b }},
		{"*", func(a, b int64) int64 { return a * b }},
		{"&", func(a, b int64) int64 { return a & b }},
		{"|", func(a, b int64) int64 { return a | b }},
		{"^", func(a, b int64) int64 { return a ^ b }},
	}
	for _, op := range ops {
		op := op
		f := func(a16, b16 int16) bool {
			a, b := int64(a16), int64(b16)
			src := "int main() { return " + fmtConst(a) + " " + op.op + " " + fmtConst(b) + "; }"
			prog, err := parser.ParseSource("q.mc", src)
			if err != nil {
				return false
			}
			ret := prog.FindFunc("main").Body.List[0].(*ast.ReturnStmt)
			got, ok := sema.ConstValue(ret.X)
			return ok && got == op.fn(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("op %s: %v", op.op, err)
		}
	}
}

// fmtConst renders negative constants as (0 - n) since mini-C literals
// are unsigned and unary minus on the min value is fine.
func fmtConst(v int64) string {
	if v < 0 {
		return "(0 - " + fmtConst(-v) + ")"
	}
	digits := "0123456789"
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{digits[v%10]}, b...)
		v /= 10
	}
	return string(b)
}
