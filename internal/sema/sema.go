// Package sema performs name resolution and type checking for mini-C.
//
// mini-C has two value types (int, int[]) plus void function results. Sema
// resolves every identifier to a Symbol, assigns frame slots to locals and
// parameters, types every expression, and validates calls against both
// user-defined functions and the builtin table.
package sema

import (
	"alchemist/internal/ast"
	"alchemist/internal/source"
	"alchemist/internal/token"
)

// SymbolKind classifies where a variable lives.
type SymbolKind int

const (
	// GlobalScalar is a global int, stored in tracked flat memory.
	GlobalScalar SymbolKind = iota
	// GlobalArray is a global int array in tracked flat memory.
	GlobalArray
	// LocalScalar is a function-local int held in a VM register
	// (untracked, like a register-allocated C local).
	LocalScalar
	// LocalArray is a function-local array; its storage is bump-allocated
	// in tracked flat memory per activation.
	LocalArray
	// ParamScalar is an int parameter (register).
	ParamScalar
	// ParamArray is an array parameter (register holding a base address).
	ParamArray
)

func (k SymbolKind) String() string {
	switch k {
	case GlobalScalar:
		return "global int"
	case GlobalArray:
		return "global array"
	case LocalScalar:
		return "local int"
	case LocalArray:
		return "local array"
	case ParamScalar:
		return "param int"
	case ParamArray:
		return "param array"
	}
	return "?"
}

// IsArray reports whether the symbol holds an array reference.
func (k SymbolKind) IsArray() bool {
	return k == GlobalArray || k == LocalArray || k == ParamArray
}

// Symbol is a resolved variable.
type Symbol struct {
	Name string
	Kind SymbolKind
	Pos  source.Pos
	// Slot is the frame register index for locals/params, or the global
	// index for globals (assigned in declaration order).
	Slot int
	// Decl is the declaration for globals and local variables (nil for
	// parameters).
	Decl *ast.VarDecl
}

// Builtin identifies a builtin function.
type Builtin int

// Builtins. See the vm package for their runtime semantics.
const (
	BuiltinNone Builtin = iota
	BuiltinPrint
	BuiltinLen
	BuiltinAlloc
	BuiltinRand
	BuiltinSrand
	BuiltinIn
	BuiltinInLen
	BuiltinOut
	BuiltinAssert
)

var builtins = map[string]Builtin{
	"print":  BuiltinPrint,
	"len":    BuiltinLen,
	"alloc":  BuiltinAlloc,
	"rand":   BuiltinRand,
	"srand":  BuiltinSrand,
	"in":     BuiltinIn,
	"inlen":  BuiltinInLen,
	"out":    BuiltinOut,
	"assert": BuiltinAssert,
}

// FuncInfo summarizes a checked function.
type FuncInfo struct {
	Decl *ast.FuncDecl
	// Params are the parameter symbols in order.
	Params []*Symbol
	// NumSlots is the number of frame registers the function needs
	// (params + scalar locals + array-reference locals).
	NumSlots int
	// Locals lists every local symbol (for diagnostics and tooling).
	Locals []*Symbol
}

// Info is the result of type checking a program.
type Info struct {
	Program *ast.Program
	// Uses maps every variable identifier to its resolved symbol.
	Uses map[*ast.Ident]*Symbol
	// CalleeFunc maps calls to user-defined functions.
	CalleeFunc map[*ast.CallExpr]*FuncInfo
	// CalleeBuiltin maps calls to builtins.
	CalleeBuiltin map[*ast.CallExpr]Builtin
	// Types records the type of every expression.
	Types map[ast.Expr]ast.TypeKind
	// Funcs maps function names to their info.
	Funcs map[string]*FuncInfo
	// Globals lists global symbols in declaration order.
	Globals []*Symbol
}

// Check resolves and type-checks prog. It always returns an Info; callers
// must consult diags for errors before trusting it.
func Check(prog *ast.Program, diags *source.DiagList) *Info {
	c := &checker{
		info: &Info{
			Program:       prog,
			Uses:          make(map[*ast.Ident]*Symbol),
			CalleeFunc:    make(map[*ast.CallExpr]*FuncInfo),
			CalleeBuiltin: make(map[*ast.CallExpr]Builtin),
			Types:         make(map[ast.Expr]ast.TypeKind),
			Funcs:         make(map[string]*FuncInfo),
		},
		diags: diags,
	}
	c.checkProgram(prog)
	return c.info
}

type checker struct {
	info  *Info
	diags *source.DiagList

	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncInfo
	loops   int
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.diags.Errorf(pos, format, args...)
}

func (c *checker) checkProgram(prog *ast.Program) {
	c.globals = make(map[string]*Symbol)
	for i, g := range prog.Globals {
		if _, exists := c.globals[g.Name]; exists {
			c.errorf(g.Pos(), "duplicate global %q", g.Name)
			continue
		}
		kind := GlobalScalar
		if g.IsArray {
			kind = GlobalArray
			if g.Size == nil {
				c.errorf(g.Pos(), "global array %q must have a constant size", g.Name)
			} else if _, ok := ConstValue(g.Size); !ok {
				c.errorf(g.Size.Pos(), "global array size for %q must be a constant expression", g.Name)
			}
		} else if g.Init != nil {
			if _, ok := ConstValue(g.Init); !ok {
				c.errorf(g.Init.Pos(), "global initializer for %q must be a constant expression", g.Name)
			}
		}
		sym := &Symbol{Name: g.Name, Kind: kind, Pos: g.Pos(), Slot: i, Decl: g}
		c.globals[g.Name] = sym
		c.info.Globals = append(c.info.Globals, sym)
	}

	// Pre-declare all functions so order does not matter.
	for _, f := range prog.Funcs {
		if _, exists := c.info.Funcs[f.Name]; exists {
			c.errorf(f.Pos(), "duplicate function %q", f.Name)
			continue
		}
		if _, isBuiltin := builtins[f.Name]; isBuiltin {
			c.errorf(f.Pos(), "function %q shadows a builtin", f.Name)
			continue
		}
		c.info.Funcs[f.Name] = &FuncInfo{Decl: f}
	}

	for _, f := range prog.Funcs {
		fi := c.info.Funcs[f.Name]
		if fi == nil || fi.Decl != f {
			continue // duplicate
		}
		c.checkFunc(fi)
	}

	if main := c.info.Funcs["main"]; main == nil {
		pos := source.Pos{}
		if prog.File != nil {
			pos = prog.File.Pos(0)
		}
		c.errorf(pos, "program has no main function")
	} else if len(main.Decl.Params) != 0 {
		c.errorf(main.Decl.Pos(), "main must take no parameters")
	}
}

func (c *checker) checkFunc(fi *FuncInfo) {
	c.fn = fi
	c.scopes = nil
	c.loops = 0
	c.pushScope()
	for _, p := range fi.Decl.Params {
		kind := ParamScalar
		if p.IsArray {
			kind = ParamArray
		}
		sym := &Symbol{Name: p.Name, Kind: kind, Pos: p.NamePos, Slot: fi.NumSlots}
		fi.NumSlots++
		fi.Params = append(fi.Params, sym)
		if !c.declare(sym) {
			c.errorf(p.NamePos, "duplicate parameter %q", p.Name)
		}
	}
	c.checkBlock(fi.Decl.Body)
	c.popScope()
	c.fn = nil
}

func (c *checker) pushScope() {
	c.scopes = append(c.scopes, make(map[string]*Symbol))
}

func (c *checker) popScope() {
	c.scopes = c.scopes[:len(c.scopes)-1]
}

func (c *checker) declare(sym *Symbol) bool {
	top := c.scopes[len(c.scopes)-1]
	if _, exists := top[sym.Name]; exists {
		return false
	}
	top[sym.Name] = sym
	return true
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkBlock(b *ast.BlockStmt) {
	c.pushScope()
	for _, s := range b.List {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		c.checkBlock(x)
	case *ast.DeclStmt:
		c.checkLocalDecl(x.Decl)
	case *ast.ExprStmt:
		c.checkExpr(x.X)
	case *ast.AssignStmt:
		c.checkAssign(x)
	case *ast.IfStmt:
		c.wantInt(x.Cond)
		c.checkStmt(x.Then)
		if x.Else != nil {
			c.checkStmt(x.Else)
		}
	case *ast.WhileStmt:
		c.wantInt(x.Cond)
		c.loops++
		c.checkStmt(x.Body)
		if x.Post != nil {
			c.checkStmt(x.Post)
		}
		c.loops--
	case *ast.BreakStmt:
		if c.loops == 0 {
			c.errorf(x.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loops == 0 {
			c.errorf(x.Pos(), "continue outside loop")
		}
	case *ast.ReturnStmt:
		if x.X == nil {
			if c.fn.Decl.Returns != ast.TypeVoid {
				c.errorf(x.Pos(), "missing return value in function %q", c.fn.Decl.Name)
			}
			return
		}
		if c.fn.Decl.Returns == ast.TypeVoid {
			c.errorf(x.Pos(), "void function %q returns a value", c.fn.Decl.Name)
		}
		c.wantInt(x.X)
	case *ast.SpawnStmt:
		c.checkExpr(x.Call)
		if fi, ok := c.info.CalleeFunc[x.Call]; ok {
			if fi.Decl.Returns != ast.TypeVoid {
				c.errorf(x.Pos(), "spawned function %q must return void", fi.Decl.Name)
			}
		} else if x.Call != nil {
			c.errorf(x.Pos(), "spawn requires a user-defined function")
		}
	case *ast.SyncStmt:
		// Always valid.
	case nil:
	default:
		// Unreachable with the current parser.
	}
}

func (c *checker) checkLocalDecl(d *ast.VarDecl) {
	kind := LocalScalar
	if d.IsArray {
		kind = LocalArray
		if d.Size != nil {
			c.wantInt(d.Size)
		} else if d.Init == nil {
			c.errorf(d.Pos(), "array %q needs a size or an initializer", d.Name)
		}
		if d.Init != nil {
			t := c.checkExpr(d.Init)
			if t != ast.TypeArray {
				c.errorf(d.Init.Pos(), "array %q initializer must be an array expression", d.Name)
			}
		}
	} else if d.Init != nil {
		c.wantInt(d.Init)
	}
	sym := &Symbol{Name: d.Name, Kind: kind, Pos: d.Pos(), Slot: c.fn.NumSlots, Decl: d}
	c.fn.NumSlots++
	c.fn.Locals = append(c.fn.Locals, sym)
	if !c.declare(sym) {
		c.errorf(d.Pos(), "duplicate variable %q in this scope", d.Name)
	}
}

func (c *checker) checkAssign(a *ast.AssignStmt) {
	rhsT := c.checkExpr(a.RHS)
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		sym := c.lookup(lhs.Name)
		if sym == nil {
			c.errorf(lhs.Pos(), "undefined variable %q", lhs.Name)
			return
		}
		c.info.Uses[lhs] = sym
		if sym.Kind.IsArray() {
			if a.Op != token.Assign {
				c.errorf(lhs.Pos(), "array %q only supports plain assignment", lhs.Name)
			}
			if rhsT != ast.TypeArray {
				c.errorf(a.RHS.Pos(), "cannot assign int to array %q", lhs.Name)
			}
			if sym.Kind == GlobalArray {
				c.errorf(lhs.Pos(), "global array %q cannot be reassigned", lhs.Name)
			}
			return
		}
		if rhsT != ast.TypeInt {
			c.errorf(a.RHS.Pos(), "cannot assign array to int %q", lhs.Name)
		}
	case *ast.IndexExpr:
		c.checkIndex(lhs)
		if rhsT != ast.TypeInt {
			c.errorf(a.RHS.Pos(), "array element assignment needs an int value")
		}
	default:
		c.errorf(a.LHS.Pos(), "left side of assignment is not assignable")
	}
}

func (c *checker) wantInt(e ast.Expr) {
	if t := c.checkExpr(e); t != ast.TypeInt {
		c.errorf(e.Pos(), "expected an int expression")
	}
}

func (c *checker) checkIndex(e *ast.IndexExpr) ast.TypeKind {
	base, ok := e.X.(*ast.Ident)
	if !ok {
		c.errorf(e.X.Pos(), "only named arrays can be indexed")
		return ast.TypeInt
	}
	sym := c.lookup(base.Name)
	if sym == nil {
		c.errorf(base.Pos(), "undefined variable %q", base.Name)
		return ast.TypeInt
	}
	c.info.Uses[base] = sym
	if !sym.Kind.IsArray() {
		c.errorf(base.Pos(), "%q is not an array", base.Name)
	}
	c.wantInt(e.Index)
	c.info.Types[e] = ast.TypeInt
	return ast.TypeInt
}

func (c *checker) checkExpr(e ast.Expr) ast.TypeKind {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) ast.TypeKind {
	switch x := e.(type) {
	case *ast.IntLit:
		return ast.TypeInt
	case *ast.StrLit:
		// Strings are only valid as print arguments; the call checker
		// special-cases them.
		return ast.TypeVoid
	case *ast.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos(), "undefined variable %q", x.Name)
			return ast.TypeInt
		}
		c.info.Uses[x] = sym
		if sym.Kind.IsArray() {
			return ast.TypeArray
		}
		return ast.TypeInt
	case *ast.UnaryExpr:
		c.wantInt(x.X)
		return ast.TypeInt
	case *ast.BinaryExpr:
		c.wantInt(x.X)
		c.wantInt(x.Y)
		return ast.TypeInt
	case *ast.CondExpr:
		c.wantInt(x.Cond)
		c.wantInt(x.Then)
		c.wantInt(x.Else)
		return ast.TypeInt
	case *ast.IndexExpr:
		return c.checkIndex(x)
	case *ast.CallExpr:
		return c.checkCall(x)
	}
	return ast.TypeInt
}

func (c *checker) checkCall(call *ast.CallExpr) ast.TypeKind {
	name := call.Fun.Name
	if b, ok := builtins[name]; ok {
		c.info.CalleeBuiltin[call] = b
		return c.checkBuiltinCall(call, b)
	}
	fi, ok := c.info.Funcs[name]
	if !ok {
		c.errorf(call.Fun.Pos(), "undefined function %q", name)
		return ast.TypeInt
	}
	c.info.CalleeFunc[call] = fi
	if len(call.Args) != len(fi.Decl.Params) {
		c.errorf(call.Pos(), "function %q takes %d arguments, got %d",
			name, len(fi.Decl.Params), len(call.Args))
		return returnType(fi)
	}
	for i, arg := range call.Args {
		t := c.checkExpr(arg)
		want := ast.TypeInt
		if fi.Decl.Params[i].IsArray {
			want = ast.TypeArray
		}
		if t != want {
			c.errorf(arg.Pos(), "argument %d of %q must be %s", i+1, name, want)
		}
	}
	return returnType(fi)
}

func returnType(fi *FuncInfo) ast.TypeKind {
	if fi.Decl.Returns == ast.TypeInt {
		return ast.TypeInt
	}
	return ast.TypeVoid
}

func (c *checker) checkBuiltinCall(call *ast.CallExpr, b Builtin) ast.TypeKind {
	name := call.Fun.Name
	argc := func(n int) bool {
		if len(call.Args) != n {
			c.errorf(call.Pos(), "builtin %q takes %d argument(s), got %d", name, n, len(call.Args))
			return false
		}
		return true
	}
	switch b {
	case BuiltinPrint:
		for _, a := range call.Args {
			if _, isStr := a.(*ast.StrLit); isStr {
				continue
			}
			c.wantInt(a)
		}
		return ast.TypeVoid
	case BuiltinLen:
		if argc(1) {
			if t := c.checkExpr(call.Args[0]); t != ast.TypeArray {
				c.errorf(call.Args[0].Pos(), "len requires an array")
			}
		}
		return ast.TypeInt
	case BuiltinAlloc:
		if argc(1) {
			c.wantInt(call.Args[0])
		}
		return ast.TypeArray
	case BuiltinRand:
		argc(0)
		return ast.TypeInt
	case BuiltinSrand:
		if argc(1) {
			c.wantInt(call.Args[0])
		}
		return ast.TypeVoid
	case BuiltinIn:
		if argc(1) {
			c.wantInt(call.Args[0])
		}
		return ast.TypeInt
	case BuiltinInLen:
		argc(0)
		return ast.TypeInt
	case BuiltinOut:
		if argc(1) {
			c.wantInt(call.Args[0])
		}
		return ast.TypeVoid
	case BuiltinAssert:
		if argc(1) {
			c.wantInt(call.Args[0])
		}
		return ast.TypeVoid
	}
	return ast.TypeInt
}

// ConstValue evaluates a constant expression (literals combined with
// arithmetic) at compile time. It returns false for anything that needs
// runtime evaluation.
func ConstValue(e ast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return x.Val, true
	case *ast.UnaryExpr:
		v, ok := ConstValue(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.Minus:
			return -v, true
		case token.Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case token.Tilde:
			return ^v, true
		}
	case *ast.BinaryExpr:
		a, ok := ConstValue(x.X)
		if !ok {
			return 0, false
		}
		b, ok := ConstValue(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case token.Plus:
			return a + b, true
		case token.Minus:
			return a - b, true
		case token.Star:
			return a * b, true
		case token.Slash:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.Percent:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.Shl:
			return a << (uint64(b) & 63), true
		case token.Shr:
			return a >> (uint64(b) & 63), true
		case token.Amp:
			return a & b, true
		case token.Or:
			return a | b, true
		case token.Xor:
			return a ^ b, true
		}
	}
	return 0, false
}
