package indexing

import (
	"testing"
	"testing/quick"
)

func TestAcquireInitializes(t *testing.T) {
	p := NewPool(0)
	parent := p.Acquire(10, 100, KindFunc, NoPop, nil)
	c := p.Acquire(12, 200, KindLoop, 55, parent)
	if c.Label != 200 || c.Kind != KindLoop || c.Tenter != 12 || c.Texit != 0 ||
		c.Parent != parent || c.PopPC != 55 {
		t.Errorf("acquired node wrong: %+v", c)
	}
}

// NoPop mirrors ir.NoPopPC without importing ir (avoiding a dependency
// from this leaf package's tests).
const NoPop = -1

func TestInWindow(t *testing.T) {
	c := &Construct{Tenter: 10, Texit: 20}
	for _, tc := range []struct {
		t    int64
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {19, true}, {20, false}, {25, false},
	} {
		if got := c.InWindow(tc.t); got != tc.want {
			t.Errorf("InWindow(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	active := &Construct{Tenter: 10, Texit: 0}
	if active.InWindow(15) {
		t.Error("active construct must not be in window")
	}
}

func TestLazyRetirement(t *testing.T) {
	p := NewPool(0)
	c := p.Acquire(0, 1, KindLoop, NoPop, nil)
	c.Texit = 100 // lived [0,100): needs to stay dead until t=200
	p.Release(c)

	// Too early: the node must not be recycled.
	c2 := p.Acquire(150, 2, KindLoop, NoPop, nil)
	if c2 == c {
		t.Fatal("node recycled before its retirement window")
	}
	c2.Tenter, c2.Texit = 150, 151
	p.Release(c2)

	// At t=200 the first node has been dead exactly as long as it lived.
	c3 := p.Acquire(200, 3, KindLoop, NoPop, nil)
	if c3 != c && c3 != c2 {
		t.Fatal("no node recycled after the retirement window")
	}
}

func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool(0)
	var nodes []*Construct
	for i := 0; i < 5; i++ {
		c := p.Acquire(int64(i), i, KindCond, NoPop, nil)
		c.Texit = c.Tenter + 1
		nodes = append(nodes, c)
	}
	for _, c := range nodes {
		p.Release(c)
	}
	// All are retirable far in the future; reuse comes from the head
	// (oldest release first).
	got := p.Acquire(1000, 99, KindCond, NoPop, nil)
	if got != nodes[0] {
		t.Error("reuse did not come from the pool head")
	}
}

func TestRotation(t *testing.T) {
	p := NewPool(0)
	hot := p.Acquire(0, 1, KindLoop, NoPop, nil)
	hot.Texit = 1000 // dead at t=1000 after living 1000: hot until t=2000
	cold := p.Acquire(1000, 2, KindLoop, NoPop, nil)
	cold.Texit = 1001 // lived 1 step: retirable at t=1002
	p.Release(hot)
	p.Release(cold)
	got := p.Acquire(1500, 3, KindLoop, NoPop, nil)
	if got != cold {
		t.Error("probe did not skip the hot head and reuse the cold node")
	}
	if p.Stats().Rotations == 0 {
		t.Error("rotation not counted")
	}
}

func TestDisableReuse(t *testing.T) {
	p := NewPool(0)
	p.DisableReuse = true
	c := p.Acquire(0, 1, KindLoop, NoPop, nil)
	c.Texit = 1
	p.Release(c)
	c2 := p.Acquire(1000, 2, KindLoop, NoPop, nil)
	if c2 == c {
		t.Error("DisableReuse recycled a node")
	}
	if p.Stats().Reused != 0 {
		t.Error("reuse counted with DisableReuse")
	}
}

func TestPrealloc(t *testing.T) {
	p := NewPool(16)
	if p.Live() != 16 {
		t.Errorf("Live = %d", p.Live())
	}
	// Fresh preallocated nodes are immediately reusable.
	c := p.Acquire(0, 1, KindFunc, NoPop, nil)
	if c == nil {
		t.Fatal("nil node")
	}
	if p.Stats().Reused != 1 || p.Stats().Allocated != 16 {
		t.Errorf("stats = %+v", p.Stats())
	}
	if p.Live() != 15 {
		t.Errorf("Live after acquire = %d", p.Live())
	}
}

// TestRetirementInvariant is the Theorem 1 safety property: any recycled
// node must have been dead at least as long as it was alive, so a
// dependence reaching into its old window would have Tdep > Tdur anyway.
func TestRetirementInvariant(t *testing.T) {
	f := func(durs []uint16, gaps []uint16) bool {
		p := NewPool(0)
		now := int64(0)
		live := map[*Construct]struct {
			enter, exit int64
		}{}
		n := len(durs)
		if n > len(gaps) {
			n = len(gaps)
		}
		for i := 0; i < n; i++ {
			c := p.Acquire(now, i, KindLoop, NoPop, nil)
			// If the node was recycled, check the invariant against its
			// previous lifetime.
			if prev, ok := live[c]; ok {
				if now-prev.exit < prev.exit-prev.enter {
					return false
				}
			}
			dur := int64(durs[i] % 1000)
			c.Texit = now + dur
			live[c] = struct{ enter, exit int64 }{now, c.Texit}
			p.Release(c)
			now = c.Texit + int64(gaps[i]%100)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRingGrowthPreservesOrder(t *testing.T) {
	p := NewPool(0)
	var nodes []*Construct
	// Force multiple ring growths.
	for i := 0; i < 100; i++ {
		c := p.Acquire(int64(i), i, KindCond, NoPop, nil)
		c.Tenter, c.Texit = int64(i), int64(i)+1
		nodes = append(nodes, c)
	}
	for _, c := range nodes {
		p.Release(c)
	}
	if p.Live() != 100 {
		t.Fatalf("Live = %d", p.Live())
	}
	// Drain; order must be FIFO.
	for i := 0; i < 100; i++ {
		got := p.Acquire(1_000_000, 999, KindCond, NoPop, nil)
		if got != nodes[i] {
			t.Fatalf("drain position %d: wrong node", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindFunc.String() != "func" || KindLoop.String() != "loop" || KindCond.String() != "cond" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() != "?" {
		t.Error("unknown kind string")
	}
}

func TestConstructString(t *testing.T) {
	c := &Construct{Label: 5, Kind: KindLoop, Tenter: 1, Texit: 9}
	if c.String() != "loop@5[1,9)" {
		t.Errorf("String = %q", c.String())
	}
}
