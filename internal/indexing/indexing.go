// Package indexing implements the execution index tree and the bounded
// construct pool of Alchemist (paper §III.A, Table I).
//
// Each dynamic construct instance (a procedure activation, a loop
// iteration, or one execution of a conditional) is a node. Nodes link to
// their enclosing construct instance via Parent, forming the execution
// index tree. Completed nodes are not freed: dependence heads detected
// later may still reference them. Instead they are appended to a pool and
// lazily retired — a node may be reused only once it has been dead for at
// least as long as its own duration, because any dependence reaching back
// into it after that point necessarily has Tdep > Tdur and cannot change
// the profile (paper Theorem 1).
package indexing

import "fmt"

// Kind classifies a construct.
type Kind uint8

const (
	// KindFunc is a procedure activation.
	KindFunc Kind = iota
	// KindLoop is one loop iteration.
	KindLoop
	// KindCond is one execution of a conditional (if / && / || / ?:).
	KindCond
)

func (k Kind) String() string {
	switch k {
	case KindFunc:
		return "func"
	case KindLoop:
		return "loop"
	case KindCond:
		return "cond"
	default:
		return "?"
	}
}

// Construct is one dynamic construct instance; a node of the execution
// index tree.
type Construct struct {
	// Label is the global PC of the construct head: the function entry PC
	// or the predicate branch PC.
	Label int
	// Kind classifies the construct.
	Kind Kind
	// Tenter is the timestamp when the instance started.
	Tenter int64
	// Texit is the timestamp when the instance completed, or 0 while the
	// instance is active (reset on every acquire, per Table I line 10).
	Texit int64
	// Parent is the enclosing construct instance. Parents may be recycled
	// later; consumers must re-validate with InWindow before trusting a
	// parent's identity.
	Parent *Construct
	// PopPC is the global PC of the instruction that closes this
	// construct (the predicate's immediate post-dominator), or a negative
	// value when it closes only at function exit.
	PopPC int
}

// InWindow reports whether the instance was live at time t, i.e. the
// instance completed and t falls inside [Tenter, Texit). This is the
// Table II line-7 guard: it is false for active instances (Texit == 0)
// and, because time is monotonic, also false once the node has been
// recycled for a later construct.
func (c *Construct) InWindow(t int64) bool {
	return c.Tenter <= t && t < c.Texit
}

func (c *Construct) String() string {
	return fmt.Sprintf("%s@%d[%d,%d)", c.Kind, c.Label, c.Tenter, c.Texit)
}

// PoolStats reports pool behaviour for Theorem 1 validation and ablation.
type PoolStats struct {
	// Allocated is the number of nodes ever created.
	Allocated int64
	// Reused counts acquisitions served by recycling a retired node.
	Reused int64
	// Rotations counts head nodes that were probed but still too hot to
	// retire and were moved to the tail.
	Rotations int64
}

// Pool is the lazily-retiring construct pool of Table I. Completed nodes
// are appended at the tail; acquisition probes from the head (the
// longest-dead nodes) and recycles the first retirable one.
type Pool struct {
	free  []*Construct // ring buffer
	head  int
	count int

	// MaxProbe bounds how many head nodes are examined per acquisition
	// before giving up and allocating fresh (default 32).
	MaxProbe int
	// DisableReuse turns lazy retirement off entirely: every acquisition
	// allocates a fresh node. This is the unbounded-index-tree baseline
	// the paper's Table I algorithm exists to avoid; it is exposed for
	// the ablation benchmarks.
	DisableReuse bool

	stats PoolStats
}

// NewPool creates an empty pool. Nodes are created on demand; prealloc
// (if > 0) warms the pool with that many immediately-reusable nodes,
// mirroring the paper's pre-allocated one-million-entry pool.
func NewPool(prealloc int) *Pool {
	p := &Pool{MaxProbe: 32}
	if prealloc > 0 {
		p.free = make([]*Construct, 0, prealloc)
		for i := 0; i < prealloc; i++ {
			p.free = append(p.free, &Construct{})
			p.stats.Allocated++
		}
		p.count = prealloc
	}
	return p
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Reset prepares the pool for a fresh run whose clock restarts at zero:
// every pooled node's window is cleared (making it immediately
// retirable, like a preallocated node) and the counters restart with
// Allocated equal to the retained node count — reuse across runs is
// accounted exactly like a warm preallocation, so per-run Reused/
// Rotations stats keep their Theorem 1 meaning.
func (p *Pool) Reset() {
	for i := 0; i < p.count; i++ {
		c := p.free[(p.head+i)%len(p.free)]
		c.Label, c.Kind, c.Tenter, c.Texit, c.Parent, c.PopPC = 0, 0, 0, 0, nil, 0
	}
	p.stats = PoolStats{Allocated: int64(p.count)}
}

// Live returns the number of nodes currently sitting in the pool.
func (p *Pool) Live() int { return p.count }

// retirable implements Table I line 4: a node may be recycled at time now
// only if it has been dead at least as long as it was alive.
func retirable(c *Construct, now int64) bool {
	return now-c.Texit >= c.Texit-c.Tenter
}

func (p *Pool) popHead() *Construct {
	c := p.free[p.head]
	p.free[p.head] = nil
	p.head = (p.head + 1) % len(p.free)
	p.count--
	return c
}

func (p *Pool) push(c *Construct) {
	if p.count == len(p.free) {
		// Grow the ring.
		grown := make([]*Construct, 0, max(4, 2*len(p.free)))
		for i := 0; i < p.count; i++ {
			grown = append(grown, p.free[(p.head+i)%len(p.free)])
		}
		grown = grown[:cap(grown)]
		p.free = grown
		p.head = 0
	}
	p.free[(p.head+p.count)%len(p.free)] = c
	p.count++
}

// Acquire returns an initialized construct node for a construct headed at
// label, entering at time now with the given parent.
func (p *Pool) Acquire(now int64, label int, kind Kind, popPC int, parent *Construct) *Construct {
	var c *Construct
	probes := p.MaxProbe
	if probes <= 0 {
		probes = 1
	}
	if p.DisableReuse {
		probes = 0
	}
	for i := 0; i < probes && p.count > 0; i++ {
		cand := p.popHead()
		if retirable(cand, now) {
			c = cand
			p.stats.Reused++
			break
		}
		// Still hot: rotate to the tail and try the next-oldest.
		p.push(cand)
		p.stats.Rotations++
	}
	if c == nil {
		c = &Construct{}
		p.stats.Allocated++
	}
	c.Label = label
	c.Kind = kind
	c.Tenter = now
	c.Texit = 0
	c.Parent = parent
	c.PopPC = popPC
	return c
}

// Release returns a completed node to the pool tail (lazy retiring: reuse
// is attempted from the head, so a node stays referenceable as long as
// possible).
func (p *Pool) Release(c *Construct) { p.push(c) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
