package bench_test

import (
	"testing"

	"alchemist/internal/bench"
	"alchemist/internal/core"
	"alchemist/internal/progs"
)

var small = bench.Scale{Small: true}

func TestTable3SmallShape(t *testing.T) {
	rows, err := bench.Table3(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.Static <= 0 || r.Dynamic <= 0 {
			t.Errorf("%s: constructs static=%d dynamic=%d", r.Benchmark, r.Static, r.Dynamic)
		}
		if r.Dynamic < r.Static {
			t.Errorf("%s: dynamic %d < static %d", r.Benchmark, r.Dynamic, r.Static)
		}
		// At small scale timing is noisy (setup dominates); just require
		// a sane ratio. The default-scale shape is asserted in
		// TestTable3DefaultScaleSlowdown.
		if r.Slowdown() <= 0.1 {
			t.Errorf("%s: slowdown %.2f implausible", r.Benchmark, r.Slowdown())
		}
		if r.LOC < 40 {
			t.Errorf("%s: loc %d", r.Benchmark, r.LOC)
		}
	}
}

func TestTable3DefaultScaleSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale run")
	}
	// At the paper's input sizes the profiled run must clearly cost more
	// than the native run (Table III's Orig. vs Prof. shape).
	for _, w := range []*progs.Workload{progs.Gzip(), progs.Bzip2()} {
		row, err := bench.Table3Row(w, bench.Scale{})
		if err != nil {
			t.Fatal(err)
		}
		if row.Slowdown() <= 1.2 {
			t.Errorf("%s: default-scale slowdown %.2f <= 1.2", w.Name, row.Slowdown())
		}
	}
}

func TestFig6GzipShape(t *testing.T) {
	a, b, prof, err := bench.Fig6Gzip(small, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) == 0 || len(b.Points) == 0 {
		t.Fatal("empty panels")
	}
	// Panel (a): the per-file loop is a top-3 construct with few
	// violating RAW deps relative to the literal loop.
	fileLoop := bench.LargestLoopIn(prof, "main")
	if fileLoop == nil {
		t.Fatal("no file loop")
	}
	var fileLoopPt, literalPt *struct {
		viol int
		size float64
	}
	for _, pt := range a.Points {
		if pt.Label == fileLoop.Label {
			fileLoopPt = &struct {
				viol int
				size float64
			}{pt.Violations, pt.SizeNorm}
		}
	}
	litLoop := bench.LargestLoopIn(prof, "zip")
	for _, pt := range a.Points {
		if pt.Label == litLoop.Label {
			literalPt = &struct {
				viol int
				size float64
			}{pt.Violations, pt.SizeNorm}
		}
	}
	if fileLoopPt == nil || literalPt == nil {
		t.Fatal("expected constructs missing from panel (a)")
	}
	if fileLoopPt.size < 0.5 {
		t.Errorf("file loop size %.2f too small", fileLoopPt.size)
	}
	if fileLoopPt.viol >= literalPt.viol {
		t.Errorf("file loop violations %d should be fewer than literal loop %d",
			fileLoopPt.viol, literalPt.viol)
	}
	// Panel (b): the file loop and zip are removed; flush_block remains.
	if !b.Removed[fileLoop.Label] {
		t.Error("file loop not removed in panel (b)")
	}
	zipC := prof.ConstructForFunc("zip")
	if zipC != nil && !b.Removed[zipC.Label] {
		t.Error("zip (one instance per file iteration) not removed in panel (b)")
	}
	flush := prof.ConstructForFunc("flush_block")
	if flush == nil {
		t.Fatal("no flush_block")
	}
	found := false
	for _, pt := range b.Points {
		if pt.Label == flush.Label {
			found = true
		}
	}
	if !found {
		t.Error("flush_block missing from panel (b)")
	}
}

func TestFig6ParserShape(t *testing.T) {
	res, prof, err := bench.Fig6Parser(small, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// The paper's story: the dictionary-phase constructs are big with few
	// violations; the sentence batch loop is the one that was actually
	// parallelized and also appears with few violations.
	batch := bench.LargestLoopIn(prof, "main")
	if batch == nil {
		t.Fatal("no batch loop")
	}
	dict := prof.ConstructForFunc("read_dictionary")
	if dict == nil {
		t.Fatal("no read_dictionary")
	}
	if dict.Ttotal == 0 || batch.Ttotal == 0 {
		t.Error("zero-size constructs")
	}
}

func TestFig6LispShape(t *testing.T) {
	_, prof, err := bench.Fig6Lisp(small, 11)
	if err != nil {
		t.Fatal(err)
	}
	// xlload totals slightly more than the batch loop (the initial call
	// before the loop), paper §IV.B.1.
	xl := prof.ConstructForFunc("xlload")
	batch := bench.LargestLoopIn(prof, "main")
	if xl == nil || batch == nil {
		t.Fatal("constructs missing")
	}
	if xl.Ttotal <= batch.Ttotal {
		t.Errorf("xlload %d should exceed the batch loop %d (initial call)",
			xl.Ttotal, batch.Ttotal)
	}
	if xl.Instances != batch.Instances+1 {
		t.Errorf("xlload instances %d, batch iterations %d: want exactly one extra",
			xl.Instances, batch.Instances)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := bench.Table4(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byLoc := map[string]int{}
	for i, r := range rows {
		byLoc[r.Program+"/"+r.Location] = i
	}
	// aes: the parallelized loop has no violating RAW (paper Table IV).
	for _, r := range rows {
		if r.Program == "aes" && r.RAW != 0 {
			t.Errorf("aes loop violating RAW = %d, want 0", r.RAW)
		}
		if r.Program == "aes" && r.WAW == 0 {
			t.Errorf("aes loop should report WAW conflicts on ivec")
		}
	}
	// par2 process_data: violation-free block loop.
	for _, r := range rows {
		if r.Program == "par2" && r.Location != "" && r.RAW > 1 {
			t.Errorf("par2 %s violating RAW = %d, want <= 1", r.Location, r.RAW)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := bench.Table5(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup() < 1.3 {
			t.Errorf("%s: speedup %.2f too low", r.Benchmark, r.Speedup())
		}
		if r.Speedup() > float64(r.Workers) {
			t.Errorf("%s: speedup %.2f exceeds worker count", r.Benchmark, r.Speedup())
		}
	}
}

func TestDelaunayNegativeControl(t *testing.T) {
	prof, _, err := bench.RunProfiled(progs.Delaunay(), small)
	if err != nil {
		t.Fatal(err)
	}
	refine := bench.LargestLoopIn(prof, "refine")
	if refine == nil {
		t.Fatal("no refine loop")
	}
	viol := len(refine.ViolatingEdges(core.RAW))
	// The worklist loop must be saturated with violating RAW deps —
	// far more than any of the parallelizable benchmarks' candidates.
	if viol < 10 {
		t.Errorf("refine loop violating RAW = %d, want >= 10 (negative control)", viol)
	}
}

func TestLoopsInOrdering(t *testing.T) {
	prof, _, err := bench.RunProfiled(progs.Gzip(), small)
	if err != nil {
		t.Fatal(err)
	}
	loops := bench.LoopsIn(prof, "zip")
	if len(loops) < 2 {
		t.Fatalf("zip loops = %d", len(loops))
	}
	for i := 1; i < len(loops); i++ {
		if loops[i-1].Ttotal < loops[i].Ttotal {
			t.Error("LoopsIn not sorted by Ttotal")
		}
	}
	if bench.LargestLoopIn(prof, "no_such_fn") != nil {
		t.Error("LargestLoopIn for unknown function should be nil")
	}
}
