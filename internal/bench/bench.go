// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§IV) from the embedded workloads:
// Table III (profiling cost and construct counts), Fig. 6(a)–(d) (profile
// quality on previously-parallelized programs), Table IV (conflict counts
// at the parallelized locations), and Table V (realized speedups of the
// spawn/sync variants).
package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/indexing"
	"alchemist/internal/obs"
	"alchemist/internal/progs"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

// Scale selects input sizes: 0 uses each workload's default (the paper
// configuration); otherwise the workload-specific small scale times the
// factor. It doubles as the harness run configuration: an optional
// Metrics sink and Progress aggregate are threaded into every VM run
// the harness performs.
type Scale struct {
	// Small uses each workload's SmallScale input (fast CI runs).
	Small bool
	// Metrics, when non-nil, receives the dispatch-loop counters of
	// every VM run (native, profiled, and simulated), flushed once per
	// run; resolve it from a registry with vm.NewMetrics.
	Metrics *vm.Metrics
	// Progress, when non-nil, receives live step counts: every VM run
	// the harness performs allocates one job slot, reports into it via
	// OnProgress, and marks it done on completion.
	Progress *obs.Progress
}

func inputFor(w *progs.Workload, sc Scale) []int64 {
	if sc.Small {
		return w.InputFor(w.SmallScale)
	}
	return w.InputFor(0)
}

// vmConfig assembles one run's VM configuration, threading the optional
// Metrics sink and Progress aggregate. The returned done function marks
// the run's progress slot complete; call it once the run has finished.
func (sc Scale) vmConfig(input []int64, memWords int64, simWorkers int) (vm.Config, func()) {
	cfg := vm.Config{Input: input, MemWords: memWords, SimWorkers: simWorkers, Metrics: sc.Metrics}
	if sc.Progress == nil {
		return cfg, func() {}
	}
	slot := sc.Progress.AllocJob()
	cfg.OnProgress = func(steps int64) { sc.Progress.Update(slot, steps) }
	return cfg, func() { sc.Progress.MarkDone(slot) }
}

// RunNative executes the sequential workload without instrumentation and
// returns the result with its wall-clock time.
func RunNative(w *progs.Workload, sc Scale) (*vm.Result, time.Duration, error) {
	prog, err := compile.Build(w.Name+".mc", w.Source)
	if err != nil {
		return nil, 0, err
	}
	cfg, done := sc.vmConfig(inputFor(w, sc), w.MemWords, 0)
	defer done()
	start := time.Now()
	res, err := core.RunProgram(prog, cfg)
	return res, time.Since(start), err
}

// RunProfiled executes the workload under the profiler and returns the
// profile with its wall-clock time.
func RunProfiled(w *progs.Workload, sc Scale) (*core.Profile, time.Duration, error) {
	cfg, done := sc.vmConfig(inputFor(w, sc), w.MemWords, 0)
	defer done()
	start := time.Now()
	prof, _, err := core.ProfileSource(w.Name+".mc", w.Source, cfg, core.DefaultOptions())
	return prof, time.Since(start), err
}

// Profile profiles the workload with explicit options (ablations).
func Profile(w *progs.Workload, sc Scale, opts core.Options) (*core.Profile, error) {
	cfg, done := sc.vmConfig(inputFor(w, sc), w.MemWords, 0)
	defer done()
	prof, _, err := core.ProfileSource(w.Name+".mc", w.Source, cfg, opts)
	return prof, err
}

// ---------- Table III ----------

// Table3Row measures one workload: LOC, static/dynamic construct counts,
// and native vs profiled wall-clock.
func Table3Row(w *progs.Workload, sc Scale) (report.Table3Row, error) {
	_, orig, err := RunNative(w, sc)
	if err != nil {
		return report.Table3Row{}, fmt.Errorf("%s native: %w", w.Name, err)
	}
	prof, profT, err := RunProfiled(w, sc)
	if err != nil {
		return report.Table3Row{}, fmt.Errorf("%s profiled: %w", w.Name, err)
	}
	return report.Table3Row{
		Benchmark:   w.Name,
		LOC:         w.LOC(),
		Static:      prof.StaticConstructs,
		Dynamic:     prof.DynamicConstructs,
		OrigSeconds: orig.Seconds(),
		ProfSeconds: profT.Seconds(),
	}, nil
}

// Table3 measures every workload.
func Table3(sc Scale) ([]report.Table3Row, error) {
	var rows []report.Table3Row
	for _, w := range progs.All() {
		row, err := Table3Row(w, sc)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------- Construct selection helpers ----------

// LargestLoopIn returns the loop construct with the greatest Ttotal whose
// head lies inside the named function, or nil.
func LargestLoopIn(p *core.Profile, funcName string) *core.ConstructStat {
	for _, c := range p.Constructs { // sorted by Ttotal descending
		if c.Kind == indexing.KindLoop && c.FuncName == funcName {
			return c
		}
	}
	return nil
}

// LoopsIn returns every loop construct of the named function, by
// descending Ttotal.
func LoopsIn(p *core.Profile, funcName string) []*core.ConstructStat {
	var out []*core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == indexing.KindLoop && c.FuncName == funcName {
			out = append(out, c)
		}
	}
	return out
}

// ---------- Fig. 6 ----------

// Fig6Result carries one Fig. 6 panel.
type Fig6Result struct {
	Title  string
	Points []report.Point
	// Removed lists labels excluded in a second-pass panel (Fig. 6(b)).
	Removed map[int]bool
}

// Fig6Gzip computes panels (a) and (b): the gzip profile, then the
// profile after removing the top loop construct and everything
// parallelized along with it.
func Fig6Gzip(sc Scale, top int) (a, b Fig6Result, _ *core.Profile, err error) {
	prof, _, err := RunProfiled(progs.Gzip(), sc)
	if err != nil {
		return a, b, nil, err
	}
	a = Fig6Result{Title: "gzip profile 1", Points: report.Fig6(prof, top, nil)}
	// C1 in the paper is the per-file compression loop (line 3404); here
	// it is the largest loop construct in main.
	c1 := LargestLoopIn(prof, "main")
	if c1 == nil {
		return a, b, prof, fmt.Errorf("gzip: no loop construct found")
	}
	removed := report.RemoveParallelized(prof, c1.Label)
	b = Fig6Result{
		Title:   "gzip profile 2 (after removing C1 and co-parallelized constructs)",
		Points:  report.Fig6(prof, top, removed),
		Removed: removed,
	}
	return a, b, prof, nil
}

// Fig6Parser computes panel (c).
func Fig6Parser(sc Scale, top int) (Fig6Result, *core.Profile, error) {
	prof, _, err := RunProfiled(progs.Parser(), sc)
	if err != nil {
		return Fig6Result{}, nil, err
	}
	return Fig6Result{Title: "197.parser profile", Points: report.Fig6(prof, top, nil)}, prof, nil
}

// Fig6Lisp computes panel (d).
func Fig6Lisp(sc Scale, top int) (Fig6Result, *core.Profile, error) {
	prof, _, err := RunProfiled(progs.Lisp(), sc)
	if err != nil {
		return Fig6Result{}, nil, err
	}
	return Fig6Result{Title: "130.lisp profile", Points: report.Fig6(prof, top, nil)}, prof, nil
}

// ---------- Table IV ----------

// Table4 profiles the four §IV.B.2 programs and reports the conflict
// counts at the constructs that were actually parallelized.
func Table4(sc Scale) ([]report.Table4Row, error) {
	var rows []report.Table4Row

	// bzip2: the file loop in main and the block loop in compressStream.
	bz, _, err := RunProfiled(progs.Bzip2(), sc)
	if err != nil {
		return nil, err
	}
	if c := LargestLoopIn(bz, "main"); c != nil {
		rows = append(rows, report.Table4For("bzip2", bz, c))
	}
	if c := LargestLoopIn(bz, "compressStream"); c != nil {
		rows = append(rows, report.Table4For("bzip2", bz, c))
	}

	// ogg: the file loop in main.
	og, _, err := RunProfiled(progs.Ogg(), sc)
	if err != nil {
		return nil, err
	}
	if c := LargestLoopIn(og, "main"); c != nil {
		rows = append(rows, report.Table4For("ogg", og, c))
	}

	// aes: the encryption loop in main.
	ae, _, err := RunProfiled(progs.AES(), sc)
	if err != nil {
		return nil, err
	}
	if c := aesMainLoop(ae); c != nil {
		rows = append(rows, report.Table4For("aes", ae, c))
	}

	// par2: the block loop in process_data and the file loop in
	// open_source_files.
	p2, _, err := RunProfiled(progs.Par2(), sc)
	if err != nil {
		return nil, err
	}
	if c := LargestLoopIn(p2, "process_data"); c != nil {
		rows = append(rows, report.Table4For("par2", p2, c))
	}
	if c := LargestLoopIn(p2, "open_source_files"); c != nil {
		rows = append(rows, report.Table4For("par2", p2, c))
	}
	return rows, nil
}

// aesMainLoop returns the word loop over the input in aes's main: the
// largest loop in main that is not the input-reading loop (the paper's
// "sixth largest construct").
func aesMainLoop(p *core.Profile) *core.ConstructStat {
	loops := LoopsIn(p, "main")
	var best *core.ConstructStat
	for _, l := range loops {
		// The encryption loop carries WAW/WAR edges (on ivec/ecount); the
		// input copy loop does not.
		if l.CountEdges(core.WAW)+l.CountEdges(core.WAR) > 0 {
			if best == nil || l.Ttotal > best.Ttotal {
				best = l
			}
		}
	}
	if best == nil && len(loops) > 0 {
		best = loops[0]
	}
	return best
}

// ---------- Table V ----------

// Table5Workers is the virtual worker count for Table V, matching the
// paper's 4-thread configurations on the 4-core Opteron.
const Table5Workers = 4

// Table5Bench compares one workload's sequential program against its
// spawn/sync variant under the VM's deterministic virtual-time parallel
// simulation: the speedup is the ratio of instruction-count makespans on
// Table5Workers virtual workers. Wall-clock of both runs is recorded for
// reference (on a multi-core host the Parallel goroutine mode can be
// timed instead; the simulation keeps the experiment reproducible on any
// machine).
func Table5Bench(w *progs.Workload, sc Scale, runs int) (report.Table5Row, error) {
	return Table5BenchCtx(context.Background(), w, sc, runs)
}

// Table5BenchCtx is Table5Bench under a context: cancellation aborts the
// in-flight VM run within one step-check window.
func Table5BenchCtx(ctx context.Context, w *progs.Workload, sc Scale, runs int) (report.Table5Row, error) {
	if !w.HasParallel() {
		return report.Table5Row{}, fmt.Errorf("%s has no parallel variant", w.Name)
	}
	if runs <= 0 {
		runs = 1
	}
	input := inputFor(w, sc)
	measure := func(name, src string, workers int) (*vm.Result, time.Duration, error) {
		var bestD time.Duration
		var res *vm.Result
		for r := 0; r < runs; r++ {
			p, err := compile.Build(name, src)
			if err != nil {
				return nil, 0, err
			}
			cfg, done := sc.vmConfig(input, w.MemWords, workers)
			m, err := vm.New(p, cfg)
			if err != nil {
				done()
				return nil, 0, err
			}
			start := time.Now()
			res, err = m.RunCtx(ctx)
			done()
			if err != nil {
				return nil, 0, err
			}
			if d := time.Since(start); bestD == 0 || d < bestD {
				bestD = d
			}
		}
		return res, bestD, nil
	}
	seqRes, seqD, err := measure(w.Name+".mc", w.Source, 0)
	if err != nil {
		return report.Table5Row{}, fmt.Errorf("%s sequential: %w", w.Name, err)
	}
	parRes, parD, err := measure(w.Name+"_par.mc", w.ParSource, Table5Workers)
	if err != nil {
		return report.Table5Row{}, fmt.Errorf("%s parallel: %w", w.Name, err)
	}
	return report.Table5Row{
		Benchmark:  w.Name,
		Workers:    Table5Workers,
		SeqSteps:   seqRes.VirtualSteps,
		ParSteps:   parRes.VirtualSteps,
		SeqSeconds: seqD.Seconds(),
		ParSeconds: parD.Seconds(),
	}, nil
}

// Table5 measures every workload that has a parallel variant (bzip2, ogg,
// par2, aes — the paper's Table V set).
func Table5(sc Scale, runs int) ([]report.Table5Row, error) {
	return Table5Ctx(context.Background(), sc, runs, 1)
}

// Table5Ctx measures the Table V workloads with up to jobs benchmarks in
// flight at once, preserving the fixed row order. Concurrent jobs only
// skew the wall-clock columns, not the instruction-count speedups
// (VirtualSteps is deterministic), so jobs > 1 trades timing fidelity
// for latency.
func Table5Ctx(ctx context.Context, sc Scale, runs, jobs int) ([]report.Table5Row, error) {
	workloads := []*progs.Workload{progs.Bzip2(), progs.Ogg(), progs.Par2(), progs.AES()}
	if jobs < 1 {
		jobs = 1
	}
	// The first failure cancels the sibling benchmarks (each aborts
	// within one VM step-check window) instead of letting them run to
	// completion on doomed work.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	rows := make([]report.Table5Row, len(workloads))
	errs := make([]error, len(workloads))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, w := range workloads {
		wg.Add(1)
		go func(i int, w *progs.Workload) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			rows[i], errs[i] = Table5BenchCtx(ctx, w, sc, runs)
			if errs[i] != nil {
				cancel()
			}
		}(i, w)
	}
	wg.Wait()
	// Report the first genuine failure, not a secondary cancellation it
	// caused in a sibling.
	var first error
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return nil, first
	}
	return rows, nil
}
