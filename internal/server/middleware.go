package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"

	"alchemist/internal/xtrace"
)

// reqInfo is the per-request correlation state shared between the
// middleware and handlers: the middleware fills the trace identity, the
// authn step fills the client name, and the access log reads both.
type reqInfo struct {
	traceID string
	spanID  string
	client  string
}

type reqInfoKey struct{}

// requestInfo returns the request's correlation state (nil outside the
// instrument middleware).
func requestInfo(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// statusWriter records the response status and size for the access log
// and error counters, and forwards Flush so SSE streaming works through
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps one route handler with the server middleware stack:
// trace-context extraction (W3C traceparent; malformed headers start a
// new root), a per-request root span, request counters (plain and
// labeled), per-route latency with trace-ID exemplars, body-size
// limiting, panic isolation, and structured access logging with
// trace_id/span_id/client correlation fields. A panicking handler is
// reported as 500 without taking down the server or its sibling
// requests.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.sm.latency[route]
	return func(w http.ResponseWriter, r *http.Request) {
		s.sm.requests.Inc()
		s.sm.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}

		// Adopt the caller's trace when the header parses; any parse
		// failure silently starts a new root, per the W3C spec.
		ctx := xtrace.ContextWithTracer(r.Context(), s.tracer)
		if sc, err := xtrace.ParseTraceparent(r.Header.Get(xtrace.TraceparentHeader)); err == nil {
			ctx = xtrace.ContextWithSpanContext(ctx, sc)
		}
		ctx, sp := xtrace.StartSpan(ctx, "http."+route)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		ri := &reqInfo{traceID: sp.TraceID(), spanID: sp.SpanID()}
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		r = r.WithContext(ctx)
		// Echo the (possibly new) trace identity so callers that did not
		// send a traceparent can still correlate logs and /debug/traces.
		if tid := sp.TraceID(); tid != "" {
			w.Header().Set(xtrace.TraceparentHeader, xtrace.Traceparent(sp.Context()))
		}

		finish := func(code int, panicked bool) {
			d := time.Since(start)
			sp.SetAttr("status", fmt.Sprint(code))
			sp.SetAttr("client", ri.client)
			sp.End()
			s.logAccess(r, ri, code, sw.bytes, d, panicked)
			s.sm.requestsByRoute.With(route, fmt.Sprint(code), clientLabel(ri.client)).Inc()
			s.sm.inflight.Add(-1)
			hist.ObserveExemplar(d.Seconds(), ri.traceID)
		}

		defer func() {
			if v := recover(); v != nil {
				s.sm.panics.Inc()
				if !sw.wrote {
					httpError(sw, http.StatusInternalServerError,
						CodeInternal, "internal error: %v", v)
				}
				// The stack goes to the structured log; the request
				// itself only sees the opaque 500.
				if s.logger != nil {
					s.logger.Error("handler panic",
						"method", r.Method, "path", r.URL.Path,
						"trace_id", ri.traceID, "span_id", ri.spanID,
						"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
				}
				finish(statusOf(sw), true)
				return
			}
			if sw.code >= 400 {
				s.sm.errors.Inc()
			}
			finish(statusOf(sw), false)
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		}
		h(sw, r)
	}
}

// statusOf returns the response status, defaulting to 200 for handlers
// that never called WriteHeader explicitly.
func statusOf(sw *statusWriter) int {
	if !sw.wrote {
		return http.StatusOK
	}
	return sw.code
}

// clientLabel keeps the client dimension of labeled metrics closed over
// configured names: requests that never passed authn count as "none".
func clientLabel(client string) string {
	if client == "" {
		return "none"
	}
	return client
}

// logAccess emits one structured access-log record with correlation
// fields.
func (s *Server) logAccess(r *http.Request, ri *reqInfo, code int, bytes int64, d time.Duration, panicked bool) {
	if s.logger == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.Int64("bytes", bytes),
		slog.Duration("dur", d),
		slog.String("trace_id", ri.traceID),
		slog.String("span_id", ri.spanID),
		slog.String("client", ri.client),
	}
	if panicked {
		attrs = append(attrs, slog.Bool("panicked", true))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// Error codes form the machine-readable half of the error envelope:
// a closed enum clients can switch on without parsing messages. The
// human-readable message may change between releases; the code set only
// grows.
const (
	// CodeBadRequest: the request body or query is malformed or fails
	// validation (400).
	CodeBadRequest = "bad_request"
	// CodeBodyTooLarge: the request body exceeds MaxBodyBytes (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeJobNotFound: the job id does not exist (404) — it may have
	// been retired by TTL or capacity.
	CodeJobNotFound = "job_not_found"
	// CodeQueueSaturated: the admission queue is full (or the estimated
	// queue wait makes the request's deadline infeasible, under load
	// shedding); retry after retry_after_ms (429).
	CodeQueueSaturated = "queue_saturated"
	// CodeRateLimited: the client exceeded its per-client request rate;
	// retry after retry_after_ms (429).
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded: the client already has its quota of concurrent
	// work admitted; retry after retry_after_ms (429).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeUnauthorized: the X-Api-Key header names no known client
	// (401).
	CodeUnauthorized = "unauthorized"
	// CodeDraining: the server is shutting down and refuses new work
	// (503).
	CodeDraining = "draining"
	// CodeDeadlineExceeded: the work hit its deadline (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the work was cancelled before completing (503).
	CodeCanceled = "canceled"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// ErrorBody is the payload of the uniform error envelope.
type ErrorBody struct {
	// Code is one of the Code* enum values.
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// RetryAfterMS hints when to retry, on queue_saturated errors.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// apiError is the uniform error envelope: every non-2xx response body
// is {"error": {"code": ..., "message": ...}}.
type apiError struct {
	Error ErrorBody `json:"error"`
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes the uniform error envelope.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, apiError{Error: ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// decodeJSON parses the request body into v, rejecting unknown fields
// so typos fail loudly instead of profiling the wrong thing.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// userError marks failures caused by the request itself (unresolvable
// source, compile errors), mapped to 400 rather than 500.
type userError struct{ err error }

func (e *userError) Error() string { return e.err.Error() }
func (e *userError) Unwrap() error { return e.err }

func userErr(err error) error {
	if err == nil {
		return nil
	}
	return &userError{err: err}
}

// isMaxBytes reports whether err came from the request-size limiter.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
