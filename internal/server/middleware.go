package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter records the response status and size for the access log
// and error counters, and forwards Flush so SSE streaming works through
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps one route handler with the server middleware stack:
// request counters, per-route latency, body-size limiting, panic
// isolation, and access logging. A panicking handler is reported as 500
// without taking down the server or its sibling requests.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.sm.latency[route]
	return func(w http.ResponseWriter, r *http.Request) {
		s.sm.requests.Inc()
		s.sm.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.sm.panics.Inc()
				if !sw.wrote {
					httpError(sw, http.StatusInternalServerError,
						CodeInternal, "internal error: %v", v)
				}
				s.logAccess(r, sw, time.Since(start))
				// The stack goes to the access log sink if there is
				// one; the request itself only sees the opaque 500.
				if s.opts.AccessLog != nil {
					s.logMu.Lock()
					fmt.Fprintf(s.opts.AccessLog, "panic in %s %s: %v\n%s",
						r.Method, r.URL.Path, v, debug.Stack())
					s.logMu.Unlock()
				}
				s.sm.inflight.Add(-1)
				hist.Observe(time.Since(start).Seconds())
				return
			}
			if sw.code >= 400 {
				s.sm.errors.Inc()
			}
			s.logAccess(r, sw, time.Since(start))
			s.sm.inflight.Add(-1)
			hist.Observe(time.Since(start).Seconds())
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		}
		h(sw, r)
	}
}

// logAccess emits one structured access-log line.
func (s *Server) logAccess(r *http.Request, sw *statusWriter, d time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	code := sw.code
	if !sw.wrote {
		code = http.StatusOK
	}
	s.logMu.Lock()
	fmt.Fprintf(s.opts.AccessLog, "%s method=%s path=%s status=%d bytes=%d dur=%s\n",
		time.Now().UTC().Format(time.RFC3339), r.Method, r.URL.Path, code, sw.bytes, d)
	s.logMu.Unlock()
}

// Error codes form the machine-readable half of the error envelope:
// a closed enum clients can switch on without parsing messages. The
// human-readable message may change between releases; the code set only
// grows.
const (
	// CodeBadRequest: the request body or query is malformed or fails
	// validation (400).
	CodeBadRequest = "bad_request"
	// CodeBodyTooLarge: the request body exceeds MaxBodyBytes (413).
	CodeBodyTooLarge = "body_too_large"
	// CodeJobNotFound: the job id does not exist (404) — it may have
	// been retired by TTL or capacity.
	CodeJobNotFound = "job_not_found"
	// CodeQueueSaturated: the admission queue is full (or the estimated
	// queue wait makes the request's deadline infeasible, under load
	// shedding); retry after retry_after_ms (429).
	CodeQueueSaturated = "queue_saturated"
	// CodeRateLimited: the client exceeded its per-client request rate;
	// retry after retry_after_ms (429).
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded: the client already has its quota of concurrent
	// work admitted; retry after retry_after_ms (429).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeUnauthorized: the X-Api-Key header names no known client
	// (401).
	CodeUnauthorized = "unauthorized"
	// CodeDraining: the server is shutting down and refuses new work
	// (503).
	CodeDraining = "draining"
	// CodeDeadlineExceeded: the work hit its deadline (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the work was cancelled before completing (503).
	CodeCanceled = "canceled"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// ErrorBody is the payload of the uniform error envelope.
type ErrorBody struct {
	// Code is one of the Code* enum values.
	Code string `json:"code"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// RetryAfterMS hints when to retry, on queue_saturated errors.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// apiError is the uniform error envelope: every non-2xx response body
// is {"error": {"code": ..., "message": ...}}.
type apiError struct {
	Error ErrorBody `json:"error"`
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes the uniform error envelope.
func httpError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, apiError{Error: ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// decodeJSON parses the request body into v, rejecting unknown fields
// so typos fail loudly instead of profiling the wrong thing.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// userError marks failures caused by the request itself (unresolvable
// source, compile errors), mapped to 400 rather than 500.
type userError struct{ err error }

func (e *userError) Error() string { return e.err.Error() }
func (e *userError) Unwrap() error { return e.err }

func userErr(err error) error {
	if err == nil {
		return nil
	}
	return &userError{err: err}
}

// isMaxBytes reports whether err came from the request-size limiter.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
