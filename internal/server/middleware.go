package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter records the response status and size for the access log
// and error counters, and forwards Flush so SSE streaming works through
// the middleware.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument wraps one route handler with the server middleware stack:
// request counters, per-route latency, body-size limiting, panic
// isolation, and access logging. A panicking handler is reported as 500
// without taking down the server or its sibling requests.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.sm.latency[route]
	return func(w http.ResponseWriter, r *http.Request) {
		s.sm.requests.Inc()
		s.sm.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.sm.panics.Inc()
				if !sw.wrote {
					writeJSON(sw, http.StatusInternalServerError,
						apiError{Error: fmt.Sprintf("internal error: %v", v)})
				}
				s.logAccess(r, sw, time.Since(start))
				// The stack goes to the access log sink if there is
				// one; the request itself only sees the opaque 500.
				if s.opts.AccessLog != nil {
					s.logMu.Lock()
					fmt.Fprintf(s.opts.AccessLog, "panic in %s %s: %v\n%s",
						r.Method, r.URL.Path, v, debug.Stack())
					s.logMu.Unlock()
				}
				s.sm.inflight.Add(-1)
				hist.Observe(time.Since(start).Seconds())
				return
			}
			if sw.code >= 400 {
				s.sm.errors.Inc()
			}
			s.logAccess(r, sw, time.Since(start))
			s.sm.inflight.Add(-1)
			hist.Observe(time.Since(start).Seconds())
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		}
		h(sw, r)
	}
}

// logAccess emits one structured access-log line.
func (s *Server) logAccess(r *http.Request, sw *statusWriter, d time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	code := sw.code
	if !sw.wrote {
		code = http.StatusOK
	}
	s.logMu.Lock()
	fmt.Fprintf(s.opts.AccessLog, "%s method=%s path=%s status=%d bytes=%d dur=%s\n",
		time.Now().UTC().Format(time.RFC3339), r.Method, r.URL.Path, code, sw.bytes, d)
	s.logMu.Unlock()
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes the uniform error body.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeJSON parses the request body into v, rejecting unknown fields
// so typos fail loudly instead of profiling the wrong thing.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// userError marks failures caused by the request itself (unresolvable
// source, compile errors), mapped to 400 rather than 500.
type userError struct{ err error }

func (e *userError) Error() string { return e.err.Error() }
func (e *userError) Unwrap() error { return e.err }

func userErr(err error) error {
	if err == nil {
		return nil
	}
	return &userError{err: err}
}

// isMaxBytes reports whether err came from the request-size limiter.
func isMaxBytes(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}
