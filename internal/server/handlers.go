package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"alchemist"
	"alchemist/internal/obs"
	"alchemist/internal/progs"
	"alchemist/internal/report"
	"alchemist/internal/xtrace"
)

// SourceSpec names the program and input suite a request operates on:
// either inline mini-C source (with optional explicit input streams) or
// an embedded workload (with optional input scales). One profiling /
// run job is created per input stream or scale; with neither, a single
// job with the default input.
type SourceSpec struct {
	// Name labels inline source in diagnostics (default "request.mc").
	Name string `json:"name,omitempty"`
	// Source is inline mini-C source text.
	Source string `json:"source,omitempty"`
	// Workload selects an embedded workload instead (see GET /healthz
	// or `alchemist list` for names). Exactly one of Source / Workload
	// must be set.
	Workload string `json:"workload,omitempty"`
	// Inputs are explicit input streams, one batch job per stream
	// (inline source only).
	Inputs [][]int64 `json:"inputs,omitempty"`
	// Scales are workload input scales, one batch job per scale
	// (0 = the paper default; workloads only).
	Scales []int `json:"scales,omitempty"`
	// Optimize compiles with the optimization passes.
	Optimize bool `json:"optimize,omitempty"`
	// MemWords overrides the VM memory size (inline source only;
	// workloads bring their own).
	MemWords int64 `json:"mem_words,omitempty"`
}

// resolve turns the spec into a compile unit plus one ProfileJob per
// input. All failures are user errors.
func (sp SourceSpec) resolve() (name, src string, jobs []alchemist.ProfileJob, memWords int64, err error) {
	switch {
	case sp.Workload != "" && sp.Source != "":
		return "", "", nil, 0, errors.New("request has both source and workload; pick one")
	case sp.Workload != "":
		if len(sp.Inputs) > 0 {
			return "", "", nil, 0, errors.New("inputs apply to inline source; use scales with a workload")
		}
		w, werr := progs.ByName(sp.Workload)
		if werr != nil {
			return "", "", nil, 0, werr
		}
		scales := sp.Scales
		if len(scales) == 0 {
			scales = []int{0}
		}
		for _, sc := range scales {
			jobs = append(jobs, alchemist.ProfileJob{Input: w.InputFor(sc)})
		}
		return w.Name + ".mc", w.Source, jobs, w.MemWords, nil
	case sp.Source != "":
		if len(sp.Scales) > 0 {
			return "", "", nil, 0, errors.New("scales apply to workloads; use inputs with inline source")
		}
		name = sp.Name
		if name == "" {
			name = "request.mc"
		}
		inputs := sp.Inputs
		if len(inputs) == 0 {
			inputs = [][]int64{nil}
		}
		for _, in := range inputs {
			jobs = append(jobs, alchemist.ProfileJob{Input: in})
		}
		return name, sp.Source, jobs, sp.MemWords, nil
	default:
		return "", "", nil, 0, errors.New("request needs source or workload")
	}
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	Name     string `json:"name,omitempty"`
	Source   string `json:"source,omitempty"`
	Workload string `json:"workload,omitempty"`
	Optimize bool   `json:"optimize,omitempty"`
}

// CompileResponse reports the compiled program's shape. Compiling
// through the API warms the engine's program cache, so a later profile
// of the same source skips the pipeline.
type CompileResponse struct {
	Name         string `json:"name"`
	Functions    int    `json:"functions"`
	Instructions int    `json:"instructions"`
}

// ProfileRequest is the body of POST /v1/profile and the payload of
// "profile"/"advise" jobs.
type ProfileRequest struct {
	SourceSpec
	// TimeoutMS bounds the work's wall-clock time (default: the
	// server's DefaultTimeout, clamped to MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Top truncates the response to the N hottest constructs (0 = all).
	Top int `json:"top,omitempty"`
}

// RunSummary is one batch job's execution outcome.
type RunSummary struct {
	Job   int   `json:"job"`
	Steps int64 `json:"steps"`
	Ret   int64 `json:"ret"`
	// Output holds up to 64 words of out() output; OutputLen is the
	// full length.
	Output    []int64 `json:"output,omitempty"`
	OutputLen int     `json:"output_len"`
}

// ProfileResponse carries the union profile over the input suite.
type ProfileResponse struct {
	Name    string              `json:"name"`
	Jobs    int                 `json:"jobs"`
	Profile *report.JSONProfile `json:"profile"`
	Runs    []RunSummary        `json:"runs"`
}

// AdviceItem is one transformation suggestion.
type AdviceItem struct {
	Action string `json:"action"`
	Text   string `json:"text"`
}

// AdviceJSON is the advisor's judgment of one construct.
type AdviceJSON struct {
	Label          int          `json:"label"`
	Name           string       `json:"name"`
	Kind           string       `json:"kind"`
	Line           int          `json:"line"`
	Func           string       `json:"func"`
	Parallelizable bool         `json:"parallelizable"`
	Score          float64      `json:"score"`
	Advice         []AdviceItem `json:"advice"`
}

// AdviseResponse is the ranked guidance for the profiled suite.
type AdviseResponse struct {
	Name    string       `json:"name"`
	Jobs    int          `json:"jobs"`
	Reports []AdviceJSON `json:"reports"`
}

// RunRequest is the body of POST /v1/run and the payload of "run" jobs.
type RunRequest struct {
	SourceSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallel executes spawn statements on goroutines.
	Parallel bool `json:"parallel,omitempty"`
}

// RunResponse carries the per-job execution outcomes.
type RunResponse struct {
	Name string       `json:"name"`
	Jobs int          `json:"jobs"`
	Runs []RunSummary `json:"runs"`
}

// JobRequest is the body of POST /v1/jobs: the union of the sync
// request shapes plus the kind discriminator.
type JobRequest struct {
	// Kind selects the work: "profile", "advise", or "run".
	Kind string `json:"kind"`
	SourceSpec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	Top       int   `json:"top,omitempty"`
	Parallel  bool  `json:"parallel,omitempty"`
}

// progressSink receives batch-job step reports; nil discards them.
type progressSink func(batchJob int, steps int64)

// ---------- sync handlers ----------

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	cl, ok := s.authn(w, r)
	if !ok || !s.allowRate(w, cl) {
		return
	}
	var req CompileRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	name, src := req.Name, req.Source
	if req.Workload != "" {
		if req.Source != "" {
			httpError(w, http.StatusBadRequest, CodeBadRequest, "request has both source and workload; pick one")
			return
		}
		wl, err := progs.ByName(req.Workload)
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		name, src = wl.Name+".mc", wl.Source
	} else if src == "" {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "request needs source or workload")
		return
	}
	if name == "" {
		name = "request.mc"
	}
	prog, err := s.eng.CompileWith(r.Context(), name, src,
		alchemist.CompileOptions{Optimize: req.Optimize})
	if err != nil {
		s.writeExecError(w, userErr(err))
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Name:         name,
		Functions:    len(prog.IR().Funcs),
		Instructions: prog.IR().NumPCs,
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	cl, ok := s.authn(w, r)
	if !ok || !s.allowRate(w, cl) {
		return
	}
	var req ProfileRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	timeout := s.timeoutFor(req.TimeoutMS)
	release, ok := s.admitClient(w, cl, timeout)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := s.profile(ctx, req, nil)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	cl, ok := s.authn(w, r)
	if !ok || !s.allowRate(w, cl) {
		return
	}
	var req ProfileRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	timeout := s.timeoutFor(req.TimeoutMS)
	release, ok := s.admitClient(w, cl, timeout)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := s.advise(ctx, req, nil)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	cl, ok := s.authn(w, r)
	if !ok || !s.allowRate(w, cl) {
		return
	}
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	timeout := s.timeoutFor(req.TimeoutMS)
	release, ok := s.admitClient(w, cl, timeout)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := s.run(ctx, req, nil)
	if err != nil {
		s.writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---------- work execution (shared by sync handlers and async jobs) ----------

// profile compiles and profiles the request's input suite on the shared
// engine, reporting per-batch-job progress into sink.
func (s *Server) profile(ctx context.Context, req ProfileRequest, sink progressSink) (*ProfileResponse, error) {
	name, src, pjobs, memWords, err := req.resolve()
	if err != nil {
		return nil, userErr(err)
	}
	prog, err := s.eng.CompileWith(ctx, name, src,
		alchemist.CompileOptions{Optimize: req.Optimize})
	if err != nil {
		return nil, userErr(err)
	}
	for i := range pjobs {
		pjobs[i].Config = &alchemist.ProfileConfig{
			RunConfig: alchemist.RunConfig{MemWords: memWords},
		}
		if sink != nil {
			i := i
			pjobs[i].OnProgress = func(steps int64) { sink(i, steps) }
		}
	}
	merged, results, err := s.eng.ProfileBatch(ctx, prog, pjobs)
	if err != nil {
		return nil, err
	}
	resp := &ProfileResponse{
		Name:    name,
		Jobs:    len(pjobs),
		Profile: report.ToJSON(merged),
	}
	if req.Top > 0 && len(resp.Profile.Constructs) > req.Top {
		resp.Profile.Constructs = resp.Profile.Constructs[:req.Top]
	}
	for _, res := range results {
		resp.Runs = append(resp.Runs, summarize(res.Job, res.Run))
	}
	return resp, nil
}

// advise is profile plus the advisor pass.
func (s *Server) advise(ctx context.Context, req ProfileRequest, sink progressSink) (*AdviseResponse, error) {
	name, src, pjobs, memWords, err := req.resolve()
	if err != nil {
		return nil, userErr(err)
	}
	prog, err := s.eng.CompileWith(ctx, name, src,
		alchemist.CompileOptions{Optimize: req.Optimize})
	if err != nil {
		return nil, userErr(err)
	}
	for i := range pjobs {
		pjobs[i].Config = &alchemist.ProfileConfig{
			RunConfig: alchemist.RunConfig{MemWords: memWords},
		}
		if sink != nil {
			i := i
			pjobs[i].OnProgress = func(steps int64) { sink(i, steps) }
		}
	}
	merged, _, err := s.eng.ProfileBatch(ctx, prog, pjobs)
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = 8
	}
	resp := &AdviseResponse{Name: name, Jobs: len(pjobs)}
	for _, rep := range alchemist.Advise(merged) {
		if len(resp.Reports) >= top {
			break
		}
		aj := AdviceJSON{
			Label:          rep.Construct.Label,
			Name:           report.ConstructName(rep.Construct),
			Kind:           rep.Construct.Kind.String(),
			Line:           rep.Construct.Pos.Line,
			Func:           rep.Construct.FuncName,
			Parallelizable: rep.Parallelizable,
			Score:          rep.Score,
		}
		for _, a := range rep.Advices {
			aj.Advice = append(aj.Advice, AdviceItem{Action: a.Action.String(), Text: a.Text})
		}
		resp.Reports = append(resp.Reports, aj)
	}
	return resp, nil
}

// run executes the request's input suite uninstrumented via the
// engine's RunBatch fan-out.
func (s *Server) run(ctx context.Context, req RunRequest, sink progressSink) (*RunResponse, error) {
	name, src, pjobs, memWords, err := req.resolve()
	if err != nil {
		return nil, userErr(err)
	}
	prog, err := s.eng.CompileWith(ctx, name, src,
		alchemist.CompileOptions{Optimize: req.Optimize})
	if err != nil {
		return nil, userErr(err)
	}
	rjobs := make([]alchemist.RunJob, len(pjobs))
	for i, pj := range pjobs {
		rjobs[i] = alchemist.RunJob{
			Input:  pj.Input,
			Config: &alchemist.RunConfig{MemWords: memWords, Parallel: req.Parallel},
		}
		if sink != nil {
			i := i
			rjobs[i].OnProgress = func(steps int64) { sink(i, steps) }
		}
	}
	results, err := s.eng.RunBatch(ctx, prog, rjobs)
	if err != nil {
		return nil, err
	}
	resp := &RunResponse{Name: name, Jobs: len(rjobs)}
	for _, res := range results {
		resp.Runs = append(resp.Runs, summarize(res.Job, res.Run))
	}
	return resp, nil
}

// summarize converts one run result to its wire form, capping output.
func summarize(jobIdx int, res *alchemist.RunResult) RunSummary {
	sum := RunSummary{Job: jobIdx}
	if res == nil {
		return sum
	}
	sum.Steps = res.Steps
	sum.Ret = res.Ret
	sum.OutputLen = len(res.Output)
	out := res.Output
	if len(out) > 64 {
		out = out[:64]
	}
	sum.Output = out
	return sum
}

// ---------- async jobs ----------

// writeIdemReplay answers a replayed Idempotency-Key: 200 (not 202)
// with the existing job and the idempotent_replay marker.
func (s *Server) writeIdemReplay(w http.ResponseWriter, j *job) {
	s.sm.idemReplays.Inc()
	st := j.status(false)
	st.IdempotentReplay = true
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		// Draining is transient: a well-behaved client should back off
		// and retry against the replacement process, so the 503 carries
		// the same retry hints as the 429 paths.
		s.writeRetryable(w, http.StatusServiceUnavailable, s.opts.RetryAfter,
			CodeDraining, "server is draining; not accepting new jobs")
		return
	}
	cl, ok := s.authn(w, r)
	if !ok || !s.allowRate(w, cl) {
		return
	}
	// A replayed Idempotency-Key returns the existing job before any
	// decoding or admission: the first submission's outcome stands,
	// whatever the retry's body says.
	idemKey := r.Header.Get("Idempotency-Key")
	if j := s.store.getIdem(idemKey); j != nil {
		s.writeIdemReplay(w, j)
		return
	}
	var req JobRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	switch req.Kind {
	case "profile", "advise", "run":
	default:
		httpError(w, http.StatusBadRequest, CodeBadRequest, "unknown job kind %q (want profile, advise, or run)", req.Kind)
		return
	}
	// Validate the source before paying for an admission slot, so typos
	// fail fast with 400 rather than occupying the queue.
	if _, _, _, _, err := req.resolve(); err != nil {
		httpError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	admitStart := time.Now()
	release, ok := s.admitClient(w, cl, s.timeoutFor(req.TimeoutMS))
	if !ok {
		return
	}
	admitEnd := time.Now()
	// The canonicalized request is journaled with the job so a crash
	// recovery can re-enqueue it.
	reqRaw, err := json.Marshal(req)
	if err != nil {
		release()
		httpError(w, http.StatusInternalServerError, CodeInternal, "encoding request: %v", err)
		return
	}
	j := newJob(req.Kind, reqRaw, idemKey, s.wal)
	// The job adopts the submitting request's trace: its whole timeline
	// shares one trace ID, parented under the request's root span. An
	// SDK retry replays via Idempotency-Key above, so the first
	// submission's trace stands.
	if sc := xtrace.SpanContextFrom(r.Context()); sc.Valid() {
		j.trace = sc
	}
	if winner := s.store.putOrIdem(j); winner != j {
		// Two racing submissions shared the key; the loser's job has no
		// journal footprint yet and is simply dropped.
		release()
		s.writeIdemReplay(w, winner)
		return
	}
	j.enqueue()
	if j.trace.Valid() {
		j.RecordSpan(xtrace.MakeRecord(j.trace.TraceID, j.trace.SpanID,
			"admit", admitStart, admitEnd, nil))
	}
	s.sm.jobsCreated.Inc()
	s.sm.jobsActive.Add(1)
	s.startJob(j, req, release)
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// startJob runs the job on its own goroutine, holding the admission
// slot until it finishes. The job's deadline hangs off the server's
// lifetime context, not the creating request: the client can disconnect
// and poll later.
func (s *Server) startJob(j *job, req JobRequest, release func()) {
	ctx, cancel := context.WithTimeout(s.lifeCtx, s.timeoutFor(req.TimeoutMS))
	if j.trace.Valid() {
		// Engine spans (compile cache hit/miss/coalesced, per-scale
		// profile/run) started under this context end into both the
		// tracer's retention and the job's persisted timeline.
		ctx = xtrace.ContextWithTracer(ctx, s.tracer)
		ctx = xtrace.ContextWithSpanContext(ctx, j.trace)
		ctx = xtrace.ContextWithRecorder(ctx, j)
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	sink := func(batchJob int, steps int64) {
		j.reportProgress(batchJob, steps, s.opts.ProgressInterval)
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		defer release()
		defer cancel()
		// pprof labels attribute CPU samples from this job — and from
		// the engine worker goroutines it fans out to, which inherit
		// the labels — back to the job id and endpoint.
		pprof.Do(ctx, pprof.Labels("job_id", j.id, "endpoint", j.kind), func(ctx context.Context) {
			queuedAt := j.created
			j.setRunning()
			if j.trace.Valid() {
				j.RecordSpan(xtrace.MakeRecord(j.trace.TraceID, j.trace.SpanID,
					"queue", queuedAt, time.Now(), nil))
			}
			var result any
			var err error
			switch j.kind {
			case "profile":
				result, err = s.profile(ctx, ProfileRequest{SourceSpec: req.SourceSpec, Top: req.Top}, sink)
			case "advise":
				result, err = s.advise(ctx, ProfileRequest{SourceSpec: req.SourceSpec, Top: req.Top}, sink)
			case "run":
				result, err = s.run(ctx, RunRequest{SourceSpec: req.SourceSpec, Parallel: req.Parallel}, sink)
			}
			j.finish(result, err)
			s.sm.jobsActive.Add(-1)
		})
	}()
}

// JobListResponse is the paginated body of GET /v1/jobs.
type JobListResponse struct {
	Jobs []JobStatus `json:"jobs"`
	// NextPageToken continues the listing when more jobs remain; pass
	// it back as ?page_token=. Absent on the last page.
	NextPageToken string `json:"next_page_token,omitempty"`
}

const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// encodeCursor renders a pagination cursor naming the last returned
// job. The ordering key is (created_at, id), which is stable: recovery
// preserves creation times and ids, and retirement between pages only
// removes rows.
func encodeCursor(st JobStatus) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf("v1:%d:%s", st.CreatedAt.UnixNano(), st.ID)))
}

// decodeCursor parses a page token back into its ordering key.
func decodeCursor(tok string) (createdNS int64, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, "", err
	}
	parts := strings.SplitN(string(raw), ":", 3)
	if len(parts) != 3 || parts[0] != "v1" {
		return 0, "", errors.New("malformed token")
	}
	createdNS, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, "", err
	}
	return createdNS, parts[2], nil
}

// handleJobList serves GET /v1/jobs with a state= filter, a limit=
// page size, and cursor-based page_token= pagination over the stable
// (created_at, id) ordering.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authn(w, r); !ok {
		return
	}
	q := r.URL.Query()

	var filter JobState
	if st := q.Get("state"); st != "" {
		filter = JobState(st)
		if !validJobState(filter) {
			httpError(w, http.StatusBadRequest, CodeBadRequest,
				"unknown state %q (want queued, running, succeeded, failed, or interrupted)", st)
			return
		}
	}
	limit := defaultListLimit
	if ls := q.Get("limit"); ls != "" {
		v, err := strconv.Atoi(ls)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a positive integer, got %q", ls)
			return
		}
		limit = min(v, maxListLimit)
	}
	var afterNS int64
	var afterID string
	hasCursor := false
	if tok := q.Get("page_token"); tok != "" {
		var err error
		afterNS, afterID, err = decodeCursor(tok)
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeBadRequest, "invalid page_token")
			return
		}
		hasCursor = true
	}

	out := JobListResponse{Jobs: make([]JobStatus, 0, limit)}
	for _, j := range s.store.list() {
		st := j.status(false)
		if filter != "" && st.State != filter {
			continue
		}
		if hasCursor {
			ns := st.CreatedAt.UnixNano()
			if ns < afterNS || (ns == afterNS && st.ID <= afterID) {
				continue
			}
		}
		if len(out.Jobs) == limit {
			out.NextPageToken = encodeCursor(out.Jobs[limit-1])
			break
		}
		out.Jobs = append(out.Jobs, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authn(w, r); !ok {
		return
	}
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, CodeJobNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authn(w, r); !ok {
		return
	}
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, CodeJobNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusOK, j.status(false))
}

// handleJobEvents streams the job's event log as Server-Sent Events:
// every past event is replayed in order, then live events as they
// happen, ending after the terminal state event. A Last-Event-ID header
// (the SSE reconnect convention; the stream's id: field carries the
// event Seq) resumes from the first unseen event instead of replaying
// the whole log. Idle streams emit a ": keepalive" comment every
// SSEKeepAlive so proxy idle timeouts do not cut them.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authn(w, r); !ok {
		return
	}
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, CodeJobNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	next := 0
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		n, err := strconv.Atoi(lid)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, CodeBadRequest, "malformed Last-Event-ID %q (want a non-negative event seq)", lid)
			return
		}
		next = n + 1
		s.sm.sseResumed.Inc()
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	s.sm.sseStreams.Inc()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// The stream interval lands in the job's span timeline when it
	// closes: how long delivery was attached, how many events it moved,
	// and whether it was a Last-Event-ID resume.
	streamStart := time.Now()
	resumed := next > 0
	sent := 0
	defer func() {
		if j.trace.Valid() {
			j.RecordSpan(xtrace.MakeRecord(j.trace.TraceID, j.trace.SpanID,
				"sse", streamStart, time.Now(), map[string]string{
					"events":  strconv.Itoa(sent),
					"resumed": strconv.FormatBool(resumed),
				}))
		}
	}()

	// A client disconnect must unblock waitEvents.
	stop := context.AfterFunc(r.Context(), j.wake)
	defer stop()

	for {
		evs, done, timedOut := j.waitEvents(r.Context(), next, s.opts.SSEKeepAlive)
		if r.Context().Err() != nil {
			return
		}
		if timedOut {
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
			continue
		}
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return
			}
		}
		fl.Flush()
		next += len(evs)
		sent += len(evs)
		if done {
			return
		}
	}
}

// JobTraceResponse is the body of GET /v1/jobs/{id}/trace: the job's
// persisted span timeline, which survives restarts alongside the event
// log.
type JobTraceResponse struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	TraceID string   `json:"trace_id,omitempty"`
	// Spans is the timeline in recording order: admit, queue, compile,
	// per-scale profile/run spans, journal appends, SSE deliveries.
	Spans []xtrace.SpanRecord `json:"spans"`
	// DroppedSpans counts spans discarded past the per-job cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.authn(w, r); !ok {
		return
	}
	j := s.store.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, CodeJobNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	resp := JobTraceResponse{
		ID:           j.id,
		State:        j.state,
		TraceID:      j.traceID(),
		Spans:        append([]xtrace.SpanRecord(nil), j.spans...),
		DroppedSpans: j.spansDropped,
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// VersionResponse is the body of GET /v1/version.
type VersionResponse struct {
	Service string `json:"service"`
	obs.BuildInfo
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{Service: "alchemist", BuildInfo: s.build})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.isDraining() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status    string        `json:"status"`
		Workers   int           `json:"workers"`
		Queue     int           `json:"queue_capacity"`
		Durable   bool          `json:"durable"`
		Build     obs.BuildInfo `json:"build"`
		Workloads []string      `json:"workloads"`
	}{
		Status:  state,
		Workers: s.eng.Workers(),
		Queue:   s.opts.QueueDepth,
		Durable: s.wal != nil,
		Build:   s.build,
		Workloads: func() []string {
			var names []string
			for _, wl := range progs.All() {
				names = append(names, wl.Name)
			}
			return names
		}(),
	})
}

// ---------- error mapping ----------

// writeBusy answers 429 with the Retry-After backoff hint in both the
// header and the error envelope.
func (s *Server) writeBusy(w http.ResponseWriter) {
	secs := int(s.opts.RetryAfter.Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, apiError{Error: ErrorBody{
		Code: CodeQueueSaturated,
		Message: fmt.Sprintf("admission queue full (%d slots); retry after %ds",
			s.opts.QueueDepth, secs),
		RetryAfterMS: s.opts.RetryAfter.Milliseconds(),
	}})
}

// writeDecodeError maps body-parse failures: 413 for oversized bodies,
// 400 otherwise.
func (s *Server) writeDecodeError(w http.ResponseWriter, err error) {
	if isMaxBytes(err) {
		httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"request body exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	httpError(w, http.StatusBadRequest, CodeBadRequest, "bad request body: %v", err)
}

// writeExecError maps work failures onto statuses: 400 for user errors
// (bad source), 504 for deadline expiry, 503 for cancellation (server
// shutdown; retryable, so it carries the Retry-After hints), 500
// otherwise.
func (s *Server) writeExecError(w http.ResponseWriter, err error) {
	var ue *userError
	switch {
	case errors.As(err, &ue):
		httpError(w, http.StatusBadRequest, CodeBadRequest, "%v", ue.err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded, "%v", err)
	case errors.Is(err, context.Canceled):
		s.writeRetryable(w, http.StatusServiceUnavailable, s.opts.RetryAfter, CodeCanceled, "%v", err)
	default:
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
	}
}

// writeSSE writes one event in text/event-stream framing. The event
// type doubles as the SSE event name so EventSource listeners can
// subscribe per type; the JSON payload repeats it for plain readers.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := encodeEvent(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	return err
}
