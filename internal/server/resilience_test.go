package server

// The resilience suite drives the public client SDK against a real
// server through the fault-injection harness, proving the end-to-end
// claim: under dropped connections, 5xx bursts, mid-stream SSE cuts,
// and a hard server kill + restart, every submitted job completes
// exactly once and every event stream is delivered gap-free.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alchemist"
	"alchemist/client"
	"alchemist/internal/faultinject"
)

// jobCount reports how many distinct jobs the server's store holds —
// the exactly-once ledger.
func (s *Server) jobCount() int {
	s.store.mu.Lock()
	defer s.store.mu.Unlock()
	return len(s.store.jobs)
}

func TestResilienceExactlyOnceUnderFaultBurst(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Every request runs the gauntlet: refused dials, responses lost
	// after the server did the work, and synthetic 502s from a flaky
	// front proxy.
	in := faultinject.Chain(ts.Client().Transport)
	in.Use(
		in.DropRequest(faultinject.NewRand(11), 0.20),
		in.DropResponse(faultinject.NewRand(12), 0.15),
		in.ServerError(faultinject.NewRand(13), 0.15, http.StatusBadGateway),
	)
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: in}),
		client.WithRandSeed(1),
		client.WithRetry(16, time.Millisecond, 20*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.SubmitAndWait(ctx, client.JobRequest{
				Kind: "run",
				SourceSpec: client.SourceSpec{
					Name:   fmt.Sprintf("job-%d", i),
					Source: loopSrc,
					Inputs: [][]int64{{int64(100 * (i + 1))}},
				},
				TimeoutMS: 60_000,
			})
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != client.JobSucceeded {
				errs[i] = fmt.Errorf("job %d: state %s (err %q)", i, st.State, st.Error)
				return
			}
			var res client.RunResponse
			if err := json.Unmarshal(st.Result, &res); err != nil {
				errs[i] = err
				return
			}
			m := int64(100 * (i + 1))
			if want := m * (m - 1) / 2; len(res.Runs) != 1 || res.Runs[0].Output[0] != want {
				errs[i] = fmt.Errorf("job %d: result %+v, want output %d", i, res, want)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if in.Injected.Load() == 0 {
		t.Fatal("no faults fired; the gauntlet tested nothing")
	}
	// Exactly once: retried submissions rode their idempotency keys onto
	// the original jobs, so the store holds one job per logical submit.
	if got := s.jobCount(); got != n {
		t.Fatalf("store holds %d jobs after %d logical submissions (duplicates or losses)", got, n)
	}
}

func TestResilienceSSECutGapFreeResume(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// Sever every event stream a few hundred bytes in; leave the JSON
	// endpoints alone so only resumption is under test.
	in := faultinject.Chain(ts.Client().Transport)
	cut := in.CutBody(faultinject.NewRand(21), 1.0, 600)
	in.Use(func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		if strings.HasSuffix(req.URL.Path, "/events") {
			return cut(req, next)
		}
		return next.RoundTrip(req)
	})
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: in}),
		client.WithRandSeed(2),
		client.WithRetry(16, time.Millisecond, 20*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.SubmitJob(ctx, client.JobRequest{
		Kind:       "run",
		SourceSpec: client.SourceSpec{Name: "chatty", Source: loopSrc, Inputs: [][]int64{{20000}}},
		TimeoutMS:  60_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	es := c.StreamEvents(st.ID, 0)
	defer es.Close()
	want := 0
	sawTerminal := false
	for {
		ev, err := es.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Seq != want {
			t.Fatalf("event seq %d after %d events: the resumed stream has a gap or duplicate", ev.Seq, want)
		}
		want++
		if ev.Terminal() {
			sawTerminal = true
			if ev.State != client.JobSucceeded {
				t.Fatalf("terminal state %s, want succeeded", ev.State)
			}
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without its terminal event")
	}
	if in.Injected.Load() < 2 {
		t.Fatalf("only %d stream cuts fired; resumption was not exercised", in.Injected.Load())
	}
	if s.sm.sseResumed.Value() == 0 {
		t.Fatal("server saw no Last-Event-ID resumes")
	}
}

func TestResilienceKillRestartConvergence(t *testing.T) {
	dir := t.TempDir()
	newSrv := func() *Server {
		t.Helper()
		s, err := New(Options{
			Engine:            alchemist.NewEngine(alchemist.WithWorkers(1)),
			DataDir:           dir,
			RequeueOnRecovery: true,
			ProgressInterval:  -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := newSrv()
	if err := s1.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr().String()
	c := client.New("http://"+addr,
		client.WithRandSeed(3),
		client.WithRetry(40, 5*time.Millisecond, 100*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// With one worker, the blocker pins the engine so the target is
	// deterministically non-terminal (queued) when the server dies.
	if _, err := c.SubmitJob(ctx, client.JobRequest{
		Kind:       "run",
		SourceSpec: client.SourceSpec{Name: "blocker", Source: foreverSrc},
		TimeoutMS:  1500,
	}); err != nil {
		t.Fatal(err)
	}
	target, err := c.SubmitJob(ctx, client.JobRequest{
		Kind:       "run",
		SourceSpec: client.SourceSpec{Name: "target", Source: loopSrc, Inputs: [][]int64{{1000}}},
		TimeoutMS:  60_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		st  *client.JobStatus
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		st, err := c.WaitJob(ctx, target.ID)
		done <- outcome{st, err}
	}()

	// Let the watcher attach its stream, then kill the server the way a
	// SIGKILL would: sockets severed, journal frozen, no goodbye events.
	time.Sleep(150 * time.Millisecond)
	s1.Kill()

	s2 := newSrv()
	defer s2.Close()
	if rec := s2.Recovery(); rec.Jobs != 2 || rec.Requeued != 2 {
		t.Fatalf("recovery = %+v, want 2 jobs recovered and requeued", rec)
	}
	var startErr error
	for i := 0; i < 300; i++ {
		if startErr = s2.Start(addr); startErr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if startErr != nil {
		t.Fatalf("could not rebind %s: %v", addr, startErr)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("WaitJob did not survive the restart: %v", res.err)
	}
	if res.st.State != client.JobSucceeded {
		t.Fatalf("target state %s (err %q), want succeeded", res.st.State, res.st.Error)
	}
	var run client.RunResponse
	if err := json.Unmarshal(res.st.Result, &run); err != nil {
		t.Fatal(err)
	}
	if len(run.Runs) != 1 || run.Runs[0].Output[0] != 499500 {
		t.Fatalf("target result %+v, want output 499500", run)
	}
	// Exactly once across the crash: recovery rebuilt the two jobs, it
	// did not duplicate them.
	if got := s2.jobCount(); got != 2 {
		t.Fatalf("store holds %d jobs after restart, want 2", got)
	}
}

// TestResilienceServerSideFaultMiddleware proves the harness composes on
// the server side too: a handler that fails a third of all requests with
// 503 still converges for a retrying client.
func TestResilienceServerSideFaultMiddleware(t *testing.T) {
	s, err := New(Options{
		Engine:           alchemist.NewEngine(alchemist.WithWorkers(2)),
		ProgressInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, injected := faultinject.Middleware(faultinject.NewRand(31), 0.33, http.StatusServiceUnavailable, s.Handler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := client.New(ts.URL,
		client.WithRandSeed(4),
		client.WithRetry(16, time.Millisecond, 20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.SubmitAndWait(ctx, client.JobRequest{
		Kind:       "run",
		SourceSpec: client.SourceSpec{Name: "mid", Source: loopSrc, Inputs: [][]int64{{500}}},
		TimeoutMS:  60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.JobSucceeded {
		t.Fatalf("state %s, want succeeded", st.State)
	}
	if injected.Load() == 0 {
		t.Fatal("middleware injected nothing")
	}
	if got := s.jobCount(); got != 1 {
		t.Fatalf("store holds %d jobs, want 1", got)
	}
}
