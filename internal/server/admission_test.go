package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

func doKeyed(t *testing.T, method, url, key, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-Api-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// streamEvents replays a finished job's SSE stream, optionally resuming
// with a Last-Event-ID header, and parses the events.
func streamEvents(t *testing.T, base, id, lastEventID string) []Event {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status = %d", resp.StatusCode)
	}
	return parseSSE(t, resp.Body)
}

func errCode(t *testing.T, body string) string {
	t.Helper()
	var env struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("not an error envelope: %v\n%s", err, body)
	}
	return env.Error.Code
}

func TestAuthUnknownKeyRejected(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.APIKeys = map[string]string{"key-alpha": "alpha"}
	})
	resp, body := doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "bogus", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d, want 401\n%s", resp.StatusCode, body)
	}
	if c := errCode(t, body); c != CodeUnauthorized {
		t.Fatalf("code = %q, want %s", c, CodeUnauthorized)
	}
	if s.sm.authFailures.Value() != 1 {
		t.Fatalf("auth failure counter = %d, want 1", s.sm.authFailures.Value())
	}
	// A known key works; so does no key at all (anonymous is still a
	// client, just a shared one).
	resp, body = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "key-alpha", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("known key: status = %d\n%s", resp.StatusCode, body)
	}
	resp, body = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous: status = %d\n%s", resp.StatusCode, body)
	}
}

func TestRateLimit429WithHonestRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.RatePerSec = 1
		o.RateBurst = 2
	})
	// The rate limit guards the work-creating endpoints; read-only
	// endpoints stay unmetered.
	compileBody := fmt.Sprintf(`{"name":"t.mc","source":%q}`, tinySrc)
	limited := 0
	var lastBody string
	var lastResp *http.Response
	for i := 0; i < 6; i++ {
		resp, body := doKeyed(t, http.MethodPost, ts.URL+"/v1/compile", "", compileBody)
		if resp.StatusCode == http.StatusTooManyRequests {
			limited++
			lastBody, lastResp = body, resp
		}
	}
	if limited == 0 {
		t.Fatal("burst of 6 against burst-2 bucket was never rate limited")
	}
	if c := errCode(t, lastBody); c != CodeRateLimited {
		t.Fatalf("code = %q, want %s", c, CodeRateLimited)
	}
	// Honest hints: the header is whole seconds >= 1, the body carries
	// the precise wait, and both are at most one token's accrual time.
	secs, err := strconv.Atoi(lastResp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", lastResp.Header.Get("Retry-After"))
	}
	var env struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal([]byte(lastBody), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RetryAfterMS < 1 || env.Error.RetryAfterMS > 1100 {
		t.Fatalf("retry_after_ms = %d, want (0, 1100] for a 1 rps bucket", env.Error.RetryAfterMS)
	}
	if s.sm.rateLimited.Value() != int64(limited) {
		t.Fatalf("rate-limited counter = %d, want %d", s.sm.rateLimited.Value(), limited)
	}

	// Buckets are per client: a different key has its own tokens.
	s.adm.keys = map[string]string{"key-a": "a", "key-b": "b"}
	resp, body := doKeyed(t, http.MethodPost, ts.URL+"/v1/compile", "key-b", compileBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh client: status = %d\n%s", resp.StatusCode, body)
	}
}

// TestGreedyClientCannotStarveOthers is the headline quota property: one
// client saturating its own concurrency quota gets quota_exceeded, while
// a second API key is still admitted within its quota.
func TestGreedyClientCannotStarveOthers(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.APIKeys = map[string]string{"key-greedy": "greedy", "key-polite": "polite"}
		o.ClientQuota = 2
		o.QueueDepth = 16
	})

	submit := func(key string) (*http.Response, string) {
		return doKeyed(t, http.MethodPost, ts.URL+"/v1/jobs", key,
			fmt.Sprintf(`{"kind":"run","name":"q","source":%q,"timeout_ms":30000}`, foreverSrc))
	}

	// The greedy client fills its quota of 2...
	for i := 0; i < 2; i++ {
		resp, body := submit("key-greedy")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("greedy submit %d: status = %d\n%s", i, resp.StatusCode, body)
		}
	}
	// ...and its third unit is refused with quota_exceeded + Retry-After.
	resp, body := submit("key-greedy")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status = %d, want 429\n%s", resp.StatusCode, body)
	}
	if c := errCode(t, body); c != CodeQuotaExceeded {
		t.Fatalf("code = %q, want %s", c, CodeQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota rejection carries no Retry-After")
	}
	if s.sm.quotaRejects.Value() != 1 {
		t.Fatalf("quota-reject counter = %d, want 1", s.sm.quotaRejects.Value())
	}

	// The polite client is untouched: the shared queue still has room
	// and its own quota is empty.
	resp, body = submit("key-polite")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("polite submit: status = %d, want 202 (greedy client starved it)\n%s", resp.StatusCode, body)
	}

	// Finishing greedy work frees its quota: cancel every greedy job.
	respL, bodyL := doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "key-greedy", "")
	if respL.StatusCode != http.StatusOK {
		t.Fatalf("list: %d\n%s", respL.StatusCode, bodyL)
	}
	var list struct {
		Jobs []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(bodyL), &list); err != nil {
		t.Fatal(err)
	}
	for _, j := range list.Jobs {
		doKeyed(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "key-greedy", "")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = submit("key-greedy")
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota never freed after cancellations: %d\n%s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDeadlineShedding(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.ShedDeadlines = true
		o.QueueDepth = 8
	})
	// Feed the estimator directly: pretend admitted work takes 10s, and
	// occupy enough queue slots that the estimate dwarfs a 1s deadline.
	s.adm.durMu.Lock()
	s.adm.avgSec = 10
	s.adm.durMu.Unlock()
	for i := 0; i < 4; i++ {
		if _, ok := s.tryAdmit(); !ok {
			t.Fatal("could not occupy queue slot")
		}
	}

	resp, body := doKeyed(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		fmt.Sprintf(`{"kind":"run","name":"q","source":%q,"timeout_ms":1000}`, tinySrc))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 shed\n%s", resp.StatusCode, body)
	}
	if c := errCode(t, body); c != CodeQueueSaturated {
		t.Fatalf("code = %q, want %s", c, CodeQueueSaturated)
	}
	if !strings.Contains(body, "deadline infeasible") {
		t.Fatalf("body does not explain the shed: %s", body)
	}
	if s.sm.sheds.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.sm.sheds.Value())
	}
	// A deadline the estimate can meet is admitted.
	resp, body = doKeyed(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		fmt.Sprintf(`{"kind":"run","name":"q","source":%q,"timeout_ms":600000}`, tinySrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long-deadline submit: status = %d, want 202\n%s", resp.StatusCode, body)
	}
}

func TestSSEResumeWithLastEventID(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","name":"loop","source":%q,"inputs":[[2000]]}`, loopSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if fin := waitState(t, ts.URL, st.ID); fin.State != JobSucceeded {
		t.Fatalf("job finished %s, want succeeded", fin.State)
	}

	// Full replay first, to learn the event count.
	full := streamEvents(t, ts.URL, st.ID, "")
	if len(full) < 3 {
		t.Fatalf("only %d events; need a few to resume within", len(full))
	}
	// Resume after event 1: exactly the suffix comes back.
	suffix := streamEvents(t, ts.URL, st.ID, "1")
	if len(suffix) != len(full)-2 {
		t.Fatalf("resumed stream has %d events, want %d", len(suffix), len(full)-2)
	}
	if suffix[0].Seq != 2 {
		t.Fatalf("resumed stream starts at seq %d, want 2", suffix[0].Seq)
	}
	if s.sm.sseResumed.Value() != 1 {
		t.Fatalf("resume counter = %d, want 1", s.sm.sseResumed.Value())
	}

	// Resuming past the end of a finished log ends immediately, empty.
	past := streamEvents(t, ts.URL, st.ID, strconv.Itoa(full[len(full)-1].Seq))
	if len(past) != 0 {
		t.Fatalf("resume past end returned %d events, want 0", len(past))
	}

	// A malformed Last-Event-ID is a 400, not a silent full replay.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "not-a-seq")
	respBad, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer respBad.Body.Close()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID: status = %d, want 400", respBad.StatusCode)
	}
}

func TestSSEKeepAliveComments(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.SSEKeepAlive = 50 * time.Millisecond
		// Coalesce progress reports into (effectively) never, so the
		// stream goes idle after the initial state events.
		o.ProgressInterval = time.Hour
	})
	// A job that never finishes on its own keeps the stream idle after
	// its initial events, forcing keepalives.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","name":"forever","source":%q,"timeout_ms":5000}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	respS, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer respS.Body.Close()
	buf := make([]byte, 4096)
	var seen strings.Builder
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		n, err := respS.Body.Read(buf)
		seen.Write(buf[:n])
		if strings.Count(seen.String(), ": keepalive") >= 2 {
			break
		}
		if err != nil {
			break
		}
	}
	if got := strings.Count(seen.String(), ": keepalive"); got < 2 {
		t.Fatalf("saw %d keepalive comments on an idle stream, want >= 2\n%s", got, seen.String())
	}
}

// TestDrainRetryAfterHint pins satellite behavior: a submission refused
// because the server is draining is answered 503 draining with both the
// Retry-After header and the retry_after_ms envelope hint.
func TestDrainRetryAfterHint(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	resp, body := doKeyed(t, http.MethodPost, ts.URL+"/v1/jobs", "",
		fmt.Sprintf(`{"kind":"run","name":"t","source":%q}`, tinySrc))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", resp.StatusCode, body)
	}
	if c := errCode(t, body); c != CodeDraining {
		t.Fatalf("code = %q, want %s", c, CodeDraining)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 carries no Retry-After header")
	}
	var env struct {
		Error ErrorBody `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RetryAfterMS < 1 {
		t.Fatalf("retry_after_ms = %d, want >= 1", env.Error.RetryAfterMS)
	}
}
