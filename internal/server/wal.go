package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alchemist/internal/journal"
	"alchemist/internal/xtrace"
)

// The server journals four record types. Replay is idempotent: a
// record whose effect is already reflected in the snapshot it follows
// (events are deduplicated by per-job sequence number) applies as a
// no-op, which is what lets snapshot encoding run concurrently with
// appends.
const (
	recCreated = "created" // a job entered the store
	recEvent   = "event"   // one event-log entry (state transition or progress)
	recSpan    = "span"    // one span-timeline entry
	recDone    = "done"    // terminal outcome: result / error, timestamps
	recRetired = "retired" // the store dropped the job (TTL or capacity)
)

// walRecord is the JSON payload of one journal record.
type walRecord struct {
	Type string    `json:"type"`
	ID   string    `json:"id"`
	At   time.Time `json:"at"`

	// created
	Kind    string          `json:"kind,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	IdemKey string          `json:"idem_key,omitempty"`
	TraceID string          `json:"trace_id,omitempty"`

	// event
	Event *Event `json:"event,omitempty"`

	// span (SpanSeq deduplicates against snapshotted spans on replay,
	// exactly like Event.Seq for the event log)
	Span    *xtrace.SpanRecord `json:"span,omitempty"`
	SpanSeq int                `json:"span_seq,omitempty"`

	// done
	StartedAt  time.Time       `json:"started_at,omitzero"`
	FinishedAt time.Time       `json:"finished_at,omitzero"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// jobSnapshot is one job's full durable state inside a journal
// snapshot.
type jobSnapshot struct {
	ID         string              `json:"id"`
	Kind       string              `json:"kind"`
	State      JobState            `json:"state"`
	CreatedAt  time.Time           `json:"created_at"`
	StartedAt  time.Time           `json:"started_at,omitzero"`
	FinishedAt time.Time           `json:"finished_at,omitzero"`
	Error      string              `json:"error,omitempty"`
	Result     json.RawMessage     `json:"result,omitempty"`
	Events     []Event             `json:"events,omitempty"`
	Spans      []xtrace.SpanRecord `json:"spans,omitempty"`
	TraceID    string              `json:"trace_id,omitempty"`
	IdemKey    string              `json:"idem_key,omitempty"`
	Request    json.RawMessage     `json:"request,omitempty"`
}

// storeSnapshot is the journal snapshot payload: the whole job store.
type storeSnapshot struct {
	Jobs []jobSnapshot `json:"jobs"`
}

// walWriter fronts the journal for the job store: it serializes
// records, counts appends to trigger snapshot+compaction, and absorbs
// journal failures into a metric instead of failing requests (the
// in-memory store remains authoritative while the process lives).
// A nil *walWriter is valid and discards everything — servers without
// a DataDir run exactly as before.
type walWriter struct {
	jn        *journal.Journal
	store     *jobStore // set after store construction
	snapEvery int64
	errs      func() // increments the journal-error counter

	appends  atomic.Int64
	snapping atomic.Bool
	// disabled simulates a hard kill in tests: appends stop reaching
	// the journal, as if the process had already died.
	disabled atomic.Bool
}

func (w *walWriter) append(rec walRecord) {
	if w == nil || w.disabled.Load() {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		w.errs()
		return
	}
	if err := w.jn.Append(b); err != nil {
		w.errs()
		return
	}
	if w.snapEvery > 0 && w.appends.Add(1) >= w.snapEvery && w.snapping.CompareAndSwap(false, true) {
		w.appends.Store(0)
		// Snapshot on its own goroutine: append is called under job and
		// store locks that the snapshot encoder itself needs.
		go w.snapshot()
	}
}

// snapshot runs one snapshot+compaction cycle. Records appended while
// the store is being encoded land in segments the compaction keeps, so
// nothing is lost to the race; replay deduplicates the overlap.
func (w *walWriter) snapshot() {
	defer w.snapping.Store(false)
	if w.disabled.Load() {
		return
	}
	tok, err := w.jn.StartSnapshot()
	if err != nil {
		w.errs()
		return
	}
	payload, err := json.Marshal(w.store.snapshot())
	if err != nil {
		w.errs()
		return
	}
	if err := w.jn.FinishSnapshot(tok, payload); err != nil {
		w.errs()
	}
}

func (w *walWriter) close() error {
	if w == nil {
		return nil
	}
	return w.jn.Close()
}

// replayState folds a journal recovery (snapshot + post-snapshot
// records) into per-job durable state, in stable creation order.
func replayState(rec *journal.Recovery) ([]*jobSnapshot, error) {
	byID := make(map[string]*jobSnapshot)
	var order []string
	if rec.Snapshot != nil {
		var snap storeSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			return nil, fmt.Errorf("server: corrupt journal snapshot: %w", err)
		}
		for i := range snap.Jobs {
			js := snap.Jobs[i]
			byID[js.ID] = &js
			order = append(order, js.ID)
		}
	}
	for _, raw := range rec.Records {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			// A checksummed-but-unparsable record means a version skew
			// or a bug; skip it rather than refuse to start.
			continue
		}
		switch r.Type {
		case recCreated:
			if _, ok := byID[r.ID]; ok {
				break // already in the snapshot
			}
			byID[r.ID] = &jobSnapshot{
				ID: r.ID, Kind: r.Kind, State: JobQueued,
				CreatedAt: r.At, IdemKey: r.IdemKey, Request: r.Request,
				TraceID: r.TraceID,
			}
			order = append(order, r.ID)
		case recEvent:
			js := byID[r.ID]
			if js == nil || r.Event == nil {
				break
			}
			if r.Event.Seq != len(js.Events) {
				break // duplicate of a snapshotted event (or a gap: drop)
			}
			js.Events = append(js.Events, *r.Event)
			if r.Event.Type == "state" {
				js.State = r.Event.State
				if r.Event.Error != "" {
					js.Error = r.Event.Error
				}
				if r.Event.State == JobRunning {
					js.StartedAt = r.At
				}
			}
		case recSpan:
			js := byID[r.ID]
			if js == nil || r.Span == nil {
				break
			}
			if r.SpanSeq != len(js.Spans) {
				break // duplicate of a snapshotted span (or a gap: drop)
			}
			js.Spans = append(js.Spans, *r.Span)
		case recDone:
			js := byID[r.ID]
			if js == nil {
				break
			}
			js.StartedAt, js.FinishedAt = r.StartedAt, r.FinishedAt
			if r.Error != "" {
				js.Error = r.Error
			}
			if len(r.Result) > 0 {
				js.Result = r.Result
			}
		case recRetired:
			delete(byID, r.ID)
		}
	}
	out := make([]*jobSnapshot, 0, len(byID))
	for _, id := range order {
		if js := byID[id]; js != nil {
			out = append(out, js)
		}
	}
	return out, nil
}

// restoreJob rebuilds an in-memory job from its durable state. The
// progress aggregate is rebuilt from the (throttled) progress events,
// so recovered step totals are lower bounds; authoritative per-run
// totals live in the result payload.
func restoreJob(js *jobSnapshot, wal *walWriter) *job {
	j := &job{
		id:       js.ID,
		kind:     js.Kind,
		created:  js.CreatedAt,
		idemKey:  js.IdemKey,
		reqRaw:   js.Request,
		wal:      wal,
		state:    js.State,
		started:  js.StartedAt,
		finished: js.FinishedAt,
		errMsg:   js.Error,
		result:   js.Result,
		events:   js.Events,
		spans:    js.Spans,
	}
	// Spans recorded after recovery (requeue) rejoin the original
	// trace; the lost parent span ID just makes them siblings of the
	// old root's children.
	if tid, err := xtrace.ParseTraceID(js.TraceID); err == nil {
		j.trace = xtrace.SpanContext{TraceID: tid, SpanID: xtrace.NewSpanID()}
	}
	j.cond = sync.NewCond(&j.mu)
	for _, ev := range js.Events {
		if ev.Type == "progress" {
			j.progress.Update(ev.Job, ev.Steps)
		}
	}
	if js.State == JobSucceeded {
		for _, jp := range j.progress.Snapshot() {
			j.progress.MarkDone(jp.Job)
		}
	}
	return j
}
