package server

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// AnonymousClient is the identity assigned to requests that carry no
// X-Api-Key header. With no APIKeys configured every request is
// anonymous and the per-client limits apply to that one shared bucket.
const AnonymousClient = "anonymous"

// clientState is one client's live admission accounting: a token
// bucket for its request rate and a count of its admitted-but-
// unfinished units of work.
type clientState struct {
	name string

	mu     sync.Mutex
	tokens float64   // current token-bucket fill
	last   time.Time // last bucket refill
	// inflight counts admitted units of work (sync requests + async
	// jobs) that have not released their slot yet.
	inflight int
}

// admission owns the per-client half of the admission path: identity,
// rate limits, quotas, and the execution-time estimate behind deadline
// shedding. The shared queue (Server.admit) stays where it was; this
// layer runs ahead of it so one greedy client cannot occupy every slot.
type admission struct {
	keys  map[string]string // api key -> client name; empty = open mode
	rate  float64           // tokens/second per client; <= 0 disables
	burst float64           // bucket capacity
	quota int               // concurrent units per client; <= 0 disables
	shed  bool              // deadline-feasibility load shedding

	mu      sync.Mutex
	clients map[string]*clientState

	// avgSec is an EWMA of admitted-work durations (admission to
	// release, seconds), the service-time estimate behind shedding.
	durMu  sync.Mutex
	avgSec float64
}

func newAdmission(o Options) *admission {
	a := &admission{
		keys:    o.APIKeys,
		rate:    o.RatePerSec,
		burst:   float64(o.RateBurst),
		quota:   o.ClientQuota,
		shed:    o.ShedDeadlines,
		clients: make(map[string]*clientState),
	}
	return a
}

// identify resolves a request's API key to a client. An empty key is
// the anonymous client; an unknown key (with APIKeys configured) is
// rejected. Without configured keys the header is ignored entirely —
// the server runs open, exactly as before.
func (a *admission) identify(key string) (*clientState, bool) {
	name := AnonymousClient
	if len(a.keys) > 0 && key != "" {
		n, ok := a.keys[key]
		if !ok {
			return nil, false
		}
		name = n
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	cl := a.clients[name]
	if cl == nil {
		cl = &clientState{name: name, tokens: a.burst}
		a.clients[name] = cl
	}
	return cl, true
}

// takeToken spends one rate-limit token from the client's bucket. When
// the bucket is empty it reports how long until the next token accrues,
// which becomes the honest Retry-After.
func (a *admission) takeToken(cl *clientState) (time.Duration, bool) {
	if a.rate <= 0 {
		return 0, true
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	now := time.Now()
	if cl.last.IsZero() {
		cl.tokens = a.burst
	} else {
		cl.tokens += now.Sub(cl.last).Seconds() * a.rate
		if cl.tokens > a.burst {
			cl.tokens = a.burst
		}
	}
	cl.last = now
	if cl.tokens >= 1 {
		cl.tokens--
		return 0, true
	}
	wait := time.Duration((1 - cl.tokens) / a.rate * float64(time.Second))
	return wait, false
}

// reserve claims one unit of the client's concurrency quota.
func (a *admission) reserve(cl *clientState) bool {
	if a.quota <= 0 {
		return true
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.inflight >= a.quota {
		return false
	}
	cl.inflight++
	return true
}

// release returns one quota unit.
func (a *admission) release(cl *clientState) {
	if a.quota <= 0 {
		return
	}
	cl.mu.Lock()
	cl.inflight--
	cl.mu.Unlock()
}

// observe feeds one completed unit's admission-to-release duration into
// the service-time EWMA (alpha 0.2: recent work dominates, one outlier
// does not).
func (a *admission) observe(d time.Duration) {
	a.durMu.Lock()
	defer a.durMu.Unlock()
	s := d.Seconds()
	if a.avgSec == 0 {
		a.avgSec = s
		return
	}
	a.avgSec = 0.8*a.avgSec + 0.2*s
}

// avgDuration returns the current service-time estimate (0 until the
// first unit completes).
func (a *admission) avgDuration() time.Duration {
	a.durMu.Lock()
	defer a.durMu.Unlock()
	return time.Duration(a.avgSec * float64(time.Second))
}

// ---------- server-side admission pipeline ----------

// authn resolves the request's client identity, answering 401 for an
// unknown API key. Every /v1 endpoint runs through it.
func (s *Server) authn(w http.ResponseWriter, r *http.Request) (*clientState, bool) {
	cl, ok := s.adm.identify(r.Header.Get("X-Api-Key"))
	if !ok {
		s.sm.authFailures.Inc()
		httpError(w, http.StatusUnauthorized, CodeUnauthorized, "unknown API key")
		return nil, false
	}
	if ri := requestInfo(r.Context()); ri != nil {
		// Resolved identity flows back to the access log and the
		// per-client dimension of the labeled request counter.
		ri.client = cl.name
	}
	return cl, true
}

// allowRate spends one of the client's rate-limit tokens, answering 429
// rate_limited with an honest Retry-After when the bucket is dry.
func (s *Server) allowRate(w http.ResponseWriter, cl *clientState) bool {
	wait, ok := s.adm.takeToken(cl)
	if ok {
		return true
	}
	s.sm.rateLimited.Inc()
	s.writeRetryable(w, http.StatusTooManyRequests, wait, CodeRateLimited,
		"client %q exceeded %g requests/s; retry after %s",
		cl.name, s.adm.rate, wait.Round(time.Millisecond))
	return false
}

// shedEstimate reports the estimated wait before newly admitted work
// reaches a worker: occupied-slot pressure beyond the worker pool,
// scaled by the measured service time. Zero until enough signal exists.
func (s *Server) shedEstimate() time.Duration {
	avg := s.adm.avgDuration()
	if avg == 0 {
		return 0
	}
	pending := len(s.admit)
	workers := s.eng.Workers()
	if pending < workers {
		return 0
	}
	return time.Duration(float64(pending) / float64(workers) * float64(avg))
}

// admitClient is the full per-unit admission pipeline: client quota,
// deadline-feasibility shedding, then the shared queue. On refusal the
// response has already been written; on success the returned release is
// idempotent and must be called exactly when the unit finishes.
func (s *Server) admitClient(w http.ResponseWriter, cl *clientState, timeout time.Duration) (func(), bool) {
	if !s.adm.reserve(cl) {
		s.sm.quotaRejects.Inc()
		s.writeRetryable(w, http.StatusTooManyRequests, s.opts.RetryAfter, CodeQuotaExceeded,
			"client %q already has %d units of work in flight (quota %d); retry after %s",
			cl.name, s.adm.quota, s.adm.quota, s.opts.RetryAfter)
		return nil, false
	}
	if s.adm.shed {
		if est := s.shedEstimate(); est > 0 && est >= timeout {
			s.adm.release(cl)
			s.sm.sheds.Inc()
			s.writeRetryable(w, http.StatusTooManyRequests, est, CodeQueueSaturated,
				"deadline infeasible: estimated queue wait %s exceeds the %s deadline; retry later or raise timeout_ms",
				est.Round(time.Millisecond), timeout.Round(time.Millisecond))
			return nil, false
		}
	}
	release, ok := s.tryAdmit()
	if !ok {
		s.adm.release(cl)
		s.writeBusy(w)
		return nil, false
	}
	s.sm.admitted.Inc()
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			release()
			s.adm.release(cl)
			s.adm.observe(time.Since(start))
		})
	}, true
}

// writeRetryable writes an error envelope that clients may retry:
// Retry-After (whole seconds, rounded up) plus the precise
// retry_after_ms inside the body.
func (s *Server) writeRetryable(w http.ResponseWriter, status int, retryAfter time.Duration, code, format string, args ...any) {
	if retryAfter <= 0 {
		retryAfter = s.opts.RetryAfter
	}
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, apiError{Error: ErrorBody{
		Code:         code,
		Message:      fmt.Sprintf(format, args...),
		RetryAfterMS: ms,
	}})
}
