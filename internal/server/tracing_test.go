package server

// The tracing suite proves the end-to-end observability claim: one W3C
// trace follows a request from the SDK through admission, queue wait,
// compilation, profiling, and SSE delivery — across client retries and
// a server crash — and the structured access log carries the same
// trace_id on every attempt.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"alchemist/client"
	"alchemist/internal/faultinject"
	"alchemist/internal/xtrace"
)

// syncBuf is a goroutine-safe log sink for the structured logger.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuf) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuf) lines() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	s := strings.TrimSpace(sb.b.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func TestTraceparentAdoptedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t, nil)

	const traceID = "0123456789abcdef0123456789abcdef"
	const parentID = "00f067aa0ba902b7"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-"+parentID+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	sc, err := xtrace.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent %q does not parse: %v", resp.Header.Get("traceparent"), err)
	}
	if sc.TraceID.String() != traceID {
		t.Fatalf("response trace id %s, want the inbound %s adopted", sc.TraceID, traceID)
	}
	if sc.SpanID.String() == parentID {
		t.Fatal("response span id repeats the inbound parent; want the server's own span")
	}
}

func TestMalformedTraceparentStartsNewRoot(t *testing.T) {
	_, ts := newTestServer(t, nil)

	embedded := "11111111111111111111111111111111"
	seen := map[string]bool{}
	for _, bad := range []string{
		"",
		"not-a-traceparent",
		"ff-" + embedded + "-00f067aa0ba902b7-01",                 // forbidden version
		"00-" + embedded + "-00f067aa0ba902b7",                    // truncated
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-" + embedded + "-00f067aa0ba902b7-01-junk",            // trailing junk on v00
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if bad != "" {
			req.Header.Set("traceparent", bad)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		sc, err := xtrace.ParseTraceparent(resp.Header.Get("traceparent"))
		if err != nil {
			t.Fatalf("header %q: response traceparent %q does not parse: %v",
				bad, resp.Header.Get("traceparent"), err)
		}
		got := sc.TraceID.String()
		if got == embedded {
			t.Fatalf("header %q was adopted; want a new root", bad)
		}
		if seen[got] {
			t.Fatalf("trace id %s repeated across requests; roots are not fresh", got)
		}
		seen[got] = true
	}
}

// TestSDKRetryOneTraceEndToEnd is the acceptance path: a submission
// whose first response is lost in flight is retried by the SDK over the
// same Idempotency-Key and the same trace. The resulting job's
// persisted timeline holds admit, queue, compile, profile, and sse
// spans with non-overlapping monotonic bounds, all under the one trace
// id that every access-log attempt line also carries.
func TestSDKRetryOneTraceEndToEnd(t *testing.T) {
	logBuf := &syncBuf{}
	s, ts := newTestServer(t, func(o *Options) {
		o.Logger = slog.New(slog.NewJSONHandler(logBuf, nil))
	})

	// Drop exactly the first submission's response after the server has
	// fully handled it — the nastiest retry case: work done, answer lost.
	in := faultinject.Chain(ts.Client().Transport)
	var dropped atomic.Bool
	in.Use(func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		if req.Method == http.MethodPost && req.URL.Path == "/v1/jobs" && dropped.CompareAndSwap(false, true) {
			resp, err := next.RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
			in.Injected.Add(1)
			return nil, faultinject.ErrDropped
		}
		return next.RoundTrip(req)
	})
	c := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: in}),
		client.WithRandSeed(7),
		client.WithRetry(8, time.Millisecond, 20*time.Millisecond))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.SubmitJob(ctx, client.JobRequest{
		Kind:       "profile",
		SourceSpec: client.SourceSpec{Name: "traced", Source: loopSrc, Inputs: [][]int64{{500}}},
		TimeoutMS:  60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dropped.Load() {
		t.Fatal("the drop fault never fired; retry was not exercised")
	}
	if !st.IdempotentReplay {
		t.Fatal("retried submission did not replay the original job")
	}
	if st.TraceID == "" {
		t.Fatal("submission status carries no trace_id")
	}

	// Wait by polling plain status so the event stream below replays a
	// finished log — that keeps the sse span after the profile span.
	var fin *client.JobStatus
	for deadline := time.Now().Add(30 * time.Second); ; {
		if fin, err = c.Job(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if fin.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fin.State != client.JobSucceeded {
		t.Fatalf("job state %s (err %q), want succeeded", fin.State, fin.Error)
	}
	if fin.TraceID != st.TraceID {
		t.Fatalf("status trace id changed: %s then %s", st.TraceID, fin.TraceID)
	}

	// Replay the whole event stream; its delivery becomes the sse span.
	es := c.StreamEvents(st.ID, 0)
	for {
		if _, err := es.Next(ctx); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	es.Close()

	// The sse span lands as the server's stream handler unwinds, which
	// races the client seeing EOF; poll briefly.
	var tr *client.JobTrace
	for i := 0; i < 400; i++ {
		if tr, err = c.JobTrace(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
		if findSpan(tr, "sse") != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if tr.TraceID != st.TraceID {
		t.Fatalf("timeline trace id %s, want %s", tr.TraceID, st.TraceID)
	}
	for _, sp := range tr.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %q carries trace %s, want %s", sp.Name, sp.TraceID, st.TraceID)
		}
	}

	// The lifecycle spans appear in order, each within monotonic bounds
	// and none overlapping its predecessor.
	var prev *client.SpanRecord
	for _, name := range []string{"admit", "queue", "compile", "profile", "sse"} {
		sp := findSpan(tr, name)
		if sp == nil {
			t.Fatalf("timeline has no %q span; got %v", name, spanNames(tr))
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %q ends before it starts: %v .. %v", name, sp.Start, sp.End)
		}
		if prev != nil && sp.Start.Before(prev.End) {
			t.Fatalf("span %q (start %v) overlaps %q (end %v)", sp.Name, sp.Start, prev.Name, prev.End)
		}
		prev = sp
	}

	// Both submission attempts hit the access log under the one trace.
	attempts := 0
	for _, ln := range logBuf.lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("unparsable log line %q: %v", ln, err)
		}
		if rec["msg"] != "request" || rec["method"] != http.MethodPost || rec["path"] != "/v1/jobs" {
			continue
		}
		attempts++
		if rec["trace_id"] != st.TraceID {
			t.Fatalf("submission log line carries trace %v, want %s", rec["trace_id"], st.TraceID)
		}
		if rec["client"] != AnonymousClient {
			t.Fatalf("submission log line carries client %v, want %s", rec["client"], AnonymousClient)
		}
	}
	if attempts < 2 {
		t.Fatalf("access log shows %d submission attempts, want both", attempts)
	}

	// Exactly once, as ever: one job despite the retried submit.
	if got := s.jobCount(); got != 1 {
		t.Fatalf("store holds %d jobs, want 1", got)
	}
}

func findSpan(tr *client.JobTrace, name string) *client.SpanRecord {
	for i := range tr.Spans {
		if tr.Spans[i].Name == name {
			return &tr.Spans[i]
		}
	}
	return nil
}

func spanNames(tr *client.JobTrace) []string {
	names := make([]string, len(tr.Spans))
	for i, sp := range tr.Spans {
		names[i] = sp.Name
	}
	return names
}

func TestVersionAndDebugTraces(t *testing.T) {
	_, ts := newTestServer(t, nil)

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/version", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version = %d: %s", resp.StatusCode, body)
	}
	var ver VersionResponse
	if err := json.Unmarshal([]byte(body), &ver); err != nil {
		t.Fatal(err)
	}
	if ver.Service != "alchemist" || ver.GoVersion == "" {
		t.Fatalf("version response %+v, want service alchemist and a go version", ver)
	}

	// The version request itself produced a trace the debug endpoint can
	// show.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/debug/traces", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug traces = %d: %s", resp.StatusCode, body)
	}
	var dump struct {
		Recent []json.RawMessage `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent) == 0 {
		t.Fatal("debug traces shows no recent traces after a request")
	}
}

// TestTraceTimelineSurvivesCrashRecovery proves span persistence: the
// timeline a job accumulated before a hard kill replays byte-for-byte
// from the journal, under the original trace id.
func TestTraceTimelineSurvivesCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)

	resp, body := post(t, ts1.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q}`, tinySrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	// No traceparent was sent: the job records under the server-minted
	// root trace.
	if st.TraceID == "" {
		t.Fatal("job status carries no trace_id")
	}
	if done := waitState(t, ts1.URL, st.ID); done.State != JobSucceeded {
		t.Fatalf("job state = %s, want succeeded (%s)", done.State, done.Error)
	}

	fetchTrace := func(base string) JobTraceResponse {
		t.Helper()
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+st.ID+"/trace", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job trace = %d: %s", resp.StatusCode, body)
		}
		var tr JobTraceResponse
		if err := json.Unmarshal([]byte(body), &tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	before := fetchTrace(ts1.URL)
	for _, name := range []string{"admit", "queue", "compile", "run", "journal.append"} {
		found := false
		for _, sp := range before.Spans {
			if sp.Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pre-crash timeline has no %q span", name)
		}
	}
	crash(t, s1, ts1)

	s2, ts2 := newDurableServer(t, dir, nil)
	defer func() { ts2.Close(); s2.Close() }()

	after := fetchTrace(ts2.URL)
	if after.TraceID != before.TraceID {
		t.Fatalf("recovered trace id %s, want %s", after.TraceID, before.TraceID)
	}
	if !reflect.DeepEqual(after.Spans, before.Spans) {
		t.Fatalf("recovered timeline diverged:\n before %+v\n after  %+v", before.Spans, after.Spans)
	}
}
