package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"alchemist"
)

const tinySrc = `int main() { return 7; }`

// loopSrc sums in(0) iterations; steps scale linearly with the input.
const loopSrc = `
int main() {
	int n = in(0);
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	out(s);
	return 0;
}
`

// foreverSrc runs effectively forever; only a deadline or cancellation
// stops it.
const foreverSrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 1000000000; i++) {
		s += i;
	}
	return s % 2;
}
`

func newTestServer(t *testing.T, mod func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		Engine:           alchemist.NewEngine(alchemist.WithWorkers(2)),
		ProgressInterval: -1, // publish every progress report: deterministic streams
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	return doJSON(t, http.MethodPost, url, body)
}

// waitState polls the job until it reaches a terminal state.
func waitState(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get: %d %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state in time")
	return JobStatus{}
}

func TestCompileGolden(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/compile", `{"name":"t.mc","source":"int main() { return 7; }"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal([]byte(body), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Name != "t.mc" || cr.Functions != 1 || cr.Instructions <= 0 {
		t.Errorf("compile response = %+v", cr)
	}
}

// The error envelope is part of the API: exact golden matches on the
// {"error": {"code", "message"}} shape.
func TestErrorBodiesGolden(t *testing.T) {
	_, ts := newTestServer(t, nil)
	golden := func(code, message string) string {
		return "{\n  \"error\": {\n    \"code\": \"" + code +
			"\",\n    \"message\": \"" + message + "\"\n  }\n}\n"
	}
	cases := []struct {
		name, method, path, body string
		status                   int
		want                     string
	}{
		{"empty spec", "POST", "/v1/profile", `{}`,
			http.StatusBadRequest,
			golden("bad_request", "request needs source or workload")},
		{"both sources", "POST", "/v1/profile", `{"source":"int main() { return 0; }","workload":"gzip"}`,
			http.StatusBadRequest,
			golden("bad_request", "request has both source and workload; pick one")},
		{"bad kind", "POST", "/v1/jobs", `{"kind":"bogus","source":"int main() { return 0; }"}`,
			http.StatusBadRequest,
			golden("bad_request", `unknown job kind \"bogus\" (want profile, advise, or run)`)},
		{"unknown job", "GET", "/v1/jobs/deadbeef", "",
			http.StatusNotFound,
			golden("job_not_found", `no such job \"deadbeef\"`)},
		{"unknown field", "POST", "/v1/compile", `{"sauce":"int main() {}"}`,
			http.StatusBadRequest,
			golden("bad_request", `bad request body: json: unknown field \"sauce\"`)},
		{"bad list state", "GET", "/v1/jobs?state=bogus", "",
			http.StatusBadRequest,
			golden("bad_request", `unknown state \"bogus\" (want queued, running, succeeded, failed, or interrupted)`)},
		{"bad page token", "GET", "/v1/jobs?page_token=@@@", "",
			http.StatusBadRequest,
			golden("bad_request", "invalid page_token")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if body != tc.want {
				t.Errorf("body = %q, want %q", body, tc.want)
			}
		})
	}
}

func TestProfileSync(t *testing.T) {
	s, ts := newTestServer(t, nil)
	req := fmt.Sprintf(`{"source":%q,"inputs":[[500],[1000]],"top":3}`, loopSrc)
	resp, body := post(t, ts.URL+"/v1/profile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Jobs != 2 || pr.Profile == nil || pr.Profile.TotalSteps == 0 {
		t.Errorf("profile response = %+v", pr)
	}
	if len(pr.Runs) != 2 || pr.Runs[0].Steps >= pr.Runs[1].Steps {
		t.Errorf("runs = %+v (second input is larger, must cost more steps)", pr.Runs)
	}
	if len(pr.Profile.Constructs) > 3 {
		t.Errorf("top=3 not applied: %d constructs", len(pr.Profile.Constructs))
	}
	// Both requests hit one shared engine: the second compile of the
	// same source must be a cache hit.
	post(t, ts.URL+"/v1/profile", req)
	if cs := s.eng.CacheStats(); cs.Hits < 1 {
		t.Errorf("cache stats = %+v, want a hit from the repeated source", cs)
	}
}

func TestAdviseSync(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/advise", `{"workload":"gzip","scales":[300],"top":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar AdviseResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Name != "gzip.mc" || len(ar.Reports) == 0 || len(ar.Reports) > 4 {
		t.Errorf("advise response: name=%q reports=%d", ar.Name, len(ar.Reports))
	}
	for _, rep := range ar.Reports {
		if rep.Name == "" || rep.Kind == "" {
			t.Errorf("incomplete report: %+v", rep)
		}
	}
}

func TestRunSync(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := fmt.Sprintf(`{"source":%q,"inputs":[[10],[100]]}`, loopSrc)
	resp, body := post(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Runs) != 2 {
		t.Fatalf("runs = %+v", rr.Runs)
	}
	if rr.Runs[0].Output[0] != 45 || rr.Runs[1].Output[0] != 4950 {
		t.Errorf("outputs = %v / %v, want [45] / [4950]", rr.Runs[0].Output, rr.Runs[1].Output)
	}
}

func TestDeadlineMapsToGatewayTimeout(t *testing.T) {
	_, ts := newTestServer(t, nil)
	req := fmt.Sprintf(`{"source":%q,"timeout_ms":25}`, foreverSrc)
	resp, body := post(t, ts.URL+"/v1/profile", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, context.DeadlineExceeded.Error()) {
		t.Errorf("body %q does not surface context.DeadlineExceeded", body)
	}
}

func TestBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, func(o *Options) {
		o.QueueDepth = 1
		o.RetryAfter = 3 * time.Second
	})
	// Occupy the single admission slot with a long async job.
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":30000}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	// The queue is saturated: sync work must be refused, not queued.
	resp, body = post(t, ts.URL+"/v1/profile", `{"source":"int main() { return 0; }"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if !strings.Contains(body, "admission queue full") {
		t.Errorf("429 body: %s", body)
	}
	if !strings.Contains(body, `"code": "queue_saturated"`) ||
		!strings.Contains(body, `"retry_after_ms": 3000`) {
		t.Errorf("429 envelope missing code/retry_after_ms: %s", body)
	}
	// Async submissions are refused the same way.
	resp, _ = post(t, ts.URL+"/v1/jobs", `{"kind":"run","source":"int main() { return 0; }"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("job create under saturation = %d, want 429", resp.StatusCode)
	}
	if got := s.sm.rejects.Value(); got != 2 {
		t.Errorf("rejects counter = %d, want 2", got)
	}

	// Cancelling the hog frees the slot; the VM observes cancellation
	// within one step-check window.
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	fin := waitState(t, ts.URL, st.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, context.Canceled.Error()) {
		t.Errorf("cancelled job state = %s err = %q", fin.State, fin.Error)
	}
	resp, body = post(t, ts.URL+"/v1/profile", `{"source":"int main() { return 0; }"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after cancel, profile = %d: %s", resp.StatusCode, body)
	}
}

func TestAsyncJobLifecycleAndResult(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"profile","source":%q,"inputs":[[2000],[3000]],"top":2}`, loopSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued && st.State != JobRunning {
		t.Errorf("initial state = %s", st.State)
	}
	fin := waitState(t, ts.URL, st.ID)
	if fin.State != JobSucceeded {
		t.Fatalf("state = %s err = %q", fin.State, fin.Error)
	}
	if fin.Result == nil || fin.TotalSteps == 0 {
		t.Errorf("finished job missing result/progress: %+v", fin)
	}
	if len(fin.Progress) != 2 {
		t.Errorf("progress tracks %d batch jobs, want 2", len(fin.Progress))
	}
	for _, p := range fin.Progress {
		if !p.Done || p.Steps == 0 {
			t.Errorf("batch job %d progress = %+v, want done with steps", p.Job, p)
		}
	}
	// The list endpoint knows it too.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, st.ID) {
		t.Errorf("job list = %d: %s", resp.StatusCode, body)
	}
}

// parseSSE reads a full SSE stream into events.
func parseSSE(t *testing.T, r io.Reader) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSSEEventOrdering(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"profile","source":%q,"inputs":[[20000]]}`, loopSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	// Attach immediately: the stream replays from seq 0 and ends after
	// the terminal event, regardless of how far the job has advanced.
	sresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type = %q", ct)
	}
	evs := parseSSE(t, sresp.Body)
	if len(evs) < 4 {
		t.Fatalf("only %d events; want queued, running, progress..., terminal", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d; replay must be gapless and ordered", i, ev.Seq)
		}
	}
	if evs[0].Type != "state" || evs[0].State != JobQueued {
		t.Errorf("first event = %+v, want state=queued", evs[0])
	}
	if evs[1].Type != "state" || evs[1].State != JobRunning {
		t.Errorf("second event = %+v, want state=running", evs[1])
	}
	last := evs[len(evs)-1]
	if last.Type != "state" || last.State != JobSucceeded {
		t.Errorf("last event = %+v, want state=succeeded", last)
	}
	var prev int64 = -1
	progress := 0
	for _, ev := range evs[2 : len(evs)-1] {
		if ev.Type != "progress" {
			t.Errorf("mid-stream event %+v, want only progress between running and terminal", ev)
			continue
		}
		progress++
		if ev.Steps < prev {
			t.Errorf("progress went backwards: %d after %d", ev.Steps, prev)
		}
		prev = ev.Steps
	}
	if progress == 0 {
		t.Error("no progress events for a 20k-iteration profile")
	}
}

func TestGracefulShutdownDrainsJobs(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"inputs":[[400000]],"timeout_ms":60000}`, loopSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New job submissions are refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = post(t, ts.URL+"/v1/jobs", `{"kind":"run","source":"int main() { return 0; }"}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job create during drain = %d, want 503", resp.StatusCode)
		}
		time.Sleep(time.Millisecond)
	}

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The in-flight job ran to completion, not cancellation.
	j := s.store.get(st.ID)
	if j == nil {
		t.Fatal("job vanished during drain")
	}
	if got := j.status(true); got.State != JobSucceeded {
		t.Errorf("drained job state = %s err = %q, want succeeded", got.State, got.Error)
	}
}

func TestShutdownAbortsOnExpiredContext(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":60000}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-expired drain window: abort immediately
	if err := s.Shutdown(ctx); err == nil {
		t.Error("Shutdown with expired context should report the aborted drain")
	}
	j := s.store.get(st.ID)
	if got := j.status(false); got.State != JobFailed {
		t.Errorf("aborted job state = %s, want failed", got.State)
	}
}

func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.MaxBodyBytes = 256 })
	big := fmt.Sprintf(`{"source":%q}`, "int main() { return 0; } // "+strings.Repeat("x", 4096))
	resp, body := post(t, ts.URL+"/v1/profile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "exceeds 256 bytes") {
		t.Errorf("413 body: %s", body)
	}
}

func TestPanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, nil)
	h := s.instrument("health", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal error") {
		t.Errorf("body = %s", rec.Body.String())
	}
	if got := s.sm.panics.Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if got := s.sm.inflight.Value(); got != 0 {
		t.Errorf("inflight gauge = %d after panic, want 0", got)
	}
}

func TestMetricsEndpointSurfacesServerMetrics(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.QueueDepth = 1 })
	// One successful profile, then saturate for a reject.
	post(t, ts.URL+"/v1/profile", `{"source":"int main() { return 0; }"}`)
	resp, body := post(t, ts.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":30000}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	json.Unmarshal([]byte(body), &st)
	post(t, ts.URL+"/v1/profile", `{"source":"int main() { return 0; }"}`) // 429

	resp, metrics := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"alchemist_server_requests_total",
		"alchemist_server_queue_depth 1", // the async job holds its slot
		"alchemist_server_admission_rejects_total 1",
		"alchemist_server_request_seconds_profile_bucket",
		"alchemist_server_jobs_active 1",
		"alchemist_engine_compiles_total",
		"alchemist_process_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, "")
	waitState(t, ts.URL, st.ID)
}

func TestHealthEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"status": "ok"`) || !strings.Contains(body, "gzip") {
		t.Errorf("healthz body: %s", body)
	}
}

func TestStartServesRealListener(t *testing.T) {
	s, _ := newTestServer(t, nil)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.URL() == "" {
		t.Fatal("no URL after Start")
	}
	resp, body := post(t, s.URL()+"/v1/compile", `{"source":"int main() { return 0; }"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("compile over real listener = %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

func TestJobStoreTTLAndCapacity(t *testing.T) {
	sm := newServerMetrics(alchemist.NewEngine().Metrics())
	store := newJobStore(time.Minute, 2, sm, nil)
	mk := func(succeed bool) *job {
		j := newJob("run", nil, "", nil)
		j.setRunning()
		if succeed {
			j.finish(nil, nil)
		}
		store.put(j)
		return j
	}
	a, b, c := mk(true), mk(true), mk(true)
	_ = b
	// Capacity 2: the oldest finished job is retired on overflow.
	store.sweep(time.Now())
	if store.get(a.id) != nil {
		t.Error("oldest finished job survived capacity sweep")
	}
	if store.get(c.id) == nil {
		t.Error("newest job was evicted")
	}
	// TTL: everything finished longer than ttl ago goes.
	store.sweep(time.Now().Add(2 * time.Minute))
	if got := len(store.list()); got != 0 {
		t.Errorf("%d jobs survive past TTL", got)
	}
	// Unfinished jobs are never retired.
	running := newJob("run", nil, "", nil)
	running.setRunning()
	store.put(running)
	store.sweep(time.Now().Add(time.Hour))
	if store.get(running.id) == nil {
		t.Error("running job was retired")
	}
	if sm.jobsRetired.Value() == 0 {
		t.Error("retirement counter untouched")
	}
}

func TestTimeoutClamp(t *testing.T) {
	s, _ := newTestServer(t, func(o *Options) {
		o.DefaultTimeout = time.Second
		o.MaxTimeout = 2 * time.Second
	})
	if d := s.timeoutFor(0); d != time.Second {
		t.Errorf("default timeout = %v", d)
	}
	if d := s.timeoutFor(500); d != 500*time.Millisecond {
		t.Errorf("explicit timeout = %v", d)
	}
	if d := s.timeoutFor(3_600_000); d != 2*time.Second {
		t.Errorf("clamped timeout = %v", d)
	}
}
