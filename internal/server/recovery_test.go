package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alchemist"
	"alchemist/internal/journal"
)

// newDurableServer builds a journal-backed server over dir. The caller
// owns shutdown (tests restart servers over the same dir).
func newDurableServer(t *testing.T, dir string, mod func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		Engine:           alchemist.NewEngine(alchemist.WithWorkers(2)),
		ProgressInterval: -1,
		DataDir:          dir,
		Fsync:            journal.SyncNone, // process-crash tests: page cache is enough
	}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// crash simulates a hard kill: journal appends stop (as if the process
// had already died) and then everything is torn down. State journaled
// before the crash point is all a restart gets to see.
func crash(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	s.wal.disabled.Store(true)
	ts.Close()
	s.Close()
}

func TestRecoveryFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)

	resp, body := post(t, ts1.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q}`, tinySrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, ts1.URL, st.ID)
	if done.State != JobSucceeded {
		t.Fatalf("job state = %s, want succeeded (%s)", done.State, done.Error)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newDurableServer(t, dir, nil)
	defer func() { ts2.Close(); s2.Close() }()

	rec := s2.Recovery()
	if !rec.Durable || rec.Jobs != 1 || rec.Interrupted != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery stats = %+v, want durable, 1 job, clean tail", rec)
	}
	resp, body = doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered job get = %d: %s", resp.StatusCode, body)
	}
	var got JobStatus
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.State != JobSucceeded {
		t.Errorf("recovered state = %s, want succeeded", got.State)
	}
	if got.Result == nil {
		t.Error("recovered job lost its result payload")
	}
	if got.StartedAt == nil || got.FinishedAt == nil {
		t.Error("recovered job lost its timestamps")
	}

	// The event log came back too: SSE replays it and, the job being
	// terminal, ends the stream.
	resp, body = doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st.ID+"/events", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered events = %d", resp.StatusCode)
	}
	for _, want := range []string{`"state":"queued"`, `"state":"running"`, `"state":"succeeded"`} {
		if !strings.Contains(body, want) {
			t.Errorf("recovered event stream missing %s:\n%s", want, body)
		}
	}

	// Health reports durability.
	_, body = doJSON(t, http.MethodGet, ts2.URL+"/healthz", "")
	if !strings.Contains(body, `"durable": true`) {
		t.Errorf("healthz does not report durable: %s", body)
	}
}

func TestRecoveryInterruptsCrashedJob(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)

	resp, body := post(t, ts1.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":30000}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, ts1.URL, st.ID)
	crash(t, s1, ts1)

	s2, ts2 := newDurableServer(t, dir, nil)
	defer func() { ts2.Close(); s2.Close() }()

	rec := s2.Recovery()
	if rec.Jobs != 1 || rec.Interrupted != 1 {
		t.Fatalf("recovery stats = %+v, want 1 job, 1 interrupted", rec)
	}
	got := waitState(t, ts2.URL, st.ID)
	if got.State != JobInterrupted {
		t.Errorf("crashed job state = %s, want interrupted", got.State)
	}
	if !strings.Contains(got.Error, "interrupted") {
		t.Errorf("interrupted job error = %q", got.Error)
	}
	if v := s2.sm.jobsInterrupted.Value(); v != 1 {
		t.Errorf("jobsInterrupted = %d, want 1", v)
	}

	// A third restart changes nothing: the interrupted outcome was
	// journaled, so the job is terminal on arrival.
	ts2.Close()
	s2.Close()
	s3, ts3 := newDurableServer(t, dir, nil)
	defer func() { ts3.Close(); s3.Close() }()
	if rec := s3.Recovery(); rec.Interrupted != 0 || rec.Jobs != 1 {
		t.Errorf("second recovery stats = %+v, want terminal job, nothing interrupted", rec)
	}
}

func TestRecoveryRequeuesCrashedJob(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)

	// The job can only end by deadline; keep it short so the requeued
	// run terminates quickly.
	resp, body := post(t, ts1.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":1500}`, foreverSrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, ts1.URL, st.ID)
	crash(t, s1, ts1)

	s2, ts2 := newDurableServer(t, dir, func(o *Options) {
		o.RequeueOnRecovery = true
	})
	defer func() { ts2.Close(); s2.Close() }()

	rec := s2.Recovery()
	if rec.Jobs != 1 || rec.Requeued != 1 || rec.Interrupted != 0 {
		t.Fatalf("recovery stats = %+v, want 1 job requeued", rec)
	}
	got := waitState(t, ts2.URL, st.ID)
	if got.State != JobFailed {
		t.Errorf("requeued forever-job state = %s, want failed (deadline)", got.State)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("requeued job error = %q, want a deadline failure", got.Error)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)
	resp, body := post(t, ts1.URL+"/v1/jobs",
		fmt.Sprintf(`{"kind":"run","source":%q}`, tinySrc))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts1.URL, st.ID)
	ts1.Close()
	s1.Close()

	// Tear the newest segment: a half-written frame, as a kill mid-write
	// would leave. Recovery must keep everything before it.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, ts2 := newDurableServer(t, dir, nil)
	defer func() { ts2.Close(); s2.Close() }()
	rec := s2.Recovery()
	if rec.TruncatedBytes == 0 {
		t.Error("torn tail was not reported as truncated")
	}
	if rec.Jobs != 1 {
		t.Fatalf("recovery stats = %+v, want the intact job back", rec)
	}
	resp, _ = doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("job lost to torn tail: get = %d", resp.StatusCode)
	}
}

func TestIdempotencyKeyReplay(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newDurableServer(t, dir, nil)

	submit := func(url, key string) (*http.Response, JobStatus) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs",
			strings.NewReader(fmt.Sprintf(`{"kind":"run","source":%q}`, tinySrc)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Idempotency-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("bad job body: %v: %s", err, b)
		}
		return resp, st
	}

	resp, first := submit(ts1.URL, "key-1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	if first.IdempotentReplay {
		t.Error("first submit marked as replay")
	}
	waitState(t, ts1.URL, first.ID)

	resp, replay := submit(ts1.URL, "key-1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("replay submit = %d, want 200", resp.StatusCode)
	}
	if replay.ID != first.ID || !replay.IdempotentReplay {
		t.Errorf("replay = {id:%s replay:%v}, want original job %s", replay.ID, replay.IdempotentReplay, first.ID)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+first.ID {
		t.Errorf("replay Location = %q", loc)
	}
	if v := s1.sm.idemReplays.Value(); v != 1 {
		t.Errorf("idemReplays = %d, want 1", v)
	}

	resp, other := submit(ts1.URL, "key-2")
	if resp.StatusCode != http.StatusAccepted || other.ID == first.ID {
		t.Errorf("distinct key reused a job: %d id=%s", resp.StatusCode, other.ID)
	}
	waitState(t, ts1.URL, other.ID)
	ts1.Close()
	s1.Close()

	// Keys are journaled: a replayed submission after restart still
	// lands on the original job.
	s2, ts2 := newDurableServer(t, dir, nil)
	defer func() { ts2.Close(); s2.Close() }()
	resp, again := submit(ts2.URL, "key-1")
	if resp.StatusCode != http.StatusOK || again.ID != first.ID || !again.IdempotentReplay {
		t.Errorf("post-restart replay = %d {id:%s replay:%v}, want 200 on job %s",
			resp.StatusCode, again.ID, again.IdempotentReplay, first.ID)
	}
}

func TestJobListPagination(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var ids []string
	for i := 0; i < 5; i++ {
		resp, body := post(t, ts.URL+"/v1/jobs",
			fmt.Sprintf(`{"kind":"run","source":%q}`, tinySrc))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job create = %d: %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		waitState(t, ts.URL, st.ID)
		ids = append(ids, st.ID)
	}

	list := func(query string) JobListResponse {
		t.Helper()
		resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs"+query, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list%s = %d: %s", query, resp.StatusCode, body)
		}
		var out JobListResponse
		if err := json.Unmarshal([]byte(body), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Walk the full listing two jobs at a time; pages must partition the
	// set without duplicates and in a stable order.
	var walked []string
	token := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination did not terminate")
		}
		q := "?limit=2"
		if token != "" {
			q += "&page_token=" + token
		}
		out := list(q)
		if len(out.Jobs) > 2 {
			t.Fatalf("page holds %d jobs, limit 2", len(out.Jobs))
		}
		for _, st := range out.Jobs {
			walked = append(walked, st.ID)
		}
		if out.NextPageToken == "" {
			break
		}
		token = out.NextPageToken
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, created %d", len(walked), len(ids))
	}
	seen := map[string]bool{}
	for _, id := range walked {
		if seen[id] {
			t.Errorf("job %s appeared on two pages", id)
		}
		seen[id] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("job %s missing from the walked listing", id)
		}
	}
	// One unpaged listing agrees with the walk order.
	full := list("")
	if full.NextPageToken != "" {
		t.Error("full listing carries a next_page_token")
	}
	for i, st := range full.Jobs {
		if walked[i] != st.ID {
			t.Fatalf("walk order diverges at %d: %s vs %s", i, walked[i], st.ID)
		}
	}

	// State filtering.
	if got := len(list("?state=succeeded").Jobs); got != 5 {
		t.Errorf("state=succeeded returned %d jobs, want 5", got)
	}
	if got := len(list("?state=running").Jobs); got != 0 {
		t.Errorf("state=running returned %d jobs, want 0", got)
	}
}

// waitRunning polls until the job leaves the queued state.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get: %d %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobRunning {
			return
		}
		if st.State.terminal() {
			t.Fatalf("job reached %s before running could be observed", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never started running")
}
