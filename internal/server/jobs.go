package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"alchemist/internal/obs"
	"alchemist/internal/xtrace"
)

// JobState is the lifecycle of an async job. Transitions are strictly
// queued → running → (succeeded | failed); failed covers errors,
// deadline expiry, and cancellation. A job that the journal shows as
// queued or running after a crash is recovered as interrupted (or
// re-enqueued when the server opts into requeue-on-recovery).
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobSucceeded   JobState = "succeeded"
	JobFailed      JobState = "failed"
	JobInterrupted JobState = "interrupted"
)

func (st JobState) terminal() bool {
	return st == JobSucceeded || st == JobFailed || st == JobInterrupted
}

// validJobState reports whether s names a real state (for the list
// endpoint's state= filter).
func validJobState(s JobState) bool {
	switch s {
	case JobQueued, JobRunning, JobSucceeded, JobFailed, JobInterrupted:
		return true
	}
	return false
}

// Event is one entry in a job's ordered event log, streamed to SSE
// subscribers and replayed to late ones. Seq increases by one per event
// within a job.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "progress"
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Error carries the failure message on the terminal "failed" (or
	// "interrupted") event.
	Error string `json:"error,omitempty"`
	// Job, Steps, and TotalSteps are set on "progress" events: the
	// batch-job index that reported, its executed-step count, and the
	// step total across every batch job so far.
	Job        int   `json:"job,omitempty"`
	Steps      int64 `json:"steps,omitempty"`
	TotalSteps int64 `json:"total_steps,omitempty"`
}

// encodeEvent renders one event as its single-line SSE data payload.
func encodeEvent(ev Event) ([]byte, error) {
	return json.Marshal(ev)
}

// job is one async unit of work: its state machine, progress aggregate,
// event log, and result. Every externally visible mutation flows
// through publishLocked / finish, which mirror it into the write-ahead
// journal (when one is attached) so the job survives a crash.
type job struct {
	id      string
	kind    string
	created time.Time
	idemKey string
	// reqRaw is the canonicalized submission body, journaled so the job
	// can be re-enqueued after a crash.
	reqRaw json.RawMessage
	wal    *walWriter

	// trace is the job's trace identity: every span in its timeline
	// shares trace.TraceID and is parented (directly or transitively)
	// under trace.SpanID, the submitting request's root span. Zero for
	// jobs submitted before tracing existed (journal replay).
	trace xtrace.SpanContext

	mu   sync.Mutex
	cond *sync.Cond

	state    JobState
	started  time.Time
	finished time.Time
	errMsg   string
	result   json.RawMessage

	events          []Event
	progress        obs.Progress
	lastProgressPub time.Time

	// spans is the job's persisted span timeline: admission, queue
	// wait, compile, per-scale profile runs, journal appends, SSE
	// delivery. Bounded by maxJobSpans; journaled like events.
	spans        []xtrace.SpanRecord
	spansDropped int

	cancel context.CancelFunc
}

// maxJobSpans bounds one job's persisted span timeline (and therefore
// its journal footprint); spans past the cap are counted, not kept.
const maxJobSpans = 128

// RecordSpan appends one finished span to the job's persisted timeline
// and journals it. It implements xtrace.Recorder, so a context built
// with xtrace.ContextWithRecorder(ctx, j) routes every span ended under
// it — engine compile/profile spans included — into the job record.
func (j *job) RecordSpan(rec xtrace.SpanRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recordSpanLocked(rec)
}

// recordSpanLocked is RecordSpan for callers already holding j.mu
// (spans measured inside locked sections, like the terminal journal
// append).
func (j *job) recordSpanLocked(rec xtrace.SpanRecord) {
	if len(j.spans) >= maxJobSpans {
		j.spansDropped++
		return
	}
	seq := len(j.spans)
	j.spans = append(j.spans, rec)
	j.wal.append(walRecord{Type: recSpan, ID: j.id, At: rec.End, Span: &rec, SpanSeq: seq})
}

// newJob builds a queued job without publishing or journaling anything:
// callers must store it (so journal snapshots can see it) and then call
// enqueue.
func newJob(kind string, reqRaw json.RawMessage, idemKey string, wal *walWriter) *job {
	j := &job{
		id:      newJobID(),
		kind:    kind,
		created: time.Now(),
		idemKey: idemKey,
		reqRaw:  reqRaw,
		wal:     wal,
		state:   JobQueued,
	}
	j.cond = sync.NewCond(&j.mu)
	return j
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id
		// would still be unique enough not to matter for an in-memory
		// store, so don't take the server down over it.
		return "job-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// enqueue journals the job's creation and publishes the queued event.
// It must run after the job is in the store: a journal snapshot taken
// in between then includes the job, which is what makes the created
// record safe to compact.
func (j *job) enqueue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.wal.append(walRecord{
		Type: recCreated, ID: j.id, At: j.created,
		Kind: j.kind, Request: j.reqRaw, IdemKey: j.idemKey,
		TraceID: j.traceID(),
	})
	j.publishLocked(Event{Type: "state", State: JobQueued})
}

// publishLocked appends one event, wakes subscribers, and journals it.
// Callers hold j.mu; the in-memory append happens before the journal
// write so a snapshot of this job always covers its journaled records.
func (j *job) publishLocked(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.wal.append(walRecord{Type: recEvent, ID: j.id, At: time.Now(), Event: &ev})
}

// wake re-checks every subscriber's wait condition; used to unblock
// streams whose client context ended.
func (j *job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setRunning transitions queued → running.
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
	j.publishLocked(Event{Type: "state", State: JobRunning})
}

// finish records the terminal state, result, and final progress
// snapshot, publishes the terminal event, and journals the outcome.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	for _, jp := range j.progress.Snapshot() {
		j.progress.MarkDone(jp.Job)
	}
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
		j.publishLocked(Event{Type: "state", State: JobFailed, Error: j.errMsg})
	} else {
		j.state = JobSucceeded
		if result != nil {
			if raw, merr := json.Marshal(result); merr == nil {
				j.result = raw
			}
		}
		j.publishLocked(Event{Type: "state", State: JobSucceeded})
	}
	walStart := time.Now()
	j.wal.append(walRecord{
		Type: recDone, ID: j.id, At: j.finished,
		StartedAt: j.started, FinishedAt: j.finished,
		Error: j.errMsg, Result: j.result,
	})
	if j.wal != nil && j.trace.Valid() {
		j.recordSpanLocked(xtrace.MakeRecord(j.trace.TraceID, j.trace.SpanID,
			"journal.append", walStart, time.Now(), nil))
	}
}

// traceID returns the job's hex trace ID ("" when untraced).
func (j *job) traceID() string {
	if !j.trace.Valid() {
		return ""
	}
	return j.trace.TraceID.String()
}

// interrupt marks a recovered non-terminal job as interrupted: the
// server crashed (or was killed) while it was queued or running, so its
// work is gone. The terminal event is journaled, making the next
// recovery a no-op.
func (j *job) interrupt(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = JobInterrupted
	j.errMsg = reason
	j.finished = time.Now()
	j.publishLocked(Event{Type: "state", State: JobInterrupted, Error: reason})
	j.wal.append(walRecord{
		Type: recDone, ID: j.id, At: j.finished,
		StartedAt: j.started, FinishedAt: j.finished, Error: reason,
	})
}

// requeue returns a recovered non-terminal job to the queued state for
// re-execution, continuing its event log.
func (j *job) requeue() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobQueued
	j.started = time.Time{}
	j.publishLocked(Event{Type: "state", State: JobQueued})
}

// reportProgress feeds one batch job's step report into the progress
// aggregate and, rate-limited by minGap, into the event log. Negative
// minGap publishes every report.
func (j *job) reportProgress(batchJob int, steps int64, minGap time.Duration) {
	j.progress.Update(batchJob, steps)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		// A worker's final report can race the terminal event; the
		// event log must not grow after it.
		return
	}
	now := time.Now()
	if minGap > 0 && now.Sub(j.lastProgressPub) < minGap {
		return
	}
	j.lastProgressPub = now
	j.publishLocked(Event{
		Type:       "progress",
		Job:        batchJob,
		Steps:      steps,
		TotalSteps: j.progress.TotalSteps(),
	})
}

// waitEvents blocks until the log grows past `after`, the job reaches a
// terminal state, ctx ends, or maxWait elapses (maxWait <= 0 waits
// forever). It returns the new events, whether the returned slice
// completes the log of a terminated job (the stream can end), and
// whether it gave up on the wait — the SSE handler's cue to emit a
// keepalive comment.
func (j *job) waitEvents(ctx context.Context, after int, maxWait time.Duration) ([]Event, bool, bool) {
	var deadline time.Time
	if maxWait > 0 {
		deadline = time.Now().Add(maxWait)
		// The timer wakes the cond so the timeout is observed even with
		// no event traffic.
		t := time.AfterFunc(maxWait, j.wake)
		defer t.Stop()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= after && !j.state.terminal() && ctx.Err() == nil {
		if maxWait > 0 && !time.Now().Before(deadline) {
			return nil, false, true
		}
		j.cond.Wait()
	}
	if after >= len(j.events) {
		// A resumed subscriber can ask for events past the end of a
		// terminated log; there is nothing left to send.
		return nil, j.state.terminal(), false
	}
	evs := append([]Event(nil), j.events[after:]...)
	return evs, j.state.terminal() && after+len(evs) == len(j.events), false
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID         string            `json:"id"`
	Kind       string            `json:"kind"`
	State      JobState          `json:"state"`
	CreatedAt  time.Time         `json:"created_at"`
	StartedAt  *time.Time        `json:"started_at,omitempty"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
	Error      string            `json:"error,omitempty"`
	Progress   []obs.JobProgress `json:"progress,omitempty"`
	TotalSteps int64             `json:"total_steps"`
	Result     any               `json:"result,omitempty"`
	// TraceID is the job's trace identity; the full span timeline is at
	// GET /v1/jobs/{id}/trace (and, while retained, /debug/traces).
	TraceID string `json:"trace_id,omitempty"`
	// Spans counts the persisted span-timeline entries.
	Spans int `json:"spans,omitempty"`
	// IdempotentReplay marks a POST /v1/jobs response that returned an
	// existing job because its Idempotency-Key had been seen before.
	IdempotentReplay bool `json:"idempotent_replay,omitempty"`
}

// status snapshots the job. withResult controls whether the (possibly
// large) result payload is included.
func (j *job) status(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		CreatedAt:  j.created,
		Error:      j.errMsg,
		Progress:   j.progress.Snapshot(),
		TotalSteps: j.progress.TotalSteps(),
		TraceID:    j.traceID(),
		Spans:      len(j.spans),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if withResult && j.state == JobSucceeded && len(j.result) > 0 {
		st.Result = j.result
	}
	return st
}

// snapshot captures the job's full durable state for a journal
// snapshot.
func (j *job) snapshot() jobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobSnapshot{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		CreatedAt:  j.created,
		StartedAt:  j.started,
		FinishedAt: j.finished,
		Error:      j.errMsg,
		Result:     j.result,
		Events:     append([]Event(nil), j.events...),
		Spans:      append([]xtrace.SpanRecord(nil), j.spans...),
		TraceID:    j.traceID(),
		IdemKey:    j.idemKey,
		Request:    j.reqRaw,
	}
}

// expired reports whether the job finished more than ttl ago.
func (j *job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal() && now.Sub(j.finished) > ttl
}

func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// jobStore is the job index with TTL-based retirement, a hard capacity,
// and an idempotency-key index. With a journal attached, retirements
// are journaled so recovery does not resurrect retired jobs.
type jobStore struct {
	ttl time.Duration
	max int
	sm  *serverMetrics
	wal *walWriter

	mu     sync.Mutex
	jobs   map[string]*job
	byIdem map[string]*job
	order  []*job // creation order, for capacity eviction
}

func newJobStore(ttl time.Duration, max int, sm *serverMetrics, wal *walWriter) *jobStore {
	return &jobStore{
		ttl: ttl, max: max, sm: sm, wal: wal,
		jobs:   make(map[string]*job),
		byIdem: make(map[string]*job),
	}
}

// put registers j unconditionally (recovery path; idempotency keys are
// indexed but never contested there).
func (s *jobStore) put(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	if j.idemKey != "" {
		s.byIdem[j.idemKey] = j
	}
	s.order = append(s.order, j)
	s.mu.Unlock()
	s.sweep(time.Now())
}

// putOrIdem registers j unless another job already owns its
// idempotency key, in which case that job is returned and j is
// discarded (it has no journal footprint yet).
func (s *jobStore) putOrIdem(j *job) *job {
	s.mu.Lock()
	if j.idemKey != "" {
		if prev := s.byIdem[j.idemKey]; prev != nil {
			s.mu.Unlock()
			return prev
		}
		s.byIdem[j.idemKey] = j
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	s.sweep(time.Now())
	return j
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// getIdem returns the job owning an idempotency key, if any.
func (s *jobStore) getIdem(key string) *job {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byIdem[key]
}

// list returns every stored job in the API's stable order: creation
// time ascending, ties broken by id.
func (s *jobStore) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*job(nil), s.order...)
	sort.SliceStable(out, func(i, k int) bool {
		if !out[i].created.Equal(out[k].created) {
			return out[i].created.Before(out[k].created)
		}
		return out[i].id < out[k].id
	})
	return out
}

// snapshot captures the whole store for a journal snapshot.
func (s *jobStore) snapshot() storeSnapshot {
	s.mu.Lock()
	jobs := append([]*job(nil), s.order...)
	s.mu.Unlock()
	snap := storeSnapshot{Jobs: make([]jobSnapshot, 0, len(jobs))}
	for _, j := range jobs {
		snap.Jobs = append(snap.Jobs, j.snapshot())
	}
	return snap
}

// sweep retires finished jobs past their TTL and, when the store is
// over capacity, the oldest finished jobs beyond it. Unfinished jobs
// are never evicted — the admission queue bounds how many can exist.
func (s *jobStore) sweep(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.order[:0]
	overflow := len(s.order) - s.max
	for _, j := range s.order {
		evict := j.expired(now, s.ttl)
		if !evict && overflow > 0 && j.isTerminal() {
			evict = true
		}
		if evict {
			if overflow > 0 {
				overflow-- // any eviction shrinks the store
			}
			delete(s.jobs, j.id)
			if j.idemKey != "" {
				delete(s.byIdem, j.idemKey)
			}
			s.wal.append(walRecord{Type: recRetired, ID: j.id, At: now})
			s.sm.jobsRetired.Inc()
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}
