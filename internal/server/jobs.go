package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"time"

	"alchemist/internal/obs"
)

// JobState is the lifecycle of an async job. Transitions are strictly
// queued → running → (succeeded | failed); failed covers errors,
// deadline expiry, and cancellation.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
)

func (st JobState) terminal() bool { return st == JobSucceeded || st == JobFailed }

// Event is one entry in a job's ordered event log, streamed to SSE
// subscribers and replayed to late ones. Seq increases by one per event
// within a job.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" or "progress"
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Error carries the failure message on the terminal "failed" event.
	Error string `json:"error,omitempty"`
	// Job, Steps, and TotalSteps are set on "progress" events: the
	// batch-job index that reported, its executed-step count, and the
	// step total across every batch job so far.
	Job        int   `json:"job,omitempty"`
	Steps      int64 `json:"steps,omitempty"`
	TotalSteps int64 `json:"total_steps,omitempty"`
}

// encodeEvent renders one event as its single-line SSE data payload.
func encodeEvent(ev Event) ([]byte, error) {
	return json.Marshal(ev)
}

// job is one async unit of work: its state machine, progress aggregate,
// event log, and result.
type job struct {
	id      string
	kind    string
	created time.Time

	mu   sync.Mutex
	cond *sync.Cond

	state    JobState
	started  time.Time
	finished time.Time
	errMsg   string
	result   any

	events          []Event
	progress        obs.Progress
	lastProgressPub time.Time

	cancel context.CancelFunc
}

func newJob(kind string) *job {
	j := &job{
		id:      newJobID(),
		kind:    kind,
		created: time.Now(),
		state:   JobQueued,
	}
	j.cond = sync.NewCond(&j.mu)
	j.publishLocked(Event{Type: "state", State: JobQueued})
	return j
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id
		// would still be unique enough not to matter for an in-memory
		// store, so don't take the server down over it.
		return "job-rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// publishLocked appends one event and wakes subscribers. Callers hold
// j.mu.
func (j *job) publishLocked(ev Event) {
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// wake re-checks every subscriber's wait condition; used to unblock
// streams whose client context ended.
func (j *job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setRunning transitions queued → running.
func (j *job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = JobRunning
	j.started = time.Now()
	j.publishLocked(Event{Type: "state", State: JobRunning})
}

// finish records the terminal state, result, and final progress
// snapshot, and publishes the terminal event.
func (j *job) finish(result any, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	for _, jp := range j.progress.Snapshot() {
		j.progress.MarkDone(jp.Job)
	}
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
		j.publishLocked(Event{Type: "state", State: JobFailed, Error: j.errMsg})
		return
	}
	j.state = JobSucceeded
	j.result = result
	j.publishLocked(Event{Type: "state", State: JobSucceeded})
}

// reportProgress feeds one batch job's step report into the progress
// aggregate and, rate-limited by minGap, into the event log. Negative
// minGap publishes every report.
func (j *job) reportProgress(batchJob int, steps int64, minGap time.Duration) {
	j.progress.Update(batchJob, steps)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		// A worker's final report can race the terminal event; the
		// event log must not grow after it.
		return
	}
	now := time.Now()
	if minGap > 0 && now.Sub(j.lastProgressPub) < minGap {
		return
	}
	j.lastProgressPub = now
	j.publishLocked(Event{
		Type:       "progress",
		Job:        batchJob,
		Steps:      steps,
		TotalSteps: j.progress.TotalSteps(),
	})
}

// waitEvents blocks until the log grows past `after`, the job reaches a
// terminal state, or ctx ends. It returns the new events and whether
// the returned slice completes the log of a terminated job (the stream
// can end).
func (j *job) waitEvents(ctx context.Context, after int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= after && !j.state.terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	evs := append([]Event(nil), j.events[after:]...)
	return evs, j.state.terminal() && after+len(evs) == len(j.events)
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID         string            `json:"id"`
	Kind       string            `json:"kind"`
	State      JobState          `json:"state"`
	CreatedAt  time.Time         `json:"created_at"`
	StartedAt  *time.Time        `json:"started_at,omitempty"`
	FinishedAt *time.Time        `json:"finished_at,omitempty"`
	Error      string            `json:"error,omitempty"`
	Progress   []obs.JobProgress `json:"progress,omitempty"`
	TotalSteps int64             `json:"total_steps"`
	Result     any               `json:"result,omitempty"`
}

// status snapshots the job. withResult controls whether the (possibly
// large) result payload is included.
func (j *job) status(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		CreatedAt:  j.created,
		Error:      j.errMsg,
		Progress:   j.progress.Snapshot(),
		TotalSteps: j.progress.TotalSteps(),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if withResult && j.state == JobSucceeded {
		st.Result = j.result
	}
	return st
}

// expired reports whether the job finished more than ttl ago.
func (j *job) expired(now time.Time, ttl time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal() && now.Sub(j.finished) > ttl
}

func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.terminal()
}

// jobStore is the in-memory job index with TTL-based retirement and a
// hard capacity.
type jobStore struct {
	ttl time.Duration
	max int
	sm  *serverMetrics

	mu    sync.Mutex
	jobs  map[string]*job
	order []*job // creation order, for capacity eviction
}

func newJobStore(ttl time.Duration, max int, sm *serverMetrics) *jobStore {
	return &jobStore{ttl: ttl, max: max, sm: sm, jobs: make(map[string]*job)}
}

func (s *jobStore) put(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	s.sweep(time.Now())
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// list returns every stored job, oldest first.
func (s *jobStore) list() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*job(nil), s.order...)
	sort.SliceStable(out, func(i, k int) bool { return out[i].created.Before(out[k].created) })
	return out
}

// sweep retires finished jobs past their TTL and, when the store is
// over capacity, the oldest finished jobs beyond it. Unfinished jobs
// are never evicted — the admission queue bounds how many can exist.
func (s *jobStore) sweep(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.order[:0]
	overflow := len(s.order) - s.max
	for _, j := range s.order {
		evict := j.expired(now, s.ttl)
		if !evict && overflow > 0 && j.isTerminal() {
			evict = true
		}
		if evict {
			if overflow > 0 {
				overflow-- // any eviction shrinks the store
			}
			delete(s.jobs, j.id)
			s.sm.jobsRetired.Inc()
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}
