// Package server exposes an alchemist Engine as a JSON-over-HTTP
// profiling service: synchronous compile/profile/advise endpoints, an
// async job queue with live progress streaming over SSE, explicit
// backpressure, and full observability on the engine's own registry.
//
//	POST   /v1/compile          compile a program (warms the engine cache)
//	POST   /v1/profile          profile an input suite, merged (sync)
//	POST   /v1/advise           profile + transformation guidance (sync)
//	POST   /v1/run              execute an input suite (sync)
//	POST   /v1/jobs             submit an async profile/advise/run job
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status, progress, and result
//	DELETE /v1/jobs/{id}        cancel a running job
//	GET    /v1/jobs/{id}/events per-step progress stream (SSE)
//	GET    /healthz             liveness + drain state
//	GET    /metrics             Prometheus text format (plus
//	       /metrics.json and /debug/pprof/ via the obs handler)
//
// One Server fronts one shared Engine. Work is admitted through a
// bounded queue: when every slot is occupied by a queued-or-running
// request the server answers 429 with a Retry-After header instead of
// queueing unboundedly. Every admitted unit of work runs under a
// per-job deadline mapped onto the engine's context plumbing, so a
// stuck program is reclaimed within one VM step-check window of the
// deadline. Finished async jobs are retired from the in-memory store
// after a TTL. Shutdown drains: in-flight jobs run to completion (until
// the drain context expires, which aborts them) while new submissions
// are refused.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"alchemist"
	"alchemist/internal/journal"
	"alchemist/internal/obs"
	"alchemist/internal/xtrace"
)

// Options configures a Server. The zero value of every field selects a
// production-safe default; only Engine is required.
type Options struct {
	// Engine is the shared engine all handlers profile against. It must
	// be non-nil; the Engine is safe for concurrent use, so one engine
	// serves every connection.
	Engine *alchemist.Engine

	// Registry receives the server's metrics. Defaults to
	// Engine.Metrics() so the whole stack — VM, profiler, engine,
	// server — lands behind one /metrics endpoint.
	Registry *obs.Registry

	// QueueDepth bounds admitted-but-unfinished units of work (sync
	// profile/advise/run requests plus async jobs). When the queue is
	// full new work is refused with 429 + Retry-After. Default
	// 4*Engine.Workers().
	QueueDepth int

	// RetryAfter is the client backoff hint attached to 429 responses.
	// Default 1s.
	RetryAfter time.Duration

	// APIKeys maps X-Api-Key header values onto client names for
	// per-client rate limits and quotas (several keys may share one
	// name). Requests without a key run as "anonymous"; requests with
	// an unknown key are refused with 401. Empty leaves the server
	// open: the header is ignored and every request is anonymous.
	APIKeys map[string]string

	// RatePerSec is the per-client token-bucket request rate applied to
	// the work endpoints (compile/profile/advise/run/jobs). Violations
	// answer 429 rate_limited with an honest Retry-After. 0 disables.
	RatePerSec float64

	// RateBurst is the token-bucket capacity. Default 2*RatePerSec
	// (minimum 1) when rate limiting is on.
	RateBurst int

	// ClientQuota caps one client's concurrent admitted-but-unfinished
	// units of work (sync requests + async jobs) ahead of the shared
	// queue, so a greedy client cannot occupy every slot. Violations
	// answer 429 quota_exceeded. 0 disables.
	ClientQuota int

	// ShedDeadlines rejects work on arrival (429, honest Retry-After)
	// when the estimated queue wait already exceeds the request's
	// deadline — shedding a guaranteed 504 instead of burning a worker
	// on it.
	ShedDeadlines bool

	// SSEKeepAlive is how often an idle job event stream emits a
	// ": keepalive" comment so proxy/LB idle timeouts do not cut it.
	// 0 means the 15s default; negative disables keepalives.
	SSEKeepAlive time.Duration

	// MaxBodyBytes caps request bodies; larger requests fail with 413.
	// Default 1 MiB.
	MaxBodyBytes int64

	// DefaultTimeout is the per-job deadline applied when a request
	// does not carry its own timeout_ms. Default 1m.
	DefaultTimeout time.Duration

	// MaxTimeout clamps request-supplied deadlines. Default 10m.
	MaxTimeout time.Duration

	// JobTTL retires finished async jobs from the in-memory store this
	// long after completion. Default 15m.
	JobTTL time.Duration

	// MaxJobs caps the job store; the oldest finished jobs are retired
	// first when it overflows. Default 1024.
	MaxJobs int

	// ProgressInterval throttles SSE progress events per job: reports
	// arriving closer together than this are coalesced (the underlying
	// obs.Progress still sees every report). 0 means the 100ms default;
	// negative publishes every report (tests).
	ProgressInterval time.Duration

	// AccessLog receives one structured line per request. Nil disables
	// access logging. When Logger is nil, a text slog handler is built
	// over this writer; set Logger directly for JSON or custom handlers.
	AccessLog io.Writer

	// Logger receives structured access-log records and server
	// diagnostics (panics, scrape-hook failures). Every access record
	// carries trace_id/span_id/client correlation fields. Overrides
	// AccessLog when both are set; nil with a nil AccessLog disables
	// logging.
	Logger *slog.Logger

	// Tracer retains recent and slow request/job span timelines, served
	// at /debug/traces. Defaults to a fresh tracer with default
	// retention; pass one explicitly to share it across servers.
	Tracer *xtrace.Tracer

	// DataDir enables the disk-backed job journal: every job mutation
	// is appended to a write-ahead log under this directory, and New
	// replays it so finished jobs (results and event logs included)
	// survive a restart. Jobs that were queued or running at crash time
	// come back as "interrupted" unless RequeueOnRecovery is set. Empty
	// keeps the store purely in memory.
	DataDir string

	// Fsync selects the journal's fsync policy (journal.SyncAlways /
	// SyncInterval / SyncNone). Default SyncInterval: a crash loses at
	// most FsyncEvery worth of acknowledged records.
	Fsync journal.SyncMode

	// FsyncEvery is the fsync batching period under SyncInterval.
	// Default 100ms.
	FsyncEvery time.Duration

	// SnapshotEvery runs a journal snapshot+compaction cycle after this
	// many appended records, bounding both log size and recovery time.
	// Default 4096; negative disables snapshotting.
	SnapshotEvery int64

	// RequeueOnRecovery re-enqueues jobs that the journal shows as
	// queued or running at crash time (their submitted request is
	// journaled), re-running them instead of marking them interrupted.
	RequeueOnRecovery bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Engine == nil {
		return o, errors.New("server: Options.Engine is required")
	}
	if o.Registry == nil {
		o.Registry = o.Engine.Metrics()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Engine.Workers()
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.JobTTL <= 0 {
		o.JobTTL = 15 * time.Minute
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.ProgressInterval == 0 {
		o.ProgressInterval = 100 * time.Millisecond
	}
	if o.RateBurst <= 0 && o.RatePerSec > 0 {
		o.RateBurst = max(1, int(2*o.RatePerSec))
	}
	if o.SSEKeepAlive == 0 {
		o.SSEKeepAlive = 15 * time.Second
	}
	if o.Fsync == "" {
		o.Fsync = journal.SyncInterval
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.Logger == nil && o.AccessLog != nil {
		o.Logger = slog.New(slog.NewTextHandler(o.AccessLog, nil))
	}
	if o.Tracer == nil {
		o.Tracer = xtrace.NewTracer(xtrace.Options{})
	}
	return o, nil
}

// serverMetrics is the server's pre-resolved instrument set.
type serverMetrics struct {
	requests   *obs.Counter
	errors     *obs.Counter
	inflight   *obs.Gauge
	queueDepth *obs.Gauge
	rejects    *obs.Counter
	panics     *obs.Counter

	admitted     *obs.Counter
	rateLimited  *obs.Counter
	quotaRejects *obs.Counter
	sheds        *obs.Counter
	authFailures *obs.Counter

	jobsCreated *obs.Counter
	jobsActive  *obs.Gauge
	jobsRetired *obs.Counter
	sseStreams  *obs.Counter
	sseResumed  *obs.Counter

	jobsRecovered   *obs.Gauge
	jobsInterrupted *obs.Counter
	jobsRequeued    *obs.Counter
	idemReplays     *obs.Counter
	walErrors       *obs.Counter

	// requestsByRoute dimensions request outcomes by route, status
	// code, and client; past obs.MaxLabelCardinality distinct
	// combinations new ones land in the _overflow child.
	requestsByRoute *obs.CounterVec

	latency map[string]*obs.Histogram
}

// routes names every instrumented endpoint; each gets its own latency
// histogram (the registry has no labels, so the route is part of the
// metric name).
var routes = []string{
	"compile", "profile", "advise", "run",
	"jobs_create", "jobs_list", "job_get", "job_cancel", "job_events",
	"job_trace", "health", "version",
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	sm := &serverMetrics{
		requests: r.Counter("alchemist_server_requests_total",
			"HTTP API requests received."),
		errors: r.Counter("alchemist_server_request_errors_total",
			"HTTP API requests answered with a 4xx or 5xx status."),
		inflight: r.Gauge("alchemist_server_inflight_requests",
			"HTTP API requests currently being handled."),
		queueDepth: r.Gauge("alchemist_server_queue_depth",
			"Admitted units of work (sync requests + async jobs) not yet finished."),
		rejects: r.Counter("alchemist_server_admission_rejects_total",
			"Requests refused with 429 because the admission queue was full."),
		admitted: r.Counter("alchemist_server_admission_admitted_total",
			"Units of work that passed the full admission pipeline."),
		rateLimited: r.Counter("alchemist_server_admission_rate_limited_total",
			"Requests refused with 429 rate_limited by a per-client token bucket."),
		quotaRejects: r.Counter("alchemist_server_admission_quota_rejects_total",
			"Requests refused with 429 quota_exceeded by a per-client concurrency quota."),
		sheds: r.Counter("alchemist_server_admission_shed_total",
			"Requests shed on arrival because the estimated queue wait exceeded their deadline."),
		authFailures: r.Counter("alchemist_server_auth_failures_total",
			"Requests refused with 401 for an unknown API key."),
		panics: r.Counter("alchemist_server_panics_total",
			"Handler panics recovered by the middleware."),
		jobsCreated: r.Counter("alchemist_server_jobs_created_total",
			"Async jobs accepted."),
		jobsActive: r.Gauge("alchemist_server_jobs_active",
			"Async jobs currently queued or running."),
		jobsRetired: r.Counter("alchemist_server_jobs_retired_total",
			"Finished async jobs dropped from the store (TTL or capacity)."),
		sseStreams: r.Counter("alchemist_server_sse_streams_total",
			"Job event streams opened."),
		sseResumed: r.Counter("alchemist_server_sse_resumed_total",
			"Job event streams resumed from a client-supplied Last-Event-ID."),
		jobsRecovered: r.Gauge("alchemist_server_jobs_recovered",
			"Jobs rebuilt from the journal at the last startup."),
		jobsInterrupted: r.Counter("alchemist_server_jobs_interrupted_total",
			"Recovered jobs marked interrupted because they were queued or running at crash time."),
		jobsRequeued: r.Counter("alchemist_server_jobs_requeued_total",
			"Recovered jobs re-enqueued for execution (requeue-on-recovery)."),
		idemReplays: r.Counter("alchemist_server_idempotent_replays_total",
			"Job submissions answered with an existing job via Idempotency-Key."),
		walErrors: r.Counter("alchemist_server_journal_errors_total",
			"Job-store journal operations that failed (appends, snapshots)."),
		requestsByRoute: r.CounterVec("alchemist_server_requests_by_route_total",
			"HTTP API requests by route, status code, and client.",
			[]string{"route", "code", "client"}),
		latency: make(map[string]*obs.Histogram, len(routes)),
	}
	for _, route := range routes {
		sm.latency[route] = r.Histogram(
			"alchemist_server_request_seconds_"+route,
			fmt.Sprintf("Wall-clock latency of the %s endpoint.", route), nil)
	}
	return sm
}

// Server is the profiling-as-a-service front end. Construct it with
// New, serve it via Handler (any http.Server) or Start (own listener),
// and stop it with Shutdown (graceful drain) or Close (abort).
type Server struct {
	opts   Options
	eng    *alchemist.Engine
	reg    *obs.Registry
	sm     *serverMetrics
	logger *slog.Logger
	tracer *xtrace.Tracer
	build  obs.BuildInfo
	admit  chan struct{}
	adm    *admission
	store  *jobStore
	wal    *walWriter
	rec    RecoveryStats
	h      http.Handler

	// walOnce guards the journal close across Shutdown/Close.
	walOnce sync.Once

	// lifeCtx outlives every request; cancelling it aborts all async
	// jobs and the janitor.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	mu       sync.Mutex
	draining bool

	// jobWG tracks async job goroutines for shutdown draining.
	jobWG sync.WaitGroup

	httpSrv *http.Server
	ln      net.Listener
}

// RecoveryStats reports what the last New found in the journal.
type RecoveryStats struct {
	// Durable is true when the server runs with a journal (DataDir).
	Durable bool
	// Jobs is how many jobs were rebuilt from disk.
	Jobs int
	// Interrupted is how many recovered jobs had been queued or running
	// at crash time and were marked interrupted.
	Interrupted int
	// Requeued is how many such jobs were re-enqueued instead
	// (RequeueOnRecovery).
	Requeued int
	// TruncatedBytes is the size of the torn journal tail dropped
	// during recovery (0 after a clean shutdown).
	TruncatedBytes int64
}

// New builds a Server from opts and starts its background job janitor.
// With a DataDir, the job journal is replayed first: finished jobs come
// back with results and event logs, jobs lost mid-flight are marked
// interrupted or re-enqueued. Call Close (or Shutdown) to release it.
func New(opts Options) (*Server, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		eng:    opts.Engine,
		reg:    opts.Registry,
		sm:     newServerMetrics(opts.Registry),
		logger: opts.Logger,
		tracer: opts.Tracer,
		admit:  make(chan struct{}, opts.QueueDepth),
		adm:    newAdmission(opts),
	}
	if s.logger != nil {
		// Scrape-hook panics and other registry diagnostics go to the
		// same structured sink as access logs.
		s.reg.SetLogger(s.logger)
	}
	s.lifeCtx, s.lifeCancel = context.WithCancel(context.Background())

	var recovered []*jobSnapshot
	if opts.DataDir != "" {
		jn, rec, err := journal.Open(journal.Options{
			Dir:       opts.DataDir,
			Sync:      opts.Fsync,
			SyncEvery: opts.FsyncEvery,
			Metrics:   journal.NewMetrics(s.reg),
		})
		if err != nil {
			s.lifeCancel()
			return nil, fmt.Errorf("server: opening job journal: %w", err)
		}
		recovered, err = replayState(rec)
		if err != nil {
			jn.Close()
			s.lifeCancel()
			return nil, err
		}
		s.wal = &walWriter{jn: jn, snapEvery: opts.SnapshotEvery, errs: s.sm.walErrors.Inc}
		s.rec = RecoveryStats{Durable: true, TruncatedBytes: rec.TruncatedBytes}
	}
	s.store = newJobStore(opts.JobTTL, opts.MaxJobs, s.sm, s.wal)
	if s.wal != nil {
		s.wal.store = s.store
	}
	s.recoverJobs(recovered)

	obs.RegisterProcess(s.reg)
	s.build = obs.RegisterBuildInfo(s.reg)
	s.h = s.buildHandler()
	go s.janitor()
	return s, nil
}

// recoverJobs rebuilds the store from the journal's durable job states
// and settles every non-terminal job: re-enqueue if configured (and a
// queue slot is free), otherwise mark interrupted.
func (s *Server) recoverJobs(snaps []*jobSnapshot) {
	for _, js := range snaps {
		j := restoreJob(js, s.wal)
		s.store.put(j)
		s.rec.Jobs++
		if j.isTerminal() {
			continue
		}
		if s.opts.RequeueOnRecovery {
			var req JobRequest
			if err := json.Unmarshal(j.reqRaw, &req); err == nil {
				if release, ok := s.tryAdmit(); ok {
					j.requeue()
					s.rec.Requeued++
					s.sm.jobsRequeued.Inc()
					s.sm.jobsActive.Add(1)
					s.startJob(j, req, release)
					continue
				}
			}
		}
		j.interrupt("interrupted: server restarted while the job was queued or running")
		s.rec.Interrupted++
		s.sm.jobsInterrupted.Inc()
	}
	s.sm.jobsRecovered.Set(int64(s.rec.Jobs))
}

// Recovery reports what the journal replay found at startup.
func (s *Server) Recovery() RecoveryStats { return s.rec }

// buildHandler assembles the route table with per-route
// instrumentation and mounts the obs endpoints on the same mux.
func (s *Server) buildHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.instrument("compile", s.handleCompile))
	mux.HandleFunc("POST /v1/profile", s.instrument("profile", s.handleProfile))
	mux.HandleFunc("POST /v1/advise", s.instrument("advise", s.handleAdvise))
	mux.HandleFunc("POST /v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs_create", s.handleJobCreate))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs_list", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job_get", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job_cancel", s.handleJobCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("job_trace", s.handleJobTrace))
	mux.HandleFunc("GET /healthz", s.instrument("health", s.handleHealth))
	mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	oh := obs.Handler(s.reg)
	mux.Handle("/metrics", oh)
	mux.Handle("/metrics.json", oh)
	mux.Handle("/debug/pprof/", oh)
	mux.Handle("/debug/traces", xtrace.Handler(s.tracer))
	return mux
}

// Handler returns the fully middleware-wrapped API handler, for
// mounting on an external http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.h }

// Metrics returns the registry the server (and its engine) report into.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Start listens on addr (":0" picks a free port) and serves in a
// background goroutine.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.h, ReadHeaderTimeout: 10 * time.Second}
	srv := s.httpSrv
	s.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// URL returns the base http:// URL of the started server.
func (s *Server) URL() string {
	if a := s.Addr(); a != nil {
		return "http://" + a.String()
	}
	return ""
}

// Shutdown gracefully drains the server: new job submissions are
// refused with 503, the listener stops accepting, and in-flight async
// jobs run to completion. If ctx expires first the remaining jobs are
// aborted (each observes cancellation within one VM step-check window)
// and ctx.Err() is returned after they unwind.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	httpSrv := s.httpSrv
	s.mu.Unlock()

	// Stop accepting and wait for active connections concurrently with
	// the job drain: SSE streams attached to running jobs stay open
	// until those jobs finish.
	shutRes := make(chan error, 1)
	if httpSrv != nil {
		go func() { shutRes <- httpSrv.Shutdown(ctx) }()
	} else {
		shutRes <- nil
	}

	jobsDone := make(chan struct{})
	go func() { s.jobWG.Wait(); close(jobsDone) }()

	var drainErr error
	select {
	case <-jobsDone:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.lifeCancel() // abort remaining jobs
		<-jobsDone
	}
	httpErr := <-shutRes
	s.lifeCancel() // stop the janitor
	s.closeWal()
	if drainErr != nil {
		return fmt.Errorf("server: drain aborted: %w", drainErr)
	}
	return httpErr
}

// closeWal flushes and closes the job journal exactly once, after every
// job goroutine that could append has unwound.
func (s *Server) closeWal() {
	s.walOnce.Do(func() {
		if s.wal != nil {
			if err := s.wal.close(); err != nil {
				s.sm.walErrors.Inc()
			}
		}
	})
}

// Close abandons everything immediately: running jobs are cancelled and
// open connections closed.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	httpSrv := s.httpSrv
	s.mu.Unlock()
	s.lifeCancel()
	var err error
	if httpSrv != nil {
		err = httpSrv.Close()
	}
	s.jobWG.Wait()
	s.closeWal()
	return err
}

// Kill stops the server the way a crash would: the journal stops
// accepting appends first, then every listener and connection is
// severed, and in-flight jobs are abandoned without their cancellation
// being recorded. The on-disk state is exactly what a SIGKILL at this
// instant would leave — jobs the journal shows as queued or running
// stay that way — so a successor opened over the same DataDir with
// RequeueOnRecovery rehearses real crash recovery. In-process resources
// (goroutines, file handles) are still reclaimed; the Engine survives
// for reuse.
func (s *Server) Kill() error {
	if s.wal != nil {
		s.wal.disabled.Store(true)
	}
	s.mu.Lock()
	s.draining = true
	httpSrv := s.httpSrv
	s.mu.Unlock()
	// Sever the HTTP side before aborting jobs: a crash never delivers
	// "goodbye" events over still-open streams, so neither does Kill.
	var err error
	if httpSrv != nil {
		err = httpSrv.Close()
	}
	s.lifeCancel()
	s.jobWG.Wait()
	s.closeWal()
	return err
}

// janitor retires expired jobs in the background until the server dies.
func (s *Server) janitor() {
	period := s.opts.JobTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.lifeCtx.Done():
			return
		case now := <-t.C:
			s.store.sweep(now)
		}
	}
}

// tryAdmit claims one admission-queue slot without blocking. The
// release function is idempotent. A false return means the queue is
// saturated and the caller must answer 429.
func (s *Server) tryAdmit() (release func(), ok bool) {
	select {
	case s.admit <- struct{}{}:
		s.sm.queueDepth.Add(1)
		var once sync.Once
		return func() {
			once.Do(func() {
				<-s.admit
				s.sm.queueDepth.Add(-1)
			})
		}, true
	default:
		s.sm.rejects.Inc()
		return nil, false
	}
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// timeoutFor clamps a request-supplied deadline to the configured
// bounds.
func (s *Server) timeoutFor(timeoutMS int64) time.Duration {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}
