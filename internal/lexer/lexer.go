// Package lexer turns mini-C source text into a token stream.
//
// The scanner is a straightforward hand-written loop. It supports //- and
// /*-style comments, decimal and hexadecimal integer literals, character
// literals ('a', '\n'), and string literals (used only by the print
// builtin).
package lexer

import (
	"strconv"

	"alchemist/internal/source"
	"alchemist/internal/token"
)

// Lexer scans a single file.
type Lexer struct {
	file  *source.File
	src   string
	pos   int // current byte offset
	line  int
	col   int
	diags *source.DiagList
}

// New creates a Lexer over file, reporting problems to diags.
func New(file *source.File, diags *source.DiagList) *Lexer {
	return &Lexer{file: file, src: file.Content, line: 1, col: 1, diags: diags}
}

// ScanAll scans the whole file and returns every token, ending with EOF.
func ScanAll(file *source.File, diags *source.DiagList) []token.Token {
	lx := New(file, diags)
	var toks []token.Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.tokenStart()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.diags.Errorf(l.file.Pos(start.Offset), "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) tokenStart() token.Token {
	return token.Token{Offset: l.pos, Line: l.line, Col: l.col}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	t := l.tokenStart()
	if l.pos >= len(l.src) {
		t.Kind = token.EOF
		return t
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		t.Text = l.src[start:l.pos]
		if kw, ok := token.Keywords[t.Text]; ok {
			t.Kind = kw
		} else {
			t.Kind = token.IDENT
		}
		return t
	case isDigit(c):
		return l.scanNumber(t)
	case c == '\'':
		return l.scanChar(t)
	case c == '"':
		return l.scanString(t)
	}
	return l.scanOperator(t)
}

func (l *Lexer) scanNumber(t token.Token) token.Token {
	start := l.pos
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		t.Text = l.src[start:l.pos]
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			l.diags.Errorf(l.file.Pos(t.Offset), "invalid hex literal %q", t.Text)
			t.Kind = token.ILLEGAL
			return t
		}
		t.Kind = token.INT
		t.Val = v
		return t
	}
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	t.Text = l.src[start:l.pos]
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		l.diags.Errorf(l.file.Pos(t.Offset), "invalid integer literal %q", t.Text)
		t.Kind = token.ILLEGAL
		return t
	}
	t.Kind = token.INT
	t.Val = v
	return t
}

func (l *Lexer) scanEscape() (byte, bool) {
	// Caller consumed the backslash.
	if l.pos >= len(l.src) {
		return 0, false
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return 0, false
}

func (l *Lexer) scanChar(t token.Token) token.Token {
	l.advance() // opening quote
	if l.pos >= len(l.src) {
		l.diags.Errorf(l.file.Pos(t.Offset), "unterminated character literal")
		t.Kind = token.ILLEGAL
		return t
	}
	var v byte
	if l.peek() == '\\' {
		l.advance()
		e, ok := l.scanEscape()
		if !ok {
			l.diags.Errorf(l.file.Pos(t.Offset), "invalid escape in character literal")
			t.Kind = token.ILLEGAL
			return t
		}
		v = e
	} else {
		v = l.advance()
	}
	if l.pos >= len(l.src) || l.peek() != '\'' {
		l.diags.Errorf(l.file.Pos(t.Offset), "unterminated character literal")
		t.Kind = token.ILLEGAL
		return t
	}
	l.advance()
	t.Kind = token.INT
	t.Val = int64(v)
	t.Text = l.src[t.Offset:l.pos]
	return t
}

func (l *Lexer) scanString(t token.Token) token.Token {
	l.advance() // opening quote
	var buf []byte
	for {
		if l.pos >= len(l.src) || l.peek() == '\n' {
			l.diags.Errorf(l.file.Pos(t.Offset), "unterminated string literal")
			t.Kind = token.ILLEGAL
			return t
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			e, ok := l.scanEscape()
			if !ok {
				l.diags.Errorf(l.file.Pos(t.Offset), "invalid escape in string literal")
				t.Kind = token.ILLEGAL
				return t
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, c)
	}
	t.Kind = token.STRING
	t.Text = string(buf)
	return t
}

func (l *Lexer) scanOperator(t token.Token) token.Token {
	c := l.advance()
	two := func(second byte, with, without token.Kind) token.Kind {
		if l.peek() == second {
			l.advance()
			return with
		}
		return without
	}
	switch c {
	case '(':
		t.Kind = token.LParen
	case ')':
		t.Kind = token.RParen
	case '{':
		t.Kind = token.LBrace
	case '}':
		t.Kind = token.RBrace
	case '[':
		t.Kind = token.LBracket
	case ']':
		t.Kind = token.RBracket
	case ',':
		t.Kind = token.Comma
	case ';':
		t.Kind = token.Semi
	case '~':
		t.Kind = token.Tilde
	case '?':
		t.Kind = token.Question
	case ':':
		t.Kind = token.Colon
	case '+':
		switch l.peek() {
		case '+':
			l.advance()
			t.Kind = token.Inc
		case '=':
			l.advance()
			t.Kind = token.PlusAssign
		default:
			t.Kind = token.Plus
		}
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			t.Kind = token.Dec
		case '=':
			l.advance()
			t.Kind = token.MinusAssign
		default:
			t.Kind = token.Minus
		}
	case '*':
		t.Kind = two('=', token.StarAssign, token.Star)
	case '/':
		t.Kind = two('=', token.SlashAssign, token.Slash)
	case '%':
		t.Kind = two('=', token.PercentAssign, token.Percent)
	case '^':
		t.Kind = two('=', token.XorAssign, token.Xor)
	case '!':
		t.Kind = two('=', token.Ne, token.Not)
	case '=':
		t.Kind = two('=', token.Eq, token.Assign)
	case '&':
		switch l.peek() {
		case '&':
			l.advance()
			t.Kind = token.LAnd
		case '=':
			l.advance()
			t.Kind = token.AmpAssign
		default:
			t.Kind = token.Amp
		}
	case '|':
		switch l.peek() {
		case '|':
			l.advance()
			t.Kind = token.LOr
		case '=':
			l.advance()
			t.Kind = token.OrAssign
		default:
			t.Kind = token.Or
		}
	case '<':
		switch l.peek() {
		case '<':
			l.advance()
			t.Kind = two('=', token.ShlAssign, token.Shl)
		case '=':
			l.advance()
			t.Kind = token.Le
		default:
			t.Kind = token.Lt
		}
	case '>':
		switch l.peek() {
		case '>':
			l.advance()
			t.Kind = two('=', token.ShrAssign, token.Shr)
		case '=':
			l.advance()
			t.Kind = token.Ge
		default:
			t.Kind = token.Gt
		}
	default:
		l.diags.Errorf(l.file.Pos(t.Offset), "unexpected character %q", string(c))
		t.Kind = token.ILLEGAL
		t.Text = string(c)
	}
	if t.Text == "" {
		t.Text = l.src[t.Offset:l.pos]
	}
	return t
}
