package lexer

import (
	"testing"
	"testing/quick"

	"alchemist/internal/source"
	"alchemist/internal/token"
)

func scan(t *testing.T, src string) []token.Token {
	t.Helper()
	var diags source.DiagList
	toks := ScanAll(source.NewFile("t.mc", src), &diags)
	if diags.HasErrors() {
		t.Fatalf("lex %q: %v", src, diags.Err())
	}
	return toks
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, tk := range toks {
		out = append(out, tk.Kind)
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(scan(t, src))
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("lex %q: got %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lex %q token %d: got %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "int void if else while for do break continue return spawn sync",
		token.KwInt, token.KwVoid, token.KwIf, token.KwElse, token.KwWhile,
		token.KwFor, token.KwDo, token.KwBreak, token.KwContinue, token.KwReturn,
		token.KwSpawn, token.KwSync)
	expectKinds(t, "foo _bar baz42 intx", token.IDENT, token.IDENT, token.IDENT, token.IDENT)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / % & | ^ << >> ~ ! ? :",
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.Amp, token.Or, token.Xor, token.Shl, token.Shr,
		token.Tilde, token.Not, token.Question, token.Colon)
	expectKinds(t, "== != < <= > >= && ||",
		token.Eq, token.Ne, token.Lt, token.Le, token.Gt, token.Ge,
		token.LAnd, token.LOr)
	expectKinds(t, "= += -= *= /= %= &= |= ^= <<= >>= ++ --",
		token.Assign, token.PlusAssign, token.MinusAssign, token.StarAssign,
		token.SlashAssign, token.PercentAssign, token.AmpAssign, token.OrAssign,
		token.XorAssign, token.ShlAssign, token.ShrAssign, token.Inc, token.Dec)
	expectKinds(t, "( ) { } [ ] , ;",
		token.LParen, token.RParen, token.LBrace, token.RBrace,
		token.LBracket, token.RBracket, token.Comma, token.Semi)
}

func TestMaximalMunch(t *testing.T) {
	// <<= vs << vs <, etc.
	expectKinds(t, "a<<=b", token.IDENT, token.ShlAssign, token.IDENT)
	expectKinds(t, "a<<b", token.IDENT, token.Shl, token.IDENT)
	expectKinds(t, "a<b", token.IDENT, token.Lt, token.IDENT)
	expectKinds(t, "a<=b", token.IDENT, token.Le, token.IDENT)
	expectKinds(t, "i+++1", token.IDENT, token.Inc, token.Plus, token.INT)
	expectKinds(t, "a&&&b", token.IDENT, token.LAnd, token.Amp, token.IDENT)
}

func TestIntLiterals(t *testing.T) {
	toks := scan(t, "0 42 123456789 0x1F 0xff")
	want := []int64{0, 42, 123456789, 31, 255}
	for i, v := range want {
		if toks[i].Kind != token.INT || toks[i].Val != v {
			t.Errorf("literal %d: got %v val %d, want %d", i, toks[i].Kind, toks[i].Val, v)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	toks := scan(t, `'a' '\n' '\t' '\\' '\'' '\0'`)
	want := []int64{'a', '\n', '\t', '\\', '\'', 0}
	for i, v := range want {
		if toks[i].Kind != token.INT || toks[i].Val != v {
			t.Errorf("char %d: got val %d, want %d", i, toks[i].Val, v)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks := scan(t, `"hello" "a\nb" ""`)
	want := []string{"hello", "a\nb", ""}
	for i, v := range want {
		if toks[i].Kind != token.STRING || toks[i].Text != v {
			t.Errorf("string %d: got %q, want %q", i, toks[i].Text, v)
		}
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb", token.IDENT, token.IDENT)
	expectKinds(t, "a /* block */ b", token.IDENT, token.IDENT)
	expectKinds(t, "a /* multi\nline\ncomment */ b", token.IDENT, token.IDENT)
	expectKinds(t, "// only a comment") // nothing

}

func TestPositions(t *testing.T) {
	toks := scan(t, "a\n  bb\n c")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("bb at %d:%d", toks[1].Line, toks[1].Col)
	}
	if toks[2].Line != 3 || toks[2].Col != 2 {
		t.Errorf("c at %d:%d", toks[2].Line, toks[2].Col)
	}
}

func lexErr(t *testing.T, src string) {
	t.Helper()
	var diags source.DiagList
	ScanAll(source.NewFile("t.mc", src), &diags)
	if !diags.HasErrors() {
		t.Errorf("lex %q: expected error", src)
	}
}

func TestLexErrors(t *testing.T) {
	lexErr(t, "@")
	lexErr(t, "$x")
	lexErr(t, `"unterminated`)
	lexErr(t, "'a")
	lexErr(t, "'ab'")
	lexErr(t, `'\q'`)
	lexErr(t, "/* unterminated")
	lexErr(t, `"bad \q escape"`)
}

// TestTokenTextRoundTrip: for identifier/number inputs, the scanned text
// must reproduce the input exactly.
func TestTokenTextRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		src := "x" + string(rune('a'+n%26))
		toks := scanQuiet(src)
		return len(toks) == 2 && toks[0].Kind == token.IDENT && toks[0].Text == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(n uint32) bool {
		v := int64(n % 1_000_000)
		toks := scanQuiet(fmtInt(v))
		return len(toks) == 2 && toks[0].Kind == token.INT && toks[0].Val == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func scanQuiet(src string) []token.Token {
	var diags source.DiagList
	return ScanAll(source.NewFile("q.mc", src), &diags)
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestNoPanicsOnArbitraryInput fuzzes the lexer with random bytes; it
// must report errors via diagnostics, never panic, and always terminate
// with EOF.
func TestNoPanicsOnArbitraryInput(t *testing.T) {
	f := func(data []byte) bool {
		var diags source.DiagList
		toks := ScanAll(source.NewFile("fuzz.mc", string(data)), &diags)
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
