package interp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/interp"
	"alchemist/internal/progs"
	"alchemist/internal/vm"
)

// runVM executes src through the compile+VM pipeline.
func runVM(t *testing.T, src string, input []int64, memWords int64, out *bytes.Buffer) (*vm.Result, error) {
	t.Helper()
	prog, err := compile.Build("d.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var w = vm.Config{Input: input, MemWords: memWords, StepLimit: 500_000_000}
	if out != nil {
		w.Out = out
	}
	m, err := vm.New(prog, w)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

// differential asserts the VM and the reference interpreter agree on
// output, return value, and print text.
func differential(t *testing.T, src string, input []int64, memWords int64) {
	t.Helper()
	var vmOut, inOut bytes.Buffer
	vmRes, vmErr := runVM(t, src, input, memWords, &vmOut)
	inRes, inErr := interp.Run("d.mc", src, interp.Config{Input: input, Out: &inOut})
	if (vmErr == nil) != (inErr == nil) {
		t.Fatalf("error disagreement: vm=%v interp=%v", vmErr, inErr)
	}
	if vmErr != nil {
		return // both trapped; messages may differ in position detail
	}
	if !reflect.DeepEqual(vmRes.Output, inRes.Output) {
		t.Fatalf("out() streams differ:\n  vm     %v\n  interp %v", vmRes.Output, inRes.Output)
	}
	if vmRes.Ret != inRes.Ret {
		t.Fatalf("return values differ: vm %d, interp %d", vmRes.Ret, inRes.Ret)
	}
	if vmOut.String() != inOut.String() {
		t.Fatalf("print output differs:\n  vm     %q\n  interp %q", vmOut.String(), inOut.String())
	}
}

// TestDifferentialWorkloads: every benchmark workload agrees between the
// two implementations.
func TestDifferentialWorkloads(t *testing.T) {
	for _, w := range progs.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			differential(t, w.Source, w.InputFor(w.SmallScale), w.MemWords)
		})
	}
}

// TestDifferentialParallelSources: the spawn/sync variants agree under
// sequential semantics.
func TestDifferentialParallelSources(t *testing.T) {
	for _, w := range progs.All() {
		if !w.HasParallel() {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			differential(t, w.ParSource, w.InputFor(w.SmallScale), w.MemWords)
		})
	}
}

// TestDifferentialTestdata: the standalone sample programs agree.
func TestDifferentialTestdata(t *testing.T) {
	cases := []struct {
		file  string
		input []int64
	}{
		{"sieve.mc", []int64{500}},
		{"collatz.mc", []int64{300}},
		{"matmul.mc", []int64{24}},
		{"sort.mc", []int64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 42, 17, 99, 23, 11}},
	}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(tc.file, func(t *testing.T) {
			differential(t, string(data), tc.input, 0)
		})
	}
}

// TestDifferentialLanguageCorners exercises tricky semantics on both
// implementations.
func TestDifferentialLanguageCorners(t *testing.T) {
	cases := []struct {
		name, src string
		input     []int64
	}{
		{"short-circuit-effects", `
int hits;
int bump(int r) { hits++; return r; }
int main() {
	int a = bump(0) && bump(1);
	int b = bump(1) || bump(0);
	int c = bump(1) && bump(2);
	int d = bump(0) || bump(0);
	out(hits); out(a); out(b); out(c); out(d);
	return 0;
}`, nil},
		{"nested-break-continue", `
int main() {
	int s = 0;
	for (int i = 0; i < 8; i++) {
		for (int j = 0; j < 8; j++) {
			if (j == 3) { continue; }
			if (j == 6) { break; }
			if (i * j > 20) { s += 100; break; }
			s += j;
		}
		if (i == 7) { break; }
	}
	out(s);
	return s & 255;
}`, nil},
		{"do-while-once", `
int main() {
	int n = 0;
	do { n++; } while (0);
	do { n += 10; } while (n < 40);
	out(n);
	return n;
}`, nil},
		{"recursion-arrays", `
int scratch[64];
int fill(int d, int off) {
	if (d == 0) { return 0; }
	scratch[off] = d;
	return d + fill(d - 1, off + 1);
}
int main() {
	out(fill(10, 0));
	out(scratch[0] + scratch[9]);
	return 0;
}`, nil},
		{"rand-determinism", `
int main() {
	srand(in(0));
	int s = 0;
	for (int i = 0; i < 20; i++) { s = (s + rand()) & 65535; }
	out(s);
	return 0;
}`, []int64{98765}},
		{"ternary-chains", `
int cls(int x) { return x < 10 ? 0 : x < 100 ? 1 : x < 1000 ? 2 : 3; }
int main() {
	out(cls(5)); out(cls(50)); out(cls(500)); out(cls(5000));
	return 0;
}`, nil},
		{"negative-arith", `
int main() {
	int a = 0 - 17;
	out(a / 5); out(a % 5); out(a >> 1); out(a << 1); out(~a); out(-a);
	return 0;
}`, nil},
		{"alloc-and-len", `
int consume(int a[]) {
	int s = 0;
	for (int i = 0; i < len(a); i++) { s += a[i]; }
	return s;
}
int main() {
	int a[] = alloc(in(0));
	for (int i = 0; i < len(a); i++) { a[i] = i * i; }
	out(consume(a));
	int b[5];
	b[4] = 7;
	out(consume(b));
	return 0;
}`, []int64{12}},
		{"print-mixed", `
int main() {
	print("x=", 1, " y=", 0 - 2, "!");
	print();
	print(42);
	return 0;
}`, nil},
		{"div-by-zero-trap", `
int main() {
	int d = in(0);
	out(100 / d);
	return 0;
}`, []int64{0}},
		{"oob-trap", `
int a[4];
int main() { return a[in(0)]; }`, []int64{9}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			differential(t, tc.src, tc.input, 0)
		})
	}
}

// TestInterpStepLimit ensures the reference interpreter cannot loop
// forever in differential fuzzing.
func TestInterpStepLimit(t *testing.T) {
	_, err := interp.Run("loop.mc", `int main() { while (1) {} return 0; }`,
		interp.Config{StepLimit: 100000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}
