// Package interp is a direct tree-walking evaluator for mini-C, used as
// the reference semantics in differential tests: whatever the
// compile+VM pipeline produces must match what this interpreter
// computes. It deliberately shares no code with the compiler or VM —
// arrays are Go slices, scalars are plain int64 variables — so a bug
// must be made in two unrelated implementations to go unnoticed.
//
// It implements sequential semantics only (spawn = call, sync = no-op),
// which is also the behaviour the profiler observes.
package interp

import (
	"fmt"
	"io"
	"strings"

	"alchemist/internal/ast"
	"alchemist/internal/parser"
	"alchemist/internal/sema"
	"alchemist/internal/source"
	"alchemist/internal/token"
)

// Config parameterizes an interpretation.
type Config struct {
	Input     []int64
	Out       io.Writer
	Seed      uint64
	StepLimit int64 // statements+expressions budget; 0 = default 500M
}

// Result mirrors vm.Result's observable fields.
type Result struct {
	Output []int64
	Ret    int64
}

// Run parses, checks, and interprets src.
func Run(name, src string, cfg Config) (*Result, error) {
	file := source.NewFile(name, src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}
	info := sema.Check(prog, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return RunChecked(info, cfg)
}

// RunChecked interprets an already-checked program.
func RunChecked(info *sema.Info, cfg Config) (*Result, error) {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = 500_000_000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	in := &interp{
		info:    info,
		cfg:     cfg,
		globals: map[*sema.Symbol]*value{},
		rng:     seed,
	}
	for _, g := range info.Globals {
		v := &value{}
		if g.Kind == sema.GlobalArray {
			size, _ := sema.ConstValue(g.Decl.Size)
			v.arr = make([]int64, size)
		} else if g.Decl.Init != nil {
			v.n, _ = sema.ConstValue(g.Decl.Init)
		}
		in.globals[g] = v
	}
	main := info.Funcs["main"]
	if main == nil {
		return nil, fmt.Errorf("interp: no main")
	}
	ret, err := in.call(main, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Output: in.output, Ret: ret.n}, nil
}

// value is a scalar or an array reference.
type value struct {
	n   int64
	arr []int64
}

type interp struct {
	info    *sema.Info
	cfg     Config
	globals map[*sema.Symbol]*value
	output  []int64
	steps   int64
	rng     uint64
}

// frame holds one activation's variables.
type frame struct {
	vars map[*sema.Symbol]*value
}

// control-flow signals.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type runtimeErr struct {
	pos source.Pos
	msg string
}

func (e *runtimeErr) Error() string {
	return fmt.Sprintf("%s: runtime error: %s", e.pos, e.msg)
}

func (in *interp) trap(pos source.Pos, format string, args ...any) error {
	return &runtimeErr{pos: pos, msg: fmt.Sprintf(format, args...)}
}

func (in *interp) tick(pos source.Pos) error {
	in.steps++
	if in.steps > in.cfg.StepLimit {
		return in.trap(pos, "step limit exceeded")
	}
	return nil
}

func (in *interp) call(fi *sema.FuncInfo, args []*value) (*value, error) {
	fr := &frame{vars: map[*sema.Symbol]*value{}}
	for i, p := range fi.Params {
		fr.vars[p] = args[i]
	}
	ret := &value{}
	c, err := in.block(fi.Decl.Body, fr, ret)
	if err != nil {
		return nil, err
	}
	_ = c
	return ret, nil
}

func (in *interp) lookup(fr *frame, sym *sema.Symbol) *value {
	if v, ok := fr.vars[sym]; ok {
		return v
	}
	if v, ok := in.globals[sym]; ok {
		return v
	}
	// Block-scoped local not yet declared on this path: allocate lazily
	// (sema guarantees declaration dominates use in well-formed
	// programs).
	v := &value{}
	fr.vars[sym] = v
	return v
}

func (in *interp) block(b *ast.BlockStmt, fr *frame, ret *value) (ctrl, error) {
	for _, s := range b.List {
		c, err := in.stmt(s, fr, ret)
		if err != nil {
			return ctrlNone, err
		}
		if c != ctrlNone {
			return c, nil
		}
	}
	return ctrlNone, nil
}

func (in *interp) stmt(s ast.Stmt, fr *frame, ret *value) (ctrl, error) {
	if s == nil {
		return ctrlNone, nil
	}
	if err := in.tick(s.Pos()); err != nil {
		return ctrlNone, err
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		return in.block(x, fr, ret)
	case *ast.DeclStmt:
		return ctrlNone, in.localDecl(x.Decl, fr)
	case *ast.ExprStmt:
		_, err := in.expr(x.X, fr)
		return ctrlNone, err
	case *ast.AssignStmt:
		return ctrlNone, in.assign(x, fr)
	case *ast.IfStmt:
		cond, err := in.expr(x.Cond, fr)
		if err != nil {
			return ctrlNone, err
		}
		if cond.n != 0 {
			return in.stmt(x.Then, fr, ret)
		}
		if x.Else != nil {
			return in.stmt(x.Else, fr, ret)
		}
		return ctrlNone, nil
	case *ast.WhileStmt:
		for {
			cond, err := in.expr(x.Cond, fr)
			if err != nil {
				return ctrlNone, err
			}
			if cond.n == 0 {
				return ctrlNone, nil
			}
			c, err := in.stmt(x.Body, fr, ret)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			// ctrlContinue and ctrlNone both reach the post statement.
			if x.Post != nil {
				if c2, err := in.stmt(x.Post, fr, ret); err != nil || c2 != ctrlNone {
					return c2, err
				}
			}
			if err := in.tick(x.Pos()); err != nil {
				return ctrlNone, err
			}
		}
	case *ast.BreakStmt:
		return ctrlBreak, nil
	case *ast.ContinueStmt:
		return ctrlContinue, nil
	case *ast.ReturnStmt:
		if x.X != nil {
			v, err := in.expr(x.X, fr)
			if err != nil {
				return ctrlNone, err
			}
			*ret = *v
		}
		return ctrlReturn, nil
	case *ast.SpawnStmt:
		// Sequential semantics: spawn is a call.
		_, err := in.expr(x.Call, fr)
		return ctrlNone, err
	case *ast.SyncStmt:
		return ctrlNone, nil
	}
	return ctrlNone, fmt.Errorf("interp: unsupported statement %T", s)
}

func (in *interp) localDecl(d *ast.VarDecl, fr *frame) error {
	sym := in.symbolForLocal(d, fr)
	if sym == nil {
		return fmt.Errorf("interp: no symbol for local %q", d.Name)
	}
	v := &value{}
	switch {
	case d.IsArray && d.Init != nil:
		ref, err := in.expr(d.Init, fr)
		if err != nil {
			return err
		}
		v.arr = ref.arr
	case d.IsArray:
		size, err := in.expr(d.Size, fr)
		if err != nil {
			return err
		}
		if size.n < 0 {
			return in.trap(d.Pos(), "invalid allocation size %d", size.n)
		}
		v.arr = make([]int64, size.n)
	case d.Init != nil:
		iv, err := in.expr(d.Init, fr)
		if err != nil {
			return err
		}
		v.n = iv.n
	}
	fr.vars[sym] = v
	return nil
}

// symbolForLocal finds the symbol a declaration introduced by scanning
// the enclosing function's locals.
func (in *interp) symbolForLocal(d *ast.VarDecl, fr *frame) *sema.Symbol {
	for _, fi := range in.info.Funcs {
		for _, l := range fi.Locals {
			if l.Decl == d {
				return l
			}
		}
	}
	return nil
}

func (in *interp) assign(a *ast.AssignStmt, fr *frame) error {
	rhs, err := in.expr(a.RHS, fr)
	if err != nil {
		return err
	}
	apply := func(cur int64) (int64, error) {
		if a.Op == token.Assign {
			return rhs.n, nil
		}
		return in.binop(token.BinaryForAssign(a.Op), cur, rhs.n, a.LHS.Pos())
	}
	switch lhs := a.LHS.(type) {
	case *ast.Ident:
		sym := in.info.Uses[lhs]
		v := in.lookup(fr, sym)
		if sym.Kind.IsArray() {
			v.arr = rhs.arr
			return nil
		}
		nv, err := apply(v.n)
		if err != nil {
			return err
		}
		v.n = nv
		return nil
	case *ast.IndexExpr:
		base := in.info.Uses[lhs.X.(*ast.Ident)]
		arr := in.lookup(fr, base).arr
		idx, err := in.expr(lhs.Index, fr)
		if err != nil {
			return err
		}
		if idx.n < 0 || idx.n >= int64(len(arr)) {
			return in.trap(lhs.Pos(), "index %d out of range [0,%d)", idx.n, len(arr))
		}
		nv, err := apply(arr[idx.n])
		if err != nil {
			return err
		}
		arr[idx.n] = nv
		return nil
	}
	return fmt.Errorf("interp: bad assignment target")
}

func (in *interp) binop(op token.Kind, a, b int64, pos source.Pos) (int64, error) {
	switch op {
	case token.Plus:
		return a + b, nil
	case token.Minus:
		return a - b, nil
	case token.Star:
		return a * b, nil
	case token.Slash:
		if b == 0 {
			return 0, in.trap(pos, "division by zero")
		}
		return a / b, nil
	case token.Percent:
		if b == 0 {
			return 0, in.trap(pos, "modulo by zero")
		}
		return a % b, nil
	case token.Amp:
		return a & b, nil
	case token.Or:
		return a | b, nil
	case token.Xor:
		return a ^ b, nil
	case token.Shl:
		return a << (uint64(b) & 63), nil
	case token.Shr:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case token.Eq:
		return b2i(a == b), nil
	case token.Ne:
		return b2i(a != b), nil
	case token.Lt:
		return b2i(a < b), nil
	case token.Le:
		return b2i(a <= b), nil
	case token.Gt:
		return b2i(a > b), nil
	case token.Ge:
		return b2i(a >= b), nil
	}
	return 0, fmt.Errorf("interp: bad binary op %v", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *interp) expr(e ast.Expr, fr *frame) (*value, error) {
	if err := in.tick(e.Pos()); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *ast.IntLit:
		return &value{n: x.Val}, nil
	case *ast.Ident:
		return in.lookup(fr, in.info.Uses[x]), nil
	case *ast.UnaryExpr:
		v, err := in.expr(x.X, fr)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case token.Minus:
			return &value{n: -v.n}, nil
		case token.Tilde:
			return &value{n: ^v.n}, nil
		case token.Not:
			return &value{n: b2i(v.n == 0)}, nil
		}
		return nil, fmt.Errorf("interp: bad unary %v", x.Op)
	case *ast.BinaryExpr:
		if x.Op == token.LAnd || x.Op == token.LOr {
			a, err := in.expr(x.X, fr)
			if err != nil {
				return nil, err
			}
			if x.Op == token.LAnd && a.n == 0 {
				return &value{n: 0}, nil
			}
			if x.Op == token.LOr && a.n != 0 {
				return &value{n: 1}, nil
			}
			b, err := in.expr(x.Y, fr)
			if err != nil {
				return nil, err
			}
			return &value{n: b2i(b.n != 0)}, nil
		}
		a, err := in.expr(x.X, fr)
		if err != nil {
			return nil, err
		}
		b, err := in.expr(x.Y, fr)
		if err != nil {
			return nil, err
		}
		n, err := in.binop(x.Op, a.n, b.n, x.Pos())
		if err != nil {
			return nil, err
		}
		return &value{n: n}, nil
	case *ast.CondExpr:
		c, err := in.expr(x.Cond, fr)
		if err != nil {
			return nil, err
		}
		if c.n != 0 {
			return in.expr(x.Then, fr)
		}
		return in.expr(x.Else, fr)
	case *ast.IndexExpr:
		base := in.info.Uses[x.X.(*ast.Ident)]
		arr := in.lookup(fr, base).arr
		idx, err := in.expr(x.Index, fr)
		if err != nil {
			return nil, err
		}
		if idx.n < 0 || idx.n >= int64(len(arr)) {
			return nil, in.trap(x.Pos(), "index %d out of range [0,%d)", idx.n, len(arr))
		}
		return &value{n: arr[idx.n]}, nil
	case *ast.CallExpr:
		return in.callExpr(x, fr)
	case *ast.StrLit:
		return nil, fmt.Errorf("interp: string outside print")
	}
	return nil, fmt.Errorf("interp: unsupported expression %T", e)
}

func (in *interp) callExpr(call *ast.CallExpr, fr *frame) (*value, error) {
	if b, ok := in.info.CalleeBuiltin[call]; ok {
		return in.builtin(call, b, fr)
	}
	fi := in.info.CalleeFunc[call]
	args := make([]*value, len(call.Args))
	for i, a := range call.Args {
		v, err := in.expr(a, fr)
		if err != nil {
			return nil, err
		}
		// Scalars pass by value; arrays share the backing slice.
		if v.arr != nil {
			args[i] = &value{arr: v.arr}
		} else {
			args[i] = &value{n: v.n}
		}
	}
	return in.call(fi, args)
}

func (in *interp) builtin(call *ast.CallExpr, b sema.Builtin, fr *frame) (*value, error) {
	switch b {
	case sema.BuiltinPrint:
		var sb strings.Builder
		for _, a := range call.Args {
			if s, ok := a.(*ast.StrLit); ok {
				sb.WriteString(s.Val)
				continue
			}
			v, err := in.expr(a, fr)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&sb, "%d", v.n)
		}
		sb.WriteByte('\n')
		io.WriteString(in.cfg.Out, sb.String())
		return &value{}, nil
	case sema.BuiltinLen:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		return &value{n: int64(len(v.arr))}, nil
	case sema.BuiltinAlloc:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		if v.n < 0 {
			return nil, in.trap(call.Pos(), "invalid allocation size %d", v.n)
		}
		return &value{arr: make([]int64, v.n)}, nil
	case sema.BuiltinRand:
		x := in.rng
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		in.rng = x
		return &value{n: int64(x >> 1)}, nil
	case sema.BuiltinSrand:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		in.rng = uint64(v.n) | 1
		return &value{}, nil
	case sema.BuiltinIn:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		if v.n < 0 || v.n >= int64(len(in.cfg.Input)) {
			return nil, in.trap(call.Pos(), "in(%d) out of range", v.n)
		}
		return &value{n: in.cfg.Input[v.n]}, nil
	case sema.BuiltinInLen:
		return &value{n: int64(len(in.cfg.Input))}, nil
	case sema.BuiltinOut:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		in.output = append(in.output, v.n)
		return &value{}, nil
	case sema.BuiltinAssert:
		v, err := in.expr(call.Args[0], fr)
		if err != nil {
			return nil, err
		}
		if v.n == 0 {
			return nil, in.trap(call.Pos(), "assertion failed")
		}
		return &value{}, nil
	}
	return nil, fmt.Errorf("interp: unknown builtin %d", b)
}
