package interp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// progGen emits random but well-formed mini-C programs: straight-line
// arithmetic, global/array state, bounded loops, conditionals, and a
// helper function. Division and modulo use |1 guards so programs are
// trap-free and the differential compares values, not error paths.
type progGen struct {
	r     *rand.Rand
	scals []string // in-scope assignable scalar names
	ro    []string // read-only scalars (loop induction variables)
	depth int
}

func (g *progGen) lit() string {
	v := g.r.Int63n(2000) - 1000
	if v < 0 {
		return fmt.Sprintf("(0 - %d)", -v)
	}
	return fmt.Sprintf("%d", v)
}

func (g *progGen) operand() string {
	names := append(append([]string(nil), g.scals...), g.ro...)
	if len(names) > 0 && g.r.Intn(3) != 0 {
		n := names[g.r.Intn(len(names))]
		if g.r.Intn(4) == 0 {
			return fmt.Sprintf("arr[%s & 7]", n)
		}
		return n
	}
	return g.lit()
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return g.operand()
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.r.Intn(14) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / (%s | 1))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (%s | 1))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 8:
		return fmt.Sprintf("(%s << (%s & 7))", a, b)
	case 9:
		return fmt.Sprintf("(%s >> (%s & 7))", a, b)
	case 10:
		return fmt.Sprintf("(%s < %s)", a, b)
	case 11:
		return fmt.Sprintf("(%s == %s)", a, b)
	case 12:
		return fmt.Sprintf("(%s && %s)", a, b)
	default:
		return fmt.Sprintf("((%s) ? (%s) : (%s))", a, b, g.expr(depth-1))
	}
}

func (g *progGen) stmts(n, depth int, indent string) string {
	var b strings.Builder
	for s := 0; s < n; s++ {
		switch g.r.Intn(6) {
		case 0: // new scalar
			name := fmt.Sprintf("v%d_%d", depth, len(g.scals))
			fmt.Fprintf(&b, "%sint %s = %s;\n", indent, name, g.expr(2))
			g.scals = append(g.scals, name)
		case 1: // array store
			fmt.Fprintf(&b, "%sarr[%s & 7] = %s;\n", indent, g.operand(), g.expr(2))
		case 2: // global update
			fmt.Fprintf(&b, "%sgacc = (gacc + %s) & 16777215;\n", indent, g.expr(2))
		case 3: // conditional
			fmt.Fprintf(&b, "%sif (%s) { gacc ^= %s; } else { gacc += %s; }\n",
				indent, g.expr(1), g.expr(1), g.expr(1))
		case 4: // bounded loop over a fresh induction variable
			if depth < 2 {
				iv := fmt.Sprintf("i%d_%d", depth, s)
				fmt.Fprintf(&b, "%sfor (int %s = 0; %s < %d; %s++) {\n",
					indent, iv, iv, 2+g.r.Intn(6), iv)
				savedRO, savedScals := len(g.ro), len(g.scals)
				g.ro = append(g.ro, iv)
				b.WriteString(g.stmts(1+g.r.Intn(2), depth+1, indent+"\t"))
				g.ro = g.ro[:savedRO]
				g.scals = g.scals[:savedScals] // body-scoped declarations end here
				fmt.Fprintf(&b, "%s}\n", indent)
			} else {
				fmt.Fprintf(&b, "%sgacc = (gacc * 31 + %s) & 16777215;\n", indent, g.operand())
			}
		case 5: // compound assignment on an existing scalar
			if len(g.scals) > 0 {
				ops := []string{"+=", "-=", "^=", "|=", "&="}
				fmt.Fprintf(&b, "%s%s %s %s;\n", indent,
					g.scals[g.r.Intn(len(g.scals))], ops[g.r.Intn(len(ops))], g.expr(1))
			} else {
				fmt.Fprintf(&b, "%sgacc += %s;\n", indent, g.expr(1))
			}
		}
	}
	return b.String()
}

func (g *progGen) program() string {
	var b strings.Builder
	b.WriteString("int gacc;\nint arr[8];\n")
	b.WriteString("int mix(int a, int b) { return (a * 31 + b) & 16777215; }\n")
	b.WriteString("int main() {\n")
	g.scals = nil
	g.ro = nil
	b.WriteString(g.stmts(6+g.r.Intn(8), 0, "\t"))
	b.WriteString("\tgacc = mix(gacc, arr[0] + arr[7]);\n")
	b.WriteString("\tout(gacc);\n")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&b, "\tout(arr[%d]);\n", i)
	}
	b.WriteString("\treturn gacc & 255;\n}\n")
	return b.String()
}

// TestDifferentialRandomPrograms generates random programs and checks
// the compile+VM pipeline against the reference interpreter.
func TestDifferentialRandomPrograms(t *testing.T) {
	const trials = 150
	for seed := int64(0); seed < trials; seed++ {
		g := &progGen{r: rand.New(rand.NewSource(seed))}
		src := g.program()
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			differential(t, src, nil, 0)
		})
	}
}
