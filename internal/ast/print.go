package ast

import (
	"fmt"
	"io"
	"strings"

	"alchemist/internal/token"
)

// Dump writes a readable tree rendering of the program, for the minicc
// tool and golden tests.
func Dump(w io.Writer, p *Program) {
	d := &dumper{w: w}
	for _, g := range p.Globals {
		d.varDecl(g, "global")
	}
	for _, f := range p.Funcs {
		d.funcDecl(f)
	}
}

// DumpString renders the program to a string.
func DumpString(p *Program) string {
	var b strings.Builder
	Dump(&b, p)
	return b.String()
}

type dumper struct {
	w      io.Writer
	indent int
}

func (d *dumper) printf(format string, args ...any) {
	fmt.Fprintf(d.w, "%s%s\n", strings.Repeat("  ", d.indent), fmt.Sprintf(format, args...))
}

func (d *dumper) nested(fn func()) {
	d.indent++
	fn()
	d.indent--
}

func (d *dumper) varDecl(v *VarDecl, kind string) {
	suffix := ""
	if v.IsArray {
		suffix = "[]"
	}
	d.printf("%s %s%s (line %d)", kind, v.Name, suffix, v.Pos().Line)
	d.nested(func() {
		if v.Size != nil {
			d.printf("size:")
			d.nested(func() { d.expr(v.Size) })
		}
		if v.Init != nil {
			d.printf("init:")
			d.nested(func() { d.expr(v.Init) })
		}
	})
}

func (d *dumper) funcDecl(f *FuncDecl) {
	var params []string
	for _, p := range f.Params {
		s := p.Name
		if p.IsArray {
			s += "[]"
		}
		params = append(params, s)
	}
	d.printf("func %s %s(%s) (line %d)", f.Returns, f.Name, strings.Join(params, ", "), f.Pos().Line)
	d.nested(func() { d.stmt(f.Body) })
}

func (d *dumper) stmt(s Stmt) {
	switch x := s.(type) {
	case nil:
		d.printf("<empty>")
	case *BlockStmt:
		d.printf("block")
		d.nested(func() {
			for _, sub := range x.List {
				d.stmt(sub)
			}
		})
	case *DeclStmt:
		d.varDecl(x.Decl, "local")
	case *ExprStmt:
		d.printf("expr")
		d.nested(func() { d.expr(x.X) })
	case *AssignStmt:
		d.printf("assign %s", x.Op)
		d.nested(func() {
			d.expr(x.LHS)
			d.expr(x.RHS)
		})
	case *IfStmt:
		d.printf("if (line %d)", x.Pos().Line)
		d.nested(func() {
			d.expr(x.Cond)
			d.stmt(x.Then)
			if x.Else != nil {
				d.printf("else:")
				d.nested(func() { d.stmt(x.Else) })
			}
		})
	case *WhileStmt:
		d.printf("while (line %d)", x.Pos().Line)
		d.nested(func() {
			d.expr(x.Cond)
			d.stmt(x.Body)
			if x.Post != nil {
				d.printf("post:")
				d.nested(func() { d.stmt(x.Post) })
			}
		})
	case *BreakStmt:
		d.printf("break")
	case *ContinueStmt:
		d.printf("continue")
	case *ReturnStmt:
		d.printf("return")
		if x.X != nil {
			d.nested(func() { d.expr(x.X) })
		}
	case *SpawnStmt:
		d.printf("spawn")
		d.nested(func() { d.expr(x.Call) })
	case *SyncStmt:
		d.printf("sync")
	default:
		d.printf("stmt %T", s)
	}
}

func (d *dumper) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		d.printf("ident %s", x.Name)
	case *IntLit:
		d.printf("int %d", x.Val)
	case *StrLit:
		d.printf("string %q", x.Val)
	case *UnaryExpr:
		d.printf("unary %s", x.Op)
		d.nested(func() { d.expr(x.X) })
	case *BinaryExpr:
		d.printf("binary %s", x.Op)
		d.nested(func() {
			d.expr(x.X)
			d.expr(x.Y)
		})
	case *CondExpr:
		d.printf("cond ?:")
		d.nested(func() {
			d.expr(x.Cond)
			d.expr(x.Then)
			d.expr(x.Else)
		})
	case *IndexExpr:
		d.printf("index")
		d.nested(func() {
			d.expr(x.X)
			d.expr(x.Index)
		})
	case *CallExpr:
		d.printf("call %s", x.Fun.Name)
		d.nested(func() {
			for _, a := range x.Args {
				d.expr(a)
			}
		})
	default:
		d.printf("expr %T", e)
	}
}

var _ = token.EOF // token is used for the Kind formatting of AssignStmt.Op
