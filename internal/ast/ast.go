// Package ast defines the abstract syntax tree for mini-C.
//
// The tree is deliberately small: mini-C has one scalar type (64-bit int),
// one aggregate type (int arrays with reference semantics), functions,
// C-style control flow, and two concurrency primitives (spawn/sync) used by
// the futures runtime. Every node records the source position of its first
// token so the profiler can report construct locations by line.
package ast

import (
	"alchemist/internal/source"
	"alchemist/internal/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// ---------- Types ----------

// TypeKind distinguishes the mini-C types.
type TypeKind int

const (
	// TypeVoid is the return type of value-less functions.
	TypeVoid TypeKind = iota
	// TypeInt is the 64-bit integer scalar type.
	TypeInt
	// TypeArray is a reference to a contiguous block of ints.
	TypeArray
)

func (k TypeKind) String() string {
	switch k {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeArray:
		return "int[]"
	default:
		return "?"
	}
}

// ---------- Program structure ----------

// Program is a parsed translation unit.
type Program struct {
	File    *source.File
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Pos returns the start of the file.
func (p *Program) Pos() source.Pos {
	if p.File == nil {
		return source.Pos{}
	}
	return p.File.Pos(0)
}

// FindFunc returns the function named name, or nil.
func (p *Program) FindFunc(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is a function parameter.
type Param struct {
	NamePos source.Pos
	Name    string
	IsArray bool
}

// FuncDecl is a function definition.
type FuncDecl struct {
	KwPos   source.Pos
	Name    string
	Params  []*Param
	Returns TypeKind // TypeVoid or TypeInt
	Body    *BlockStmt
}

func (f *FuncDecl) Pos() source.Pos { return f.KwPos }

// VarDecl declares a global or local variable. A global scalar may carry a
// constant initializer; a local may carry an arbitrary initializer
// expression. Array declarations carry a size expression (constant for
// globals, arbitrary for locals).
type VarDecl struct {
	KwPos   source.Pos
	Name    string
	IsArray bool
	Size    Expr // array length; nil for scalars
	Init    Expr // initializer; nil if absent
}

func (v *VarDecl) Pos() source.Pos { return v.KwPos }

// ---------- Statements ----------

// Stmt is implemented by every statement node.
type Stmt interface {
	Node
	stmtNode()
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	LBrace source.Pos
	List   []Stmt
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct {
	Decl *VarDecl
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// AssignStmt stores into an lvalue. Op is token.Assign or a compound
// assignment operator; Inc/Dec are desugared by the parser into compound
// assignments with a literal 1.
type AssignStmt struct {
	LHS Expr // *Ident or *IndexExpr
	Op  token.Kind
	RHS Expr
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	KwPos source.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

// WhileStmt is a while loop. For loops and do-while loops are desugared to
// while loops by the parser (do-while via a first-iteration flag).
type WhileStmt struct {
	KwPos source.Pos
	Cond  Expr
	Body  Stmt
	// Post holds the for-loop post statement, executed at the end of each
	// iteration and before every continue. nil for plain while loops.
	Post Stmt
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	KwPos source.Pos
}

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct {
	KwPos source.Pos
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	KwPos source.Pos
	X     Expr // nil for void returns
}

// SpawnStmt launches f(args) asynchronously (a future). Under the
// sequential profiler it executes as a plain call; under the futures
// runtime it runs on its own goroutine.
type SpawnStmt struct {
	KwPos source.Pos
	Call  *CallExpr
}

// SyncStmt joins every outstanding spawn of the current function
// activation.
type SyncStmt struct {
	KwPos source.Pos
}

func (s *BlockStmt) Pos() source.Pos    { return s.LBrace }
func (s *DeclStmt) Pos() source.Pos     { return s.Decl.KwPos }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *AssignStmt) Pos() source.Pos   { return s.LHS.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.KwPos }
func (s *WhileStmt) Pos() source.Pos    { return s.KwPos }
func (s *BreakStmt) Pos() source.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.KwPos }
func (s *SpawnStmt) Pos() source.Pos    { return s.KwPos }
func (s *SyncStmt) Pos() source.Pos     { return s.KwPos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*SpawnStmt) stmtNode()    {}
func (*SyncStmt) stmtNode()     {}

// ---------- Expressions ----------

// Expr is implemented by every expression node.
type Expr interface {
	Node
	exprNode()
}

// Ident references a variable or function name.
type Ident struct {
	NamePos source.Pos
	Name    string
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Val    int64
}

// StrLit is a string literal (print builtin only).
type StrLit struct {
	LitPos source.Pos
	Val    string
}

// UnaryExpr applies -, !, or ~ to an operand.
type UnaryExpr struct {
	OpPos source.Pos
	Op    token.Kind
	X     Expr
}

// BinaryExpr applies an arithmetic, comparison, or logical operator.
// && and || short-circuit.
type BinaryExpr struct {
	Op   token.Kind
	X, Y Expr
}

// CondExpr is the ternary conditional c ? a : b.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// IndexExpr is an array element access a[i].
type IndexExpr struct {
	X     Expr // *Ident after type checking
	Index Expr
}

// CallExpr is a function or builtin call.
type CallExpr struct {
	Fun  *Ident
	Args []Expr
}

func (e *Ident) Pos() source.Pos      { return e.NamePos }
func (e *IntLit) Pos() source.Pos     { return e.LitPos }
func (e *StrLit) Pos() source.Pos     { return e.LitPos }
func (e *UnaryExpr) Pos() source.Pos  { return e.OpPos }
func (e *BinaryExpr) Pos() source.Pos { return e.X.Pos() }
func (e *CondExpr) Pos() source.Pos   { return e.Cond.Pos() }
func (e *IndexExpr) Pos() source.Pos  { return e.X.Pos() }
func (e *CallExpr) Pos() source.Pos   { return e.Fun.Pos() }

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}

// Walk calls fn for node and every child, pre-order. fn returning false
// prunes the subtree.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		for _, g := range x.Globals {
			Walk(g, fn)
		}
		for _, f := range x.Funcs {
			Walk(f, fn)
		}
	case *FuncDecl:
		Walk(x.Body, fn)
	case *VarDecl:
		if x.Size != nil {
			Walk(x.Size, fn)
		}
		if x.Init != nil {
			Walk(x.Init, fn)
		}
	case *BlockStmt:
		for _, s := range x.List {
			Walk(s, fn)
		}
	case *DeclStmt:
		Walk(x.Decl, fn)
	case *ExprStmt:
		Walk(x.X, fn)
	case *AssignStmt:
		Walk(x.LHS, fn)
		Walk(x.RHS, fn)
	case *IfStmt:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		if x.Else != nil {
			Walk(x.Else, fn)
		}
	case *WhileStmt:
		Walk(x.Cond, fn)
		Walk(x.Body, fn)
		if x.Post != nil {
			Walk(x.Post, fn)
		}
	case *ReturnStmt:
		if x.X != nil {
			Walk(x.X, fn)
		}
	case *SpawnStmt:
		Walk(x.Call, fn)
	case *UnaryExpr:
		Walk(x.X, fn)
	case *BinaryExpr:
		Walk(x.X, fn)
		Walk(x.Y, fn)
	case *CondExpr:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *IndexExpr:
		Walk(x.X, fn)
		Walk(x.Index, fn)
	case *CallExpr:
		Walk(x.Fun, fn)
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}
