package source

import (
	"strings"
	"testing"
)

func TestPosLineCol(t *testing.T) {
	f := NewFile("a.mc", "ab\ncde\n\nx")
	cases := []struct {
		offset, line, col int
	}{
		{0, 1, 1},
		{1, 1, 2},
		{2, 1, 3}, // the newline itself
		{3, 2, 1},
		{5, 2, 3},
		{7, 3, 1},
		{8, 4, 1},
	}
	for _, tc := range cases {
		p := f.Pos(tc.offset)
		if p.Line != tc.line || p.Col != tc.col {
			t.Errorf("Pos(%d) = %d:%d, want %d:%d", tc.offset, p.Line, p.Col, tc.line, tc.col)
		}
	}
}

func TestPosClamping(t *testing.T) {
	f := NewFile("a.mc", "hello")
	if p := f.Pos(-5); p.Offset != 0 {
		t.Errorf("negative offset not clamped: %+v", p)
	}
	if p := f.Pos(100); p.Offset != len(f.Content) {
		t.Errorf("overlong offset not clamped: %+v", p)
	}
}

func TestLine(t *testing.T) {
	f := NewFile("a.mc", "first\nsecond\nthird")
	if got := f.Line(1); got != "first" {
		t.Errorf("Line(1) = %q", got)
	}
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q", got)
	}
	if got := f.Line(4); got != "" {
		t.Errorf("Line(4) = %q", got)
	}
}

func TestNumLines(t *testing.T) {
	if n := NewFile("x", "").NumLines(); n != 1 {
		t.Errorf("empty file lines = %d", n)
	}
	if n := NewFile("x", "a\nb\nc").NumLines(); n != 3 {
		t.Errorf("3-line file lines = %d", n)
	}
}

func TestPosString(t *testing.T) {
	f := NewFile("file.mc", "abc")
	if got := f.Pos(1).String(); got != "file.mc:1:2" {
		t.Errorf("Pos string = %q", got)
	}
	var zero Pos
	if zero.IsValid() {
		t.Error("zero Pos should be invalid")
	}
	if got := zero.String(); got != "<unknown>" {
		t.Errorf("zero Pos string = %q", got)
	}
}

func TestDiagList(t *testing.T) {
	f := NewFile("d.mc", "x\ny")
	var dl DiagList
	if dl.HasErrors() {
		t.Error("empty list has errors")
	}
	if dl.Err() != nil {
		t.Error("empty list Err != nil")
	}
	dl.Warnf(f.Pos(0), "watch out %d", 1)
	if dl.HasErrors() {
		t.Error("warning counted as error")
	}
	dl.Errorf(f.Pos(2), "boom %s", "now")
	if !dl.HasErrors() {
		t.Error("error not recorded")
	}
	err := dl.Err()
	if err == nil || !strings.Contains(err.Error(), "boom now") {
		t.Errorf("Err = %v", err)
	}
	if !strings.Contains(err.Error(), "d.mc:2:1") {
		t.Errorf("Err lacks position: %v", err)
	}
	// Warnings are excluded from Err.
	if strings.Contains(err.Error(), "watch out") {
		t.Errorf("Err includes warning: %v", err)
	}
}

func TestDiagListTruncation(t *testing.T) {
	f := NewFile("d.mc", "x")
	var dl DiagList
	for i := 0; i < 30; i++ {
		dl.Errorf(f.Pos(0), "e%d", i)
	}
	msg := dl.Err().Error()
	if !strings.Contains(msg, "and more errors") {
		t.Error("long error list not truncated")
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" {
		t.Error("severity strings wrong")
	}
	if Severity(99).String() != "diagnostic" {
		t.Error("unknown severity string wrong")
	}
}
