// Package source provides source-file management, positions, and
// diagnostics for the mini-C frontend.
//
// Positions are 1-based line/column pairs tied to a File. A Span covers a
// half-open byte range and is used by the AST and by diagnostics.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// File holds the contents of a single mini-C source file together with a
// line-offset table for position lookup.
type File struct {
	Name    string
	Content string

	lineOffsets []int // byte offset of the start of each line
}

// NewFile creates a File and builds its line table.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lineOffsets = append(f.lineOffsets, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lineOffsets = append(f.lineOffsets, i+1)
		}
	}
	return f
}

// NumLines reports the number of lines in the file.
func (f *File) NumLines() int { return len(f.lineOffsets) }

// Pos converts a byte offset into a Pos. Offsets past the end of the file
// are clamped.
func (f *File) Pos(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	line := sort.Search(len(f.lineOffsets), func(i int) bool {
		return f.lineOffsets[i] > offset
	})
	// line is 1-based already because Search returns the first line whose
	// start is beyond offset.
	col := offset - f.lineOffsets[line-1] + 1
	return Pos{File: f, Offset: offset, Line: line, Col: col}
}

// Line returns the text of the 1-based line number, without the newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineOffsets) {
		return ""
	}
	start := f.lineOffsets[n-1]
	end := len(f.Content)
	if n < len(f.lineOffsets) {
		end = f.lineOffsets[n] - 1
	}
	return f.Content[start:end]
}

// Pos identifies a location in a file.
type Pos struct {
	File   *File
	Offset int
	Line   int
	Col    int
}

// IsValid reports whether the position refers to a real file location.
func (p Pos) IsValid() bool { return p.File != nil }

func (p Pos) String() string {
	if p.File == nil {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", p.File.Name, p.Line, p.Col)
}

// Span is a half-open byte range [Start, End) in a single file.
type Span struct {
	Start Pos
	End   Pos
}

func (s Span) String() string { return s.Start.String() }

// Severity classifies a diagnostic.
type Severity int

const (
	// Error diagnostics prevent compilation from succeeding.
	Error Severity = iota
	// Warning diagnostics do not stop compilation.
	Warning
)

func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "diagnostic"
	}
}

// Diagnostic is a single compiler message tied to a position.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// DiagList accumulates diagnostics during a compilation phase.
type DiagList struct {
	Diags []Diagnostic
}

// Errorf records an error at pos.
func (dl *DiagList) Errorf(pos Pos, format string, args ...any) {
	dl.Diags = append(dl.Diags, Diagnostic{Pos: pos, Severity: Error, Message: fmt.Sprintf(format, args...)})
}

// Warnf records a warning at pos.
func (dl *DiagList) Warnf(pos Pos, format string, args ...any) {
	dl.Diags = append(dl.Diags, Diagnostic{Pos: pos, Severity: Warning, Message: fmt.Sprintf(format, args...)})
}

// HasErrors reports whether any error-severity diagnostic was recorded.
func (dl *DiagList) HasErrors() bool {
	for _, d := range dl.Diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Err returns an error summarizing all error diagnostics, or nil.
func (dl *DiagList) Err() error {
	if !dl.HasErrors() {
		return nil
	}
	var b strings.Builder
	n := 0
	for _, d := range dl.Diags {
		if d.Severity != Error {
			continue
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
		n++
		if n == 20 {
			fmt.Fprintf(&b, "\n... and more errors")
			break
		}
	}
	return fmt.Errorf("%s", b.String())
}
