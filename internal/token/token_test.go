package token

import "testing"

func TestIsAssignOp(t *testing.T) {
	yes := []Kind{Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, OrAssign, XorAssign, ShlAssign, ShrAssign}
	for _, k := range yes {
		if !IsAssignOp(k) {
			t.Errorf("IsAssignOp(%v) = false", k)
		}
	}
	no := []Kind{Plus, Eq, Inc, Dec, IDENT, LBrace}
	for _, k := range no {
		if IsAssignOp(k) {
			t.Errorf("IsAssignOp(%v) = true", k)
		}
	}
}

func TestBinaryForAssign(t *testing.T) {
	cases := map[Kind]Kind{
		PlusAssign:    Plus,
		MinusAssign:   Minus,
		StarAssign:    Star,
		SlashAssign:   Slash,
		PercentAssign: Percent,
		AmpAssign:     Amp,
		OrAssign:      Or,
		XorAssign:     Xor,
		ShlAssign:     Shl,
		ShrAssign:     Shr,
		Assign:        EOF,
		Plus:          EOF,
	}
	for in, want := range cases {
		if got := BinaryForAssign(in); got != want {
			t.Errorf("BinaryForAssign(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KwWhile.String() != "while" || Shl.String() != "<<" || IDENT.String() != "identifier" {
		t.Error("kind strings wrong")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind must format")
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: IDENT, Text: "foo"}
	if id.String() != `identifier "foo"` {
		t.Errorf("ident string = %q", id.String())
	}
	op := Token{Kind: Plus}
	if op.String() != "+" {
		t.Errorf("op string = %q", op.String())
	}
}

func TestKeywordTableComplete(t *testing.T) {
	// Every keyword kind maps back from its spelling.
	for text, kind := range Keywords {
		if kind.String() != text {
			t.Errorf("keyword %q has kind string %q", text, kind.String())
		}
	}
	if len(Keywords) != 12 {
		t.Errorf("keyword count = %d", len(Keywords))
	}
}
