// Package token defines the lexical tokens of mini-C.
package token

import "fmt"

// Kind enumerates the token kinds produced by the lexer.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123, 0x1f, 'a'
	STRING // "abc" (builtin print only)

	// Keywords.
	KwInt
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwBreak
	KwContinue
	KwReturn
	KwSpawn
	KwSync

	// Punctuation.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;

	// Operators.
	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign // &=
	OrAssign  // |=
	XorAssign // ^=
	ShlAssign // <<=
	ShrAssign // >>=
	Inc       // ++
	Dec       // --

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Amp     // &
	Or      // |
	Xor     // ^
	Shl     // <<
	Shr     // >>
	Tilde   // ~

	LAnd // &&
	LOr  // ||
	Not  // !

	Eq // ==
	Ne // !=
	Lt // <
	Le // <=
	Gt // >
	Ge // >=

	Question // ?
	Colon    // :
)

var kindNames = map[Kind]string{
	EOF:           "EOF",
	ILLEGAL:       "ILLEGAL",
	IDENT:         "identifier",
	INT:           "integer literal",
	STRING:        "string literal",
	KwInt:         "int",
	KwVoid:        "void",
	KwIf:          "if",
	KwElse:        "else",
	KwWhile:       "while",
	KwFor:         "for",
	KwDo:          "do",
	KwBreak:       "break",
	KwContinue:    "continue",
	KwReturn:      "return",
	KwSpawn:       "spawn",
	KwSync:        "sync",
	LParen:        "(",
	RParen:        ")",
	LBrace:        "{",
	RBrace:        "}",
	LBracket:      "[",
	RBracket:      "]",
	Comma:         ",",
	Semi:          ";",
	Assign:        "=",
	PlusAssign:    "+=",
	MinusAssign:   "-=",
	StarAssign:    "*=",
	SlashAssign:   "/=",
	PercentAssign: "%=",
	AmpAssign:     "&=",
	OrAssign:      "|=",
	XorAssign:     "^=",
	ShlAssign:     "<<=",
	ShrAssign:     ">>=",
	Inc:           "++",
	Dec:           "--",
	Plus:          "+",
	Minus:         "-",
	Star:          "*",
	Slash:         "/",
	Percent:       "%",
	Amp:           "&",
	Or:            "|",
	Xor:           "^",
	Shl:           "<<",
	Shr:           ">>",
	Tilde:         "~",
	LAnd:          "&&",
	LOr:           "||",
	Not:           "!",
	Eq:            "==",
	Ne:            "!=",
	Lt:            "<",
	Le:            "<=",
	Gt:            ">",
	Ge:            ">=",
	Question:      "?",
	Colon:         ":",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"int":      KwInt,
	"void":     KwVoid,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"do":       KwDo,
	"break":    KwBreak,
	"continue": KwContinue,
	"return":   KwReturn,
	"spawn":    KwSpawn,
	"sync":     KwSync,
}

// Token is a lexeme with its kind, source text, and location.
type Token struct {
	Kind   Kind
	Text   string
	Val    int64 // value for INT tokens
	Offset int   // byte offset of the first character
	Line   int   // 1-based line
	Col    int   // 1-based column
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether k is one of the assignment operators.
func IsAssignOp(k Kind) bool {
	switch k {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
		PercentAssign, AmpAssign, OrAssign, XorAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

// BinaryForAssign returns the underlying binary operator for a compound
// assignment token (e.g. PlusAssign -> Plus). Plain Assign returns EOF.
func BinaryForAssign(k Kind) Kind {
	switch k {
	case PlusAssign:
		return Plus
	case MinusAssign:
		return Minus
	case StarAssign:
		return Star
	case SlashAssign:
		return Slash
	case PercentAssign:
		return Percent
	case AmpAssign:
		return Amp
	case OrAssign:
		return Or
	case XorAssign:
		return Xor
	case ShlAssign:
		return Shl
	case ShrAssign:
		return Shr
	}
	return EOF
}
