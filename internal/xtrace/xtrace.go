// Package xtrace is the dependency-free span-tracing subsystem behind
// the service's end-to-end request/job timelines. (The name avoids
// colliding with internal/trace, the VM event-trace baseline.)
//
// A Tracer hands out Spans: named intervals with monotonic timestamps
// (time.Now's monotonic reading orders spans within a process even
// across wall-clock adjustments), string attributes, and a parent link.
// Ended spans are folded into a bounded in-memory retention of recent
// traces, with slow traces pinned separately, for the /debug/traces
// endpoint. Callers that need a span delivered somewhere durable (the
// job store journals its jobs' timelines) attach a Recorder to the
// context; every span started under that context reports its record
// there too.
//
// Trace identity crosses process boundaries as a W3C traceparent header
// (https://www.w3.org/TR/trace-context/): ParseTraceparent accepts
// inbound headers (malformed ones are ignored — the request becomes a
// new root) and Traceparent formats outbound ones, which is how the
// client SDK keeps one trace ID across submit retries.
//
// Everything is nil-safe in the obs tradition: a nil *Tracer or nil
// *Span turns every method into a no-op, so instrumented code never
// branches on whether tracing is wired.
package xtrace

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier shared by every span of
// one logical operation.
type TraceID [16]byte

// SpanID is the 8-byte identifier of one span.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as lowercase hex (the traceparent encoding).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as lowercase hex (the traceparent encoding).
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID mints a random trace ID.
func NewTraceID() TraceID {
	var t TraceID
	fillRandom(t[:])
	return t
}

// NewSpanID mints a random span ID.
func NewSpanID() SpanID {
	var s SpanID
	fillRandom(s[:])
	return s
}

// fillRandom fills b with crypto/rand bytes, falling back to a
// time-derived pattern if the system source fails (it does not on
// supported platforms); an all-zero ID must never escape because the
// W3C grammar reserves it as invalid.
func fillRandom(b []byte) {
	if _, err := rand.Read(b); err == nil {
		for _, c := range b {
			if c != 0 {
				return
			}
		}
	}
	now := time.Now().UnixNano()
	for i := range b {
		b[i] = byte(now >> (8 * (i % 8)))
		if b[i] == 0 {
			b[i] = 0xa5
		}
	}
}

// SpanContext is the propagated half of a span: enough to parent a
// child or format a traceparent, without the timing and attributes.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// SpanRecord is the exported (JSON / journal) form of one ended span.
type SpanRecord struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_span_id,omitempty"`
	Name     string `json:"name"`
	// Start and End are wall-clock bounds; their difference was measured
	// on the monotonic clock, so DurationMS is exact even across clock
	// steps.
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Recorder receives ended spans for durable keeping (the job store
// implements it to journal per-job timelines). Implementations must be
// safe for concurrent use.
type Recorder interface {
	RecordSpan(SpanRecord)
}

// Span is one in-flight named interval. Create spans with
// Tracer.StartSpan (usually via the package-level StartSpan, which
// finds the tracer on the context); a nil *Span no-ops every method.
type Span struct {
	tracer   *Tracer
	recorder Recorder
	sc       SpanContext
	parent   SpanID

	mu    sync.Mutex
	name  string
	start time.Time
	attrs map[string]string
	ended bool
}

// Context returns the span's propagation context (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID as hex ("" for nil spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID.String()
}

// SpanID returns the span's own ID as hex ("" for nil spans).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.sc.SpanID.String()
}

// SetAttr attaches one string attribute, overwriting a previous value
// under the same key. Calls after End are dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// SetStart backdates the span's start (for intervals that began before
// the span object existed, like queue waits measured from job
// creation). Calls after End are dropped.
func (s *Span) SetStart(t time.Time) {
	if s == nil || t.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.start = t
	}
}

// End closes the span, delivering its record to the tracer's retention
// and to the attached Recorder, if any. End is idempotent; only the
// first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		TraceID:    s.sc.TraceID.String(),
		SpanID:     s.sc.SpanID.String(),
		Name:       s.name,
		Start:      s.start,
		End:        now,
		DurationMS: float64(now.Sub(s.start)) / float64(time.Millisecond),
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = s.attrs
		s.attrs = nil
	}
	s.mu.Unlock()
	s.tracer.record(rec)
	if s.recorder != nil {
		s.recorder.RecordSpan(rec)
	}
}

// Options bounds a Tracer's in-memory retention. The zero value of
// every field selects the default.
type Options struct {
	// MaxTraces caps the number of traces retained (least recently
	// updated evicted first). Default 128.
	MaxTraces int
	// MaxSpansPerTrace caps one trace's retained spans; further spans
	// are counted but dropped. Default 256.
	MaxSpansPerTrace int
	// MaxSlow caps the separately pinned slow-trace list. Default 32.
	MaxSlow int
	// SlowThreshold is the span duration at or above which a trace
	// counts as slow. Default 1s.
	SlowThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxTraces <= 0 {
		o.MaxTraces = 128
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 256
	}
	if o.MaxSlow <= 0 {
		o.MaxSlow = 32
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = time.Second
	}
	return o
}

// traceBuf is one retained trace: its spans in end order plus the
// bookkeeping that decides recency and slowness.
type traceBuf struct {
	id      string
	el      *list.Element
	spans   []SpanRecord
	dropped int
	updated time.Time
	maxDur  float64 // milliseconds
}

// Tracer mints spans and retains a bounded window of recent traces. A
// nil *Tracer is valid and discards everything. Tracers are safe for
// concurrent use.
type Tracer struct {
	opts Options

	mu     sync.Mutex
	traces map[string]*traceBuf
	order  *list.List // front = most recently updated
	slow   []*TraceDump
}

// NewTracer builds a Tracer with the given retention bounds.
func NewTracer(opts Options) *Tracer {
	return &Tracer{
		opts:   opts.withDefaults(),
		traces: make(map[string]*traceBuf),
		order:  list.New(),
	}
}

// StartSpan opens a child span of parent (or a new root when parent is
// invalid) and returns it with its propagation context applied.
// recorder may be nil. A nil Tracer still returns a usable Span when a
// recorder is attached — the record goes to the recorder only — and nil
// when there is nowhere to deliver it.
func (t *Tracer) StartSpan(parent SpanContext, name string, recorder Recorder) *Span {
	if t == nil && recorder == nil {
		return nil
	}
	sc := SpanContext{SpanID: NewSpanID()}
	var parentID SpanID
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		parentID = parent.SpanID
	} else {
		sc.TraceID = NewTraceID()
	}
	return &Span{
		tracer:   t,
		recorder: recorder,
		sc:       sc,
		parent:   parentID,
		name:     name,
		start:    time.Now(),
	}
}

// record folds one ended span into the retention window.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.traces[rec.TraceID]
	if tb == nil {
		tb = &traceBuf{id: rec.TraceID}
		tb.el = t.order.PushFront(tb)
		t.traces[rec.TraceID] = tb
		for len(t.traces) > t.opts.MaxTraces {
			oldest := t.order.Back()
			ev := oldest.Value.(*traceBuf)
			t.order.Remove(oldest)
			delete(t.traces, ev.id)
			t.pinSlowLocked(ev)
		}
	} else {
		t.order.MoveToFront(tb.el)
	}
	tb.updated = time.Now()
	if rec.DurationMS > tb.maxDur {
		tb.maxDur = rec.DurationMS
	}
	if len(tb.spans) >= t.opts.MaxSpansPerTrace {
		tb.dropped++
		return
	}
	tb.spans = append(tb.spans, rec)
}

// pinSlowLocked moves an evicted trace into the slow list when it
// qualifies, displacing the fastest pinned trace if the list is full.
func (t *Tracer) pinSlowLocked(tb *traceBuf) {
	if time.Duration(tb.maxDur*float64(time.Millisecond)) < t.opts.SlowThreshold {
		return
	}
	dump := tb.dump()
	if len(t.slow) < t.opts.MaxSlow {
		t.slow = append(t.slow, dump)
		return
	}
	minIdx := 0
	for i, d := range t.slow {
		if d.MaxDurationMS < t.slow[minIdx].MaxDurationMS {
			minIdx = i
		}
	}
	if t.slow[minIdx].MaxDurationMS < dump.MaxDurationMS {
		t.slow[minIdx] = dump
	}
}

// TraceDump is the exported form of one retained trace.
type TraceDump struct {
	TraceID string `json:"trace_id"`
	// Spans are in end order (the order the tracer observed them).
	Spans []SpanRecord `json:"spans"`
	// DroppedSpans counts spans beyond the per-trace retention cap.
	DroppedSpans int `json:"dropped_spans,omitempty"`
	// MaxDurationMS is the longest single span in the trace.
	MaxDurationMS float64   `json:"max_duration_ms"`
	Updated       time.Time `json:"updated"`
}

func (tb *traceBuf) dump() *TraceDump {
	return &TraceDump{
		TraceID:       tb.id,
		Spans:         append([]SpanRecord(nil), tb.spans...),
		DroppedSpans:  tb.dropped,
		MaxDurationMS: tb.maxDur,
		Updated:       tb.updated,
	}
}

// Recent returns up to n retained traces, most recently updated first
// (n <= 0 returns all retained).
func (t *Tracer) Recent(n int) []*TraceDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.order.Len() {
		n = t.order.Len()
	}
	out := make([]*TraceDump, 0, n)
	for el := t.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(*traceBuf).dump())
	}
	return out
}

// Slow returns the pinned slow traces, slowest first.
func (t *Tracer) Slow() []*TraceDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]*TraceDump(nil), t.slow...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].MaxDurationMS > out[j-1].MaxDurationMS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Trace returns one retained trace by hex ID, or nil.
func (t *Tracer) Trace(id string) *TraceDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tb := t.traces[id]; tb != nil {
		return tb.dump()
	}
	for _, d := range t.slow {
		if d.TraceID == id {
			return d
		}
	}
	return nil
}
