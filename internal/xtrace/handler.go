package xtrace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// debugTraces is the /debug/traces response body.
type debugTraces struct {
	// Recent holds the retained traces, most recently updated first.
	Recent []*TraceDump `json:"recent"`
	// Slow holds traces pinned for containing a span over the slow
	// threshold, slowest first.
	Slow []*TraceDump `json:"slow"`
}

// Handler serves the tracer's retention as JSON:
//
//	GET /debug/traces            recent + slow traces
//	GET /debug/traces?n=16       cap the recent list
//	GET /debug/traces?trace_id=… one trace by hex ID (404 when unknown)
//
// Mount it next to /metrics so the whole observability surface shares
// one listener.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id := r.URL.Query().Get("trace_id"); id != "" {
			d := t.Trace(id)
			if d == nil {
				w.WriteHeader(http.StatusNotFound)
				enc.Encode(map[string]string{"error": "no retained trace " + id})
				return
			}
			enc.Encode(d)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		enc.Encode(debugTraces{Recent: t.Recent(n), Slow: t.Slow()})
	})
}
