package xtrace

import (
	"context"
	"encoding/hex"
	"fmt"
	"time"
)

// TraceparentHeader is the W3C trace-context header name (HTTP headers
// are case-insensitive; the spec spells it lowercase).
const TraceparentHeader = "traceparent"

// Traceparent formats a propagation header for sc:
// version 00, sampled flag set.
func Traceparent(sc SpanContext) string {
	return fmt.Sprintf("00-%s-%s-01", sc.TraceID, sc.SpanID)
}

// ParseTraceparent parses a W3C traceparent header. Unknown versions
// with the version-00 shape are accepted (per spec, forward
// compatibility); malformed values, version "ff", and all-zero IDs are
// errors — callers treat any error as "start a new root".
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	// version(2) - trace-id(32) - parent-id(16) - flags(2)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("xtrace: malformed traceparent %q", h)
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil || ver[0] == 0xff {
		return sc, fmt.Errorf("xtrace: bad traceparent version in %q", h)
	}
	if ver[0] == 0 && len(h) != 55 {
		return sc, fmt.Errorf("xtrace: malformed version-00 traceparent %q", h)
	}
	if len(h) > 55 && h[55] != '-' {
		return sc, fmt.Errorf("xtrace: malformed traceparent %q", h)
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return sc, fmt.Errorf("xtrace: bad trace-id in %q", h)
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return sc, fmt.Errorf("xtrace: bad parent-id in %q", h)
	}
	if _, err := hex.DecodeString(h[53:55]); err != nil {
		return sc, fmt.Errorf("xtrace: bad flags in %q", h)
	}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("xtrace: all-zero ids in %q", h)
	}
	return sc, nil
}

// ParseTraceID parses a 32-hex-digit trace ID (the String form).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("xtrace: bad trace id %q", s)
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return t, fmt.Errorf("xtrace: bad trace id %q", s)
	}
	if t.IsZero() {
		return t, fmt.Errorf("xtrace: zero trace id")
	}
	return t, nil
}

// Context keys. Distinct types keep the three carried values (tracer,
// span context, recorder) from colliding with anything else.
type tracerKey struct{}
type spanCtxKey struct{}
type recorderKey struct{}

// ContextWithTracer returns ctx carrying t; spans started under the
// returned context report into t's retention.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// ContextWithSpanContext returns ctx carrying sc as the parent for
// spans started under it (used to adopt an inbound traceparent).
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom returns the propagation context carried by ctx (the
// zero value when none is).
func SpanContextFrom(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// ContextWithRecorder returns ctx carrying rec; every span started
// under the returned context delivers its record to rec on End.
func ContextWithRecorder(ctx context.Context, rec Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom returns the recorder carried by ctx, or nil.
func RecorderFrom(ctx context.Context) Recorder {
	rec, _ := ctx.Value(recorderKey{}).(Recorder)
	return rec
}

// StartSpan opens a span under whatever tracing ctx carries: the
// tracer's retention, the current span context as parent, and the
// recorder, if attached. The returned context carries the new span as
// parent for its children. With neither a tracer nor a recorder on ctx
// the span is nil (all methods no-op) and ctx returns unchanged.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	rec := RecorderFrom(ctx)
	if t == nil && rec == nil {
		return ctx, nil
	}
	sp := t.StartSpan(SpanContextFrom(ctx), name, rec)
	return ContextWithSpanContext(ctx, sp.Context()), sp
}

// MakeRecord assembles a SpanRecord directly, for intervals measured
// outside a live Span (backfilled timeline entries like per-stream SSE
// spans). The span ID is minted fresh; parent may be zero.
func MakeRecord(trace TraceID, parent SpanID, name string, start, end time.Time, attrs map[string]string) SpanRecord {
	rec := SpanRecord{
		TraceID:    trace.String(),
		SpanID:     NewSpanID().String(),
		Name:       name,
		Start:      start,
		End:        end,
		DurationMS: float64(end.Sub(start)) / float64(time.Millisecond),
		Attrs:      attrs,
	}
	if !parent.IsZero() {
		rec.ParentID = parent.String()
	}
	return rec
}
