package xtrace

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDs(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	if tid.IsZero() || sid.IsZero() {
		t.Fatalf("fresh IDs must be non-zero: %v %v", tid, sid)
	}
	if len(tid.String()) != 32 || len(sid.String()) != 16 {
		t.Fatalf("hex lengths: %q %q", tid, sid)
	}
	if NewTraceID() == tid {
		t.Fatal("two trace IDs collided")
	}
	if (SpanContext{TraceID: tid, SpanID: sid}).Valid() == false {
		t.Fatal("context with both IDs should be valid")
	}
	if (SpanContext{TraceID: tid}).Valid() {
		t.Fatal("context without span ID should be invalid")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h := Traceparent(sc)
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("traceparent shape: %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := Traceparent(SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()})
	bad := []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"ff" + valid[2:],                    // reserved version
		"zz" + valid[2:],                    // non-hex version
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span ID
		valid[:3] + "zz" + valid[5:],                      // non-hex trace ID
		valid[:36] + "zz" + valid[38:],                    // non-hex span ID
		valid[:53] + "zz",                                 // non-hex flags
		valid + "x",                                       // version 00 with trailing junk
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
	// A future version with extra fields after the flags is accepted.
	future := "01" + valid[2:] + "-extrastate"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("ParseTraceparent(%q) rejected a forward-compatible header: %v", future, err)
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(Options{})
	root := tr.StartSpan(SpanContext{}, "root", nil)
	if root == nil || !root.Context().Valid() {
		t.Fatal("root span must carry a fresh valid context")
	}
	child := tr.StartSpan(root.Context(), "child", nil)
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child must share the root's trace ID")
	}
	child.SetAttr("k", "v")
	child.SetAttr("k", "v2")
	back := time.Now().Add(-time.Hour)
	child.SetStart(back)
	child.End()
	child.End() // idempotent
	child.SetAttr("late", "dropped")
	root.End()

	dump := tr.Trace(root.TraceID())
	if dump == nil {
		t.Fatal("trace not retained")
	}
	if len(dump.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(dump.Spans))
	}
	c, r := dump.Spans[0], dump.Spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("span order/names: %q %q", c.Name, r.Name)
	}
	if c.ParentID != root.SpanID() {
		t.Fatalf("child parent = %q, want %q", c.ParentID, root.SpanID())
	}
	if r.ParentID != "" {
		t.Fatalf("root must have no parent, got %q", r.ParentID)
	}
	if c.Attrs["k"] != "v2" || c.Attrs["late"] != "" {
		t.Fatalf("attrs: %v", c.Attrs)
	}
	if !c.Start.Equal(back) {
		t.Fatalf("SetStart not honored: %v", c.Start)
	}
	if c.DurationMS < 59*60*1000 {
		t.Fatalf("backdated duration too small: %v ms", c.DurationMS)
	}
	if c.End.Before(c.Start) {
		t.Fatal("end before start")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartSpan(SpanContext{}, "x", nil); sp != nil {
		t.Fatal("nil tracer without recorder must return a nil span")
	}
	var sp *Span
	sp.SetAttr("a", "b")
	sp.SetStart(time.Now())
	sp.End()
	if sp.TraceID() != "" || sp.SpanID() != "" || sp.Context().Valid() {
		t.Fatal("nil span accessors must return zero values")
	}
	if tr.Recent(5) != nil || tr.Slow() != nil || tr.Trace("x") != nil {
		t.Fatal("nil tracer reads must return nil")
	}
	tr.record(SpanRecord{})
}

type captureRecorder struct {
	mu   sync.Mutex
	recs []SpanRecord
}

func (c *captureRecorder) RecordSpan(r SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
}

func TestRecorderDelivery(t *testing.T) {
	rec := &captureRecorder{}
	// Recorder works even with no tracer at all.
	var tr *Tracer
	sp := tr.StartSpan(SpanContext{}, "only-recorded", rec)
	if sp == nil {
		t.Fatal("recorder-only span must be live")
	}
	sp.End()
	if len(rec.recs) != 1 || rec.recs[0].Name != "only-recorded" {
		t.Fatalf("recorder got %+v", rec.recs)
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := NewTracer(Options{})
	rec := &captureRecorder{}
	ctx := context.Background()

	// Bare context: no tracer, no recorder -> nil span, same ctx.
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan on a bare context must no-op")
	}

	ctx = ContextWithTracer(ctx, tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom lost the tracer")
	}
	ctx = ContextWithRecorder(ctx, rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("RecorderFrom lost the recorder")
	}
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx = ContextWithSpanContext(ctx, parent)
	if SpanContextFrom(ctx) != parent {
		t.Fatal("SpanContextFrom lost the context")
	}

	cctx, sp := StartSpan(ctx, "child")
	if sp.Context().TraceID != parent.TraceID {
		t.Fatal("span must adopt the parent trace")
	}
	if SpanContextFrom(cctx) != sp.Context() {
		t.Fatal("returned ctx must carry the new span as parent")
	}
	sp.End()
	if len(rec.recs) != 1 || rec.recs[0].ParentID != parent.SpanID.String() {
		t.Fatalf("recorded span: %+v", rec.recs)
	}
}

func TestRetentionBounds(t *testing.T) {
	tr := NewTracer(Options{MaxTraces: 4, MaxSpansPerTrace: 2, MaxSlow: 2, SlowThreshold: time.Millisecond})
	// One trace with too many spans.
	fat := NewTraceID()
	for i := 0; i < 5; i++ {
		tr.record(SpanRecord{TraceID: fat.String(), SpanID: NewSpanID().String(), Name: "s"})
	}
	d := tr.Trace(fat.String())
	if len(d.Spans) != 2 || d.DroppedSpans != 3 {
		t.Fatalf("per-trace cap: %d spans, %d dropped", len(d.Spans), d.DroppedSpans)
	}
	// Enough traces to evict the fat one; it is fast, so not pinned.
	for i := 0; i < 6; i++ {
		tr.record(SpanRecord{TraceID: NewTraceID().String(), SpanID: NewSpanID().String()})
	}
	if got := len(tr.Recent(0)); got != 4 {
		t.Fatalf("retained %d traces, want 4", got)
	}
	if tr.Trace(fat.String()) != nil {
		t.Fatal("fat trace should have been evicted without pinning")
	}
	if n := len(tr.Recent(3)); n != 3 {
		t.Fatalf("Recent(3) returned %d", n)
	}
}

func TestSlowPinning(t *testing.T) {
	tr := NewTracer(Options{MaxTraces: 2, MaxSlow: 2, SlowThreshold: 100 * time.Millisecond})
	slowIDs := make([]string, 3)
	for i := range slowIDs {
		id := NewTraceID().String()
		slowIDs[i] = id
		tr.record(SpanRecord{TraceID: id, SpanID: NewSpanID().String(),
			Name: "slow", DurationMS: float64(200 + 100*i)})
	}
	// Push fast traces through to evict every slow one.
	for i := 0; i < 4; i++ {
		tr.record(SpanRecord{TraceID: NewTraceID().String(), SpanID: NewSpanID().String(), DurationMS: 1})
	}
	slow := tr.Slow()
	if len(slow) != 2 {
		t.Fatalf("pinned %d slow traces, want 2", len(slow))
	}
	// Slowest first, and the slowest two of the three survive.
	if slow[0].MaxDurationMS != 400 || slow[1].MaxDurationMS != 300 {
		t.Fatalf("slow ordering: %v %v", slow[0].MaxDurationMS, slow[1].MaxDurationMS)
	}
	// Pinned traces stay reachable by ID.
	if tr.Trace(slowIDs[2]) == nil {
		t.Fatal("pinned slow trace must stay reachable by ID")
	}
}

func TestMakeRecord(t *testing.T) {
	tid := NewTraceID()
	pid := NewSpanID()
	start := time.Now().Add(-50 * time.Millisecond)
	end := time.Now()
	rec := MakeRecord(tid, pid, "sse", start, end, map[string]string{"events": "7"})
	if rec.TraceID != tid.String() || rec.ParentID != pid.String() || rec.Name != "sse" {
		t.Fatalf("record fields: %+v", rec)
	}
	if rec.DurationMS < 40 || rec.DurationMS > 5000 {
		t.Fatalf("duration: %v", rec.DurationMS)
	}
	orphan := MakeRecord(tid, SpanID{}, "x", start, end, nil)
	if orphan.ParentID != "" {
		t.Fatal("zero parent must stay empty")
	}
}

func TestHandler(t *testing.T) {
	tr := NewTracer(Options{})
	sp := tr.StartSpan(SpanContext{}, "req", nil)
	sp.End()

	rr := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var body debugTraces
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(body.Recent) != 1 || body.Recent[0].TraceID != sp.TraceID() {
		t.Fatalf("recent: %+v", body.Recent)
	}

	rr = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?trace_id="+sp.TraceID(), nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), sp.SpanID()) {
		t.Fatalf("by-id lookup: %d %s", rr.Code, rr.Body.String())
	}

	rr = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?trace_id=deadbeef", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown trace: status %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	if rr.Code != 200 {
		t.Fatalf("n=1: status %d", rr.Code)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Options{MaxTraces: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartSpan(SpanContext{}, "root", nil)
				child := tr.StartSpan(root.Context(), "child", nil)
				child.SetAttr("i", "x")
				child.End()
				root.End()
				tr.Recent(4)
				tr.Slow()
			}
		}()
	}
	wg.Wait()
}
