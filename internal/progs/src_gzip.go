package progs

// SrcGzip is the gzip-1.3.5 analog from the paper's Fig. 2: zip()
// gathers literals, flag bits, and frequencies, calling flush_block()
// whenever the pending buffer fills. flush_block encodes literals into a
// bit buffer (bi_buf/bi_valid), emits bytes through the shared output
// cursor outcnt, and resets last_flags — reproducing the exact
// shared-state conflicts the paper reports: RAW on input_len and outcnt
// across calls, WAW between flush_block's byte emission and the trailer
// write, WAR on flag_buf and last_flags between the encode loop and the
// next literals. main loops over the input files (the paper's loop at
// line 3404, construct C1 of Fig. 6(a)): iterations are independent up to
// the shared cursors, so C1 profiles as the big, nearly-violation-free
// candidate, and flush_block as the next one after C1's subtree is
// removed (Fig. 6(b)).
const SrcGzip = `// gzip.mc: gzip-1.3.5 analog (paper Fig. 2 / Fig. 6(a)(b)).
int BLOCKSZ = 512;
int OUTSLICE = 32768;

int filedata[65536];
int filebase[8];
int filelen[8];
int nfiles;

int freq[256];
int match_hint[256];
int pending[600];
int npending;
int flag_buf[600];
int last_flags;
int input_len;

int outbuf[131072];
int outcnt;
int outlen[8];
int bi_buf;
int bi_valid;

// flush_block encodes the pending literals into bits and emits them
// (paper Fig. 2 lines 11-29).
int flush_block(int final) {
	flag_buf[last_flags] = final;
	input_len += npending;
	int i = 0;
	do {
		int flag = flag_buf[i];
		int lit = pending[i];
		if (flag != 0) {
			bi_buf = bi_buf | ((lit & 255) << bi_valid);
			bi_valid += 9;
		} else {
			bi_buf = bi_buf | ((lit & 15) << bi_valid);
			bi_valid += 5;
		}
		if (bi_valid > 16) {
			outbuf[outcnt] = bi_buf & 255;
			outcnt++;
			bi_buf = bi_buf >> 8;
			bi_valid -= 8;
		}
		i++;
	} while (i < npending);
	last_flags = 0;
	// Write out remaining bits.
	outbuf[outcnt] = bi_buf & 255;
	outcnt++;
	bi_buf = 0;
	bi_valid = 0;
	int n = npending;
	npending = 0;
	return n;
}

// zip compresses one file, a literal at a time (paper Fig. 2 lines 1-10).
int zip(int f) {
	int base = filebase[f];
	int n = filelen[f];
	int total = 0;
	int pos = 0;
	while (pos < n) {
		int c = filedata[base + pos] & 255;
		freq[c] += 1;
		// Hash-chain-style match search: gives zip's per-literal work the
		// same dominance over flush_block that deflate() has in gzip.
		int h = (c * 131) & 255;
		int cand = match_hint[h];
		int score = 0;
		for (int k = 0; k < 12; k++) {
			int probe = (cand + k) & 255;
			score += freq[probe] & 7;
		}
		match_hint[h] = pos & 255;
		pending[npending] = c + (score & 1);
		npending++;
		flag_buf[last_flags] = (c > 128) ? 1 : 0;
		last_flags++;
		if (npending >= BLOCKSZ) {
			total += flush_block(0);
		}
		pos++;
	}
	total += flush_block(1);
	return total;
}

void reset_state() {
	for (int i = 0; i < 256; i++) {
		freq[i] = 0;
		match_hint[i] = 0;
	}
	npending = 0;
	last_flags = 0;
	bi_buf = 0;
	bi_valid = 0;
}

int main() {
	// Input framing: in(0) = file count, then each file's length and
	// data.
	nfiles = in(0);
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		for (int i = 0; i < n; i++) {
			filedata[nextbase + i] = in(p);
			p++;
		}
		nextbase += n;
	}
	// The per-file compression loop: the paper's loop at line 3404 (C1).
	for (int f = 0; f < nfiles; f++) {
		reset_state();
		outcnt = f * OUTSLICE;
		int total = zip(f);
		// Trailer: reads outcnt right after the final flush_block (the
		// violating RAW/WAW of Fig. 2/3).
		outbuf[outcnt] = input_len & 255;
		outcnt++;
		outlen[f] = outcnt - f * OUTSLICE;
		out(total);
	}
	out(input_len);
	int ck = 0;
	for (int f = 0; f < nfiles; f++) {
		int sbase = f * OUTSLICE;
		for (int i = sbase; i < sbase + outlen[f]; i++) {
			ck = (ck * 31 + outbuf[i]) & 16777215;
		}
	}
	out(ck);
	return 0;
}
`
