package progs

// SrcOgg is the oggenc-1.0.1 analog (§IV.B.2): the main loop iterates
// over WAV files, encoding each one with a windowed MDCT-like transform
// and quantization. The shared `errors` flag and `samples_read` counter
// produce the violating RAW dependences the paper reports for the file
// loop; per-file output regions are disjoint.
const SrcOgg = `// ogg.mc: oggenc analog (paper §IV.B.2).
int FRAME = 64;

int samples[65536];
int filebase[8];
int filelen[8];

int errors;
int samples_read;

int window_tab[64];
int outbuf[65536];
int outpos[8];

void init_window() {
	for (int i = 0; i < FRAME; i++) {
		// Integer "sine" window: triangle ramp.
		int x = (i < FRAME / 2) ? i : (FRAME - 1 - i);
		window_tab[i] = 16 + x;
	}
}

// mdct_frame transforms one frame into coefficients (O(FRAME^2), the
// encoder's hot kernel).
void mdct_frame(int base, int coef[]) {
	for (int k = 0; k < FRAME; k++) {
		int acc = 0;
		for (int i = 0; i < FRAME; i++) {
			int s = samples[base + i] * window_tab[i];
			int phase = ((2 * i + 1) * (2 * k + 1)) & 127;
			int tw = (phase < 64) ? (64 - phase) : (phase - 128);
			acc += s * tw;
		}
		coef[k] = acc >> 6;
	}
}

int quantize(int c) {
	int mag = (c < 0) ? (0 - c) : c;
	int q = 0;
	while (mag > 0) {
		mag = mag >> 2;
		q++;
	}
	return (c < 0) ? (0 - q) : q;
}

// encode_file encodes one WAV file into its output slice.
void encode_file(int f) {
	int base = filebase[f];
	int n = filelen[f];
	int pos = outpos[f];
	int nframes = n / FRAME;
	for (int fr = 0; fr < nframes; fr++) {
		int coef[64];
		mdct_frame(base + fr * FRAME, coef);
		int nz = 0;
		for (int k = 0; k < FRAME; k++) {
			int q = quantize(coef[k]);
			if (q != 0) {
				outbuf[pos] = (k << 8) | (q & 255);
				pos++;
				nz++;
			}
		}
		outbuf[pos] = 65536 + nz;
		pos++;
		// Shared counter: every file loop iteration bumps it (one of the
		// paper's reported conflicts).
		samples_read += FRAME;
	}
	if (n % FRAME != 0) {
		// Trailing partial frame is an encoding anomaly in this analog:
		// record it in the shared errors flag (the paper's other
		// reported conflict).
		errors = errors + 1;
	}
	outpos[f] = pos;
}

int main() {
	init_window();
	int nfiles = in(0);
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		for (int i = 0; i < n; i++) {
			samples[nextbase + i] = in(p) - 512;
			p++;
		}
		nextbase += n;
		outpos[f] = f * 8192;
	}
	// The main loop over files: the construct parallelized in the paper.
	for (int f = 0; f < nfiles; f++) {
		encode_file(f);
	}
	int ck = 0;
	int produced = 0;
	for (int f = 0; f < nfiles; f++) {
		int sbase = f * 8192;
		for (int i = sbase; i < outpos[f]; i++) {
			ck = (ck * 31 + outbuf[i]) & 16777215;
		}
		produced += outpos[f] - sbase;
	}
	out(produced);
	out(samples_read);
	out(errors);
	out(ck);
	return 0;
}
`

// SrcOggPar is the parallel oggenc: one thread per file with thread-local
// errors flags and sample counters, merged after the join — the exact
// privatization §IV.B.2 describes.
const SrcOggPar = `// ogg_par.mc: oggenc parallelized per file with private counters.
int FRAME = 64;

int samples[65536];
int filebase[8];
int filelen[8];

int errs_p[8];
int samples_p[8];

int window_tab[64];
int outbuf[65536];
int outpos[8];

void init_window() {
	for (int i = 0; i < FRAME; i++) {
		int x = (i < FRAME / 2) ? i : (FRAME - 1 - i);
		window_tab[i] = 16 + x;
	}
}

void mdct_frame(int base, int coef[]) {
	for (int k = 0; k < FRAME; k++) {
		int acc = 0;
		for (int i = 0; i < FRAME; i++) {
			int s = samples[base + i] * window_tab[i];
			int phase = ((2 * i + 1) * (2 * k + 1)) & 127;
			int tw = (phase < 64) ? (64 - phase) : (phase - 128);
			acc += s * tw;
		}
		coef[k] = acc >> 6;
	}
}

int quantize(int c) {
	int mag = (c < 0) ? (0 - c) : c;
	int q = 0;
	while (mag > 0) {
		mag = mag >> 2;
		q++;
	}
	return (c < 0) ? (0 - q) : q;
}

void encode_file(int f) {
	int base = filebase[f];
	int n = filelen[f];
	int pos = outpos[f];
	int nframes = n / FRAME;
	for (int fr = 0; fr < nframes; fr++) {
		int coef[64];
		mdct_frame(base + fr * FRAME, coef);
		int nz = 0;
		for (int k = 0; k < FRAME; k++) {
			int q = quantize(coef[k]);
			if (q != 0) {
				outbuf[pos] = (k << 8) | (q & 255);
				pos++;
				nz++;
			}
		}
		outbuf[pos] = 65536 + nz;
		pos++;
		// Privatized counter: no conflict between threads.
		samples_p[f] += FRAME;
	}
	if (n % FRAME != 0) {
		errs_p[f] = errs_p[f] + 1;
	}
	outpos[f] = pos;
}

int main() {
	init_window();
	int nfiles = in(0);
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		for (int i = 0; i < n; i++) {
			samples[nextbase + i] = in(p) - 512;
			p++;
		}
		nextbase += n;
		outpos[f] = f * 8192;
	}
	for (int f = 0; f < nfiles; f++) {
		spawn encode_file(f);
	}
	sync;
	int ck = 0;
	int produced = 0;
	int samples_read = 0;
	int errors = 0;
	for (int f = 0; f < nfiles; f++) {
		int sbase = f * 8192;
		for (int i = sbase; i < outpos[f]; i++) {
			ck = (ck * 31 + outbuf[i]) & 16777215;
		}
		produced += outpos[f] - sbase;
		samples_read += samples_p[f];
		errors += errs_p[f];
	}
	out(produced);
	out(samples_read);
	out(errors);
	out(ck);
	return 0;
}
`
