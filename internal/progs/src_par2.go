package progs

// SrcPar2 is the par2cmdline analog (§IV.B.2): GF(2^8) Reed-Solomon
// recovery-block computation. Par2Creator::OpenSourceFiles is the loop
// over source files (its single violating RAW is the shared file-close
// bookkeeping, which the paper's parallel version moved after the join);
// Par2Creator::ProcessData is the loop over output blocks (violation-free
// because each recovery block is disjoint).
const SrcPar2 = `// par2.mc: par2cmdline analog (paper §IV.B.2).
int NBLOCKS = 8;
int BLOCKLEN = 2048;

int gflog[256];
int gfexp[512];

int srcdata[65536];
int srclen;
int nfiles;
int filebase[8];
int filelen[8];
int checksums[8];

int open_files;
int last_closed;

int recovery[65536];

// gf_init builds the GF(256) log/exp tables (generator 0x11d).
void gf_init() {
	int x = 1;
	for (int i = 0; i < 255; i++) {
		gfexp[i] = x;
		gflog[x] = i;
		x = x << 1;
		if (x >= 256) {
			x = (x ^ 285) & 255;
		}
	}
	for (int i = 255; i < 512; i++) {
		gfexp[i] = gfexp[i - 255];
	}
}

int gf_mul(int a, int b) {
	if (a == 0 || b == 0) {
		return 0;
	}
	return gfexp[gflog[a] + gflog[b]];
}

// open_source_files loads and checksums each source file (the loop at
// line 489). The file-close bookkeeping at the end of each iteration is
// the single violating RAW dependence Alchemist reported.
void open_source_files() {
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		int sum = 0;
		for (int i = 0; i < n; i++) {
			int v = in(p) & 255;
			p++;
			srcdata[nextbase + i] = v;
			int h = v + i;
			for (int r = 0; r < 6; r++) {
				h = (h * 33 + (h >> 5)) & 16777215;
			}
			sum = (sum + h) & 16777215;
		}
		checksums[f] = sum;
		nextbase += n;
		// File-close bookkeeping on shared state.
		open_files = open_files + 1;
		last_closed = f;
	}
	srclen = nextbase;
}

// process_data computes the recovery blocks (the loop at line 887): each
// output block b accumulates gf_mul(coeff(b, s), data[s]) over all input
// slices into a disjoint output range.
void process_data() {
	int slices = srclen / BLOCKLEN;
	for (int b = 0; b < NBLOCKS; b++) {
		int rbase = b * BLOCKLEN;
		for (int i = 0; i < BLOCKLEN; i++) {
			recovery[rbase + i] = 0;
		}
		for (int s = 0; s < slices; s++) {
			int coeff = gfexp[((b + 1) * (s + 1)) % 255];
			int sbase = s * BLOCKLEN;
			for (int i = 0; i < BLOCKLEN; i++) {
				int d = srcdata[sbase + i];
				recovery[rbase + i] = recovery[rbase + i] ^ gf_mul(coeff, d);
			}
		}
	}
}

int main() {
	gf_init();
	nfiles = in(0);
	open_source_files();
	process_data();
	int ck = 0;
	for (int b = 0; b < NBLOCKS; b++) {
		for (int i = 0; i < BLOCKLEN; i++) {
			ck = (ck * 31 + recovery[b * BLOCKLEN + i]) & 16777215;
		}
	}
	out(open_files);
	out(last_closed);
	out(ck);
	int csum = 0;
	for (int f = 0; f < nfiles; f++) {
		csum = (csum + checksums[f]) & 16777215;
	}
	out(csum);
	return 0;
}
`

// SrcPar2Par parallelizes both loops as the paper did: recovery blocks
// are distributed across threads (line 887), and source-file loading
// moves the file-close bookkeeping after the join (line 489's fix).
const SrcPar2Par = `// par2_par.mc: par2 parallelized over recovery blocks.
int NBLOCKS = 8;
int BLOCKLEN = 2048;
int NTHREADS = 4;

int gflog[256];
int gfexp[512];

int srcdata[65536];
int srclen;
int nfiles;
int filebase[8];
int filelen[8];
int checksums[8];

int open_files;
int last_closed;

int recovery[65536];

void gf_init() {
	int x = 1;
	for (int i = 0; i < 255; i++) {
		gfexp[i] = x;
		gflog[x] = i;
		x = x << 1;
		if (x >= 256) {
			x = (x ^ 285) & 255;
		}
	}
	for (int i = 255; i < 512; i++) {
		gfexp[i] = gfexp[i - 255];
	}
}

int gf_mul(int a, int b) {
	if (a == 0 || b == 0) {
		return 0;
	}
	return gfexp[gflog[a] + gflog[b]];
}

// load_file loads and hashes one source file. Loading stays sequential
// in the parallel version — it models file I/O, which bounds the paper's
// par2 speedup at 1.78 — but the close bookkeeping is hoisted after all
// loads, which is how the paper's parallel version resolved the reported
// conflict.
void load_file(int f, int p, int base, int n) {
	int sum = 0;
	for (int i = 0; i < n; i++) {
		int v = in(p + i) & 255;
		srcdata[base + i] = v;
		int h = v + i;
		for (int r = 0; r < 6; r++) {
			h = (h * 33 + (h >> 5)) & 16777215;
		}
		sum = (sum + h) & 16777215;
	}
	checksums[f] = sum;
}

void process_range(int bstart, int bcount) {
	int slices = srclen / BLOCKLEN;
	for (int b = bstart; b < bstart + bcount; b++) {
		int rbase = b * BLOCKLEN;
		for (int i = 0; i < BLOCKLEN; i++) {
			recovery[rbase + i] = 0;
		}
		for (int s = 0; s < slices; s++) {
			int coeff = gfexp[((b + 1) * (s + 1)) % 255];
			int sbase = s * BLOCKLEN;
			for (int i = 0; i < BLOCKLEN; i++) {
				int d = srcdata[sbase + i];
				recovery[rbase + i] = recovery[rbase + i] ^ gf_mul(coeff, d);
			}
		}
	}
}

int main() {
	gf_init();
	nfiles = in(0);
	// File loading is I/O and stays sequential; the close bookkeeping is
	// moved after all loads complete.
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		load_file(f, p, nextbase, n);
		p += n;
		nextbase += n;
	}
	for (int f = 0; f < nfiles; f++) {
		open_files = open_files + 1;
		last_closed = f;
	}
	srclen = nextbase;
	// Recovery blocks distributed evenly across threads (the paper's
	// line-887 transformation).
	int per = (NBLOCKS + NTHREADS - 1) / NTHREADS;
	for (int t = 0; t < NTHREADS; t++) {
		int start = t * per;
		int cnt = per;
		if (start + cnt > NBLOCKS) {
			cnt = NBLOCKS - start;
		}
		if (cnt > 0) {
			spawn process_range(start, cnt);
		}
	}
	sync;
	int ck = 0;
	for (int b = 0; b < NBLOCKS; b++) {
		for (int i = 0; i < BLOCKLEN; i++) {
			ck = (ck * 31 + recovery[b * BLOCKLEN + i]) & 16777215;
		}
	}
	out(open_files);
	out(last_closed);
	out(ck);
	int csum = 0;
	for (int f = 0; f < nfiles; f++) {
		csum = (csum + checksums[f]) & 16777215;
	}
	out(csum);
	return 0;
}
`
