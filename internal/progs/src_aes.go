package progs

// SrcAES is the OpenSSL AES-CTR analog (§IV.B.2). The block cipher is an
// XTEA-style 32-round Feistel network (the paper's substitution target:
// what matters for the dependence profile is the CTR-mode structure, not
// the S-boxes). The main loop follows OpenSSL's AES_ctr128_encrypt shape:
// it iterates word-by-word over the input and, whenever the keystream
// buffer empties, encrypts the counter and calls the ctr128_inc analog —
// producing the ivec WAW/WAR conflicts the paper reports while the loop
// itself carries no violating RAW dependence.
const SrcAES = `// aes.mc: AES-CTR (OpenSSL) analog (paper §IV.B.2).
int WORDS_PER_BLOCK = 8;
int ROUNDS = 32;
int MASK32 = 4294967295;
int DELTA = 2654435769;

int key[4];
int iv0;
int iv1;
int ivec[2];
int ecount[8];

int msg[262144];
int ct[262144];
int msglen;

// block_encrypt runs the XTEA-like cipher over the counter value,
// expanding the two halves into WORDS_PER_BLOCK keystream words in
// ecount.
void block_encrypt(int c0, int c1) {
	int v0 = c0;
	int v1 = c1;
	int sum = 0;
	for (int r = 0; r < ROUNDS; r++) {
		sum = (sum + DELTA) & MASK32;
		v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]))) & MASK32;
		v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]))) & MASK32;
	}
	for (int i = 0; i < WORDS_PER_BLOCK; i++) {
		ecount[i] = (v0 * (2 * i + 1) + v1 * (2 * i + 7) + i) & MASK32;
	}
}

int main() {
	key[0] = 81985529;
	key[1] = 3735928559;
	key[2] = 1164413355;
	key[3] = 2596069104;
	iv0 = in(0);
	iv1 = in(1);
	msglen = inlen() - 2;
	for (int i = 0; i < msglen; i++) {
		msg[i] = in(2 + i);
	}
	// The main encryption loop over the input (the construct parallelized
	// in the paper): one block per iteration. Each iteration derives the
	// counter from the loop-invariant IV (as CTR mode allows), so the
	// loop carries no RAW dependence; the running ivec bookkeeping —
	// maintained for the caller like AES_ctr128_inc does — shows up as
	// the WAW/WAR conflicts the paper reports, fixed in the parallel
	// version by giving each thread its own ivec.
	int nblocks = (msglen + WORDS_PER_BLOCK - 1) / WORDS_PER_BLOCK;
	for (int b = 0; b < nblocks; b++) {
		block_encrypt(iv0, (iv1 + b) & MASK32);
		ivec[0] = iv0;
		ivec[1] = (iv1 + b + 1) & MASK32;
		int base = b * WORDS_PER_BLOCK;
		for (int i = 0; i < WORDS_PER_BLOCK; i++) {
			if (base + i < msglen) {
				ct[base + i] = (msg[base + i] ^ ecount[i]) & MASK32;
			}
		}
	}
	int ck = 0;
	for (int i = 0; i < msglen; i++) {
		ck = (ck * 31 + ct[i]) & 16777215;
	}
	out(msglen);
	out(ck);
	out(ivec[1]);
	return 0;
}
`

// SrcAESPar is the parallel AES-CTR: each thread derives its own ivec
// from its starting block index before encrypting — "each thread has its
// own ivec and must compute its value before starting encryption"
// (§IV.B.2) — and writes a disjoint ciphertext range.
const SrcAESPar = `// aes_par.mc: AES-CTR parallelized with per-thread derived counters.
int NTHREADS = 4;
int WORDS_PER_BLOCK = 8;
int ROUNDS = 32;
int MASK32 = 4294967295;
int DELTA = 2654435769;

int key[4];
int iv0;
int iv1;

int msg[262144];
int ct[262144];
int msglen;

int done_ctr_hi[4];
int done_ctr_lo[4];

// encrypt_range encrypts blocks [blockstart, blockstart+nblocks) with a
// private counter and keystream buffer.
void encrypt_range(int t, int blockstart, int nblocks) {
	// Derive this thread's ivec from the block index (counter mode).
	int lo = (iv1 + blockstart) & MASK32;
	int carry = ((iv1 + blockstart) > MASK32) ? 1 : 0;
	int hi = (iv0 + carry) & MASK32;
	int ec[8];
	for (int b = 0; b < nblocks; b++) {
		int v0 = hi;
		int v1 = lo;
		int sum = 0;
		for (int r = 0; r < ROUNDS; r++) {
			sum = (sum + DELTA) & MASK32;
			v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]))) & MASK32;
			v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]))) & MASK32;
		}
		for (int i = 0; i < WORDS_PER_BLOCK; i++) {
			ec[i] = (v0 * (2 * i + 1) + v1 * (2 * i + 7) + i) & MASK32;
		}
		int base = (blockstart + b) * WORDS_PER_BLOCK;
		for (int i = 0; i < WORDS_PER_BLOCK; i++) {
			if (base + i < msglen) {
				ct[base + i] = (msg[base + i] ^ ec[i]) & MASK32;
			}
		}
		// Private counter increment.
		lo = (lo + 1) & MASK32;
		if (lo == 0) {
			hi = (hi + 1) & MASK32;
		}
	}
	done_ctr_hi[t] = hi;
	done_ctr_lo[t] = lo;
}

int main() {
	key[0] = 81985529;
	key[1] = 3735928559;
	key[2] = 1164413355;
	key[3] = 2596069104;
	iv0 = in(0);
	iv1 = in(1);
	msglen = inlen() - 2;
	for (int i = 0; i < msglen; i++) {
		msg[i] = in(2 + i);
	}
	int nblocks = (msglen + WORDS_PER_BLOCK - 1) / WORDS_PER_BLOCK;
	int per = (nblocks + NTHREADS - 1) / NTHREADS;
	for (int t = 0; t < NTHREADS; t++) {
		int start = t * per;
		int cnt = per;
		if (start + cnt > nblocks) {
			cnt = nblocks - start;
		}
		if (cnt > 0) {
			spawn encrypt_range(t, start, cnt);
		}
	}
	sync;
	int ck = 0;
	for (int i = 0; i < msglen; i++) {
		ck = (ck * 31 + ct[i]) & 16777215;
	}
	out(msglen);
	out(ck);
	// Final counter value comes from the last thread that processed
	// blocks.
	int lastt = 0;
	for (int t = 0; t < NTHREADS; t++) {
		if (t * per < nblocks) {
			lastt = t;
		}
	}
	out(done_ctr_lo[lastt]);
	return 0;
}
`
