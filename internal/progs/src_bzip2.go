package progs

// SrcBzip2 is the bzip2-1.0 analog from §IV.B.2: main iterates over the
// input files (the construct parallelized first), compressStream iterates
// over 5000-byte blocks of one file (the second construct), and a
// bzWriteClose64 analog after the block loop handles leftover data — the
// source of the "unusually high number of violating static RAW
// dependences" the paper diagnosed. The shared BZFILE-like state (bzf_*)
// produces the WAW/WAR conflicts that motivated privatization.
const SrcBzip2 = `// bzip2.mc: bzip2-1.0 analog (paper §IV.B.2).
int NFILES = 4;
int BLOCK = 1000;

int filedata[65536];
int filelen[8];
int filebase[8];

// The shared BZFILE *bzf analog.
int bzf_bufpos;
int bzf_avail;
int bzf_total_in;
int bzf_total_out;
int bzf_combined_crc;
int bzf_mode;

int mtf[256];
int outbuf[131072];
int outcnt;

void mtf_reset() {
	for (int i = 0; i < 256; i++) {
		mtf[i] = i;
	}
}

// compress_block run-length-encodes and move-to-front transforms one
// block, appending to outbuf.
int compress_block(int base, int n) {
	int crc = 0;
	int i = 0;
	while (i < n) {
		int c = filedata[base + i] & 255;
		// Run-length detection.
		int run = 1;
		while (i + run < n && run < 250 && (filedata[base + i + run] & 255) == c) {
			run++;
		}
		// Move-to-front position of c.
		int p = 0;
		while (mtf[p] != c) {
			p++;
		}
		for (int j = p; j > 0; j--) {
			mtf[j] = mtf[j - 1];
		}
		mtf[0] = c;
		if (run > 3) {
			outbuf[outcnt] = 256 + run;
			outcnt++;
			outbuf[outcnt] = p;
			outcnt++;
		} else {
			for (int r = 0; r < run; r++) {
				outbuf[outcnt] = p;
				outcnt++;
			}
		}
		crc = (crc * 131 + c + run) & 16777215;
		i += run;
	}
	return crc;
}

// close_stream is the BZ2_bzWriteClose64 analog: it consumes whatever the
// block loop left in the shared state and flushes the trailer.
void close_stream(int leftoverbase, int leftover) {
	if (leftover > 0) {
		int crc = compress_block(leftoverbase, leftover);
		bzf_combined_crc = ((bzf_combined_crc << 1) ^ crc) & 16777215;
		bzf_total_in += leftover;
	}
	outbuf[outcnt] = bzf_combined_crc & 255;
	outcnt++;
	outbuf[outcnt] = (bzf_combined_crc >> 8) & 255;
	outcnt++;
	bzf_total_out = outcnt;
	bzf_mode = 0;
}

// compressStream compresses one file block by block (the loop at line
// 5340 in the paper).
void compressStream(int f) {
	bzf_mode = 1;
	bzf_bufpos = 0;
	bzf_combined_crc = 0;
	mtf_reset();
	int base = filebase[f];
	int n = filelen[f];
	int full = n / BLOCK;
	for (int b = 0; b < full; b++) {
		int crc = compress_block(base + b * BLOCK, BLOCK);
		bzf_combined_crc = ((bzf_combined_crc << 1) ^ crc) & 16777215;
		bzf_total_in += BLOCK;
		bzf_bufpos = b;
		bzf_avail = n - (b + 1) * BLOCK;
	}
	close_stream(base + full * BLOCK, n - full * BLOCK);
}

int main() {
	// Input framing: in(0) = file count, then each file's length followed
	// by its data.
	int nfiles = in(0);
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		for (int i = 0; i < n; i++) {
			filedata[nextbase + i] = in(p);
			p++;
		}
		nextbase += n;
	}
	// The loop over files (line 6932 in the paper): compress each file
	// separately through the shared bzf state.
	for (int f = 0; f < nfiles; f++) {
		compressStream(f);
	}
	out(outcnt);
	out(bzf_total_in);
	out(bzf_combined_crc);
	int ck = 0;
	for (int i = 0; i < outcnt; i++) {
		ck = (ck * 31 + outbuf[i]) & 16777215;
	}
	out(ck);
	return 0;
}
`

// SrcBzip2Par is the hand-parallelized bzip2 from §IV.B.2: one thread per
// file, with the shared BZFILE state privatized per thread (each thread
// gets its own MTF table, CRC accumulator, and output slice), exactly the
// transformation the Alchemist WAW/WAR profile suggested.
const SrcBzip2Par = `// bzip2_par.mc: bzip2 parallelized per file with privatized bzf state.
int NFILES = 4;
int BLOCK = 1000;
int OUTSLICE = 16384;

int filedata[65536];
int filelen[8];
int filebase[8];

// Privatized per-thread state (one row per file/thread).
int mtfp[2048];
int outp[131072];
int outpos[8];
int crcs[8];
int totins[8];

void mtf_reset_p(int t) {
	for (int i = 0; i < 256; i++) {
		mtfp[t * 256 + i] = i;
	}
}

int compress_block_p(int t, int base, int n) {
	int crc = 0;
	int i = 0;
	int mb = t * 256;
	while (i < n) {
		int c = filedata[base + i] & 255;
		int run = 1;
		while (i + run < n && run < 250 && (filedata[base + i + run] & 255) == c) {
			run++;
		}
		int p = 0;
		while (mtfp[mb + p] != c) {
			p++;
		}
		for (int j = p; j > 0; j--) {
			mtfp[mb + j] = mtfp[mb + j - 1];
		}
		mtfp[mb] = c;
		if (run > 3) {
			outp[outpos[t]] = 256 + run;
			outpos[t]++;
			outp[outpos[t]] = p;
			outpos[t]++;
		} else {
			for (int r = 0; r < run; r++) {
				outp[outpos[t]] = p;
				outpos[t]++;
			}
		}
		crc = (crc * 131 + c + run) & 16777215;
		i += run;
	}
	return crc;
}

void close_stream_p(int t, int leftoverbase, int leftover) {
	if (leftover > 0) {
		int crc = compress_block_p(t, leftoverbase, leftover);
		crcs[t] = ((crcs[t] << 1) ^ crc) & 16777215;
		totins[t] += leftover;
	}
	outp[outpos[t]] = crcs[t] & 255;
	outpos[t]++;
	outp[outpos[t]] = (crcs[t] >> 8) & 255;
	outpos[t]++;
}

void compressFile(int f) {
	outpos[f] = f * OUTSLICE;
	crcs[f] = 0;
	mtf_reset_p(f);
	int base = filebase[f];
	int n = filelen[f];
	int full = n / BLOCK;
	for (int b = 0; b < full; b++) {
		int crc = compress_block_p(f, base + b * BLOCK, BLOCK);
		crcs[f] = ((crcs[f] << 1) ^ crc) & 16777215;
		totins[f] += BLOCK;
	}
	close_stream_p(f, base + full * BLOCK, n - full * BLOCK);
}

int main() {
	int nfiles = in(0);
	int p = 1;
	int nextbase = 0;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = nextbase;
		filelen[f] = n;
		for (int i = 0; i < n; i++) {
			filedata[nextbase + i] = in(p);
			p++;
		}
		nextbase += n;
	}
	// One thread per file, as in the paper's first bzip2 transformation.
	for (int f = 0; f < nfiles; f++) {
		spawn compressFile(f);
	}
	sync;
	// Merge in file order: byte-identical to the sequential stream.
	int outcnt = 0;
	int total_in = 0;
	int last_crc = 0;
	int ck = 0;
	for (int f = 0; f < nfiles; f++) {
		int sbase = f * OUTSLICE;
		int slen = outpos[f] - sbase;
		for (int i = 0; i < slen; i++) {
			ck = (ck * 31 + outp[sbase + i]) & 16777215;
		}
		outcnt += slen;
		total_in += totins[f];
		last_crc = crcs[f];
	}
	out(outcnt);
	out(total_in);
	out(last_crc);
	out(ck);
	return 0;
}
`
