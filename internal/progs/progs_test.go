package progs_test

import (
	"reflect"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/progs"
	"alchemist/internal/vm"
)

func runWorkload(t *testing.T, name, src string, input []int64, memWords int64, parallel bool) *vm.Result {
	t.Helper()
	prog, err := compile.Build(name+".mc", src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	m, err := vm.New(prog, vm.Config{
		Input:     input,
		MemWords:  memWords,
		Parallel:  parallel,
		StepLimit: 2_000_000_000,
	})
	if err != nil {
		t.Fatalf("%s: vm: %v", name, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return res
}

// TestWorkloadsCompileAndRun executes every sequential workload at small
// scale and sanity-checks its output.
func TestWorkloadsCompileAndRun(t *testing.T) {
	for _, w := range progs.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			input := w.InputFor(w.SmallScale)
			res := runWorkload(t, w.Name, w.Source, input, w.MemWords, false)
			if len(res.Output) == 0 {
				t.Fatal("workload produced no output")
			}
			if res.Steps == 0 {
				t.Fatal("no steps recorded")
			}
			t.Logf("%s: %d steps, output %v", w.Name, res.Steps, res.Output)
		})
	}
}

// TestParallelVariantsMatchSequential checks that each spawn/sync variant
// computes the same observable result as the sequential program.
func TestParallelVariantsMatchSequential(t *testing.T) {
	for _, w := range progs.All() {
		if !w.HasParallel() {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			input := w.InputFor(w.SmallScale)
			seq := runWorkload(t, w.Name, w.Source, input, w.MemWords, false)
			// The parallel source must agree when run sequentially
			// (spawn = call) ...
			parSeq := runWorkload(t, w.Name+"_par_seq", w.ParSource, input, w.MemWords, false)
			if !reflect.DeepEqual(seq.Output, parSeq.Output) {
				t.Fatalf("parallel source (sequential run) output %v != sequential %v", parSeq.Output, seq.Output)
			}
			// ... and when actually run on goroutines.
			par := runWorkload(t, w.Name+"_par", w.ParSource, input, w.MemWords, true)
			if !reflect.DeepEqual(seq.Output, par.Output) {
				t.Fatalf("parallel run output %v != sequential %v", par.Output, seq.Output)
			}
		})
	}
}

// TestWorkloadsProfile profiles every workload at small scale and checks
// basic profile invariants.
func TestWorkloadsProfile(t *testing.T) {
	for _, w := range progs.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			input := w.InputFor(w.SmallScale)
			prof, res, err := core.ProfileSource(w.Name+".mc", w.Source,
				vm.Config{Input: input, MemWords: w.MemWords}, core.DefaultOptions())
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			if prof.TotalSteps != res.Steps {
				t.Errorf("profile steps %d != vm steps %d", prof.TotalSteps, res.Steps)
			}
			if len(prof.Constructs) == 0 {
				t.Fatal("no constructs profiled")
			}
			mainC := prof.ConstructForFunc("main")
			if mainC == nil {
				t.Fatal("no main construct")
			}
			if mainC.Instances != 1 {
				t.Errorf("main instances = %d", mainC.Instances)
			}
			// main is the largest construct.
			if prof.Constructs[0].Label != mainC.Label {
				t.Errorf("largest construct is %s at line %d, not main",
					prof.Constructs[0].FuncName, prof.Constructs[0].Pos.Line)
			}
			// Profiled output must match native output.
			native := runWorkload(t, w.Name, w.Source, input, w.MemWords, false)
			if !reflect.DeepEqual(native.Output, res.Output) {
				t.Errorf("profiled output %v != native %v", res.Output, native.Output)
			}
		})
	}
}

func TestWorkloadMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, w := range progs.All() {
		if names[w.Name] {
			t.Errorf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
		if w.LOC() < 40 {
			t.Errorf("%s: suspiciously small LOC %d", w.Name, w.LOC())
		}
		if w.DefaultScale <= 0 || w.SmallScale <= 0 {
			t.Errorf("%s: scales not set", w.Name)
		}
		if len(w.InputFor(0)) == 0 {
			t.Errorf("%s: empty default input", w.Name)
		}
		// Deterministic inputs.
		a, b := w.InputFor(w.SmallScale), w.InputFor(w.SmallScale)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: input generation not deterministic", w.Name)
		}
	}
	if _, err := progs.ByName("gzip"); err != nil {
		t.Error(err)
	}
	if _, err := progs.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}
