package progs

// SrcLisp is the 130.li (XLisp) analog (§IV.B.1): a small expression
// interpreter with a cons heap. xlload is called once before the batch
// loop and once per iteration, so the xlload construct (the paper's C1)
// executes slightly more instructions than the batch loop (C2) — the
// paper parallelized C2, which covers all but the initial xlload call.
const SrcLisp = `// lisp.mc: 130.li (XLisp) analog (paper Fig. 6(d)).
// Expressions are encoded prefix streams: 0 <n> is the literal n;
// 1..4 <a> <b> apply +, -, *, / to subexpressions a and b;
// 5 <a> is (inc a).
int heap_car[32768];
int heap_cdr[32768];
int hp;

int gc_count;
int eval_count;
int results;

int filebase[64];
int filelen[64];

// cons allocates one cell; hp is the shared allocator cursor, a classic
// loop-carried dependence of interpreters.
int cons(int a, int d) {
	if (hp >= 32768 - 1) {
		// "Garbage collect": reset the nursery (expressions are
		// self-contained per file, so cells do not survive).
		hp = 0;
		gc_count++;
	}
	int c = hp;
	hp++;
	heap_car[c] = a;
	heap_cdr[c] = d;
	return c;
}

// parse_expr builds the expression tree from the input stream starting at
// position p; returns a cons cell index. It reports the next stream
// position through a shared cursor.
int cursor;

int parse_expr() {
	int op = in(cursor);
	cursor++;
	if (op == 0) {
		int v = in(cursor);
		cursor++;
		return cons(0, cons(v, 0));
	}
	if (op == 5) {
		int a = parse_expr();
		return cons(5, cons(a, 0));
	}
	int a = parse_expr();
	int b = parse_expr();
	return cons(op, cons(a, cons(b, 0)));
}

int eval(int e) {
	eval_count++;
	int op = heap_car[e];
	int args = heap_cdr[e];
	if (op == 0) {
		return heap_car[args];
	}
	if (op == 5) {
		return eval(heap_car[args]) + 1;
	}
	int a = eval(heap_car[args]);
	int b = eval(heap_car[heap_cdr[args]]);
	if (op == 1) {
		return a + b;
	}
	if (op == 2) {
		return a - b;
	}
	if (op == 3) {
		return a * b;
	}
	int d = (b == 0) ? 1 : b;
	return a / d;
}

// xlload parses and evaluates every expression of one "file" (the
// paper's C1).
void xlload(int f) {
	cursor = filebase[f];
	int end = filebase[f] + filelen[f];
	int acc = 0;
	while (cursor < end) {
		int e = parse_expr();
		acc = (acc + eval(e)) & 1073741823;
	}
	results = (results + acc) & 1073741823;
}

int main() {
	// Framing: in(0) = file count, then per file its stream length
	// followed by the stream.
	int nfiles = in(0);
	int p = 1;
	for (int f = 0; f < nfiles; f++) {
		int n = in(p);
		p++;
		filebase[f] = p;
		filelen[f] = n;
		p += n;
	}
	// Initial load before the batch loop (gives C1 its extra instance).
	xlload(0);
	// The batch-processing control loop: the paper's parallelized C2.
	for (int f = 1; f < nfiles; f++) {
		xlload(f);
	}
	out(results);
	out(eval_count);
	out(gc_count);
	return 0;
}
`
