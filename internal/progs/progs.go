// Package progs ships the benchmark programs of the paper's evaluation
// (§IV) as embedded mini-C sources, together with deterministic input
// generators. Each workload mirrors the dependence structure of the real
// program the paper profiled: gzip's flush_block conflicts, bzip2's
// shared BZFILE state, parser's dictionary + batch loop, XLisp's batch
// loop, oggenc's per-file loop with shared counters, AES-CTR's ivec,
// par2's Reed-Solomon block loops, and Delaunay refinement's worklist.
package progs

import (
	"fmt"
	"strings"
)

// Workload is one benchmark program.
type Workload struct {
	// Name matches the paper's benchmark naming.
	Name string
	// Source is the sequential mini-C program (the profiling target).
	Source string
	// ParSource, when non-empty, is the hand-parallelized variant using
	// spawn/sync (the Table V configurations).
	ParSource string
	// Description summarizes what the workload models.
	Description string
	// Input builds the deterministic input stream for a given scale
	// (scale 0 means DefaultScale).
	Input func(scale int) []int64
	// DefaultScale is the Table III / Table V input size.
	DefaultScale int
	// SmallScale is a fast size for unit tests.
	SmallScale int
	// MemWords sizes the VM memory for this workload.
	MemWords int64
}

// LOC returns the mini-C line count of the sequential source (Table III's
// LOC column).
func (w *Workload) LOC() int {
	return strings.Count(strings.TrimRight(w.Source, "\n"), "\n") + 1
}

// HasParallel reports whether a spawn/sync variant exists.
func (w *Workload) HasParallel() bool { return w.ParSource != "" }

// InputFor returns the input stream at the given scale (0 = default).
func (w *Workload) InputFor(scale int) []int64 {
	if scale == 0 {
		scale = w.DefaultScale
	}
	return w.Input(scale)
}

// rng is a tiny deterministic generator so inputs are reproducible
// without pulling in math/rand.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// All returns every workload in the paper's Table III order (197.parser,
// bzip2, gzip, 130.li, ogg, aes, par2, delaunay).
func All() []*Workload {
	return []*Workload{
		Parser(), Bzip2(), Gzip(), Lisp(), Ogg(), AES(), Par2(), Delaunay(),
	}
}

// ByName returns the named workload or an error.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("progs: unknown workload %q", name)
}

// Gzip returns the gzip-1.3.5 analog.
func Gzip() *Workload {
	return &Workload{
		Name:         "gzip",
		Source:       SrcGzip,
		Description:  "gzip-1.3.5 analog: per-file loop + zip() literals + flush_block() encoder (paper Fig. 2)",
		DefaultScale: 12000,
		SmallScale:   1200,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(42)
			const nfiles = 2
			stream := []int64{nfiles}
			for f := 0; f < nfiles; f++ {
				n := scale + f*37
				stream = append(stream, int64(n))
				// Compressible text: runs and a skewed alphabet.
				i := 0
				for i < n {
					c := int64(r.intn(64))
					if r.intn(4) == 0 {
						c += 128 // occasionally a "match" literal class
					}
					run := 1 + r.intn(5)
					for k := 0; k < run && i < n; k++ {
						stream = append(stream, c)
						i++
					}
				}
			}
			return stream
		},
	}
}

// Bzip2 returns the bzip2-1.0 analog.
func Bzip2() *Workload {
	return &Workload{
		Name:         "bzip2",
		Source:       SrcBzip2,
		ParSource:    SrcBzip2Par,
		Description:  "bzip2-1.0 analog: per-file loop + per-block RLE/MTF with shared BZFILE state",
		DefaultScale: 6000,
		SmallScale:   2500,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(1234)
			const nfiles = 4
			stream := []int64{nfiles}
			for f := 0; f < nfiles; f++ {
				n := scale + f*13
				stream = append(stream, int64(n))
				i := 0
				for i < n {
					c := int64(r.intn(200))
					run := 1
					if r.intn(3) == 0 {
						run = 2 + r.intn(8)
					}
					for k := 0; k < run && i < n; k++ {
						stream = append(stream, c)
						i++
					}
				}
			}
			return stream
		},
	}
}

// Parser returns the 197.parser analog.
func Parser() *Workload {
	return &Workload{
		Name:         "197.parser",
		Source:       SrcParser,
		Description:  "197.parser analog: dictionary load + CKY-style sentence batch loop",
		DefaultScale: 60,
		SmallScale:   6,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(777)
			ndict := 40 * scale
			if ndict > 3000 {
				ndict = 3000
			}
			if ndict < 200 {
				ndict = 200
			}
			words := make([]int64, ndict)
			stream := []int64{int64(ndict)}
			for i := range words {
				words[i] = int64(2 + r.intn(1_000_000))
				stream = append(stream, words[i])
			}
			stream = append(stream, int64(scale))
			for s := 0; s < scale; s++ {
				n := 8 + r.intn(16)
				stream = append(stream, int64(n))
				for k := 0; k < n; k++ {
					stream = append(stream, words[r.intn(ndict)])
				}
			}
			return stream
		},
	}
}

// Lisp returns the 130.li analog.
func Lisp() *Workload {
	return &Workload{
		Name:         "130.li",
		Source:       SrcLisp,
		Description:  "130.li (XLisp) analog: expression interpreter with batch-processing loop",
		DefaultScale: 60,
		SmallScale:   6,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(999)
			const nfiles = 9 // 1 initial xlload + 8 batch iterations
			var genExpr func(depth int, out *[]int64)
			genExpr = func(depth int, out *[]int64) {
				if depth <= 0 || r.intn(3) == 0 {
					*out = append(*out, 0, int64(r.intn(100)))
					return
				}
				op := 1 + r.intn(5)
				*out = append(*out, int64(op))
				genExpr(depth-1, out)
				if op != 5 {
					genExpr(depth-1, out)
				}
			}
			stream := []int64{nfiles}
			for f := 0; f < nfiles; f++ {
				var file []int64
				for e := 0; e < scale; e++ {
					genExpr(5, &file)
				}
				stream = append(stream, int64(len(file)))
				stream = append(stream, file...)
			}
			return stream
		},
	}
}

// Ogg returns the oggenc-1.0.1 analog.
func Ogg() *Workload {
	return &Workload{
		Name:         "ogg",
		Source:       SrcOgg,
		ParSource:    SrcOggPar,
		Description:  "oggenc analog: per-file MDCT encode loop with shared errors/samples counters",
		DefaultScale: 4096,
		SmallScale:   256,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(31337)
			const nfiles = 4
			stream := []int64{nfiles}
			for f := 0; f < nfiles; f++ {
				n := scale
				if f == nfiles-1 {
					n += 17 // a trailing partial frame trips the errors flag
				}
				stream = append(stream, int64(n))
				phase := 0
				for i := 0; i < n; i++ {
					phase += 3 + f
					v := 512 + (phase%257)*2 - 257 + r.intn(64)
					stream = append(stream, int64(v&1023))
				}
			}
			return stream
		},
	}
}

// AES returns the OpenSSL AES-CTR analog.
func AES() *Workload {
	return &Workload{
		Name:         "aes",
		Source:       SrcAES,
		ParSource:    SrcAESPar,
		Description:  "AES-CTR (OpenSSL) analog: XTEA-style cipher in counter mode",
		DefaultScale: 32768,
		SmallScale:   1024,
		MemWords:     1 << 21,
		Input: func(scale int) []int64 {
			r := rng(555)
			stream := []int64{305419896, 65537}
			for i := 0; i < scale; i++ {
				stream = append(stream, int64(r.next()&0xffffffff))
			}
			return stream
		},
	}
}

// Par2 returns the par2cmdline analog.
func Par2() *Workload {
	return &Workload{
		Name:         "par2",
		Source:       SrcPar2,
		ParSource:    SrcPar2Par,
		Description:  "par2cmdline analog: GF(256) Reed-Solomon recovery-block creation",
		DefaultScale: 4096,
		SmallScale:   2048,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(2024)
			const nfiles = 4
			stream := []int64{nfiles}
			for f := 0; f < nfiles; f++ {
				stream = append(stream, int64(scale))
				for i := 0; i < scale; i++ {
					stream = append(stream, int64(r.intn(256)))
				}
			}
			return stream
		},
	}
}

// Delaunay returns the Delaunay mesh refinement analog.
func Delaunay() *Workload {
	return &Workload{
		Name:         "delaunay",
		Source:       SrcDelaunay,
		Description:  "Delaunay mesh refinement analog: shared-worklist negative control",
		DefaultScale: 2500,
		SmallScale:   200,
		MemWords:     1 << 20,
		Input: func(scale int) []int64 {
			r := rng(4242)
			stream := []int64{int64(scale)}
			for t := 0; t < scale; t++ {
				stream = append(stream,
					int64(r.intn(100003)),
					int64(r.intn(100019)),
					int64(r.intn(100)))
			}
			return stream
		},
	}
}
