package progs

// SrcParser is the 197.parser analog (§IV.B.1): read_dictionary and
// read_entry load a word dictionary (large constructs, dependence-clean
// but I/O-bound, like the paper's C1/C2), and the batch loop over
// sentences (the paper's loop at line 1302, C3) parses each sentence
// against the dictionary with per-sentence scratch state plus small
// shared statistics counters — the construct that was actually
// parallelized.
const SrcParser = `// parser.mc: 197.parser analog (paper Fig. 6(c)).
int HSIZE = 4096;
int HMASK = 4095;

int dict_keys[4096];
int dict_cost[4096];
int dict_n;

int num_parsed;
int num_failed;
int total_links;

// read_entry inserts one dictionary word with its derived morphology
// cost (the paper's C2; the per-word work makes the dictionary phase as
// heavy as it is in 197.parser, where C1/C2 dominate the profile).
void read_entry(int idx, int w) {
	// Morphology: derive a connector cost from the word's "suffix forms".
	int cost = 1;
	int x = w;
	for (int k = 0; k < 60; k++) {
		x = (x * 48271) % 2147483647;
		cost += (x >> 7) & 3;
	}
	int h = (w * 2654435761) & HMASK;
	while (dict_keys[h] != 0) {
		h = (h + 1) & HMASK;
	}
	dict_keys[h] = w;
	dict_cost[h] = (cost % 7) + 1;
	dict_n++;
}

// read_dictionary loads every word (the paper's C1; in the original this
// is I/O bound, which is why it cannot be parallelized despite its clean
// profile).
void read_dictionary() {
	int n = in(0);
	for (int i = 0; i < n; i++) {
		read_entry(i, in(1 + i) | 1);
	}
}

// lookup probes the hash table; dictionary reads are the long-distance
// RAW edges from the load phase.
int lookup(int w) {
	int h = (w * 2654435761) & HMASK;
	int steps = 0;
	while (steps < HSIZE) {
		if (dict_keys[h] == w) {
			return dict_cost[h];
		}
		if (dict_keys[h] == 0) {
			return 0;
		}
		h = (h + 1) & HMASK;
		steps++;
	}
	return 0;
}

// parse builds a CKY-style chart for one sentence held in a private
// buffer; only the statistics updates touch shared memory.
int parse(int words[], int n) {
	int chart[1024];
	for (int i = 0; i < n; i++) {
		int c = lookup(words[i] | 1);
		chart[i * n + i] = c;
	}
	for (int span = 2; span <= n; span++) {
		for (int i = 0; i + span <= n; i++) {
			int j = i + span - 1;
			int best = 0;
			for (int k = i; k < j; k++) {
				int l = chart[i * n + k];
				int r = chart[(k + 1) * n + j];
				if (l > 0 && r > 0) {
					int cost = l + r + ((words[i] ^ words[j]) & 3);
					if (best == 0 || cost < best) {
						best = cost;
					}
				}
			}
			chart[i * n + j] = best;
		}
	}
	return chart[n - 1];
}

int main() {
	read_dictionary();
	int ndict = in(0);
	int base = 1 + ndict;
	int nsent = in(base);
	base++;
	// The batch loop over sentences: the paper's parallelized C3.
	for (int s = 0; s < nsent; s++) {
		int len = in(base);
		base++;
		int words[32];
		for (int i = 0; i < len; i++) {
			words[i] = in(base);
			base++;
		}
		int links = parse(words, len);
		if (links > 0) {
			num_parsed++;
			total_links += links;
		} else {
			num_failed++;
		}
	}
	out(num_parsed);
	out(num_failed);
	out(total_links);
	return 0;
}
`
