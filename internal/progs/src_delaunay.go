package progs

// SrcDelaunay is the Delaunay mesh refinement analog (§IV.B.1's negative
// control): a worklist algorithm whose every iteration pops a bad
// triangle from a shared queue, retriangulates its cavity in shared mesh
// arrays, and may push newly-bad neighbors. The queue cursors, mesh
// quality cells, and neighbor links form a dense web of short-distance
// loop-carried RAW dependences across many distinct statements — which is
// why Alchemist reports the computation-heavy constructs with large
// violating static RAW counts, confirming the known difficulty of
// parallelizing this algorithm.
const SrcDelaunay = `// delaunay.mc: Delaunay mesh refinement analog (paper §IV.B.1).
int MAXTRI = 8192;
int QCAP = 32768;

// Triangle soup: per-triangle centroid coordinates, quality, and state.
int cx[8192];
int cy[8192];
int quality[8192];
int alive[8192];
int generation[8192];
int nbr0[8192];
int nbr1[8192];
int nbr2[8192];
int ntri;

// Shared worklist of (possibly stale) bad-triangle ids.
int work[32768];
int qhead;
int qtail;

int processed;
int retriangulated;
int skipped_stale;
int cavity_sum;

int bad(int t) {
	// The generation cap models the geometric guarantee that refinement
	// terminates: a cavity is only reworked a bounded number of times.
	return alive[t] != 0 && quality[t] < 40 && generation[t] < 12;
}

void push_work(int t) {
	if (qtail - qhead < QCAP) {
		work[qtail % QCAP] = t;
		qtail++;
	}
}

// circumwork is the per-cavity numeric kernel: an iterative integer
// "circumcenter" refinement on the triangle's coordinates.
int circumwork(int t) {
	int x = cx[t];
	int y = cy[t];
	int acc = 0;
	for (int it = 0; it < 40; it++) {
		x = (x * 73 + y * 31 + it) % 100003;
		y = (y * 57 + x * 13 + 7) % 100019;
		acc += (x ^ y) & 1023;
	}
	return acc;
}

// split_neighbor updates one neighbor of a retriangulated cavity; each
// neighbor slot has its own statement block so the dependence web has
// many distinct static edges, as in the real workqueue code.
void split_neighbor0(int t, int fresh) {
	int a = nbr0[t];
	quality[a] = (quality[a] * 3 + fresh) / 4;
	generation[a] = generation[t] + 1;
	nbr0[t] = (a + 1) % ntri;
	if (bad(a)) {
		push_work(a);
	}
}

void split_neighbor1(int t, int fresh) {
	int b = nbr1[t];
	quality[b] = (quality[b] * 5 + fresh) / 6;
	generation[b] = generation[t] + 1;
	nbr1[t] = (b + 2) % ntri;
	if (bad(b)) {
		push_work(b);
	}
}

void split_neighbor2(int t, int fresh) {
	int c = nbr2[t];
	quality[c] = (quality[c] * 7 + fresh) / 8;
	generation[c] = generation[t] + 1;
	nbr2[t] = (c + 3) % ntri;
	if (bad(c)) {
		push_work(c);
	}
}

// refine pops and fixes bad triangles until the worklist drains (the
// construct the paper shows has hundreds of violating RAW dependences).
void refine() {
	while (qhead < qtail) {
		int t = work[qhead % QCAP];
		qhead++;
		processed++;
		if (!bad(t)) {
			skipped_stale++;
			continue;
		}
		int fresh = circumwork(t);
		cavity_sum = (cavity_sum + fresh) & 16777215;
		// Retriangulate: improve this triangle, degrade/update the three
		// neighbors, each through distinct statements.
		quality[t] = 40 + (fresh & 31);
		cx[t] = (cx[t] + fresh) % 100003;
		cy[t] = (cy[t] ^ fresh) % 100019;
		generation[t] = generation[t] + 1;
		retriangulated++;
		split_neighbor0(t, fresh & 255);
		split_neighbor1(t, (fresh >> 3) & 255);
		split_neighbor2(t, (fresh >> 6) & 255);
	}
}

int main() {
	ntri = in(0);
	if (ntri > MAXTRI) {
		ntri = MAXTRI;
	}
	int p = 1;
	for (int t = 0; t < ntri; t++) {
		cx[t] = in(p);
		p++;
		cy[t] = in(p);
		p++;
		quality[t] = in(p) % 100;
		p++;
		alive[t] = 1;
		nbr0[t] = (t + 1) % ntri;
		nbr1[t] = (t + 7) % ntri;
		nbr2[t] = (t * 13 + 5) % ntri;
		if (quality[t] < 40) {
			push_work(t);
		}
	}
	refine();
	out(processed);
	out(retriangulated);
	out(skipped_stale);
	out(cavity_sum);
	return 0;
}
`
