package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterProcess registers scrape-friendly process-level metrics into
// the registry and refreshes them via a scrape hook on every export:
//
//	alchemist_process_goroutines           current goroutine count
//	alchemist_process_heap_inuse_bytes     bytes in in-use heap spans
//	alchemist_process_heap_alloc_bytes     bytes of live heap objects
//	alchemist_process_sys_bytes            total bytes obtained from the OS
//	alchemist_process_gc_cycles_total      completed GC cycles
//	alchemist_process_gc_pause_ns_total    cumulative stop-the-world pause
//	alchemist_process_uptime_seconds       seconds since registration
//	alchemist_process_start_time_unix      registration time, Unix seconds
//
// Values refresh lazily at scrape time — no background goroutine runs
// between scrapes. Calling RegisterProcess again on the same registry is
// a no-op, so independent subsystems sharing one registry can each
// request process metrics without double-counting the GC deltas.
func RegisterProcess(r *Registry) {
	start := time.Now()
	goroutines := r.Gauge("alchemist_process_goroutines",
		"Current number of goroutines.")
	heapInuse := r.Gauge("alchemist_process_heap_inuse_bytes",
		"Bytes in in-use heap spans.")
	heapAlloc := r.Gauge("alchemist_process_heap_alloc_bytes",
		"Bytes of allocated, still-reachable heap objects.")
	sysBytes := r.Gauge("alchemist_process_sys_bytes",
		"Total bytes of memory obtained from the OS.")
	gcCycles := r.Counter("alchemist_process_gc_cycles_total",
		"Completed garbage-collection cycles.")
	gcPause := r.Counter("alchemist_process_gc_pause_ns_total",
		"Cumulative stop-the-world GC pause, nanoseconds.")
	uptime := r.Gauge("alchemist_process_uptime_seconds",
		"Seconds since process metrics were registered.")
	startUnix := r.Gauge("alchemist_process_start_time_unix",
		"Unix time at which process metrics were registered.")
	startUnix.Set(start.Unix())

	// The GC counters are cumulative in runtime terms but must be fed as
	// deltas (Counter only goes up); the closure keeps the last-seen
	// absolute values, serialized by mu against concurrent scrapes.
	// onScrapeOnce guards double registration: a second closure starting
	// from zero would re-add the full totals.
	var mu sync.Mutex
	var lastCycles, lastPause uint64
	r.onScrapeOnce("process", func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mu.Lock()
		defer mu.Unlock()
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapInuse.Set(int64(ms.HeapInuse))
		heapAlloc.Set(int64(ms.HeapAlloc))
		sysBytes.Set(int64(ms.Sys))
		gcCycles.Add(int64(uint64(ms.NumGC) - lastCycles))
		lastCycles = uint64(ms.NumGC)
		gcPause.Add(int64(ms.PauseTotalNs - lastPause))
		lastPause = ms.PauseTotalNs
		uptime.Set(int64(time.Since(start).Seconds()))
	})
}
