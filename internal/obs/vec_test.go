package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
)

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("reqs_total", "requests", []string{"route", "code"})
	cv.With("health", "200").Add(3)
	cv.With("health", "200").Inc()
	cv.With("compile", "500").Inc()
	if got := cv.With("health", "200").Value(); got != 4 {
		t.Fatalf("child value = %d, want 4", got)
	}
	// Same name+labels returns the same vec; snapshot exposes flat keys.
	if r.CounterVec("reqs_total", "requests", []string{"route", "code"}) != cv {
		t.Fatal("re-lookup returned a different vec")
	}
	s := r.Snapshot()
	if s.Counters[`reqs_total{route="health",code="200"}`] != 4 {
		t.Fatalf("snapshot: %+v", s.Counters)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="compile",code="500"} 1`,
		`reqs_total{route="health",code="200"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestGaugeVecAndBuildInfo(t *testing.T) {
	r := NewRegistry()
	bi := RegisterBuildInfo(r)
	if bi.GoVersion == "" {
		t.Fatal("build info must carry a Go version")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alchemist_build_info{") {
		t.Fatalf("missing build info gauge:\n%s", buf.String())
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "latency", []string{"route"}, []float64{0.1, 1})
	hv.With("a").Observe(0.05)
	hv.With("a").Observe(5)
	hv.With("b").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{route="a",le="0.1"} 1`,
		`lat_seconds_bucket{route="a",le="+Inf"} 2`,
		`lat_seconds_count{route="a"} 2`,
		`lat_seconds_bucket{route="b",le="1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
	s := r.Snapshot()
	if s.Histograms[`lat_seconds{route="a"}`].Count != 2 {
		t.Fatalf("snapshot: %+v", s.Histograms)
	}
}

func TestVecCardinalityCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("capped_total", "", []string{"k"})
	for i := 0; i < MaxLabelCardinality; i++ {
		cv.With(fmt.Sprintf("v%d", i)).Inc()
	}
	// Past the cap, unseen values collapse into one overflow child…
	over1 := cv.With("brand-new")
	over2 := cv.With("also-new")
	if over1 != over2 {
		t.Fatal("overflow children must be shared")
	}
	over1.Inc()
	over2.Inc()
	// …while already-seen values keep their own children.
	if cv.With("v0") == over1 {
		t.Fatal("existing child must not be the overflow child")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("capped_total{k=%q} 2", OverflowLabel)
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("missing overflow series %q:\n%s", want, buf.String())
	}
}

func TestVecMisuse(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("v_total", "", []string{"a"})
	mustPanic(t, "kind mismatch", func() { r.Counter("v_total", "") })
	mustPanic(t, "label mismatch", func() { r.CounterVec("v_total", "", []string{"b"}) })
	mustPanic(t, "arity mismatch", func() { r.CounterVec("v_total", "", []string{"a"}).With("x", "y") })
	mustPanic(t, "no labels", func() { r.GaugeVec("g", "", nil) })
	mustPanic(t, "bad label name", func() { r.HistogramVec("h", "", []string{"bad-label"}, nil) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestVecNilSafety(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	var hv *HistogramVec
	cv.With("x").Inc()
	gv.With("x").Set(1)
	hv.With("x").Observe(1)
}

func TestExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "", nil)
	if h.Exemplars() != nil {
		t.Fatal("fresh histogram must have no exemplars")
	}
	h.ObserveExemplar(0.1, "") // no trace: counted, not remembered
	for i := 0; i < maxExemplars+2; i++ {
		h.ObserveExemplar(float64(i), fmt.Sprintf("trace%d", i))
	}
	ex := h.Exemplars()
	if len(ex) != maxExemplars {
		t.Fatalf("ring size %d, want %d", len(ex), maxExemplars)
	}
	if ex[len(ex)-1].TraceID != fmt.Sprintf("trace%d", maxExemplars+1) {
		t.Fatalf("newest exemplar: %+v", ex)
	}
	if h.Count() != int64(maxExemplars+3) {
		t.Fatalf("count %d", h.Count())
	}
	s := r.Snapshot()
	if len(s.Histograms["ex_seconds"].Exemplars) != maxExemplars {
		t.Fatalf("snapshot exemplars: %+v", s.Histograms["ex_seconds"])
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "t")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram exemplars")
	}
}

func TestScrapeHookPanicRecovered(t *testing.T) {
	r := NewRegistry()
	var logBuf bytes.Buffer
	r.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	ran := false
	r.OnScrape("boom", func() { panic("kaboom") })
	r.OnScrape("fine", func() { ran = true })
	s := r.Snapshot() // must not panic
	if !ran {
		t.Fatal("healthy hook skipped after a panicking one")
	}
	if s.Counters["alchemist_obs_scrape_errors_total"] != 1 {
		t.Fatalf("scrape error counter: %+v", s.Counters)
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Fatalf("panic not logged: %q", logBuf.String())
	}
}
