package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability endpoint for a registry:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  indented JSON registry snapshot
//	/debug/pprof/  the standard net/http/pprof handlers
//
// It is mounted on its own mux so it can be served from a side listener
// without exposing the handlers on http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a metrics side listener started with StartServer.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer serves Handler(r) on addr (":0" picks a free port) in a
// background goroutine and returns immediately. Close the server to stop
// serving and release the port. The registry additionally exports the
// scrape-refreshed process metrics (goroutines, heap, GC, uptime — see
// RegisterProcess).
func StartServer(addr string, r *Registry) (*Server, error) {
	RegisterProcess(r)
	RegisterBuildInfo(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(r)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (with the real port for ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// URL returns the base http:// URL of the server.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the listener; in-flight requests are abandoned.
func (s *Server) Close() error { return s.srv.Close() }
