package obs

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo describes the running binary, assembled from
// debug.ReadBuildInfo. Fields fall back to "unknown" when the binary
// was built without module or VCS metadata (e.g. plain `go run` in a
// test checkout).
type BuildInfo struct {
	Version   string `json:"version"`    // main module version
	Revision  string `json:"revision"`   // VCS revision (vcs.revision)
	Modified  bool   `json:"modified"`   // VCS tree had local edits
	GoVersion string `json:"go_version"` // toolchain that built the binary
}

// ReadBuildInfo returns the binary's build metadata.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" && info.Main.Version != "(devel)" {
		bi.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo exports the binary's identity as the constant-1
// gauge alchemist_build_info with version/revision/go_version labels
// (the Prometheus convention for joining build metadata onto any other
// series).
func RegisterBuildInfo(r *Registry) BuildInfo {
	bi := ReadBuildInfo()
	rev := bi.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	r.GaugeVec("alchemist_build_info",
		"Build metadata of the running binary (value is always 1).",
		[]string{"version", "revision", "go_version"}).
		With(bi.Version, rev, bi.GoVersion).Set(1)
	return bi
}
