package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MaxLabelCardinality is the hard cap on distinct label-value
// combinations per labeled instrument. Once a vec holds this many
// children, further unseen label combinations all collapse into a
// single overflow child whose every label value is OverflowLabel, so a
// misbehaving caller (or hostile client names leaking into labels) can
// never grow a registry without bound.
const MaxLabelCardinality = 64

// OverflowLabel is the label value carried by the overflow child of a
// vec that has hit MaxLabelCardinality.
const OverflowLabel = "_overflow"

// vec is the shared core of CounterVec, GaugeVec, and HistogramVec: a
// map from label-value tuples to child instruments, capped at
// MaxLabelCardinality distinct tuples.
type vec struct {
	name   string
	labels []string
	bounds []float64 // histogram vecs only

	mu       sync.RWMutex
	children map[string]*vecChild
	overflow *vecChild
}

// vecChild is one labeled child: the label values plus exactly one
// live instrument, matching the parent's kind.
type vecChild struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelKey joins label values with a byte that cannot appear in UTF-8
// text, so tuples never collide.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

func newVec(name string, labels []string, bounds []float64) *vec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vec %q needs at least one label", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	return &vec{
		name:     name,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]*vecChild),
	}
}

// child returns the child for the given label values, creating it on
// first use. Past MaxLabelCardinality distinct tuples every unseen
// tuple maps to the single overflow child.
func (v *vec) child(mk func(*vecChild), values []string) *vecChild {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: vec %q wants %d label values, got %d",
			v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.RLock()
	ch := v.children[key]
	v.mu.RUnlock()
	if ch != nil {
		return ch
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch := v.children[key]; ch != nil {
		return ch
	}
	if len(v.children) >= MaxLabelCardinality {
		if v.overflow == nil {
			ov := make([]string, len(v.labels))
			for i := range ov {
				ov[i] = OverflowLabel
			}
			v.overflow = &vecChild{values: ov}
			mk(v.overflow)
		}
		return v.overflow
	}
	ch = &vecChild{values: append([]string(nil), values...)}
	mk(ch)
	v.children[key] = ch
	return ch
}

// snapshot returns the children (overflow last) sorted by label values.
func (v *vec) snapshot() []*vecChild {
	v.mu.RLock()
	out := make([]*vecChild, 0, len(v.children)+1)
	for _, ch := range v.children {
		out = append(out, ch)
	}
	ov := v.overflow
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].values) < labelKey(out[j].values)
	})
	if ov != nil {
		out = append(out, ov)
	}
	return out
}

// labelString renders the Prometheus label selector for a child, e.g.
// `{route="health",code="200"}`.
func (v *vec) labelString(ch *vecChild) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l, ch.values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// CounterVec is a counter with labels. Obtain children with With; all
// methods are safe for concurrent use and on a nil receiver.
type CounterVec struct{ v *vec }

// With returns the child counter for the given label values (one per
// declared label, in declaration order). Past the cardinality cap all
// unseen tuples share one overflow child labeled OverflowLabel.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.v.child(func(ch *vecChild) { ch.c = &Counter{} }, values).c
}

// GaugeVec is a gauge with labels.
type GaugeVec struct{ v *vec }

// With returns the child gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.v.child(func(ch *vecChild) { ch.g = &Gauge{} }, values).g
}

// HistogramVec is a histogram with labels; every child shares the
// bucket layout fixed at registration.
type HistogramVec struct{ v *vec }

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram {
	if hv == nil {
		return nil
	}
	return hv.v.child(func(ch *vecChild) { ch.h = newHistogram(hv.v.bounds) }, values).h
}

// CounterVec returns the labeled counter registered under name,
// creating it with the given help text and label names on first use.
// Label names are fixed at registration; a later lookup with different
// labels panics.
func (r *Registry) CounterVec(name, help string, labels []string) *CounterVec {
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, help: help, cv: &CounterVec{v: newVec(name, labels, nil)}}
	})
	if in.cv == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	checkLabels(name, in.cv.v.labels, labels)
	return in.cv
}

// GaugeVec returns the labeled gauge registered under name.
func (r *Registry) GaugeVec(name, help string, labels []string) *GaugeVec {
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, help: help, gv: &GaugeVec{v: newVec(name, labels, nil)}}
	})
	if in.gv == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	checkLabels(name, in.gv.v.labels, labels)
	return in.gv
}

// HistogramVec returns the labeled histogram registered under name,
// with the bucket layout fixed on first use (nil bounds use
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	in := r.lookup(name, func() *instrument {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &instrument{name: name, help: help, hv: &HistogramVec{v: newVec(name, labels, bs)}}
	})
	if in.hv == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	checkLabels(name, in.hv.v.labels, labels)
	return in.hv
}

func checkLabels(name string, registered, got []string) {
	if len(registered) != len(got) {
		panic(fmt.Sprintf("obs: metric %q registered with labels %v, looked up with %v",
			name, registered, got))
	}
	for i := range registered {
		if registered[i] != got[i] {
			panic(fmt.Sprintf("obs: metric %q registered with labels %v, looked up with %v",
				name, registered, got))
		}
	}
}
