package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations <= UpperBound. UpperBound is +Inf for the last bucket.
type BucketSnapshot struct {
	UpperBound float64
	Count      int64
}

// bucketJSON is the wire form of a bucket: the upper bound is a string
// because JSON has no representation for the +Inf bucket.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON renders the upper bound in Prometheus notation ("+Inf"
// for the unbounded bucket), which plain JSON numbers cannot express.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: formatFloat(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw bucketJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.UpperBound, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count     int64            `json:"count"`
	Sum       float64          `json:"sum"`
	Buckets   []BucketSnapshot `json:"buckets"`
	Exemplars []Exemplar       `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time view of a whole registry, ready for JSON
// encoding. Instruments registered but never touched still appear, with
// zero values. Children of labeled instruments appear as flat keys in
// Prometheus selector notation, e.g. `name{route="health"}`.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func histSnapshot(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Exemplars: h.Exemplars()}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: ub, Count: cum})
	}
	return hs
}

// Snapshot captures every registered instrument. Individual reads are
// atomic; the snapshot as a whole is not a consistent cut across
// instruments (fine for monitoring, the only intended use).
func (r *Registry) Snapshot() Snapshot {
	r.runScrapeHooks()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, in := range r.sorted() {
		switch {
		case in.c != nil:
			s.Counters[in.name] = in.c.Value()
		case in.g != nil:
			s.Gauges[in.name] = in.g.Value()
		case in.h != nil:
			s.Histograms[in.name] = histSnapshot(in.h)
		case in.cv != nil:
			for _, ch := range in.cv.v.snapshot() {
				s.Counters[in.name+in.cv.v.labelString(ch)] = ch.c.Value()
			}
		case in.gv != nil:
			for _, ch := range in.gv.v.snapshot() {
				s.Gauges[in.name+in.gv.v.labelString(ch)] = ch.g.Value()
			}
		case in.hv != nil:
			for _, ch := range in.hv.v.snapshot() {
				s.Histograms[in.name+in.hv.v.labelString(ch)] = histSnapshot(ch.h)
			}
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// formatFloat renders a float the way the Prometheus text format expects
// (shortest round-trip representation, "+Inf" for the unbounded bucket).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writePromHistogram writes one histogram series. labels is the inner
// label list without braces ("" for an unlabeled histogram); the le
// label is appended to it on bucket lines.
func writePromHistogram(w io.Writer, name, labels string, h *Histogram) error {
	le := "le"
	if labels != "" {
		le = labels + ",le"
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q} %d\n", name, le, formatFloat(ub), cum); err != nil {
			return err
		}
	}
	sel := ""
	if labels != "" {
		sel = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, sel, formatFloat(h.Sum()), name, sel, h.Count())
	return err
}

// innerLabels renders a child's label list without the surrounding
// braces, for merging with the le label on bucket lines.
func innerLabels(v *vec, ch *vecChild) string {
	s := v.labelString(ch)
	return s[1 : len(s)-1]
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runScrapeHooks()
	for _, in := range r.sorted() {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		var err error
		switch {
		case in.c != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", in.name, in.name, in.c.Value())
		case in.g != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", in.name, in.name, in.g.Value())
		case in.h != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", in.name); err != nil {
				return err
			}
			err = writePromHistogram(w, in.name, "", in.h)
		case in.cv != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s counter\n", in.name); err != nil {
				return err
			}
			for _, ch := range in.cv.v.snapshot() {
				if _, err = fmt.Fprintf(w, "%s%s %d\n", in.name, in.cv.v.labelString(ch), ch.c.Value()); err != nil {
					return err
				}
			}
		case in.gv != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", in.name); err != nil {
				return err
			}
			for _, ch := range in.gv.v.snapshot() {
				if _, err = fmt.Fprintf(w, "%s%s %d\n", in.name, in.gv.v.labelString(ch), ch.g.Value()); err != nil {
					return err
				}
			}
		case in.hv != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", in.name); err != nil {
				return err
			}
			for _, ch := range in.hv.v.snapshot() {
				if err = writePromHistogram(w, in.name, innerLabels(in.hv.v, ch), ch.h); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
