package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations <= UpperBound. UpperBound is +Inf for the last bucket.
type BucketSnapshot struct {
	UpperBound float64
	Count      int64
}

// bucketJSON is the wire form of a bucket: the upper bound is a string
// because JSON has no representation for the +Inf bucket.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON renders the upper bound in Prometheus notation ("+Inf"
// for the unbounded bucket), which plain JSON numbers cannot express.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: formatFloat(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw bucketJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if raw.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
		return nil
	}
	v, err := strconv.ParseFloat(raw.UpperBound, 64)
	if err != nil {
		return err
	}
	b.UpperBound = v
	return nil
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a point-in-time view of a whole registry, ready for JSON
// encoding. Instruments registered but never touched still appear, with
// zero values.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument. Individual reads are
// atomic; the snapshot as a whole is not a consistent cut across
// instruments (fine for monitoring, the only intended use).
func (r *Registry) Snapshot() Snapshot {
	r.runScrapeHooks()
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, in := range r.sorted() {
		switch {
		case in.c != nil:
			s.Counters[in.name] = in.c.Value()
		case in.g != nil:
			s.Gauges[in.name] = in.g.Value()
		case in.h != nil:
			hs := HistogramSnapshot{Count: in.h.Count(), Sum: in.h.Sum()}
			cum := int64(0)
			for i := range in.h.counts {
				cum += in.h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(in.h.bounds) {
					ub = in.h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: ub, Count: cum})
			}
			s.Histograms[in.name] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// formatFloat renders a float the way the Prometheus text format expects
// (shortest round-trip representation, "+Inf" for the unbounded bucket).
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runScrapeHooks()
	for _, in := range r.sorted() {
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		var err error
		switch {
		case in.c != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", in.name, in.name, in.c.Value())
		case in.g != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", in.name, in.name, in.g.Value())
		case in.h != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", in.name); err != nil {
				return err
			}
			cum := int64(0)
			for i := range in.h.counts {
				cum += in.h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(in.h.bounds) {
					ub = in.h.bounds[i]
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", in.name, formatFloat(ub), cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				in.name, formatFloat(in.h.Sum()), in.name, in.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
