// Package obs is the dependency-free observability subsystem: atomic
// counters, gauges, and fixed-bucket histograms behind a Registry, with
// snapshot-to-JSON and Prometheus-text exporters, a Progress reporter for
// long-running jobs, and an HTTP endpoint (/metrics, /metrics.json,
// net/http/pprof) served on a side listener.
//
// Instruments are cheap enough for per-run flushing: a Counter.Add is one
// atomic add, and every method is nil-receiver safe so call sites can
// leave instrumentation unwired without branching. Hot loops should not
// call instruments per event; the VM and profiler accumulate into plain
// per-run structs and flush once at exit.
package obs

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and on a nil receiver
// (no-ops / zero).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/size histogram: observations are
// counted into the first bucket whose upper bound is >= the value, plus
// an implicit +Inf bucket, with a running sum. Construct histograms via
// Registry.Histogram so the bucket layout is registered once.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64

	exMu sync.Mutex
	ex   []Exemplar // ring of recent exemplars, newest last
}

// maxExemplars bounds the per-histogram exemplar ring.
const maxExemplars = 4

// Exemplar ties a recent histogram observation to the trace that
// produced it, so a latency bucket can be drilled into via
// /debug/traces?trace_id=… . Exemplars appear in the JSON export only;
// the Prometheus 0.0.4 text format has no syntax for them.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// DefBuckets is the default bucket layout for wall-clock seconds,
// spanning 100µs to ~100s in roughly 3x steps.
var DefBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// ByteBuckets is a bucket layout for payload sizes in bytes, spanning
// 64 B to 16 MiB in 4x steps.
var ByteBuckets = []float64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20,
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as an exemplar (a small ring of the most recent ones).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if len(h.ex) >= maxExemplars {
		copy(h.ex, h.ex[1:])
		h.ex = h.ex[:maxExemplars-1]
	}
	h.ex = append(h.ex, Exemplar{Value: v, TraceID: traceID})
	h.exMu.Unlock()
}

// Exemplars returns a copy of the recent-exemplar ring, oldest first.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if len(h.ex) == 0 {
		return nil
	}
	return append([]Exemplar(nil), h.ex...)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// instrument pairs a metric with its registration metadata.
type instrument struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
	hv   *HistogramVec
}

// Registry is a named collection of instruments. Lookups are
// get-or-create: the first registration of a name fixes its kind, help
// text, and (for histograms) bucket layout; later lookups return the
// same instrument. A Registry is safe for concurrent use; the zero value
// is not usable — construct one with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*instrument
	hooks  map[string]func()
	logger atomic.Pointer[slog.Logger]
}

// SetLogger routes the registry's own diagnostics (scrape-hook panics)
// to l. Without one, slog.Default() is used.
func (r *Registry) SetLogger(l *slog.Logger) {
	if l != nil {
		r.logger.Store(l)
	}
}

func (r *Registry) log() *slog.Logger {
	if l := r.logger.Load(); l != nil {
		return l
	}
	return slog.Default()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byName: make(map[string]*instrument),
		hooks:  make(map[string]func()),
	}
}

// OnScrape registers a named hook that runs before every export
// (Snapshot, WritePrometheus, WriteJSON). Hooks let gauges that mirror
// external state — runtime memstats, queue lengths — refresh lazily at
// scrape time instead of polling on a timer. Registering a name that
// already has a hook replaces it; use name-disjoint hooks to compose.
// Hooks must not themselves trigger an export (deadlock-free, but the
// nested export would run with stale hook state).
func (r *Registry) OnScrape(name string, fn func()) {
	r.mu.Lock()
	r.hooks[name] = fn
	r.mu.Unlock()
}

// onScrapeOnce installs fn under name only if no hook with that name
// exists yet, reporting whether it was installed.
func (r *Registry) onScrapeOnce(name string, fn func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hooks[name]; ok {
		return false
	}
	r.hooks[name] = fn
	return true
}

// runScrapeHooks invokes every registered scrape hook outside the lock.
// A panicking hook is recovered, logged, and counted in
// alchemist_obs_scrape_errors_total rather than taking down the scrape
// (or the server thread driving it); the remaining hooks still run.
func (r *Registry) runScrapeHooks() {
	type hook struct {
		name string
		fn   func()
	}
	r.mu.RLock()
	hooks := make([]hook, 0, len(r.hooks))
	for name, fn := range r.hooks {
		hooks = append(hooks, hook{name, fn})
	}
	r.mu.RUnlock()
	for _, h := range hooks {
		r.runHook(h.name, h.fn)
	}
}

func (r *Registry) runHook(name string, fn func()) {
	defer func() {
		if p := recover(); p != nil {
			r.Counter("alchemist_obs_scrape_errors_total",
				"Scrape hooks that panicked (recovered).").Inc()
			r.log().Error("obs: scrape hook panicked",
				"hook", name, "panic", fmt.Sprint(p))
		}
	}()
	fn()
}

// validName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the instrument registered under name, or registers the
// one built by mk. Kind mismatches and invalid names panic: metric
// registration is programmer-controlled, never data-driven.
func (r *Registry) lookup(name string, mk func() *instrument) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.RLock()
	in := r.byName[name]
	r.mu.RUnlock()
	if in != nil {
		return in
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in := r.byName[name]; in != nil {
		return in
	}
	in = mk()
	r.byName[name] = in
	return in
}

// Counter returns the counter registered under name, creating it with
// the given help text on first use.
func (r *Registry) Counter(name, help string) *Counter {
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, help: help, c: &Counter{}}
	})
	if in.c == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.c
}

// Gauge returns the gauge registered under name, creating it with the
// given help text on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	in := r.lookup(name, func() *instrument {
		return &instrument{name: name, help: help, g: &Gauge{}}
	})
	if in.g == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.g
}

// Histogram returns the histogram registered under name, creating it
// with the given help text and bucket upper bounds on first use (nil
// bounds use DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	in := r.lookup(name, func() *instrument {
		if bounds == nil {
			bounds = DefBuckets
		}
		return &instrument{name: name, help: help, h: newHistogram(bounds)}
	})
	if in.h == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.h
}

// sorted returns the registered instruments in name order.
func (r *Registry) sorted() []*instrument {
	r.mu.RLock()
	out := make([]*instrument, 0, len(r.byName))
	for _, in := range r.byName {
		out = append(out, in)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
