package obs

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestRegisterProcess(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	runtime.GC() // guarantee at least one completed cycle

	snap := r.Snapshot()
	if g := snap.Gauges["alchemist_process_goroutines"]; g < 1 {
		t.Errorf("goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauges["alchemist_process_heap_inuse_bytes"]; g <= 0 {
		t.Errorf("heap_inuse = %d, want > 0", g)
	}
	if c := snap.Counters["alchemist_process_gc_cycles_total"]; c < 1 {
		t.Errorf("gc_cycles = %d, want >= 1", c)
	}
	if g := snap.Gauges["alchemist_process_start_time_unix"]; g <= 0 {
		t.Errorf("start_time_unix = %d, want > 0", g)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"alchemist_process_goroutines",
		"alchemist_process_heap_alloc_bytes",
		"alchemist_process_gc_pause_ns_total",
		"alchemist_process_uptime_seconds",
	} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("prometheus output missing %s", name)
		}
	}
}

// Double registration must not double-count the cumulative GC deltas.
func TestRegisterProcessIdempotent(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	RegisterProcess(r)
	runtime.GC()
	first := r.Snapshot().Counters["alchemist_process_gc_cycles_total"]
	second := r.Snapshot().Counters["alchemist_process_gc_cycles_total"]
	if second != first {
		t.Errorf("gc_cycles moved %d -> %d across back-to-back scrapes without GC activity", first, second)
	}
}

func TestRegisterProcessConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
}

func TestOnScrapeReplaces(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hook_val", "")
	r.OnScrape("h", func() { g.Set(1) })
	r.OnScrape("h", func() { g.Set(2) })
	if v := r.Snapshot().Gauges["hook_val"]; v != 2 {
		t.Errorf("hook_val = %d, want 2 (replaced hook)", v)
	}
}

func TestProgressAllocJob(t *testing.T) {
	var p Progress
	p.Update(0, 10) // explicit index in use
	a := p.AllocJob()
	b := p.AllocJob()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("AllocJob ids = %d, %d; want distinct, skipping taken index 0", a, b)
	}
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d jobs, want 3 (allocated jobs register at zero steps)", len(snap))
	}
	var nilP *Progress
	if nilP.AllocJob() != 0 {
		t.Error("nil Progress AllocJob should be 0")
	}
}
