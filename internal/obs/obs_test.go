package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c_total", "other help") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "hist", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	hs := r.Snapshot().Histograms["h"]
	wantCum := []int64{2, 3, 4, 5} // le=1, le=10, le=100, le=+Inf
	if len(hs.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %d, want %d", len(hs.Buckets), len(wantCum))
	}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(hs.Buckets[3].UpperBound, +1) {
		t.Error("last bucket should be +Inf")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name should panic")
		}
	}()
	r.Gauge("m", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q should panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestRegistryConcurrency hammers registration, updates, and snapshots
// from many goroutines; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("depth", "").Add(1)
				r.Gauge("depth", "").Add(-1)
				r.Histogram("lat", "", []float64{0.1, 1}).Observe(0.5)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = r.Snapshot()
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Errorf("shared_total = %d, want 8000", got)
	}
	if got := r.Gauge("depth", "").Value(); got != 0 {
		t.Errorf("depth = %d, want 0", got)
	}
	if got := r.Histogram("lat", "", nil).Count(); got != 8000 {
		t.Errorf("lat count = %d, want 8000", got)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("alchemist_vm_steps_total", "Executed VM instructions.").Add(1234)
	r.Gauge("alchemist_engine_queue_depth", "Jobs waiting.").Set(3)
	r.Histogram("alchemist_engine_job_wall_seconds", "Job wall time.", []float64{0.1, 1}).Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP alchemist_engine_job_wall_seconds Job wall time.
# TYPE alchemist_engine_job_wall_seconds histogram
alchemist_engine_job_wall_seconds_bucket{le="0.1"} 1
alchemist_engine_job_wall_seconds_bucket{le="1"} 1
alchemist_engine_job_wall_seconds_bucket{le="+Inf"} 1
alchemist_engine_job_wall_seconds_sum 0.05
alchemist_engine_job_wall_seconds_count 1
# HELP alchemist_engine_queue_depth Jobs waiting.
# TYPE alchemist_engine_queue_depth gauge
alchemist_engine_queue_depth 3
# HELP alchemist_vm_steps_total Executed VM instructions.
# TYPE alchemist_vm_steps_total counter
alchemist_vm_steps_total 1234
`
	if sb.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Add(7)
	r.Gauge("depth", "").Set(2)
	r.Histogram("lat", "", []float64{1}).Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if snap.Counters["hits_total"] != 7 || snap.Gauges["depth"] != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if h := snap.Histograms["lat"]; h.Count != 1 || h.Sum != 0.5 {
		t.Errorf("histogram snapshot = %+v", h)
	}
}

func TestProgress(t *testing.T) {
	var p Progress
	p.Update(1, 100)
	p.Update(0, 50)
	p.Update(1, 200)
	p.Update(1, 150) // stale: ignored
	p.MarkDone(0)
	got := p.Snapshot()
	if len(got) != 2 || got[0].Job != 0 || got[1].Job != 1 {
		t.Fatalf("snapshot = %+v", got)
	}
	if got[0].Steps != 50 || !got[0].Done {
		t.Errorf("job 0 = %+v, want steps=50 done", got[0])
	}
	if got[1].Steps != 200 || got[1].Done {
		t.Errorf("job 1 = %+v, want steps=200 not done", got[1])
	}
	if p.TotalSteps() != 250 {
		t.Errorf("total = %d, want 250", p.TotalSteps())
	}
	if p.Updates() != 4 {
		t.Errorf("updates = %d, want 4", p.Updates())
	}
}

func TestProgressConcurrent(t *testing.T) {
	var p Progress
	var wg sync.WaitGroup
	for job := 0; job < 4; job++ {
		wg.Add(1)
		go func(job int) {
			defer wg.Done()
			for s := int64(1); s <= 500; s++ {
				p.Update(job, s)
			}
			p.MarkDone(job)
		}(job)
	}
	wg.Wait()
	for _, jp := range p.Snapshot() {
		if jp.Steps != 500 || !jp.Done {
			t.Errorf("job %d = %+v, want steps=500 done", jp.Job, jp)
		}
	}
}

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.Update(0, 1)
	p.MarkDone(0)
	if p.Snapshot() != nil || p.TotalSteps() != 0 || p.Updates() != 0 {
		t.Error("nil Progress should read as empty")
	}
}
