package obs

import (
	"sort"
	"sync"
)

// JobProgress is one job's progress snapshot.
type JobProgress struct {
	// Job is the caller-chosen job index.
	Job int `json:"job"`
	// Steps is the latest reported step count.
	Steps int64 `json:"steps"`
	// Done marks a job whose final report has been delivered.
	Done bool `json:"done"`
}

// Progress aggregates per-job step reports from long-running work — the
// natural sink for Engine ProfileJob.OnProgress callbacks. It is safe
// for concurrent use; the zero value is ready to use.
type Progress struct {
	mu      sync.Mutex
	jobs    map[int]*JobProgress
	next    int
	updates int64
}

// AllocJob reserves a fresh job index and registers it at zero steps, so
// independent reporters can share one Progress without coordinating ids.
// Indices chosen explicitly via Update/MarkDone are skipped over.
func (p *Progress) AllocJob() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jobs == nil {
		p.jobs = make(map[int]*JobProgress)
	}
	for {
		if _, taken := p.jobs[p.next]; !taken {
			break
		}
		p.next++
	}
	id := p.next
	p.next++
	p.jobs[id] = &JobProgress{Job: id}
	return id
}

// Update records the latest step count for a job. Reports are expected
// to be monotonic per job; a stale (smaller) report is ignored so
// late-arriving updates cannot rewind the view.
func (p *Progress) Update(job int, steps int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jobs == nil {
		p.jobs = make(map[int]*JobProgress)
	}
	jp := p.jobs[job]
	if jp == nil {
		jp = &JobProgress{Job: job}
		p.jobs[job] = jp
	}
	if steps > jp.Steps {
		jp.Steps = steps
	}
	p.updates++
}

// MarkDone records that a job delivered its final report.
func (p *Progress) MarkDone(job int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jobs == nil {
		p.jobs = make(map[int]*JobProgress)
	}
	jp := p.jobs[job]
	if jp == nil {
		jp = &JobProgress{Job: job}
		p.jobs[job] = jp
	}
	jp.Done = true
}

// Snapshot returns the per-job progress sorted by job index.
func (p *Progress) Snapshot() []JobProgress {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]JobProgress, 0, len(p.jobs))
	for _, jp := range p.jobs {
		out = append(out, *jp)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// TotalSteps sums the latest step reports across all jobs.
func (p *Progress) TotalSteps() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var sum int64
	for _, jp := range p.jobs {
		sum += jp.Steps
	}
	return sum
}

// Updates returns the number of Update calls observed.
func (p *Progress) Updates() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.updates
}
