package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("alchemist_vm_steps_total", "Executed VM instructions.").Add(99)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "alchemist_vm_steps_total 99") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("inflight", "").Set(5)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Gauges["inflight"] != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func TestStartServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	s, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Addr().String() == "" || !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("addr = %q url = %q", s.Addr(), s.URL())
	}
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("body:\n%s", body)
	}
}
