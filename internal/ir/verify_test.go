package ir_test

import (
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/progs"
)

// TestVerifyAcceptsCompilerOutput: everything the compiler produces must
// verify, optimized or not, across all workloads and testdata-style
// programs.
func TestVerifyAcceptsCompilerOutput(t *testing.T) {
	for _, w := range progs.All() {
		for _, optimize := range []bool{false, true} {
			p, err := compile.BuildConfig(w.Name+".mc", w.Source, compile.Config{Optimize: optimize})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if err := ir.Verify(p); err != nil {
				t.Errorf("%s (optimize=%v): %v", w.Name, optimize, err)
			}
		}
		if w.HasParallel() {
			p, err := compile.Build(w.Name+"_par.mc", w.ParSource)
			if err != nil {
				t.Fatalf("%s par: %v", w.Name, err)
			}
			if err := ir.Verify(p); err != nil {
				t.Errorf("%s par: %v", w.Name, err)
			}
		}
	}
}

func verifyErr(t *testing.T, p *ir.Program, want string) {
	t.Helper()
	err := ir.Verify(p)
	if err == nil {
		t.Fatalf("Verify accepted corrupt program, want error %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Verify error %q does not contain %q", err, want)
	}
}

func validProgram(t *testing.T) *ir.Program {
	t.Helper()
	p, err := compile.Build("v.mc", `
int g;
int f(int x) { return x + g; }
int main() { return f(3); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Register out of range.
	p := validProgram(t)
	p.Funcs[0].Code[0].A = 999
	verifyErr(t, p, "out of range")

	// Branch target out of range.
	p = validProgram(t)
	for fi := range p.Funcs {
		for i := range p.Funcs[fi].Code {
			if p.Funcs[fi].Code[i].Op == ir.OpJmp {
				p.Funcs[fi].Code[i].Targets[0] = 10_000
			}
		}
	}
	// The sample program may have no jumps; force one corrupt branch by
	// rewriting the first instruction.
	p.Funcs[0].Code[0] = ir.Instr{Op: ir.OpJmp, Targets: [2]int{10_000, 0}}
	verifyErr(t, p, "target")

	// Call arity mismatch.
	p = validProgram(t)
	for fi := range p.Funcs {
		for i := range p.Funcs[fi].Code {
			if p.Funcs[fi].Code[i].Op == ir.OpCall {
				p.Funcs[fi].Code[i].Args = nil
			}
		}
	}
	verifyErr(t, p, "args")

	// Falling off the end.
	p = validProgram(t)
	f := p.Funcs[0]
	f.Code = append(f.Code, ir.Instr{Op: ir.OpConst, A: 0})
	verifyErr(t, p, "falls off the end")

	// No main.
	p = validProgram(t)
	p.Main = nil
	verifyErr(t, p, "no main")

	// Empty body.
	p = validProgram(t)
	p.Funcs[0].Code = nil
	verifyErr(t, p, "empty body")
}
