// Package ir defines the register-based bytecode that mini-C compiles to
// and the Alchemist VM executes.
//
// Each function owns a flat instruction slice; branch targets are
// instruction indices within the function. Every instruction also has a
// process-wide "global PC" (function Base + index) so the profiler can key
// constructs and dependence edges by a single integer.
//
// Array values are packed references: the low bits hold the base word
// address in the VM's flat memory, the high bits the element count. Scalar
// locals live in frame registers and produce no memory traffic, mirroring
// register-allocated C locals under a binary instrumenter.
package ir

import (
	"fmt"
	"strings"

	"alchemist/internal/sema"
	"alchemist/internal/source"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes.
const (
	OpInvalid Op = iota

	OpConst // R[A] = Imm
	OpMov   // R[A] = R[B]

	// Binary arithmetic: R[A] = R[B] op R[C].
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// Comparisons: R[A] = R[B] op R[C] ? 1 : 0.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Unary: R[A] = op R[B].
	OpNeg  // arithmetic negation
	OpBNot // bitwise complement
	OpLNot // logical not

	// Memory. Global scalars use absolute addresses; array elements are
	// addressed relative to a packed array reference.
	OpLoadG   // R[A] = mem[Imm]
	OpStoreG  // mem[Imm] = R[B]
	OpLoadEl  // R[A] = mem[base(R[B]) + R[C]]
	OpStoreEl // mem[base(R[A]) + R[B]] = R[C]
	OpAlloc   // R[A] = ref(bump-alloc(R[B] words), R[B])
	OpLen     // R[A] = length(R[B])

	// Calls.
	OpCall  // R[A] = Callee(R[Args...]); A == -1 discards the result
	OpCallB // R[A] = Builtin(R[Args...])
	OpSpawn // future: Callee(R[Args...]) asynchronously
	OpSync  // join all outstanding spawns of this activation

	// Output.
	OpPrintStr // print Strings[Imm]
	OpPrintVal // print R[B] as a number
	OpPrintNL  // newline + flush line

	// Control flow.
	OpJmp // goto Targets[0]
	OpBr  // if R[A] != 0 goto Targets[0] else Targets[1]
	OpRet // return R[A] (A == -1 for void)
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNeg: "neg", OpBNot: "bnot", OpLNot: "lnot",
	OpLoadG: "loadg", OpStoreG: "storeg", OpLoadEl: "loadel", OpStoreEl: "storeel",
	OpAlloc: "alloc", OpLen: "len",
	OpCall: "call", OpCallB: "callb", OpSpawn: "spawn", OpSync: "sync",
	OpPrintStr: "prints", OpPrintVal: "printv", OpPrintNL: "printnl",
	OpJmp: "jmp", OpBr: "br", OpRet: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBinary reports whether o is a two-operand arithmetic/comparison op.
func (o Op) IsBinary() bool { return o >= OpAdd && o <= OpGe }

// NoPopPC marks a branch whose construct closes only at function exit
// (its immediate post-dominator is the virtual exit block).
const NoPopPC = -1

// Instr is a single bytecode instruction.
type Instr struct {
	Op      Op
	A, B, C int   // register operands (A is usually the destination)
	Imm     int64 // immediate (constants, global addresses, string index)

	Callee  *Func        // resolved callee for OpCall/OpSpawn
	Builtin sema.Builtin // for OpCallB
	Args    []int        // argument registers for calls/spawns

	Targets [2]int // branch targets (instruction indices in this function)

	Pos source.Pos // source location, drives construct line reporting

	// Profiling metadata, filled in by the compiler + post-dominance pass.

	// IsLoopPred marks the conditional branch of a loop header. Each taken
	// execution starts a new iteration instance of the loop construct
	// (paper Fig. 5 rule 4).
	IsLoopPred bool
	// PopPC is the global PC of this predicate's immediate post-dominator,
	// where the construct it opens is closed (rule 5); NoPopPC if the
	// construct closes only at function exit.
	PopPC int
}

// Func is a compiled function.
type Func struct {
	Name    string
	NParams int
	// NumRegs is the frame size: parameter and local slots followed by
	// expression temporaries.
	NumRegs int
	Code    []Instr
	// Base is the global PC of Code[0].
	Base int
	Pos  source.Pos
	// IsSpawnable records that some spawn site targets this function.
	IsSpawnable bool
}

// GPC returns the global PC of instruction idx.
func (f *Func) GPC(idx int) int { return f.Base + idx }

// Program is a compiled translation unit plus its static memory layout.
type Program struct {
	File  *source.File
	Funcs []*Func
	Main  *Func
	// Strings is the program-wide string pool for print.
	Strings []string

	// GlobalWords is the number of flat-memory words occupied by globals
	// (address 0 is reserved as "null"); the VM's bump allocator starts
	// right after.
	GlobalWords int64
	// GlobalAddr maps a global scalar's declaration order index to its
	// word address.
	GlobalAddr []int64
	// GlobalArray maps a global's declaration order index to a packed
	// array reference (zero for scalars).
	GlobalArray []ArrayRef
	// GlobalInit holds constant initial values for global scalars,
	// parallel to GlobalAddr.
	GlobalInit []int64
	// GlobalNames records names in declaration order, for tooling.
	GlobalNames []string

	// NumPCs is the total global-PC count across all functions.
	NumPCs int

	// funcByPC is built lazily for PC -> function lookups.
	funcStarts []int
}

// Finalize assigns global PCs and must be called once after all functions
// are appended.
func (p *Program) Finalize() {
	base := 0
	p.funcStarts = p.funcStarts[:0]
	for _, f := range p.Funcs {
		f.Base = base
		p.funcStarts = append(p.funcStarts, base)
		base += len(f.Code)
	}
	p.NumPCs = base
}

// FuncAt returns the function containing global PC gpc, or nil.
func (p *Program) FuncAt(gpc int) *Func {
	if gpc < 0 || gpc >= p.NumPCs {
		return nil
	}
	lo, hi := 0, len(p.Funcs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.funcStarts[mid] <= gpc {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return p.Funcs[lo]
}

// InstrAt returns the instruction at global PC gpc, or nil.
func (p *Program) InstrAt(gpc int) *Instr {
	f := p.FuncAt(gpc)
	if f == nil {
		return nil
	}
	return &f.Code[gpc-f.Base]
}

// PosOf returns the source position of global PC gpc.
func (p *Program) PosOf(gpc int) source.Pos {
	if in := p.InstrAt(gpc); in != nil {
		return in.Pos
	}
	return source.Pos{}
}

// FindFunc returns the function named name, or nil.
func (p *Program) FindFunc(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------- Packed array references ----------

// Array references pack a base word address and an element count into one
// int64 register value: base in the low 38 bits, length in the next 25.
const (
	arrayBaseBits = 38
	// MaxArrayLen is the largest representable array length.
	MaxArrayLen = 1<<25 - 1
	// MaxMemWords is the largest addressable flat memory size.
	MaxMemWords = 1<<arrayBaseBits - 1
)

// ArrayRef is a packed (base address, length) pair.
type ArrayRef int64

// MakeArrayRef packs base and length. It panics if either is out of range;
// the VM validates sizes before calling it.
func MakeArrayRef(base, length int64) ArrayRef {
	if base < 0 || base > MaxMemWords {
		panic(fmt.Sprintf("ir: array base %d out of range", base))
	}
	if length < 0 || length > MaxArrayLen {
		panic(fmt.Sprintf("ir: array length %d out of range", length))
	}
	return ArrayRef(base | length<<arrayBaseBits)
}

// Base returns the first word address of the array.
func (r ArrayRef) Base() int64 { return int64(r) & MaxMemWords }

// Len returns the element count.
func (r ArrayRef) Len() int64 { return int64(r) >> arrayBaseBits }

// ---------- Disassembler ----------

// Disassemble renders f's code for debugging and golden tests.
func Disassemble(f *Func) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (params=%d regs=%d base=%d)\n", f.Name, f.NParams, f.NumRegs, f.Base)
	for i := range f.Code {
		in := &f.Code[i]
		fmt.Fprintf(&b, "  %4d  %s\n", i, FormatInstr(in))
	}
	return b.String()
}

// FormatInstr renders one instruction.
func FormatInstr(in *Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.A, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = r%d", in.A, in.B)
	case OpNeg, OpBNot, OpLNot:
		return fmt.Sprintf("r%d = %s r%d", in.A, in.Op, in.B)
	case OpLoadG:
		return fmt.Sprintf("r%d = mem[%d]", in.A, in.Imm)
	case OpStoreG:
		return fmt.Sprintf("mem[%d] = r%d", in.Imm, in.B)
	case OpLoadEl:
		return fmt.Sprintf("r%d = r%d[r%d]", in.A, in.B, in.C)
	case OpStoreEl:
		return fmt.Sprintf("r%d[r%d] = r%d", in.A, in.B, in.C)
	case OpAlloc:
		return fmt.Sprintf("r%d = alloc r%d", in.A, in.B)
	case OpLen:
		return fmt.Sprintf("r%d = len r%d", in.A, in.B)
	case OpCall:
		return fmt.Sprintf("r%d = call %s %v", in.A, in.Callee.Name, in.Args)
	case OpCallB:
		return fmt.Sprintf("r%d = callb #%d %v", in.A, in.Builtin, in.Args)
	case OpSpawn:
		return fmt.Sprintf("spawn %s %v", in.Callee.Name, in.Args)
	case OpSync:
		return "sync"
	case OpPrintStr:
		return fmt.Sprintf("prints #%d", in.Imm)
	case OpPrintVal:
		return fmt.Sprintf("printv r%d", in.B)
	case OpPrintNL:
		return "printnl"
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Targets[0])
	case OpBr:
		loop := ""
		if in.IsLoopPred {
			loop = " loop"
		}
		return fmt.Sprintf("br r%d -> %d, %d%s (pop@%d)", in.A, in.Targets[0], in.Targets[1], loop, in.PopPC)
	case OpRet:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	default:
		if in.Op.IsBinary() {
			return fmt.Sprintf("r%d = %s r%d, r%d", in.A, in.Op, in.B, in.C)
		}
		return in.Op.String()
	}
}
