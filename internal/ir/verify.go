package ir

import "fmt"

// Verify checks program well-formedness: every branch target in range,
// every register operand within the frame, call arities consistent, and
// a terminator at the end of every function. The compiler runs it in
// tests and the optimizer's output is verified after every pass.
func Verify(p *Program) error {
	if p.Main == nil {
		return fmt.Errorf("ir: program has no main")
	}
	for _, f := range p.Funcs {
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	n := len(f.Code)
	if n == 0 {
		return fmt.Errorf("empty body")
	}
	if f.NParams > f.NumRegs {
		return fmt.Errorf("NParams %d exceeds NumRegs %d", f.NParams, f.NumRegs)
	}
	checkReg := func(i int, r int, what string) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("instr %d: %s register r%d out of range [0,%d)", i, what, r, f.NumRegs)
		}
		return nil
	}
	checkTarget := func(i, tgt int) error {
		if tgt < 0 || tgt >= n {
			return fmt.Errorf("instr %d: target %d out of range [0,%d)", i, tgt, n)
		}
		return nil
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case OpConst, OpPrintStr, OpPrintNL, OpSync:
			// No register operands to validate (OpConst.A below).
			if in.Op == OpConst {
				if err := checkReg(i, in.A, "dst"); err != nil {
					return err
				}
			}
		case OpMov, OpNeg, OpBNot, OpLNot, OpAlloc, OpLen:
			if err := checkReg(i, in.A, "dst"); err != nil {
				return err
			}
			if err := checkReg(i, in.B, "src"); err != nil {
				return err
			}
		case OpLoadG:
			if err := checkReg(i, in.A, "dst"); err != nil {
				return err
			}
		case OpStoreG, OpPrintVal:
			if err := checkReg(i, in.B, "src"); err != nil {
				return err
			}
		case OpLoadEl, OpStoreEl:
			for _, r := range []int{in.A, in.B, in.C} {
				if err := checkReg(i, r, "operand"); err != nil {
					return err
				}
			}
		case OpCall, OpSpawn, OpCallB:
			if in.Op != OpCallB && in.Callee == nil {
				return fmt.Errorf("instr %d: call without callee", i)
			}
			if in.Op == OpCall && in.A != -1 {
				if err := checkReg(i, in.A, "dst"); err != nil {
					return err
				}
			}
			if in.Op == OpCallB {
				if err := checkReg(i, in.A, "dst"); err != nil {
					return err
				}
			}
			if in.Op != OpCallB && in.Callee != nil && len(in.Args) != in.Callee.NParams {
				return fmt.Errorf("instr %d: call to %s with %d args, want %d",
					i, in.Callee.Name, len(in.Args), in.Callee.NParams)
			}
			for _, r := range in.Args {
				if err := checkReg(i, r, "arg"); err != nil {
					return err
				}
			}
		case OpJmp:
			if err := checkTarget(i, in.Targets[0]); err != nil {
				return err
			}
		case OpBr:
			if err := checkReg(i, in.A, "cond"); err != nil {
				return err
			}
			for _, tgt := range in.Targets {
				if err := checkTarget(i, tgt); err != nil {
					return err
				}
			}
		case OpRet:
			if in.A >= 0 {
				if err := checkReg(i, in.A, "ret"); err != nil {
					return err
				}
			}
		default:
			if in.Op.IsBinary() {
				for _, r := range []int{in.A, in.B, in.C} {
					if err := checkReg(i, r, "operand"); err != nil {
						return err
					}
				}
				break
			}
			return fmt.Errorf("instr %d: unknown opcode %d", i, in.Op)
		}
	}
	// The last instruction must not fall off the end.
	last := &f.Code[n-1]
	switch last.Op {
	case OpRet, OpJmp, OpBr:
	default:
		return fmt.Errorf("function falls off the end with %s", last.Op)
	}
	return nil
}
