package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"alchemist/internal/source"
)

func TestArrayRefPackUnpack(t *testing.T) {
	cases := []struct{ base, length int64 }{
		{0, 0},
		{1, 1},
		{12345, 678},
		{MaxMemWords, 0},
		{0, MaxArrayLen},
		{MaxMemWords, MaxArrayLen},
	}
	for _, tc := range cases {
		r := MakeArrayRef(tc.base, tc.length)
		if r.Base() != tc.base || r.Len() != tc.length {
			t.Errorf("pack(%d,%d) -> (%d,%d)", tc.base, tc.length, r.Base(), r.Len())
		}
		if int64(r) < 0 {
			t.Errorf("pack(%d,%d) produced a negative value", tc.base, tc.length)
		}
	}
}

func TestArrayRefPackUnpackProperty(t *testing.T) {
	f := func(b, l uint64) bool {
		base := int64(b % (MaxMemWords + 1))
		length := int64(l % (MaxArrayLen + 1))
		r := MakeArrayRef(base, length)
		return r.Base() == base && r.Len() == length && int64(r) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestArrayRefPanicsOutOfRange(t *testing.T) {
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { MakeArrayRef(-1, 0) })
	mustPanic(func() { MakeArrayRef(0, -1) })
	mustPanic(func() { MakeArrayRef(MaxMemWords+1, 0) })
	mustPanic(func() { MakeArrayRef(0, MaxArrayLen+1) })
}

func twoFuncProgram() *Program {
	f1 := &Func{Name: "a", Code: make([]Instr, 5)}
	f2 := &Func{Name: "b", Code: make([]Instr, 3)}
	p := &Program{Funcs: []*Func{f1, f2}}
	p.Finalize()
	return p
}

func TestFinalizeAssignsBases(t *testing.T) {
	p := twoFuncProgram()
	if p.Funcs[0].Base != 0 || p.Funcs[1].Base != 5 {
		t.Errorf("bases = %d, %d", p.Funcs[0].Base, p.Funcs[1].Base)
	}
	if p.NumPCs != 8 {
		t.Errorf("NumPCs = %d", p.NumPCs)
	}
	if p.Funcs[0].GPC(3) != 3 || p.Funcs[1].GPC(2) != 7 {
		t.Error("GPC mapping wrong")
	}
}

func TestFuncAt(t *testing.T) {
	p := twoFuncProgram()
	for gpc := 0; gpc < 5; gpc++ {
		if f := p.FuncAt(gpc); f == nil || f.Name != "a" {
			t.Errorf("FuncAt(%d) = %v", gpc, f)
		}
	}
	for gpc := 5; gpc < 8; gpc++ {
		if f := p.FuncAt(gpc); f == nil || f.Name != "b" {
			t.Errorf("FuncAt(%d) = %v", gpc, f)
		}
	}
	if p.FuncAt(-1) != nil || p.FuncAt(8) != nil {
		t.Error("out-of-range FuncAt should be nil")
	}
}

func TestInstrAtAndPosOf(t *testing.T) {
	p := twoFuncProgram()
	file := source.NewFile("x.mc", "line1\nline2\n")
	p.Funcs[1].Code[1].Pos = file.Pos(6)
	in := p.InstrAt(6)
	if in == nil || in.Pos.Line != 2 {
		t.Errorf("InstrAt(6) = %+v", in)
	}
	if pos := p.PosOf(6); pos.Line != 2 {
		t.Errorf("PosOf(6) = %v", pos)
	}
	if pos := p.PosOf(100); pos.IsValid() {
		t.Error("PosOf out of range should be invalid")
	}
}

func TestFindFunc(t *testing.T) {
	p := twoFuncProgram()
	if f := p.FindFunc("b"); f == nil || f.Name != "b" {
		t.Error("FindFunc(b) failed")
	}
	if p.FindFunc("zzz") != nil {
		t.Error("FindFunc(zzz) should be nil")
	}
}

func TestOpStrings(t *testing.T) {
	if OpAdd.String() != "add" || OpBr.String() != "br" || OpRet.String() != "ret" {
		t.Error("op names wrong")
	}
	if !OpAdd.IsBinary() || !OpGe.IsBinary() {
		t.Error("IsBinary false negatives")
	}
	if OpConst.IsBinary() || OpNeg.IsBinary() || OpJmp.IsBinary() {
		t.Error("IsBinary false positives")
	}
	if Op(200).String() == "" {
		t.Error("unknown op must still format")
	}
}

func TestFormatInstr(t *testing.T) {
	callee := &Func{Name: "f"}
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, A: 1, Imm: 42}, "r1 = const 42"},
		{Instr{Op: OpMov, A: 1, B: 2}, "r1 = r2"},
		{Instr{Op: OpAdd, A: 0, B: 1, C: 2}, "r0 = add r1, r2"},
		{Instr{Op: OpNeg, A: 0, B: 1}, "r0 = neg r1"},
		{Instr{Op: OpLoadG, A: 3, Imm: 7}, "r3 = mem[7]"},
		{Instr{Op: OpStoreG, B: 3, Imm: 7}, "mem[7] = r3"},
		{Instr{Op: OpLoadEl, A: 1, B: 2, C: 3}, "r1 = r2[r3]"},
		{Instr{Op: OpStoreEl, A: 1, B: 2, C: 3}, "r1[r2] = r3"},
		{Instr{Op: OpAlloc, A: 1, B: 2}, "r1 = alloc r2"},
		{Instr{Op: OpLen, A: 1, B: 2}, "r1 = len r2"},
		{Instr{Op: OpCall, A: 1, Callee: callee, Args: []int{2}}, "r1 = call f [2]"},
		{Instr{Op: OpSpawn, Callee: callee, Args: []int{2}}, "spawn f [2]"},
		{Instr{Op: OpSync}, "sync"},
		{Instr{Op: OpJmp, Targets: [2]int{9}}, "jmp 9"},
		{Instr{Op: OpRet, A: -1}, "ret"},
		{Instr{Op: OpRet, A: 2}, "ret r2"},
		{Instr{Op: OpPrintNL}, "printnl"},
	}
	for _, tc := range cases {
		if got := FormatInstr(&tc.in); got != tc.want {
			t.Errorf("FormatInstr(%v) = %q, want %q", tc.in.Op, got, tc.want)
		}
	}
	br := Instr{Op: OpBr, A: 1, Targets: [2]int{2, 3}, IsLoopPred: true, PopPC: 17}
	if got := FormatInstr(&br); !strings.Contains(got, "loop") || !strings.Contains(got, "pop@17") {
		t.Errorf("branch format %q lacks metadata", got)
	}
}

func TestDisassemble(t *testing.T) {
	f := &Func{Name: "g", NParams: 1, NumRegs: 3, Code: []Instr{
		{Op: OpConst, A: 1, Imm: 5},
		{Op: OpRet, A: 1},
	}}
	text := Disassemble(f)
	if !strings.Contains(text, "func g") || !strings.Contains(text, "ret r1") {
		t.Errorf("disassembly:\n%s", text)
	}
}
