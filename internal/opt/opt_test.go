package opt_test

import (
	"reflect"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/ir"
	"alchemist/internal/progs"
	"alchemist/internal/vm"
)

// runBoth compiles src unoptimized and optimized, runs both on input,
// and returns the two results.
func runBoth(t *testing.T, src string, input []int64, memWords int64) (*vm.Result, *vm.Result) {
	t.Helper()
	plain, err := compile.Build("p.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	optd, err := compile.BuildConfig("p.mc", src, compile.Config{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *ir.Program) *vm.Result {
		m, err := vm.New(p, vm.Config{Input: input, MemWords: memWords, StepLimit: 500_000_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(plain), run(optd)
}

func TestConstantFoldingReducesWork(t *testing.T) {
	src := `
int main() {
	int x = 2 + 3 * 4;
	int y = x * 0 + (10 / 2);
	out(x + y);
	return 0;
}`
	plain, optd := runBoth(t, src, nil, 0)
	if !reflect.DeepEqual(plain.Output, optd.Output) {
		t.Fatalf("outputs differ: %v vs %v", plain.Output, optd.Output)
	}
	if optd.Steps > plain.Steps {
		t.Errorf("optimized ran more steps: %d vs %d", optd.Steps, plain.Steps)
	}
}

func TestUnreachableEliminated(t *testing.T) {
	src := `
int f(int x) {
	return x + 1;
}
int main() {
	return f(in(0));
}`
	plain, err := compile.Build("u.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	optd, err := compile.BuildConfig("u.mc", src, compile.Config{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// The implicit-return tail after f's explicit return disappears.
	if len(optd.FindFunc("f").Code) >= len(plain.FindFunc("f").Code) {
		t.Errorf("optimized f has %d instrs, plain %d",
			len(optd.FindFunc("f").Code), len(plain.FindFunc("f").Code))
	}
}

func TestDivisionByZeroTrapPreserved(t *testing.T) {
	src := `int main() { return 1 / (2 - 2); }`
	optd, err := compile.BuildConfig("z.mc", src, compile.Config{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(optd, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("folded away the division-by-zero trap")
	}
}

// TestLoopPredicatesSurvive: a while(1) loop's branch must stay a branch
// (constructs depend on it), even though its condition is constant.
func TestLoopPredicatesSurvive(t *testing.T) {
	src := `
int main() {
	int n = 0;
	while (1) {
		n++;
		if (n > 5) { break; }
	}
	return n;
}`
	optd, err := compile.BuildConfig("l.mc", src, compile.Config{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	main := optd.FindFunc("main")
	for i := range main.Code {
		if main.Code[i].Op == ir.OpBr && main.Code[i].IsLoopPred {
			found = true
		}
	}
	if !found {
		t.Fatal("optimization removed the loop predicate branch")
	}
	m, err := vm.New(optd, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 6 {
		t.Fatalf("ret = %d", res.Ret)
	}
}

// TestSemanticsPreservedOnWorkloads runs every benchmark workload both
// ways and demands identical observable behaviour — the strongest
// equivalence check available.
func TestSemanticsPreservedOnWorkloads(t *testing.T) {
	for _, w := range progs.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			input := w.InputFor(w.SmallScale)
			plain, optd := runBoth(t, w.Source, input, w.MemWords)
			if !reflect.DeepEqual(plain.Output, optd.Output) {
				t.Fatalf("outputs differ: %v vs %v", plain.Output, optd.Output)
			}
			if optd.Steps > plain.Steps {
				t.Errorf("optimized ran more steps (%d vs %d)", optd.Steps, plain.Steps)
			}
		})
	}
}

// TestSemanticsPreservedOnTestdataParallel checks the spawn-annotated
// matmul under optimization in simulated-parallel mode.
func TestSemanticsPreservedOnParallelVariants(t *testing.T) {
	for _, w := range progs.All() {
		if !w.HasParallel() {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			input := w.InputFor(w.SmallScale)
			optd, err := compile.BuildConfig(w.Name+"_par.mc", w.ParSource, compile.Config{Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			m, err := vm.New(optd, vm.Config{Input: input, MemWords: w.MemWords, SimWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			plain, _ := runBoth(t, w.Source, input, w.MemWords)
			if !reflect.DeepEqual(plain.Output, res.Output) {
				t.Fatalf("optimized parallel output differs: %v vs %v", res.Output, plain.Output)
			}
		})
	}
}

// TestProfilingOptimizedCode: profiles of optimized code remain
// well-formed (constructs, edges, ranked order).
func TestProfilingOptimizedCode(t *testing.T) {
	w := progs.Gzip()
	optd, err := compile.BuildConfig("gzip.mc", w.Source, compile.Config{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	// Profile through the core API.
	input := w.InputFor(w.SmallScale)
	prof := profileProgram(t, optd, input, w.MemWords)
	if prof.ConstructForFunc("flush_block") == nil {
		t.Error("flush_block missing from optimized profile")
	}
	for i := 1; i < len(prof.Constructs); i++ {
		if prof.Constructs[i-1].Ttotal < prof.Constructs[i].Ttotal {
			t.Fatal("profile not ranked")
		}
	}
}

func profileProgram(t *testing.T, p *ir.Program, input []int64, memWords int64) *core.Profile {
	t.Helper()
	prof, _, err := core.ProfileProgram(p, vm.Config{Input: input, MemWords: memWords}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}
