// Package opt implements optional IR optimization passes: block-local
// constant folding/propagation and unreachable-code elimination.
//
// The profiler does not require optimized code — timestamps are VM
// instruction counts either way — but optimization models the gap between
// -O0 and -O2 binaries that a Valgrind-based profiler confronts: folded
// code executes fewer instructions, so all Tdur/Tdep values shrink
// together while the Tdep > Tdur comparisons are largely preserved.
//
// Passes deliberately never remove or rewrite conditional branches:
// predicates delimit constructs (paper §III.A), and folding a constant
// loop predicate into a jump would erase the loop construct from the
// profile. Run the passes before ir.Program.Finalize so global PCs and
// post-dominator annotations are computed on the final code.
package opt

import "alchemist/internal/ir"

// Stats reports what the passes changed.
type Stats struct {
	// Folded counts instructions rewritten to OpConst or simplified.
	Folded int
	// RemovedUnreachable counts deleted instructions.
	RemovedUnreachable int
}

// Program optimizes every function in place. Must be called before
// Finalize/annotation.
func Program(p *ir.Program) Stats {
	var st Stats
	for _, f := range p.Funcs {
		st.Folded += foldConstants(f)
		st.RemovedUnreachable += removeUnreachable(f)
	}
	return st
}

// foldConstants tracks constant registers within each basic block and
// rewrites computations whose operands are all known.
func foldConstants(f *ir.Func) int {
	n := len(f.Code)
	if n == 0 {
		return 0
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case ir.OpJmp:
			leader[in.Targets[0]] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpBr:
			leader[in.Targets[0]] = true
			leader[in.Targets[1]] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ir.OpRet:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	known := make([]bool, f.NumRegs)
	val := make([]int64, f.NumRegs)
	reset := func() {
		for i := range known {
			known[i] = false
		}
	}
	folded := 0
	setConst := func(in *ir.Instr, dst int, v int64) {
		if in.Op != ir.OpConst || in.Imm != v {
			in.Op = ir.OpConst
			in.A = dst
			in.Imm = v
			folded++
		}
		known[dst] = true
		val[dst] = v
	}
	kill := func(r int) {
		if r >= 0 && r < len(known) {
			known[r] = false
		}
	}

	for i := range f.Code {
		if leader[i] {
			reset()
		}
		in := &f.Code[i]
		switch in.Op {
		case ir.OpConst:
			known[in.A] = true
			val[in.A] = in.Imm
		case ir.OpMov:
			if known[in.B] {
				setConst(in, in.A, val[in.B])
			} else {
				kill(in.A)
			}
		case ir.OpNeg:
			if known[in.B] {
				setConst(in, in.A, -val[in.B])
			} else {
				kill(in.A)
			}
		case ir.OpBNot:
			if known[in.B] {
				setConst(in, in.A, ^val[in.B])
			} else {
				kill(in.A)
			}
		case ir.OpLNot:
			if known[in.B] {
				v := int64(0)
				if val[in.B] == 0 {
					v = 1
				}
				setConst(in, in.A, v)
			} else {
				kill(in.A)
			}
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			if known[in.B] && known[in.C] {
				if v, ok := evalBinary(in.Op, val[in.B], val[in.C]); ok {
					setConst(in, in.A, v)
					continue
				}
			}
			kill(in.A)
		case ir.OpLoadG, ir.OpLoadEl, ir.OpAlloc, ir.OpLen, ir.OpCall, ir.OpCallB:
			kill(in.A)
		case ir.OpStoreG, ir.OpStoreEl, ir.OpSpawn, ir.OpSync,
			ir.OpPrintStr, ir.OpPrintVal, ir.OpPrintNL,
			ir.OpJmp, ir.OpBr, ir.OpRet:
			// No register definitions.
		default:
			kill(in.A)
		}
	}
	return folded
}

func evalBinary(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, false // preserve the runtime trap
		}
		return a / b, true
	case ir.OpMod:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpEq:
		return b2i(a == b), true
	case ir.OpNe:
		return b2i(a != b), true
	case ir.OpLt:
		return b2i(a < b), true
	case ir.OpLe:
		return b2i(a <= b), true
	case ir.OpGt:
		return b2i(a > b), true
	case ir.OpGe:
		return b2i(a >= b), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// removeUnreachable deletes instructions no control path reaches (e.g.
// the implicit return tail after an explicit return) and remaps branch
// targets.
func removeUnreachable(f *ir.Func) int {
	n := len(f.Code)
	if n == 0 {
		return 0
	}
	reach := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= n || reach[i] {
			continue
		}
		reach[i] = true
		in := &f.Code[i]
		switch in.Op {
		case ir.OpJmp:
			stack = append(stack, in.Targets[0])
		case ir.OpBr:
			stack = append(stack, in.Targets[0], in.Targets[1])
		case ir.OpRet:
			// terminal
		default:
			stack = append(stack, i+1)
		}
	}
	removed := 0
	remap := make([]int, n)
	next := 0
	for i := 0; i < n; i++ {
		remap[i] = next
		if reach[i] {
			next++
		} else {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	out := make([]ir.Instr, 0, next)
	for i := 0; i < n; i++ {
		if !reach[i] {
			continue
		}
		in := f.Code[i]
		switch in.Op {
		case ir.OpJmp:
			in.Targets[0] = remap[in.Targets[0]]
		case ir.OpBr:
			in.Targets[0] = remap[in.Targets[0]]
			in.Targets[1] = remap[in.Targets[1]]
		}
		out = append(out, in)
	}
	f.Code = out
	return removed
}
