// Package vm executes ir bytecode and exposes the instrumentation hooks
// that the Alchemist profiler consumes.
//
// The VM plays the role Valgrind plays in the paper: every executed
// instruction, memory access, call/return, and branch is reported to an
// optional Tracer. Timestamps are executed-instruction counts, exactly as
// in the paper. With a nil Tracer the VM runs a fast uninstrumented path;
// the ratio between the two is what Table III's "Orig." vs "Prof." columns
// measure.
//
// Memory model: one flat []int64 word array. Globals occupy a static
// prefix; local arrays and alloc() regions are bump-allocated and never
// reused, so recycled stack slots cannot manufacture false dependences.
// Scalar locals live in frame registers and generate no memory events
// (they model register-allocated C locals).
//
// Concurrency: with Config.Parallel, spawn runs the callee on its own
// goroutine over the shared memory and sync joins the current
// activation's spawns. Programs are expected to partition memory between
// spawns, as the paper's hand-parallelized benchmarks do.
package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"alchemist/internal/ir"
	"alchemist/internal/sema"
	"alchemist/internal/source"
)

// CancelCheckInterval is the maximum number of executed instructions
// between context-cancellation checks in the dispatch loop. The check is
// piggybacked on the step-limit branch, so a cancellable run costs the
// same single compare per instruction as an uncancellable one; a
// cancelled context is observed within one interval per goroutine.
const CancelCheckInterval = 4096

// Tracer receives execution events from the VM. Implementations must be
// fast; Step fires for every instruction. Tracers are only supported in
// sequential mode.
type Tracer interface {
	// Step fires before each instruction executes; gpc is the global PC.
	Step(gpc int)
	// Load fires for each tracked-memory read.
	Load(addr int64, gpc int)
	// Store fires for each tracked-memory write.
	Store(addr int64, gpc int)
	// EnterFunc fires after a frame is set up, before its first Step.
	EnterFunc(f *ir.Func)
	// ExitFunc fires when a frame returns.
	ExitFunc(f *ir.Func)
	// Branch fires after a conditional branch resolves.
	Branch(in *ir.Instr, gpc int, taken bool)
}

// Config parameterizes a VM instance.
type Config struct {
	// MemWords is the flat memory size in 8-byte words (default 1<<22).
	MemWords int64
	// StepLimit aborts runaway programs (sequential mode only; 0 = off).
	StepLimit int64
	// Input is the read-only input stream served by the in()/inlen()
	// builtins.
	Input []int64
	// Out receives print output (default: discard).
	Out io.Writer
	// Parallel makes spawn launch goroutines; incompatible with Tracer.
	Parallel bool
	// SimWorkers, when > 0, enables the deterministic virtual-time
	// parallel simulation: spawned functions execute inline but their
	// instruction counts are greedily scheduled onto this many virtual
	// workers, and Result.VirtualSteps reports the makespan. This
	// substitutes for real multicore hardware (the paper's 4-core
	// Opteron) on machines without spare cores, and is exactly
	// reproducible. Mutually exclusive with Parallel.
	SimWorkers int
	// Tracer observes execution (sequential mode only).
	Tracer Tracer
	// Seed initializes the deterministic PRNG behind rand().
	Seed uint64
	// OnProgress, when set, is called from the root interpreter goroutine
	// with the steps executed so far: every CancelCheckInterval steps
	// (piggybacked on the dispatch loop's existing slow-path check, so it
	// adds no per-instruction cost) and once more with the final total
	// when the run completes successfully. Reports are monotonically
	// non-decreasing. Spawned goroutines do not report.
	OnProgress func(steps int64)
	// Metrics, when set, receives this run's dispatch-loop counters,
	// flushed once at exit so the hot path stays untouched.
	Metrics *Metrics
}

// Result summarizes a completed run.
type Result struct {
	// Steps is the total number of executed instructions across all
	// goroutines (total work).
	Steps int64
	// VirtualSteps is the critical-path length under the virtual-time
	// parallel simulation (SimWorkers > 0): the instruction-count
	// makespan with spawns scheduled onto the virtual workers. Without
	// simulation it equals Steps for sequential runs and is 0 for
	// goroutine-parallel runs (wall-clock is the measure there).
	VirtualSteps int64
	// Output is everything the program emitted via out().
	Output []int64
	// Ret is main's return value (0 for void main).
	Ret int64
}

// RuntimeError is a trap raised by the interpreted program.
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("%s: runtime error: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

// VM executes one program once.
type VM struct {
	prog *ir.Program
	cfg  Config

	mem       []int64
	allocNext int64

	input  []int64
	out    io.Writer
	tracer Tracer

	rngMu sync.Mutex
	rng   uint64

	outMu  sync.Mutex
	output []int64

	parSteps  int64 // atomic; steps from spawned goroutines
	parChecks int64 // atomic; slow-path checks from spawned goroutines

	errMu    sync.Mutex
	spawnErr error

	ran bool
}

// New prepares a VM. The VM is single-use: call Run exactly once.
func New(p *ir.Program, cfg Config) (*VM, error) {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 22
	}
	if cfg.MemWords < p.GlobalWords {
		return nil, fmt.Errorf("vm: MemWords %d smaller than global segment %d", cfg.MemWords, p.GlobalWords)
	}
	if cfg.MemWords > ir.MaxMemWords {
		return nil, fmt.Errorf("vm: MemWords %d exceeds addressable range", cfg.MemWords)
	}
	if cfg.Parallel && cfg.Tracer != nil {
		return nil, errors.New("vm: tracing requires sequential mode")
	}
	if cfg.Parallel && cfg.SimWorkers > 0 {
		return nil, errors.New("vm: Parallel and SimWorkers are mutually exclusive")
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	vm := &VM{
		prog:      p,
		cfg:       cfg,
		mem:       make([]int64, cfg.MemWords),
		allocNext: p.GlobalWords,
		input:     cfg.Input,
		out:       cfg.Out,
		tracer:    cfg.Tracer,
		rng:       seed,
	}
	// Install global scalar initializers.
	for i, addr := range p.GlobalAddr {
		if addr != 0 {
			vm.mem[addr] = p.GlobalInit[i]
		}
	}
	return vm, nil
}

// Mem exposes the flat memory for harness-level inspection after a run.
func (vm *VM) Mem() []int64 { return vm.mem }

// GlobalValue returns the value of the named global scalar, for tests and
// harnesses.
func (vm *VM) GlobalValue(name string) (int64, bool) {
	for i, n := range vm.prog.GlobalNames {
		if n == name && vm.prog.GlobalAddr[i] != 0 {
			return vm.mem[vm.prog.GlobalAddr[i]], true
		}
	}
	return 0, false
}

// GlobalArrayValues copies the contents of the named global array.
func (vm *VM) GlobalArrayValues(name string) ([]int64, bool) {
	for i, n := range vm.prog.GlobalNames {
		if n == name && vm.prog.GlobalArray[i] != 0 {
			ref := vm.prog.GlobalArray[i]
			out := make([]int64, ref.Len())
			copy(out, vm.mem[ref.Base():ref.Base()+ref.Len()])
			return out, true
		}
	}
	return nil, false
}

// Run executes main and returns the result.
func (vm *VM) Run() (*Result, error) {
	return vm.RunCtx(context.Background())
}

// RunCtx executes main under ctx. Cancellation is observed by every
// interpreter goroutine within CancelCheckInterval instructions; the
// returned error is then ctx.Err() (context.Canceled or
// context.DeadlineExceeded), not a RuntimeError.
func (vm *VM) RunCtx(ctx context.Context) (*Result, error) {
	if vm.ran {
		return nil, errors.New("vm: Run called twice")
	}
	vm.ran = true
	if vm.prog.Main == nil {
		return nil, errors.New("vm: program has no main")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	ex := vm.newExecCtx(ctx)
	ret, err := vm.runFrame(vm.prog.Main, nil, ex)
	totalSteps := ex.steps + atomic.LoadInt64(&vm.parSteps)
	if err == nil {
		err = vm.firstSpawnError()
	}
	if err == nil && vm.cfg.OnProgress != nil {
		// Final report: short runs that never crossed a check window
		// still observe their completion.
		vm.cfg.OnProgress(totalSteps)
		ex.progressed++
	}
	vm.cfg.Metrics.flushRun(totalSteps,
		ex.checks+atomic.LoadInt64(&vm.parChecks), ex.progressed)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Steps:  totalSteps,
		Output: vm.output,
		Ret:    ret,
	}
	if !vm.cfg.Parallel {
		res.VirtualSteps = ex.vtime
	}
	return res, nil
}

func (vm *VM) firstSpawnError() error {
	vm.errMu.Lock()
	defer vm.errMu.Unlock()
	return vm.spawnErr
}

func (vm *VM) recordSpawnError(err error) {
	vm.errMu.Lock()
	defer vm.errMu.Unlock()
	if vm.spawnErr == nil {
		vm.spawnErr = err
	}
}

// execCtx is per-goroutine interpreter state.
type execCtx struct {
	vm    *VM
	steps int64
	// vtime is the virtual clock: equal to steps along a sequential
	// chain, but spawned children advance it only through the
	// virtual-worker schedule at join points.
	vtime int64

	// ctx is non-nil only when the run is cancellable (ctx.Done() is
	// non-nil); limit mirrors Config.StepLimit. Both feed the single
	// dispatch-loop slow-path branch: the loop compares steps against
	// nextCheck, and check() re-arms nextCheck so that cancellation is
	// polled every CancelCheckInterval steps and the step limit trips at
	// exactly steps == limit+1 (the historical trap point). A run with
	// no context and no limit parks nextCheck at MaxInt64.
	ctx       context.Context
	limit     int64
	nextCheck int64

	// progress is the root goroutine's OnProgress hook (nil on spawned
	// children); checks and progressed count slow-path checks and
	// delivered reports for the per-run metrics flush.
	progress   func(steps int64)
	checks     int64
	progressed int64
}

// newExecCtx builds the root interpreter state for a run under ctx.
func (vm *VM) newExecCtx(ctx context.Context) *execCtx {
	ex := &execCtx{vm: vm, limit: vm.cfg.StepLimit, progress: vm.cfg.OnProgress}
	if ctx != nil && ctx.Done() != nil {
		ex.ctx = ctx
	}
	ex.armCheck()
	return ex
}

// child derives the interpreter state for a spawned goroutine or a
// simulated child: fresh counters, same cancellation scope.
func (ex *execCtx) child() *execCtx {
	c := &execCtx{vm: ex.vm, ctx: ex.ctx, limit: ex.limit}
	c.armCheck()
	return c
}

// armCheck schedules the next slow-path check. A limit of MaxInt64 can
// never trap (steps > limit is unsatisfiable), so it parks like
// limit 0 rather than overflowing limit+1.
func (ex *execCtx) armCheck() {
	next := int64(math.MaxInt64)
	if ex.limit > 0 && ex.limit < math.MaxInt64 {
		next = ex.limit + 1
	}
	if ex.ctx != nil || ex.progress != nil {
		if c := ex.steps + CancelCheckInterval; c < next {
			next = c
		}
	}
	ex.nextCheck = next
}

// check is the dispatch loop's slow path: context cancellation first,
// then the step limit, then the progress report, then re-arm.
func (ex *execCtx) check(in *ir.Instr) error {
	ex.checks++
	if ex.ctx != nil {
		if err := ex.ctx.Err(); err != nil {
			return err
		}
	}
	if ex.limit > 0 && ex.steps > ex.limit {
		return ex.vm.trap(in, "step limit %d exceeded", ex.limit)
	}
	if ex.progress != nil {
		ex.progress(ex.steps)
		ex.progressed++
	}
	ex.armCheck()
	return nil
}

// simSpawn records one simulated spawn: the parent's virtual time at the
// spawn site and the child's own critical-path length.
type simSpawn struct {
	start int64
	span  int64
}

// simMakespan greedily schedules the pending spawns onto `workers`
// virtual workers (each child becomes available at its spawn time) and
// returns the completion time of the whole group.
func simMakespan(pending []simSpawn, workers int, now int64) int64 {
	if workers < 1 {
		workers = 1
	}
	avail := make([]int64, workers)
	finish := now
	for _, s := range pending {
		wi := 0
		for i := 1; i < workers; i++ {
			if avail[i] < avail[wi] {
				wi = i
			}
		}
		start := avail[wi]
		if s.start > start {
			start = s.start
		}
		end := start + s.span
		avail[wi] = end
		if end > finish {
			finish = end
		}
	}
	return finish
}

func (vm *VM) trap(in *ir.Instr, format string, args ...any) error {
	return &RuntimeError{Pos: in.Pos, Msg: fmt.Sprintf(format, args...)}
}

// alloc bump-allocates n words and returns a packed reference.
func (vm *VM) alloc(n int64, in *ir.Instr) (ir.ArrayRef, error) {
	if n < 0 || n > ir.MaxArrayLen {
		return 0, vm.trap(in, "invalid allocation size %d", n)
	}
	var base int64
	if vm.cfg.Parallel {
		base = atomic.AddInt64(&vm.allocNext, n) - n
	} else {
		base = vm.allocNext
		vm.allocNext += n
	}
	if base+n > vm.cfg.MemWords {
		return 0, vm.trap(in, "out of memory: need %d words beyond %d", n, base)
	}
	return ir.MakeArrayRef(base, n), nil
}

func (vm *VM) randNext() int64 {
	vm.rngMu.Lock()
	x := vm.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	vm.rng = x
	vm.rngMu.Unlock()
	return int64(x >> 1) // keep it non-negative
}

func (vm *VM) emitOut(v int64) {
	if vm.cfg.Parallel {
		vm.outMu.Lock()
		vm.output = append(vm.output, v)
		vm.outMu.Unlock()
		return
	}
	vm.output = append(vm.output, v)
}

func (vm *VM) printStr(s string) {
	vm.outMu.Lock()
	io.WriteString(vm.out, s)
	vm.outMu.Unlock()
}

// element resolves an array access, validating the index.
func (vm *VM) element(refVal, idx int64, in *ir.Instr) (int64, error) {
	ref := ir.ArrayRef(refVal)
	if refVal == 0 {
		return 0, vm.trap(in, "use of uninitialized array")
	}
	if idx < 0 || idx >= ref.Len() {
		return 0, vm.trap(in, "index %d out of range [0,%d)", idx, ref.Len())
	}
	return ref.Base() + idx, nil
}

// runFrame interprets one activation of f.
func (vm *VM) runFrame(f *ir.Func, args []int64, ex *execCtx) (int64, error) {
	regs := make([]int64, f.NumRegs)
	copy(regs, args)

	var wg *sync.WaitGroup
	var pending []simSpawn
	joinSpawns := func() {
		if wg != nil {
			wg.Wait()
		}
		if len(pending) > 0 {
			ex.vtime = simMakespan(pending, vm.cfg.SimWorkers, ex.vtime)
			pending = pending[:0]
		}
	}

	t := vm.tracer
	if t != nil {
		t.EnterFunc(f)
	}

	code := f.Code
	base := f.Base
	pc := 0
	for {
		in := &code[pc]
		ex.steps++
		ex.vtime++
		if ex.steps >= ex.nextCheck {
			if err := ex.check(in); err != nil {
				joinSpawns()
				return 0, err
			}
		}
		if t != nil {
			t.Step(base + pc)
		}
		switch in.Op {
		case ir.OpConst:
			regs[in.A] = in.Imm
		case ir.OpMov:
			regs[in.A] = regs[in.B]
		case ir.OpAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
		case ir.OpSub:
			regs[in.A] = regs[in.B] - regs[in.C]
		case ir.OpMul:
			regs[in.A] = regs[in.B] * regs[in.C]
		case ir.OpDiv:
			if regs[in.C] == 0 {
				joinSpawns()
				return 0, vm.trap(in, "division by zero")
			}
			regs[in.A] = regs[in.B] / regs[in.C]
		case ir.OpMod:
			if regs[in.C] == 0 {
				joinSpawns()
				return 0, vm.trap(in, "modulo by zero")
			}
			regs[in.A] = regs[in.B] % regs[in.C]
		case ir.OpAnd:
			regs[in.A] = regs[in.B] & regs[in.C]
		case ir.OpOr:
			regs[in.A] = regs[in.B] | regs[in.C]
		case ir.OpXor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
		case ir.OpShl:
			regs[in.A] = regs[in.B] << (uint64(regs[in.C]) & 63)
		case ir.OpShr:
			regs[in.A] = int64(uint64(regs[in.B]) >> (uint64(regs[in.C]) & 63))
		case ir.OpEq:
			regs[in.A] = b2i(regs[in.B] == regs[in.C])
		case ir.OpNe:
			regs[in.A] = b2i(regs[in.B] != regs[in.C])
		case ir.OpLt:
			regs[in.A] = b2i(regs[in.B] < regs[in.C])
		case ir.OpLe:
			regs[in.A] = b2i(regs[in.B] <= regs[in.C])
		case ir.OpGt:
			regs[in.A] = b2i(regs[in.B] > regs[in.C])
		case ir.OpGe:
			regs[in.A] = b2i(regs[in.B] >= regs[in.C])
		case ir.OpNeg:
			regs[in.A] = -regs[in.B]
		case ir.OpBNot:
			regs[in.A] = ^regs[in.B]
		case ir.OpLNot:
			regs[in.A] = b2i(regs[in.B] == 0)

		case ir.OpLoadG:
			if t != nil {
				t.Load(in.Imm, base+pc)
			}
			regs[in.A] = vm.mem[in.Imm]
		case ir.OpStoreG:
			if t != nil {
				t.Store(in.Imm, base+pc)
			}
			vm.mem[in.Imm] = regs[in.B]
		case ir.OpLoadEl:
			addr, err := vm.element(regs[in.B], regs[in.C], in)
			if err != nil {
				joinSpawns()
				return 0, err
			}
			if t != nil {
				t.Load(addr, base+pc)
			}
			regs[in.A] = vm.mem[addr]
		case ir.OpStoreEl:
			addr, err := vm.element(regs[in.A], regs[in.B], in)
			if err != nil {
				joinSpawns()
				return 0, err
			}
			if t != nil {
				t.Store(addr, base+pc)
			}
			vm.mem[addr] = regs[in.C]
		case ir.OpAlloc:
			ref, err := vm.alloc(regs[in.B], in)
			if err != nil {
				joinSpawns()
				return 0, err
			}
			regs[in.A] = int64(ref)
		case ir.OpLen:
			regs[in.A] = ir.ArrayRef(regs[in.B]).Len()

		case ir.OpCall:
			args := make([]int64, len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			v, err := vm.runFrame(in.Callee, args, ex)
			if err != nil {
				joinSpawns()
				return 0, err
			}
			if in.A >= 0 {
				regs[in.A] = v
			}
		case ir.OpCallB:
			v, err := vm.builtin(in, regs)
			if err != nil {
				joinSpawns()
				return 0, err
			}
			if in.A >= 0 {
				regs[in.A] = v
			}
		case ir.OpSpawn:
			args := make([]int64, len(in.Args))
			for i, r := range in.Args {
				args[i] = regs[r]
			}
			switch {
			case vm.cfg.Parallel:
				if wg == nil {
					wg = &sync.WaitGroup{}
				}
				wg.Add(1)
				go func(callee *ir.Func, args []int64) {
					defer wg.Done()
					child := ex.child()
					_, err := vm.runFrame(callee, args, child)
					atomic.AddInt64(&vm.parSteps, child.steps)
					atomic.AddInt64(&vm.parChecks, child.checks)
					if err != nil {
						vm.recordSpawnError(err)
					}
				}(in.Callee, args)
			case vm.cfg.SimWorkers > 0:
				// Virtual-time simulation: run the child inline on its
				// own virtual clock and charge its critical path to a
				// virtual worker at the next join.
				child := ex.child()
				if _, err := vm.runFrame(in.Callee, args, child); err != nil {
					joinSpawns()
					return 0, err
				}
				ex.steps += child.steps
				ex.checks += child.checks
				pending = append(pending, simSpawn{start: ex.vtime, span: child.vtime})
			default:
				// Sequential semantics: a spawn is a plain call. This is
				// what the profiler observes, matching the paper's model
				// of profiling the sequential program.
				if _, err := vm.runFrame(in.Callee, args, ex); err != nil {
					joinSpawns()
					return 0, err
				}
			}
		case ir.OpSync:
			joinSpawns()

		case ir.OpPrintStr:
			vm.printStr(vm.prog.Strings[in.Imm])
		case ir.OpPrintVal:
			vm.printStr(fmt.Sprintf("%d", regs[in.B]))
		case ir.OpPrintNL:
			vm.printStr("\n")

		case ir.OpJmp:
			pc = in.Targets[0]
			continue
		case ir.OpBr:
			taken := regs[in.A] != 0
			if t != nil {
				t.Branch(in, base+pc, taken)
			}
			if taken {
				pc = in.Targets[0]
			} else {
				pc = in.Targets[1]
			}
			continue
		case ir.OpRet:
			joinSpawns()
			if t != nil {
				t.ExitFunc(f)
			}
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		default:
			joinSpawns()
			return 0, vm.trap(in, "invalid opcode %s", in.Op)
		}
		pc++
	}
}

func (vm *VM) builtin(in *ir.Instr, regs []int64) (int64, error) {
	arg := func(i int) int64 { return regs[in.Args[i]] }
	switch in.Builtin {
	case sema.BuiltinRand:
		return vm.randNext(), nil
	case sema.BuiltinSrand:
		vm.rngMu.Lock()
		vm.rng = uint64(arg(0)) | 1
		vm.rngMu.Unlock()
		return 0, nil
	case sema.BuiltinIn:
		i := arg(0)
		if i < 0 || i >= int64(len(vm.input)) {
			return 0, vm.trap(in, "in(%d) out of range [0,%d)", i, len(vm.input))
		}
		return vm.input[i], nil
	case sema.BuiltinInLen:
		return int64(len(vm.input)), nil
	case sema.BuiltinOut:
		vm.emitOut(arg(0))
		return 0, nil
	case sema.BuiltinAssert:
		if arg(0) == 0 {
			return 0, vm.trap(in, "assertion failed")
		}
		return 0, nil
	default:
		return 0, vm.trap(in, "unknown builtin %d", in.Builtin)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
