package vm_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"alchemist/internal/compile"
	"alchemist/internal/vm"
)

// evalBinary compiles a tiny program applying op to in(0), in(1) and runs
// it.
func evalBinary(t *testing.T, op string, a, b int64) (int64, error) {
	t.Helper()
	src := fmt.Sprintf("int main() { return in(0) %s in(1); }", op)
	prog, err := compile.Build("op.mc", src)
	if err != nil {
		t.Fatalf("compile %s: %v", op, err)
	}
	m, err := vm.New(prog, vm.Config{Input: []int64{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		return 0, err
	}
	return res.Ret, nil
}

// TestArithmeticMatchesGo property-checks every binary operator against
// Go's int64 semantics (shifts are masked to 0..63 like the VM does).
func TestArithmeticMatchesGo(t *testing.T) {
	type binop struct {
		op string
		fn func(a, b int64) (int64, bool)
	}
	ops := []binop{
		{"+", func(a, b int64) (int64, bool) { return a + b, true }},
		{"-", func(a, b int64) (int64, bool) { return a - b, true }},
		{"*", func(a, b int64) (int64, bool) { return a * b, true }},
		{"/", func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}},
		{"%", func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
		{"&", func(a, b int64) (int64, bool) { return a & b, true }},
		{"|", func(a, b int64) (int64, bool) { return a | b, true }},
		{"^", func(a, b int64) (int64, bool) { return a ^ b, true }},
		{"<<", func(a, b int64) (int64, bool) { return a << (uint64(b) & 63), true }},
		{">>", func(a, b int64) (int64, bool) { return int64(uint64(a) >> (uint64(b) & 63)), true }},
		{"==", func(a, b int64) (int64, bool) { return b2i(a == b), true }},
		{"!=", func(a, b int64) (int64, bool) { return b2i(a != b), true }},
		{"<", func(a, b int64) (int64, bool) { return b2i(a < b), true }},
		{"<=", func(a, b int64) (int64, bool) { return b2i(a <= b), true }},
		{">", func(a, b int64) (int64, bool) { return b2i(a > b), true }},
		{">=", func(a, b int64) (int64, bool) { return b2i(a >= b), true }},
	}
	for _, op := range ops {
		op := op
		t.Run(op.op, func(t *testing.T) {
			f := func(a, b int64) bool {
				want, defined := op.fn(a, b)
				got, err := evalBinary(t, op.op, a, b)
				if !defined {
					return err != nil
				}
				return err == nil && got == want
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSimMakespanProperties checks the virtual-time scheduler's algebra:
// with one worker the makespan is serial; with enough workers the
// makespan matches the longest child; more workers never increase it.
func TestSimMakespanProperties(t *testing.T) {
	buildSrc := func(spans []int) string {
		// One spawn per span, each spinning span iterations.
		return fmt.Sprintf(`
int sink[16];
void work(int id, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i; }
	sink[id] = s;
}
int main() {
	int n = inlen();
	for (int i = 0; i < n; i++) {
		spawn work(i, in(i));
	}
	sync;
	return 0;
}`)
	}
	runWith := func(t *testing.T, spans []int64, workers int) int64 {
		prog, err := compile.Build("sim.mc", buildSrc(nil))
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(prog, vm.Config{Input: spans, SimWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.VirtualSteps
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		spans := make([]int64, len(raw))
		for i, r := range raw {
			spans[i] = int64(r%2000) + 10
		}
		v1 := runWith(t, spans, 1)
		v4 := runWith(t, spans, 4)
		vMany := runWith(t, spans, 64)
		// Monotone: more workers never hurt.
		if !(vMany <= v4 && v4 <= v1) {
			return false
		}
		// Work conservation: one worker is at least the sum of child
		// virtual times (plus the orchestration code).
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSimWorkersExactMakespan(t *testing.T) {
	// Two children with very different spans on 2 workers: makespan is
	// dominated by the longer child, not the sum.
	src := `
int sink[4];
void work(int id, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i; }
	sink[id] = s;
}
int main() {
	spawn work(0, 10000);
	spawn work(1, 100);
	sync;
	return 0;
}`
	build := func() *vm.VM {
		prog, err := compile.Build("m.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(prog, vm.Config{SimWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	res, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	// Serial total would exceed ~40400 steps; the makespan must be close
	// to the long child's ~40000.
	if res.VirtualSteps >= res.Steps {
		t.Errorf("virtual %d not below total %d", res.VirtualSteps, res.Steps)
	}
	longChild := int64(10000 * 4) // rough lower bound for the spin loop
	if res.VirtualSteps < longChild {
		t.Errorf("virtual %d below the long child's span", res.VirtualSteps)
	}
}

func TestSimExclusiveWithParallel(t *testing.T) {
	prog, err := compile.Build("x.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(prog, vm.Config{Parallel: true, SimWorkers: 2}); err == nil {
		t.Error("Parallel+SimWorkers accepted")
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
