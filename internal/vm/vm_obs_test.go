package vm_test

import (
	"context"
	"errors"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/obs"
	"alchemist/internal/vm"
)

// loopSrc runs well past CancelCheckInterval so the slow-path check
// (and therefore progress delivery) fires several times.
const loopSrc = `
int main() {
  int i; int s;
  s = 0;
  for (i = 0; i < 20000; i = i + 1) { s = s + i; }
  return s;
}
`

func TestMetricsFlushMatchesResult(t *testing.T) {
	reg := obs.NewRegistry()
	m := vm.NewMetrics(reg)
	res := run(t, loopSrc, vm.Config{Metrics: m})

	if got := m.Runs.Value(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	if got := m.Steps.Value(); got != res.Steps {
		t.Errorf("flushed steps = %d, want Result.Steps = %d", got, res.Steps)
	}
	if res.Steps <= vm.CancelCheckInterval {
		t.Fatalf("test program too short (%d steps) to exercise the check path", res.Steps)
	}
}

func TestOnProgressDelivery(t *testing.T) {
	var reports []int64
	res := run(t, loopSrc, vm.Config{
		OnProgress: func(steps int64) { reports = append(reports, steps) },
	})

	// One report per CancelCheckInterval window plus the final total.
	wantMin := res.Steps/vm.CancelCheckInterval + 1
	if int64(len(reports)) < wantMin {
		t.Fatalf("got %d reports, want >= %d (steps=%d)", len(reports), wantMin, res.Steps)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] < reports[i-1] {
			t.Errorf("reports not monotonic: [%d]=%d after [%d]=%d",
				i, reports[i], i-1, reports[i-1])
		}
	}
	if last := reports[len(reports)-1]; last != res.Steps {
		t.Errorf("final report = %d, want total steps %d", last, res.Steps)
	}
}

func TestOnProgressShortRunGetsFinalReport(t *testing.T) {
	var reports []int64
	res := run(t, "int main() { return 7; }", vm.Config{
		OnProgress: func(steps int64) { reports = append(reports, steps) },
	})
	if len(reports) != 1 || reports[0] != res.Steps {
		t.Errorf("reports = %v, want exactly one final report of %d", reports, res.Steps)
	}
}

func TestMetricsFlushOnCancellation(t *testing.T) {
	prog, err := compile.Build("test.mc", `int main() { while (1) {} return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := vm.NewMetrics(reg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	machine, err := vm.New(prog, vm.Config{
		Metrics: m,
		// Cancel deterministically from inside the run: the first
		// progress delivery proves we are mid-execution, and the next
		// check window observes the cancellation.
		OnProgress: func(int64) { cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.Runs.Value(); got != 1 {
		t.Errorf("runs = %d, want 1 (cancelled runs still flush)", got)
	}
	if m.Steps.Value() <= 0 || m.CancelChecks.Value() <= 0 {
		t.Errorf("steps = %d checks = %d, want both > 0",
			m.Steps.Value(), m.CancelChecks.Value())
	}
}
