package vm_test

import (
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/vm"
)

func TestRunTwiceFails(t *testing.T) {
	prog, err := compile.Build("t.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestMemWordsTooSmall(t *testing.T) {
	prog, err := compile.Build("t.mc", `int g[100]; int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.New(prog, vm.Config{MemWords: 10}); err == nil {
		t.Fatal("MemWords below global segment accepted")
	}
}

func TestOutOfMemory(t *testing.T) {
	prog, err := compile.Build("t.mc", `
int main() {
	int a[] = alloc(100000);
	return a[0];
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{MemWords: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpawnedErrorPropagates(t *testing.T) {
	src := `
int a[4];
void bad(int i) { a[i + 100] = 1; }
int main() {
	spawn bad(0);
	sync;
	return 0;
}`
	for _, parallel := range []bool{false, true} {
		prog, err := compile.Build("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := vm.New(prog, vm.Config{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("parallel=%v: err = %v", parallel, err)
		}
	}
}

func TestSimSpawnedErrorPropagates(t *testing.T) {
	src := `
void bad() { assert(0); }
int main() {
	spawn bad();
	sync;
	return 0;
}`
	prog, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{SimWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "assertion") {
		t.Fatalf("err = %v", err)
	}
}

func TestGlobalInspectionMisses(t *testing.T) {
	prog, err := compile.Build("t.mc", `int s; int a[2]; int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.GlobalValue("nope"); ok {
		t.Error("unknown global found")
	}
	if _, ok := m.GlobalValue("a"); ok {
		t.Error("array reported as scalar")
	}
	if _, ok := m.GlobalArrayValues("s"); ok {
		t.Error("scalar reported as array")
	}
	if _, ok := m.GlobalArrayValues("zzz"); ok {
		t.Error("unknown array found")
	}
	if m.Mem() == nil {
		t.Error("Mem() nil")
	}
}

func TestUninitializedArrayTrap(t *testing.T) {
	// An array parameter receiving a zero value (never assigned a real
	// array) traps on access instead of corrupting word 0.
	src := `
int take(int a[]) { return a[0]; }
int main() {
	int dummy[1];
	int x[] = alloc(0);
	return take(x);
}`
	prog, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("zero-length array access should trap")
	}
}

func TestNestedSpawns(t *testing.T) {
	// A spawned function spawning again: joins must nest correctly in
	// all three modes.
	src := `
int grid[16];
void leaf(int base, int i) { grid[base + i] = base + i; }
void branch(int base) {
	for (int i = 0; i < 4; i++) {
		spawn leaf(base, i);
	}
	sync;
}
int main() {
	for (int b = 0; b < 4; b++) {
		spawn branch(b * 4);
	}
	sync;
	int s = 0;
	for (int i = 0; i < 16; i++) { s += grid[i]; }
	out(s);
	return 0;
}`
	want := int64(0)
	for i := int64(0); i < 16; i++ {
		want += i
	}
	for _, mode := range []string{"seq", "par", "sim"} {
		prog, err := compile.Build("t.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := vm.Config{}
		switch mode {
		case "par":
			cfg.Parallel = true
		case "sim":
			cfg.SimWorkers = 3
		}
		m, err := vm.New(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Output[0] != want {
			t.Errorf("%s: sum = %d, want %d", mode, res.Output[0], want)
		}
	}
}

func TestPrintFormatting(t *testing.T) {
	var sb strings.Builder
	prog, err := compile.Build("t.mc", `
int main() {
	print("neg=", 0 - 5, " pos=", 123456789);
	print();
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{Out: &sb})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "neg=-5 pos=123456789\n\n" {
		t.Fatalf("print output %q", sb.String())
	}
}

func TestRandNonNegative(t *testing.T) {
	prog, err := compile.Build("t.mc", `
int main() {
	srand(in(0));
	for (int i = 0; i < 100; i++) {
		assert(rand() >= 0);
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{Input: []int64{-12345}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
