package vm_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/vm"
)

// armCtx is a context whose cancellation flips at a precisely known
// instruction, so the cancellation window can be measured in steps
// rather than wall-clock time.
type armCtx struct {
	armed atomic.Bool
	done  chan struct{}
}

func newArmCtx() *armCtx { return &armCtx{done: make(chan struct{})} }

func (c *armCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *armCtx) Done() <-chan struct{}       { return c.done }
func (c *armCtx) Value(any) any               { return nil }
func (c *armCtx) Err() error {
	if c.armed.Load() {
		return context.Canceled
	}
	return nil
}

// stepArmTracer counts executed instructions and arms the context at a
// chosen step.
type stepArmTracer struct {
	steps int64
	armAt int64
	ctx   *armCtx
}

func (t *stepArmTracer) Step(gpc int) {
	t.steps++
	if t.steps == t.armAt {
		t.ctx.armed.Store(true)
	}
}
func (t *stepArmTracer) Load(addr int64, gpc int)              {}
func (t *stepArmTracer) Store(addr int64, gpc int)             {}
func (t *stepArmTracer) EnterFunc(f *ir.Func)                  {}
func (t *stepArmTracer) ExitFunc(f *ir.Func)                   {}
func (t *stepArmTracer) Branch(in *ir.Instr, gpc int, ok bool) {}

const longLoopSrc = `
int main() {
	int s = 0;
	for (int i = 0; i < 100000000; i++) {
		s += i;
	}
	out(s);
	return 0;
}`

// TestRunCtxCancelWindow: a cancellation is observed within one
// step-check window (CancelCheckInterval instructions) of the arming
// point, and surfaces as context.Canceled.
func TestRunCtxCancelWindow(t *testing.T) {
	prog, err := compile.Build("loop.mc", longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newArmCtx()
	tr := &stepArmTracer{armAt: 1000, ctx: ctx}
	m, err := vm.New(prog, vm.Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = (%v, %v), want context.Canceled", res, err)
	}
	ran := tr.steps - tr.armAt
	if ran < 0 || ran > vm.CancelCheckInterval {
		t.Errorf("ran %d instructions after cancellation, want <= %d", ran, vm.CancelCheckInterval)
	}
}

// TestRunCtxPreCancelled: an already-cancelled context aborts before any
// instruction executes.
func TestRunCtxPreCancelled(t *testing.T) {
	prog, err := compile.Build("loop.mc", longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	tr := &stepArmTracer{}
	m, err := vm.New(prog, vm.Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if tr.steps != 0 {
		t.Errorf("executed %d instructions under a pre-cancelled context", tr.steps)
	}
}

// TestRunCtxDeadline: a deadline surfaces as context.DeadlineExceeded.
func TestRunCtxDeadline(t *testing.T) {
	prog, err := compile.Build("loop.mc", longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.RunCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxCancelParallel: spawned goroutines observe cancellation too.
func TestRunCtxCancelParallel(t *testing.T) {
	src := `
void work() {
	int s = 0;
	for (int i = 0; i < 50000000; i++) {
		s += i;
	}
}
int main() {
	spawn work();
	spawn work();
	sync;
	return 0;
}`
	prog, err := compile.Build("spawnloop.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = m.RunCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
	// ~100M spawned instructions take far longer than the deadline plus
	// one check window; finishing quickly proves the children aborted.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("parallel run took %v after a 15ms deadline", elapsed)
	}
}

// TestRunCtxMaxStepLimit: a MaxInt64 "unlimited" sentinel neither traps
// nor overflows the check scheduling; the program runs to completion
// and cancellation still works.
func TestRunCtxMaxStepLimit(t *testing.T) {
	prog, err := compile.Build("small.mc", `int main() { int s = 0; for (int i = 0; i < 100; i++) { s += i; } out(s); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{StepLimit: math.MaxInt64})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := m.RunCtx(ctx)
	if err != nil {
		t.Fatalf("RunCtx = %v", err)
	}
	if len(res.Output) != 1 || res.Output[0] != 4950 {
		t.Errorf("output = %v, want [4950]", res.Output)
	}
}

// TestRunCtxStepLimitPreserved: the step limit still traps at the same
// point with a cancellable context attached, and the trap stays a
// RuntimeError rather than a context error.
func TestRunCtxStepLimitPreserved(t *testing.T) {
	prog, err := compile.Build("loop.mc", longLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int64{1, 100, vm.CancelCheckInterval - 1, vm.CancelCheckInterval, vm.CancelCheckInterval + 7} {
		tr := &stepArmTracer{}
		m, err := vm.New(prog, vm.Config{StepLimit: limit, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		_, err = m.RunCtx(ctx)
		cancel()
		var rte *vm.RuntimeError
		if !errors.As(err, &rte) || !strings.Contains(err.Error(), "step limit") {
			t.Fatalf("limit %d: err = %v, want step-limit RuntimeError", limit, err)
		}
		// The trap fires before executing instruction limit+1, so the
		// tracer saw exactly `limit` instructions.
		if tr.steps != limit {
			t.Errorf("limit %d: tracer saw %d steps, want %d", limit, tr.steps, limit)
		}
	}
}
