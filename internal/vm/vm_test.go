package vm_test

import (
	"bytes"
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/vm"
)

// run compiles and executes src sequentially, returning the result.
func run(t *testing.T, src string, cfg vm.Config) *vm.Result {
	t.Helper()
	prog, err := compile.Build("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, cfg)
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// runErr compiles and executes src, expecting a runtime error containing
// want.
func runErr(t *testing.T, src, want string) {
	t.Helper()
	prog, err := compile.Build("test.mc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	_, err = m.Run()
	if err == nil {
		t.Fatalf("expected runtime error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func mainRet(t *testing.T, body string) int64 {
	t.Helper()
	res := run(t, "int main() {\n"+body+"\n}", vm.Config{})
	return res.Ret
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2", 3},
		{"7 - 10", -3},
		{"6 * 7", 42},
		{"17 / 5", 3},
		{"-17 / 5", -3},
		{"17 % 5", 2},
		{"-17 % 5", -2},
		{"1 << 10", 1024},
		{"1024 >> 3", 128},
		{"0xff & 0x0f", 15},
		{"0xf0 | 0x0f", 255},
		{"0xff ^ 0x0f", 240},
		{"~0", -1},
		{"-(5)", -5},
		{"!0", 1},
		{"!7", 0},
		{"3 < 4", 1},
		{"4 < 4", 0},
		{"4 <= 4", 1},
		{"5 > 4", 1},
		{"5 >= 6", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 - 3 - 2", 5},
		{"1 ? 42 : 7", 42},
		{"0 ? 42 : 7", 7},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 0", 0},
		{"0 || 3", 1},
	}
	for _, tc := range cases {
		if got := mainRet(t, "return "+tc.expr+";"); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
int hits;
int bump() { hits = hits + 1; return 1; }
int main() {
	int a = 0 && bump();
	int b = 1 || bump();
	out(hits);
	out(a);
	out(b);
	int c = 1 && bump();
	int d = 0 || bump();
	out(hits);
	out(c);
	out(d);
	return 0;
}`
	res := run(t, src, vm.Config{})
	want := []int64{0, 0, 1, 2, 1, 1}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	if got := mainRet(t, `
	int s = 0;
	int i = 0;
	while (i < 10) { s = s + i; i = i + 1; }
	return s;`); got != 45 {
		t.Errorf("while sum = %d, want 45", got)
	}
	if got := mainRet(t, `
	int s = 0;
	for (int i = 0; i < 10; i++) s += i;
	return s;`); got != 45 {
		t.Errorf("for sum = %d, want 45", got)
	}
	if got := mainRet(t, `
	int s = 0;
	for (int i = 0; i < 10; i++) {
		if (i % 2 == 0) continue;
		if (i > 6) break;
		s += i;
	}
	return s;`); got != 1+3+5 {
		t.Errorf("break/continue sum = %d, want 9", got)
	}
	if got := mainRet(t, `
	int i = 10;
	int n = 0;
	do { n++; i--; } while (i > 0);
	return n;`); got != 10 {
		t.Errorf("do-while count = %d, want 10", got)
	}
	if got := mainRet(t, `
	int i = 0;
	int n = 0;
	do { n++; } while (i != 0);
	return n;`); got != 1 {
		t.Errorf("do-while executes at least once: %d, want 1", got)
	}
}

func TestNestedLoopsAndConditionals(t *testing.T) {
	if got := mainRet(t, `
	int total = 0;
	for (int i = 0; i < 5; i++) {
		for (int j = 0; j < 5; j++) {
			if (i == j) total += 10;
			else if (i < j) total += 1;
		}
	}
	return total;`); got != 50+10 {
		t.Errorf("nested = %d, want 60", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n-1) + fib(n-2);
}
int fact(int n) { return n <= 1 ? 1 : n * fact(n-1); }
int main() {
	out(fib(10));
	out(fact(6));
	return 0;
}`
	res := run(t, src, vm.Config{})
	if res.Output[0] != 55 || res.Output[1] != 720 {
		t.Fatalf("output %v, want [55 720]", res.Output)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int counter;
int table[16];
int start = 5;
void fill(int a[], int n) {
	for (int i = 0; i < n; i++) a[i] = i * i;
}
int sum(int a[], int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += a[i];
	return s;
}
int main() {
	fill(table, 16);
	counter += start;
	int local[8];
	fill(local, 8);
	out(sum(table, 16));
	out(sum(local, 8));
	out(counter);
	out(len(table));
	out(len(local));
	int dyn[] = alloc(100);
	dyn[99] = 7;
	out(len(dyn));
	out(dyn[99] + dyn[0]);
	return 0;
}`
	res := run(t, src, vm.Config{})
	want := []int64{1240, 140, 5, 16, 8, 100, 7}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestLocalArraysAreFreshPerActivation(t *testing.T) {
	// Bump allocation must hand every activation a fresh zeroed array.
	src := `
int leak(int x) {
	int buf[4];
	int old = buf[0];
	buf[0] = x;
	return old;
}
int main() {
	leak(42);
	return leak(7);
}`
	if got := mainRet(t, ""); got != 0 {
		_ = got
	}
	res := run(t, src, vm.Config{})
	if res.Ret != 0 {
		t.Fatalf("second activation saw stale value %d, want 0", res.Ret)
	}
}

func TestBuiltinsInOutRand(t *testing.T) {
	src := `
int main() {
	int n = inlen();
	int s = 0;
	for (int i = 0; i < n; i++) s += in(i);
	out(s);
	srand(12345);
	int a = rand();
	int b = rand();
	srand(12345);
	int c = rand();
	out(a == c);
	out(a != b);
	return 0;
}`
	res := run(t, src, vm.Config{Input: []int64{1, 2, 3, 4}})
	if res.Output[0] != 10 || res.Output[1] != 1 || res.Output[2] != 1 {
		t.Fatalf("output %v", res.Output)
	}
}

func TestPrint(t *testing.T) {
	var buf bytes.Buffer
	src := `
int main() {
	print("answer=", 42, " done");
	return 0;
}`
	run(t, src, vm.Config{Out: &buf})
	if got := buf.String(); got != "answer=42 done\n" {
		t.Fatalf("print output %q", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	runErr(t, `int main() { int x = 1 / (1 - 1); return x; }`, "division by zero")
	runErr(t, `int main() { int x = 5 % (2 - 2); return x; }`, "modulo by zero")
	runErr(t, `int a[4]; int main() { return a[4]; }`, "out of range")
	runErr(t, `int a[4]; int main() { a[0-1] = 1; return 0; }`, "out of range")
	runErr(t, `int main() { assert(1 == 2); return 0; }`, "assertion failed")
	runErr(t, `int main() { return in(0); }`, "out of range")
	runErr(t, `int main() { int a[] = alloc(0-5); return 0; }`, "invalid allocation size")
}

func TestStepLimit(t *testing.T) {
	prog, err := compile.Build("loop.mc", `int main() { while (1) {} return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{StepLimit: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestSpawnSequentialSemantics(t *testing.T) {
	src := `
int results[4];
void work(int i) { results[i] = i * 100; }
int main() {
	for (int i = 0; i < 4; i++) spawn work(i);
	sync;
	out(results[0] + results[1] + results[2] + results[3]);
	return 0;
}`
	res := run(t, src, vm.Config{})
	if res.Output[0] != 600 {
		t.Fatalf("spawn sequential got %v", res.Output)
	}
}

func TestSpawnParallel(t *testing.T) {
	src := `
int results[8];
void work(int i, int n) {
	int s = 0;
	for (int j = 0; j < n; j++) s += j ^ i;
	results[i] = s;
}
int main() {
	for (int i = 0; i < 8; i++) spawn work(i, 20000);
	sync;
	int total = 0;
	for (int i = 0; i < 8; i++) total += results[i];
	out(total);
	return 0;
}`
	prog, err := compile.Build("par.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := compile.Build("par.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	par, err := vm.New(prog2, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.Run()
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Output[0] != parRes.Output[0] {
		t.Fatalf("parallel result %d != sequential %d", parRes.Output[0], seqRes.Output[0])
	}
}

func TestImplicitJoinAtFunctionExit(t *testing.T) {
	// A function that spawns but never syncs must still join before
	// returning, so the caller observes the writes.
	src := `
int flag[1];
void setter() { flag[0] = 9; }
void spawner() { spawn setter(); }
int main() {
	spawner();
	return flag[0];
}`
	prog, err := compile.Build("join.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 9 {
		t.Fatalf("ret = %d, want 9", res.Ret)
	}
}

func TestVoidFunctionFallOff(t *testing.T) {
	src := `
int g;
void set(int v) { g = v; }
int main() { set(3); return g; }`
	res := run(t, src, vm.Config{})
	if res.Ret != 3 {
		t.Fatalf("ret=%d want 3", res.Ret)
	}
}

func TestIntFunctionFallOffReturnsZero(t *testing.T) {
	src := `
int f(int x) { if (x > 0) return 5; }
int main() { return f(0); }`
	res := run(t, src, vm.Config{})
	if res.Ret != 0 {
		t.Fatalf("ret=%d want 0", res.Ret)
	}
}

func TestGlobalValueInspection(t *testing.T) {
	src := `
int answer;
int table[3];
int main() { answer = 42; table[1] = 7; return 0; }`
	prog, err := compile.Build("g.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.GlobalValue("answer"); !ok || v != 42 {
		t.Fatalf("answer=%d,%v", v, ok)
	}
	vals, ok := m.GlobalArrayValues("table")
	if !ok || vals[1] != 7 || vals[0] != 0 {
		t.Fatalf("table=%v,%v", vals, ok)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`int main() { return x; }`, "undefined variable"},
		{`int main() { foo(); return 0; }`, "undefined function"},
		{`int f() { return 1; } int f() { return 2; } int main() { return 0; }`, "duplicate function"},
		{`int main() { break; }`, "break outside loop"},
		{`int main() { continue; }`, "continue outside loop"},
		{`void main2() {}`, "no main"},
		{`int a[4]; int main() { a = a; return 0; }`, "cannot be reassigned"},
		{`int main() { int x = 1; int x = 2; return x; }`, "duplicate variable"},
		{`int a[4]; int main() { return a; }`, "expected an int expression"},
		{`int main(int x) { return x; }`, "main must take no parameters"},
		{`void f() {} int main() { return f(); }`, "expected an int expression"},
		{`int f() { return 1; } int main() { spawn f(); return 0; }`, "must return void"},
		{`int main() { return len(3); }`, "len requires an array"},
		{`int g = rand(); int main() { return g; }`, "must be a constant expression"},
	}
	for _, tc := range cases {
		_, err := compile.Build("err.mc", tc.src)
		if err == nil {
			t.Errorf("source %q compiled, want error %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("source %q: error %q does not contain %q", tc.src, err, tc.want)
		}
	}
}
