package vm

import "alchemist/internal/obs"

// Metrics is the VM instrumentation sink: pre-resolved counters from an
// obs.Registry, shared by every run configured with it. The dispatch
// loop never touches these — each run accumulates into its per-goroutine
// execCtx and flushes the totals here once at exit — so instrumented and
// uninstrumented runs execute the same hot path. A nil *Metrics disables
// flushing entirely.
type Metrics struct {
	// Runs counts completed VM runs (including runs that ended in an
	// error or cancellation).
	Runs *obs.Counter
	// Steps counts executed instructions across all runs and goroutines.
	Steps *obs.Counter
	// CancelChecks counts dispatch-loop slow-path checks (cancellation
	// polls / step-limit probes / progress deliveries share one branch).
	CancelChecks *obs.Counter
	// Progress counts OnProgress callback deliveries.
	Progress *obs.Counter
}

// NewMetrics resolves the VM metric set from a registry.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Runs: r.Counter("alchemist_vm_runs_total",
			"Completed VM runs, including failed and cancelled ones."),
		Steps: r.Counter("alchemist_vm_steps_total",
			"Executed VM instructions across all runs and goroutines."),
		CancelChecks: r.Counter("alchemist_vm_cancel_checks_total",
			"Dispatch-loop slow-path checks (cancellation, step limit, progress)."),
		Progress: r.Counter("alchemist_vm_progress_reports_total",
			"OnProgress callback deliveries."),
	}
}

// flushRun records one completed run's totals. Safe on a nil receiver.
func (m *Metrics) flushRun(steps, checks, progress int64) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Steps.Add(steps)
	m.CancelChecks.Add(checks)
	m.Progress.Add(progress)
}
