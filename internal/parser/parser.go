// Package parser builds a mini-C AST from a token stream.
//
// The grammar is a restricted C:
//
//	program   = { globalDecl | funcDecl } .
//	funcDecl  = ("int"|"void") IDENT "(" [params] ")" block .
//	params    = param { "," param } .
//	param     = "int" IDENT [ "[" "]" ] .
//	block     = "{" { stmt } "}" .
//	stmt      = block | ifStmt | whileStmt | forStmt | doStmt
//	          | "break" ";" | "continue" ";" | "return" [expr] ";"
//	          | "spawn" call ";" | "sync" ";"
//	          | localDecl | simpleStmt ";" | ";" .
//	localDecl = "int" IDENT ( "[" expr "]" | [ "=" expr ] ) ";" .
//	simple    = lvalue asgnOp expr | lvalue "++" | lvalue "--" | expr .
//	expr      = ternary with C precedence; && and || short-circuit .
//
// For loops are desugared to while loops carrying a Post statement;
// do-while loops become while(1) loops whose condition check is appended as
// `if (!cond) break;`.
package parser

import (
	"alchemist/internal/ast"
	"alchemist/internal/lexer"
	"alchemist/internal/source"
	"alchemist/internal/token"
)

// Parse lexes and parses the file, reporting problems to diags. The
// returned program may be partial when diags has errors.
func Parse(file *source.File, diags *source.DiagList) *ast.Program {
	toks := lexer.ScanAll(file, diags)
	p := &parser{file: file, toks: toks, diags: diags}
	return p.parseProgram()
}

// ParseSource is a convenience wrapper that parses source text and returns
// an error when the text is malformed.
func ParseSource(name, src string) (*ast.Program, error) {
	file := source.NewFile(name, src)
	var diags source.DiagList
	prog := Parse(file, &diags)
	if err := diags.Err(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	file  *source.File
	toks  []token.Token
	pos   int
	diags *source.DiagList
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) tokPos(t token.Token) source.Pos { return p.file.Pos(t.Offset) }
func (p *parser) curPos() source.Pos              { return p.tokPos(p.cur()) }

func (p *parser) errorf(format string, args ...any) {
	p.diags.Errorf(p.curPos(), format, args...)
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return p.cur()
}

// sync skips tokens until a statement boundary, for error recovery.
func (p *parser) syncStmt() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.RBrace:
			return
		case token.Semi:
			p.advance()
			return
		}
		p.advance()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{File: p.file}
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwInt, token.KwVoid:
			retTok := p.next()
			nameTok := p.expect(token.IDENT)
			if p.at(token.LParen) {
				fn := p.parseFuncRest(retTok, nameTok)
				if fn != nil {
					prog.Funcs = append(prog.Funcs, fn)
				}
			} else {
				if retTok.Kind == token.KwVoid {
					p.errorf("global variable %q cannot have type void", nameTok.Text)
				}
				g := p.parseVarRest(retTok, nameTok, true)
				if g != nil {
					prog.Globals = append(prog.Globals, g)
				}
			}
		default:
			p.errorf("expected declaration, found %s", p.cur())
			p.syncStmt()
		}
	}
	return prog
}

// parseVarRest parses the remainder of a variable declaration after the
// type keyword and name have been consumed.
func (p *parser) parseVarRest(kw, name token.Token, global bool) *ast.VarDecl {
	d := &ast.VarDecl{KwPos: p.tokPos(kw), Name: name.Text}
	if p.at(token.LBracket) {
		p.advance()
		d.IsArray = true
		if !p.at(token.RBracket) {
			d.Size = p.parseExpr()
		}
		p.expect(token.RBracket)
		if p.at(token.Assign) {
			p.advance()
			d.Init = p.parseExpr()
		}
	} else if p.at(token.Assign) {
		p.advance()
		d.Init = p.parseExpr()
	}
	p.expect(token.Semi)
	_ = global
	return d
}

func (p *parser) parseFuncRest(retTok, nameTok token.Token) *ast.FuncDecl {
	fn := &ast.FuncDecl{KwPos: p.tokPos(retTok), Name: nameTok.Text}
	if retTok.Kind == token.KwInt {
		fn.Returns = ast.TypeInt
	} else {
		fn.Returns = ast.TypeVoid
	}
	p.expect(token.LParen)
	if !p.at(token.RParen) {
		for {
			p.expect(token.KwInt)
			pn := p.expect(token.IDENT)
			param := &ast.Param{NamePos: p.tokPos(pn), Name: pn.Text}
			if p.at(token.LBracket) {
				p.advance()
				p.expect(token.RBracket)
				param.IsArray = true
			}
			fn.Params = append(fn.Params, param)
			if !p.at(token.Comma) {
				break
			}
			p.advance()
		}
	}
	p.expect(token.RParen)
	if !p.at(token.LBrace) {
		p.errorf("expected function body, found %s", p.cur())
		p.syncStmt()
		return nil
	}
	fn.Body = p.parseBlock()
	return fn
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	blk := &ast.BlockStmt{LBrace: p.tokPos(lb)}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		s := p.parseStmt()
		if s != nil {
			blk.List = append(blk.List, s)
		}
	}
	p.expect(token.RBrace)
	return blk
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		p.advance()
		return nil
	case token.KwInt:
		kw := p.next()
		name := p.expect(token.IDENT)
		return &ast.DeclStmt{Decl: p.parseVarRest(kw, name, false)}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwBreak:
		t := p.next()
		p.expect(token.Semi)
		return &ast.BreakStmt{KwPos: p.tokPos(t)}
	case token.KwContinue:
		t := p.next()
		p.expect(token.Semi)
		return &ast.ContinueStmt{KwPos: p.tokPos(t)}
	case token.KwReturn:
		t := p.next()
		r := &ast.ReturnStmt{KwPos: p.tokPos(t)}
		if !p.at(token.Semi) {
			r.X = p.parseExpr()
		}
		p.expect(token.Semi)
		return r
	case token.KwSpawn:
		t := p.next()
		call := p.parseExpr()
		c, ok := call.(*ast.CallExpr)
		if !ok {
			p.errorf("spawn requires a function call")
			p.syncStmt()
			return nil
		}
		p.expect(token.Semi)
		return &ast.SpawnStmt{KwPos: p.tokPos(t), Call: c}
	case token.KwSync:
		t := p.next()
		p.expect(token.Semi)
		return &ast.SyncStmt{KwPos: p.tokPos(t)}
	default:
		s := p.parseSimpleStmt()
		p.expect(token.Semi)
		return s
	}
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (without the trailing semicolon, so for-loop headers can reuse it).
func (p *parser) parseSimpleStmt() ast.Stmt {
	x := p.parseExpr()
	switch {
	case token.IsAssignOp(p.cur().Kind):
		op := p.next()
		rhs := p.parseExpr()
		if !isLvalue(x) {
			p.diags.Errorf(x.Pos(), "left side of assignment is not assignable")
		}
		return &ast.AssignStmt{LHS: x, Op: op.Kind, RHS: rhs}
	case p.at(token.Inc), p.at(token.Dec):
		opTok := p.next()
		if !isLvalue(x) {
			p.diags.Errorf(x.Pos(), "operand of %s is not assignable", opTok.Kind)
		}
		op := token.PlusAssign
		if opTok.Kind == token.Dec {
			op = token.MinusAssign
		}
		return &ast.AssignStmt{LHS: x, Op: op, RHS: &ast.IntLit{LitPos: p.tokPos(opTok), Val: 1}}
	default:
		return &ast.ExprStmt{X: x}
	}
}

func isLvalue(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Ident, *ast.IndexExpr:
		return true
	}
	return false
}

func (p *parser) parseIf() ast.Stmt {
	t := p.next() // if
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	s := &ast.IfStmt{KwPos: p.tokPos(t), Cond: cond, Then: then}
	if p.at(token.KwElse) {
		p.advance()
		s.Else = p.parseStmt()
	}
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	t := p.next() // while
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.WhileStmt{KwPos: p.tokPos(t), Cond: cond, Body: body}
}

func (p *parser) parseFor() ast.Stmt {
	t := p.next() // for
	pos := p.tokPos(t)
	p.expect(token.LParen)

	var initStmt ast.Stmt
	if !p.at(token.Semi) {
		if p.at(token.KwInt) {
			kw := p.next()
			name := p.expect(token.IDENT)
			initStmt = &ast.DeclStmt{Decl: p.parseVarRest(kw, name, false)}
		} else {
			initStmt = p.parseSimpleStmt()
			p.expect(token.Semi)
		}
	} else {
		p.advance()
	}

	var cond ast.Expr
	if !p.at(token.Semi) {
		cond = p.parseExpr()
	} else {
		cond = &ast.IntLit{LitPos: pos, Val: 1}
	}
	p.expect(token.Semi)

	var post ast.Stmt
	if !p.at(token.RParen) {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RParen)
	body := p.parseStmt()

	loop := &ast.WhileStmt{KwPos: pos, Cond: cond, Body: body, Post: post}
	if initStmt == nil {
		return loop
	}
	// Wrap init + loop in a block so the induction variable scopes to the
	// loop.
	return &ast.BlockStmt{LBrace: pos, List: []ast.Stmt{initStmt, loop}}
}

// parseDoWhile desugars `do S while (c);` into
// `while (1) { S; if (!c) break; }`.
func (p *parser) parseDoWhile() ast.Stmt {
	t := p.next() // do
	pos := p.tokPos(t)
	body := p.parseStmt()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	p.expect(token.Semi)

	exit := &ast.IfStmt{
		KwPos: cond.Pos(),
		Cond:  &ast.UnaryExpr{OpPos: cond.Pos(), Op: token.Not, X: cond},
		Then:  &ast.BreakStmt{KwPos: cond.Pos()},
	}
	blk := &ast.BlockStmt{LBrace: pos, List: []ast.Stmt{body, exit}}
	return &ast.WhileStmt{KwPos: pos, Cond: &ast.IntLit{LitPos: pos, Val: 1}, Body: blk}
}

// ---------- Expressions (precedence climbing) ----------

// binaryPrec returns the precedence of a binary operator, or 0.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.Star, token.Slash, token.Percent:
		return 10
	case token.Plus, token.Minus:
		return 9
	case token.Shl, token.Shr:
		return 8
	case token.Lt, token.Le, token.Gt, token.Ge:
		return 7
	case token.Eq, token.Ne:
		return 6
	case token.Amp:
		return 5
	case token.Xor:
		return 4
	case token.Or:
		return 3
	case token.LAnd:
		return 2
	case token.LOr:
		return 1
	}
	return 0
}

func (p *parser) parseExpr() ast.Expr { return p.parseTernary() }

func (p *parser) parseTernary() ast.Expr {
	cond := p.parseBinary(1)
	if !p.at(token.Question) {
		return cond
	}
	p.advance()
	then := p.parseTernary()
	p.expect(token.Colon)
	els := p.parseTernary()
	return &ast.CondExpr{Cond: cond, Then: then, Else: els}
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return x
		}
		op := p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op.Kind, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.Minus, token.Not, token.Tilde, token.Plus:
		t := p.next()
		x := p.parseUnary()
		if t.Kind == token.Plus {
			return x
		}
		return &ast.UnaryExpr{OpPos: p.tokPos(t), Op: t.Kind, X: x}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBracket:
			p.advance()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.LParen:
			id, ok := x.(*ast.Ident)
			if !ok {
				p.errorf("called object is not a function name")
				p.advance()
				p.syncStmt()
				return x
			}
			p.advance()
			call := &ast.CallExpr{Fun: id}
			if !p.at(token.RParen) {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if !p.at(token.Comma) {
						break
					}
					p.advance()
				}
			}
			p.expect(token.RParen)
			x = call
		default:
			return x
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.IDENT:
		t := p.next()
		return &ast.Ident{NamePos: p.tokPos(t), Name: t.Text}
	case token.INT:
		t := p.next()
		return &ast.IntLit{LitPos: p.tokPos(t), Val: t.Val}
	case token.STRING:
		t := p.next()
		return &ast.StrLit{LitPos: p.tokPos(t), Val: t.Text}
	case token.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	default:
		p.errorf("expected expression, found %s", p.cur())
		t := p.cur()
		p.advance()
		return &ast.IntLit{LitPos: p.tokPos(t), Val: 0}
	}
}
