package parser_test

import (
	"strings"
	"testing"

	"alchemist/internal/ast"
	"alchemist/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.ParseSource("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := parser.ParseSource("t.mc", src)
	if err == nil {
		t.Fatalf("parse %q: expected error containing %q", src, want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("parse %q: error %q does not contain %q", src, err, want)
	}
}

func TestGlobalsAndFunctions(t *testing.T) {
	p := parse(t, `
int g;
int h = 42;
int arr[10];
void f() {}
int main() { return 0; }
`)
	if len(p.Globals) != 3 {
		t.Fatalf("globals = %d", len(p.Globals))
	}
	if p.Globals[0].Name != "g" || p.Globals[0].Init != nil {
		t.Error("g wrong")
	}
	if p.Globals[1].Name != "h" || p.Globals[1].Init == nil {
		t.Error("h wrong")
	}
	if !p.Globals[2].IsArray || p.Globals[2].Size == nil {
		t.Error("arr wrong")
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	if p.FindFunc("f") == nil || p.FindFunc("main") == nil || p.FindFunc("x") != nil {
		t.Error("FindFunc wrong")
	}
	if p.FindFunc("f").Returns != ast.TypeVoid || p.FindFunc("main").Returns != ast.TypeInt {
		t.Error("return types wrong")
	}
}

func TestParams(t *testing.T) {
	p := parse(t, `int f(int a, int b[], int c) { return a + c; } int main() { return 0; }`)
	f := p.FindFunc("f")
	if len(f.Params) != 3 {
		t.Fatalf("params = %d", len(f.Params))
	}
	if f.Params[0].IsArray || !f.Params[1].IsArray || f.Params[2].IsArray {
		t.Error("param array flags wrong")
	}
}

func firstStmt(t *testing.T, body string) ast.Stmt {
	t.Helper()
	p := parse(t, "int main() {\n"+body+"\nreturn 0; }")
	return p.FindFunc("main").Body.List[0]
}

func TestForDesugaring(t *testing.T) {
	s := firstStmt(t, "for (int i = 0; i < 10; i++) { }")
	blk, ok := s.(*ast.BlockStmt)
	if !ok {
		t.Fatalf("for did not desugar to a block, got %T", s)
	}
	if len(blk.List) != 2 {
		t.Fatalf("desugared block has %d stmts", len(blk.List))
	}
	if _, ok := blk.List[0].(*ast.DeclStmt); !ok {
		t.Errorf("first stmt is %T, want decl", blk.List[0])
	}
	loop, ok := blk.List[1].(*ast.WhileStmt)
	if !ok {
		t.Fatalf("second stmt is %T, want while", blk.List[1])
	}
	if loop.Post == nil {
		t.Error("for loop lost its post statement")
	}
}

func TestForWithoutInit(t *testing.T) {
	s := firstStmt(t, "for (; 1; ) { break; }")
	loop, ok := s.(*ast.WhileStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if loop.Post != nil {
		t.Error("empty post should be nil")
	}
}

func TestForInfinite(t *testing.T) {
	s := firstStmt(t, "for (;;) { break; }")
	loop, ok := s.(*ast.WhileStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	lit, ok := loop.Cond.(*ast.IntLit)
	if !ok || lit.Val != 1 {
		t.Errorf("infinite for cond = %#v", loop.Cond)
	}
}

func TestDoWhileDesugaring(t *testing.T) {
	s := firstStmt(t, "do { out(1); } while (in(0));")
	loop, ok := s.(*ast.WhileStmt)
	if !ok {
		t.Fatalf("got %T", s)
	}
	lit, ok := loop.Cond.(*ast.IntLit)
	if !ok || lit.Val != 1 {
		t.Error("do-while should become while(1)")
	}
	body, ok := loop.Body.(*ast.BlockStmt)
	if !ok || len(body.List) != 2 {
		t.Fatalf("do-while body shape wrong: %T", loop.Body)
	}
	exit, ok := body.List[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("missing exit check, got %T", body.List[1])
	}
	if _, ok := exit.Then.(*ast.BreakStmt); !ok {
		t.Error("exit check does not break")
	}
}

func TestIncDecDesugaring(t *testing.T) {
	s := firstStmt(t, "int x = 0; ")
	_ = s
	p := parse(t, `int main() { int x = 0; x++; x--; return x; }`)
	list := p.FindFunc("main").Body.List
	inc, ok := list[1].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("x++ is %T", list[1])
	}
	if lit, ok := inc.RHS.(*ast.IntLit); !ok || lit.Val != 1 {
		t.Error("x++ RHS not literal 1")
	}
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `int main() { return 1 + 2 * 3; }`)
	ret := p.FindFunc("main").Body.List[0].(*ast.ReturnStmt)
	add, ok := ret.X.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("ret.X is %T", ret.X)
	}
	if _, ok := add.Y.(*ast.BinaryExpr); !ok {
		t.Error("multiplication did not bind tighter than addition")
	}

	p2 := parse(t, `int main() { return 1 < 2 && 3 < 4 || 5 == 6; }`)
	ret2 := p2.FindFunc("main").Body.List[0].(*ast.ReturnStmt)
	or, ok := ret2.X.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("ret2.X is %T", ret2.X)
	}
	if or.Op.String() != "||" {
		t.Errorf("top operator is %v, want ||", or.Op)
	}
}

func TestTernaryRightAssociative(t *testing.T) {
	p := parse(t, `int main() { return 1 ? 2 : 3 ? 4 : 5; }`)
	ret := p.FindFunc("main").Body.List[0].(*ast.ReturnStmt)
	outer, ok := ret.X.(*ast.CondExpr)
	if !ok {
		t.Fatalf("ret.X is %T", ret.X)
	}
	if _, ok := outer.Else.(*ast.CondExpr); !ok {
		t.Error("ternary else arm should nest another ternary")
	}
}

func TestSpawnSync(t *testing.T) {
	p := parse(t, `
void work(int i) {}
int main() {
	spawn work(1);
	sync;
	return 0;
}`)
	list := p.FindFunc("main").Body.List
	sp, ok := list[0].(*ast.SpawnStmt)
	if !ok {
		t.Fatalf("spawn is %T", list[0])
	}
	if sp.Call.Fun.Name != "work" {
		t.Error("spawn callee wrong")
	}
	if _, ok := list[1].(*ast.SyncStmt); !ok {
		t.Fatalf("sync is %T", list[1])
	}
}

func TestLocalArrayForms(t *testing.T) {
	p := parse(t, `int main() {
	int a[10];
	int b[] = alloc(5);
	return a[0] + b[0];
}`)
	list := p.FindFunc("main").Body.List
	a := list[0].(*ast.DeclStmt).Decl
	if !a.IsArray || a.Size == nil || a.Init != nil {
		t.Error("a shape wrong")
	}
	b := list[1].(*ast.DeclStmt).Decl
	if !b.IsArray || b.Size != nil || b.Init == nil {
		t.Error("b shape wrong")
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `int main() { return 1 + ; }`, "expected expression")
	parseErr(t, `int main() { if 1 { } }`, "expected (")
	parseErr(t, `int main() { spawn 3; }`, "spawn requires a function call")
	parseErr(t, `int main() { 3 = x; }`, "not assignable")
	parseErr(t, `int main() { return 0 }`, "expected ;")
	parseErr(t, `void () {}`, "expected identifier")
	parseErr(t, `xyz`, "expected declaration")
	parseErr(t, `int main() { (1+2)(); }`, "not a function name")
}

func TestErrorRecoveryParsesRest(t *testing.T) {
	// One bad statement must not stop the parser from seeing later
	// functions.
	_, err := parser.ParseSource("t.mc", `
int main() { @@@ ; return 0; }
int after() { return 1; }`)
	if err == nil {
		t.Fatal("expected error")
	}
	// Parse a fresh valid program to make sure the parser is reusable.
	parse(t, `int main() { return 0; }`)
}

func TestWalk(t *testing.T) {
	p := parse(t, `
int g[4];
int f(int x) { return x * 2; }
int main() {
	int s = 0;
	for (int i = 0; i < 4; i++) {
		s += f(g[i]) > 2 ? 1 : 0;
	}
	while (s > 10) { s--; }
	do { s++; } while (s < 0);
	spawn f(1);
	sync;
	print("done", s);
	return s;
}`)
	counts := map[string]int{}
	ast.Walk(p, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr:
			counts["call"]++
		case *ast.WhileStmt:
			counts["while"]++
		case *ast.CondExpr:
			counts["cond"]++
		case *ast.IndexExpr:
			counts["index"]++
		}
		return true
	})
	if counts["call"] < 3 { // f(g[i]), f(1), print... print is a call too
		t.Errorf("calls = %d", counts["call"])
	}
	if counts["while"] != 3 { // for + while + do-while
		t.Errorf("whiles = %d", counts["while"])
	}
	if counts["cond"] != 1 || counts["index"] != 1 {
		t.Errorf("cond=%d index=%d", counts["cond"], counts["index"])
	}
	// Pruning: stop at functions, see no calls.
	pruned := 0
	ast.Walk(p, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			pruned++
		}
		return true
	})
	if pruned != 0 {
		t.Errorf("pruned walk saw %d calls", pruned)
	}
}

func TestDump(t *testing.T) {
	p := parse(t, `
int g = 3;
int main() {
	int a[2];
	a[0] = g ? 1 : 2;
	print("x", a[0]);
	return -a[0];
}`)
	text := ast.DumpString(p)
	for _, want := range []string{"global g", "func int main", "assign =", "cond ?:", "call print", "unary -", "index"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump lacks %q:\n%s", want, text)
		}
	}
}
