// Package journal is a disk-backed write-ahead log: length-prefixed,
// checksummed records appended to a sequence of segment files, with
// snapshot+compaction so the log does not grow unboundedly and a replay
// path that recovers cleanly from a crash mid-write.
//
// Layout (one directory per journal):
//
//	wal-0000000000000003.seg    framed records, appended in order
//	wal-0000000000000007.seg
//	snap-0000000000000006.snap  one framed record: the snapshot payload
//
// Every file carries a generation number from one monotonic counter.
// A snapshot with generation G captures every record in segments with
// generation < G; replay loads the newest valid snapshot and then the
// segments above it, oldest first. Within a file each record is framed
// as
//
//	[4-byte little-endian payload length][4-byte CRC32-Castagnoli][payload]
//
// A torn tail — a partial frame or a checksum mismatch, the signature
// of a crash mid-append — truncates the file at the last valid record
// instead of aborting recovery; anything after the tear (including
// later segments) is dropped, because records are only ever appended.
//
// Durability is tunable: SyncAlways fsyncs before Append returns,
// SyncInterval batches fsyncs on a timer (bounded loss window, near
// in-memory append cost), SyncNone leaves flushing to the OS.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects when appended records are fsynced.
type SyncMode string

const (
	// SyncAlways fsyncs before every Append returns: no acknowledged
	// record is ever lost, at the cost of one fsync per record.
	SyncAlways SyncMode = "always"
	// SyncInterval batches fsyncs on a timer (Options.SyncEvery): a
	// crash loses at most one interval of records.
	SyncInterval SyncMode = "interval"
	// SyncNone never fsyncs explicitly; the OS flushes when it likes.
	SyncNone SyncMode = "none"
)

// ParseSyncMode maps a flag string onto a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case SyncAlways, SyncInterval, SyncNone:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("journal: unknown sync mode %q (want always, interval, or none)", s)
}

// Options configures a Journal. Only Dir is required.
type Options struct {
	// Dir is the journal directory, created if missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes. Default 4 MiB.
	SegmentBytes int64
	// Sync selects the fsync policy. Default SyncInterval.
	Sync SyncMode
	// SyncEvery is the fsync batching period under SyncInterval.
	// Default 100ms.
	SyncEvery time.Duration
	// Metrics receives journal instrumentation; nil disables it.
	Metrics *Metrics
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, errors.New("journal: Options.Dir is required")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Sync == "" {
		o.Sync = SyncInterval
	}
	if _, err := ParseSyncMode(string(o.Sync)); err != nil {
		return o, err
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.Metrics == nil {
		o.Metrics = &Metrics{}
	}
	return o, nil
}

// Recovery is what Open found on disk: the newest valid snapshot
// payload (nil if none) and every record appended after it, in order.
type Recovery struct {
	// Snapshot is the latest intact snapshot payload, nil if the
	// journal has never snapshotted.
	Snapshot []byte
	// Records are the post-snapshot records, oldest first.
	Records [][]byte
	// TruncatedBytes counts bytes dropped from a torn tail (0 on a
	// clean shutdown).
	TruncatedBytes int64
}

const (
	frameHeader = 8        // 4-byte length + 4-byte CRC
	maxRecord   = 64 << 20 // sanity bound; larger lengths are treated as corruption
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	opts Options
	m    *Metrics

	mu      sync.Mutex
	f       *os.File // active segment
	buf     []byte   // frame scratch
	pending int64    // bytes written since the last fsync
	size    int64    // bytes in the active segment
	gen     uint64   // last generation number handed out
	segs    []uint64 // live segment generations, ascending (last = active)
	snapGen uint64   // generation of the newest snapshot, 0 if none
	closed  bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (or creates) the journal in opts.Dir, replays what is on
// disk, truncates any torn tail, and starts a fresh active segment.
func Open(opts Options) (*Journal, *Recovery, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	j := &Journal{opts: opts, m: opts.Metrics}
	rec, err := j.replay()
	if err != nil {
		return nil, nil, err
	}
	// Always append into a fresh segment: the truncated tail of the old
	// one is never reopened for writing, which keeps the tear analysis
	// ("only the newest file can be torn") true.
	if err := j.rotateLocked(); err != nil {
		return nil, nil, err
	}
	if j.opts.Sync == SyncInterval {
		j.stopSync = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	j.m.recoveredRecords.Set(int64(len(rec.Records)))
	j.m.segments.Set(int64(len(j.segs)))
	return j, rec, nil
}

// fileGen parses "wal-<gen>.seg" / "snap-<gen>.snap" names.
func fileGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return g, err == nil
}

func segName(gen uint64) string  { return fmt.Sprintf("wal-%016d.seg", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snap", gen) }

// replay scans the directory, loads the newest intact snapshot, reads
// every later segment, and truncates a torn tail. It fills j.gen,
// j.segs, and j.snapGen.
func (j *Journal) replay() (*Recovery, error) {
	entries, err := os.ReadDir(j.opts.Dir)
	if err != nil {
		return nil, err
	}
	var segs, snaps []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if g, ok := fileGen(e.Name(), "wal-", ".seg"); ok {
			segs = append(segs, g)
		}
		if g, ok := fileGen(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, g)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	for _, g := range segs {
		if g > j.gen {
			j.gen = g
		}
	}
	for _, g := range snaps {
		if g > j.gen {
			j.gen = g
		}
	}

	rec := &Recovery{}
	// Newest intact snapshot wins; a torn snapshot (crash mid-write is
	// impossible thanks to tmp+rename, but a damaged disk is not) falls
	// back to the next older one.
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, ok := readSnapshot(filepath.Join(j.opts.Dir, snapName(snaps[i])))
		if ok {
			rec.Snapshot = payload
			j.snapGen = snaps[i]
			break
		}
	}

	// Segments at or below the snapshot generation are compacted state;
	// remove leftovers from a crash mid-compaction.
	for _, g := range segs {
		if g < j.snapGen {
			os.Remove(filepath.Join(j.opts.Dir, segName(g)))
		}
	}
	// Old snapshots are superseded.
	for _, g := range snaps {
		if g < j.snapGen {
			os.Remove(filepath.Join(j.opts.Dir, snapName(g)))
		}
	}

	// Replay the live segments oldest-first. A tear ends the journal:
	// the torn file is truncated at its last valid record and anything
	// after it is dropped.
	torn := false
	for _, g := range segs {
		if g < j.snapGen {
			continue
		}
		path := filepath.Join(j.opts.Dir, segName(g))
		if torn {
			os.Remove(path)
			continue
		}
		records, dropped, err := readSegment(path)
		if err != nil {
			return nil, err
		}
		rec.Records = append(rec.Records, records...)
		if dropped > 0 {
			torn = true
			rec.TruncatedBytes += dropped
			j.m.tornTails.Inc()
		}
		j.segs = append(j.segs, g)
	}
	return rec, nil
}

// readSegment reads every intact record in the file and truncates it at
// the first torn or corrupt frame, returning the dropped byte count.
func readSegment(path string) (records [][]byte, dropped int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	off := 0
	for {
		n, payload := readFrame(data[off:])
		if n == 0 {
			break
		}
		records = append(records, payload)
		off += n
	}
	if off < len(data) {
		dropped = int64(len(data) - off)
		if err := os.Truncate(path, int64(off)); err != nil {
			return nil, 0, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
	}
	return records, dropped, nil
}

// readFrame decodes one frame from b, returning the bytes consumed and
// the payload, or (0, nil) when b starts with a partial or corrupt
// frame.
func readFrame(b []byte) (int, []byte) {
	if len(b) < frameHeader {
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxRecord || len(b) < frameHeader+n {
		return 0, nil
	}
	sum := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return 0, nil
	}
	return frameHeader + n, payload
}

// readSnapshot loads a snapshot file, reporting whether it holds one
// intact frame.
func readSnapshot(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	n, payload := readFrame(data)
	if n == 0 || n != len(data) {
		return nil, false
	}
	return payload, true
}

// appendFrame encodes payload into j.buf.
func (j *Journal) appendFrame(payload []byte) []byte {
	j.buf = j.buf[:0]
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	j.buf = append(j.buf, hdr[:]...)
	j.buf = append(j.buf, payload...)
	return j.buf
}

// Append writes one record. Under SyncAlways it is durable when Append
// returns; under SyncInterval it becomes durable within one SyncEvery
// period.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	start := time.Now()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: append on closed journal")
	}
	if j.size > 0 && j.size+int64(len(payload))+frameHeader > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	frame := j.appendFrame(payload)
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	j.size += int64(len(frame))
	j.pending += int64(len(frame))
	j.m.appends.Inc()
	j.m.appendBytes.Add(int64(len(frame)))
	j.m.recordBytes.Observe(float64(len(payload)))
	if j.opts.Sync == SyncAlways {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	j.m.appendSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (j *Journal) syncLocked() error {
	if j.pending == 0 || j.f == nil {
		return nil
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending = 0
	j.m.fsyncs.Inc()
	j.m.fsyncSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Sync forces an fsync of the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

// syncLoop is the SyncInterval fsync batcher.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.Sync()
		}
	}
}

// rotateLocked seals the active segment and opens a fresh one under the
// next generation number.
func (j *Journal) rotateLocked() error {
	if j.f != nil {
		if err := j.syncLocked(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return err
		}
		j.f = nil
	}
	j.gen++
	f, err := os.OpenFile(filepath.Join(j.opts.Dir, segName(j.gen)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	j.size = 0
	j.pending = 0
	j.segs = append(j.segs, j.gen)
	j.m.rotations.Inc()
	j.m.segments.Set(int64(len(j.segs)))
	return nil
}

// SnapshotToken marks a point in the record stream; records appended
// after StartSnapshot are preserved across the matching FinishSnapshot.
type SnapshotToken struct {
	gen uint64
}

// StartSnapshot begins a snapshot: it allocates the snapshot's
// generation and rotates the active segment above it, so that records
// appended while the caller is still encoding its state land in
// segments the compaction will keep. The intended sequence is
//
//	tok, err := j.StartSnapshot()
//	payload := encodeState()          // may run concurrently with appends
//	err = j.FinishSnapshot(tok, payload)
//
// which requires replay to tolerate records that are both reflected in
// the snapshot and present after it (append-only state machines with
// sequence numbers get this for free).
func (j *Journal) StartSnapshot() (SnapshotToken, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return SnapshotToken{}, errors.New("journal: snapshot on closed journal")
	}
	j.gen++
	tok := SnapshotToken{gen: j.gen}
	if err := j.rotateLocked(); err != nil {
		return SnapshotToken{}, err
	}
	return tok, nil
}

// FinishSnapshot durably writes the snapshot payload under the token's
// generation and compacts away every segment and snapshot below it.
func (j *Journal) FinishSnapshot(tok SnapshotToken, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: snapshot on closed journal")
	}
	if tok.gen == 0 || tok.gen <= j.snapGen {
		return fmt.Errorf("journal: stale snapshot token (gen %d, newest snapshot %d)", tok.gen, j.snapGen)
	}

	// tmp + fsync + rename + dir fsync: the snapshot is either fully
	// there under its final name or not there at all.
	final := filepath.Join(j.opts.Dir, snapName(tok.gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	frame := j.appendFrame(payload)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(j.opts.Dir)

	oldSnap := j.snapGen
	j.snapGen = tok.gen
	if oldSnap != 0 {
		os.Remove(filepath.Join(j.opts.Dir, snapName(oldSnap)))
	}
	kept := j.segs[:0]
	for _, g := range j.segs {
		if g < tok.gen {
			os.Remove(filepath.Join(j.opts.Dir, segName(g)))
			continue
		}
		kept = append(kept, g)
	}
	j.segs = kept
	j.m.snapshots.Inc()
	j.m.snapshotBytes.Observe(float64(len(payload)))
	j.m.segments.Set(int64(len(j.segs)))
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Segments returns the number of live segment files (including the
// active one).
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.segs)
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.opts.Dir }

// Close flushes, fsyncs, and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	stop := j.stopSync
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-j.syncDone
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.f != nil {
		if serr := j.syncLocked(); serr != nil {
			err = serr
		}
		if cerr := j.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		j.f = nil
	}
	return err
}

// RemoveAll deletes every journal file in dir (tests and operator
// tooling; the journal must be closed).
func RemoveAll(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if _, ok := fileGen(e.Name(), "wal-", ".seg"); ok {
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if _, ok := fileGen(e.Name(), "snap-", ".snap"); ok {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}
