package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"alchemist/internal/obs"
)

func open(t *testing.T, dir string, mod func(*Options)) (*Journal, *Recovery) {
	t.Helper()
	opts := Options{Dir: dir, Sync: SyncNone}
	if mod != nil {
		mod(&opts)
	}
	j, rec, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rec
}

func appendAll(t *testing.T, j *Journal, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func asStrings(recs [][]byte) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := open(t, dir, nil)
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh journal recovered %d records", len(rec.Records))
	}
	appendAll(t, j, "one", "two", "three")
	if err := j.Append(nil); err != nil { // empty payloads are legal
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec = open(t, dir, nil)
	got := asStrings(rec.Records)
	want := []string{"one", "two", "three", ""}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if rec.TruncatedBytes != 0 {
		t.Errorf("clean shutdown reported %d truncated bytes", rec.TruncatedBytes)
	}
}

// newestSegment returns the path of the highest-generation segment.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestGen uint64
	for _, e := range entries {
		if g, ok := fileGen(e.Name(), "wal-", ".seg"); ok && g >= bestGen {
			bestGen, best = g, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		t.Fatal("no segments on disk")
	}
	return best
}

func TestTornTailIsTruncated(t *testing.T) {
	cases := []struct {
		name string
		tear func(valid []byte) []byte // transforms a valid frame into a torn one
	}{
		{"partial header", func(f []byte) []byte { return f[:3] }},
		{"partial payload", func(f []byte) []byte { return f[:len(f)-2] }},
		{"corrupt checksum", func(f []byte) []byte {
			f = append([]byte(nil), f...)
			f[len(f)-1] ^= 0xff
			return f
		}},
		{"absurd length", func(f []byte) []byte {
			return []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 'x'}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := open(t, dir, nil)
			appendAll(t, j, "good-1", "good-2")
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			// Craft a valid frame, tear it, and append the wreckage to
			// the newest segment — exactly what a crash mid-append
			// leaves behind.
			var scratch Journal
			frame := append([]byte(nil), scratch.appendFrame([]byte("torn-record"))...)
			seg := newestSegment(t, dir)
			pre, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			torn := tc.tear(frame)
			if _, err := f.Write(torn); err != nil {
				t.Fatal(err)
			}
			f.Close()

			_, rec := open(t, dir, nil)
			got := asStrings(rec.Records)
			if len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
				t.Errorf("recovered %v, want the two good records", got)
			}
			if rec.TruncatedBytes != int64(len(torn)) {
				t.Errorf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
			}
			// The tear is physically gone: the file ends at the last
			// valid record.
			post, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(post, pre) {
				t.Errorf("torn segment not truncated back to %d bytes (got %d)", len(pre), len(post))
			}
		})
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, func(o *Options) { o.SegmentBytes = 64 })
	var want []string
	for i := 0; i < 20; i++ {
		r := fmt.Sprintf("record-%02d-%s", i, strings.Repeat("x", 16))
		want = append(want, r)
	}
	appendAll(t, j, want...)
	if segs := j.Segments(); segs < 5 {
		t.Errorf("only %d segments after 20 oversized appends", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := open(t, dir, nil)
	got := asStrings(rec.Records)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records across segments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q (cross-segment order broken)", i, got[i], want[i])
		}
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, func(o *Options) { o.SegmentBytes = 64 })
	appendAll(t, j, strings.Repeat("a", 40), strings.Repeat("b", 40), strings.Repeat("c", 40))

	tok, err := j.StartSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Records appended between Start and Finish survive the compaction.
	appendAll(t, j, "post-snapshot")
	if err := j.FinishSnapshot(tok, []byte("state-after-abc")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "after-finish")
	if segs := j.Segments(); segs != 1 {
		t.Errorf("%d segments after compaction, want 1", segs)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := open(t, dir, nil)
	if string(rec.Snapshot) != "state-after-abc" {
		t.Errorf("snapshot = %q", rec.Snapshot)
	}
	got := asStrings(rec.Records)
	if len(got) != 2 || got[0] != "post-snapshot" || got[1] != "after-finish" {
		t.Errorf("post-snapshot records = %v", got)
	}
	// The pre-snapshot segments are gone from disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if _, ok := fileGen(e.Name(), "snap-", ".snap"); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Errorf("%d snapshot files on disk, want 1", snaps)
	}
}

func TestTornSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, nil)
	appendAll(t, j, "r1")
	tok, err := j.StartSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.FinishSnapshot(tok, []byte("good-snap")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "r2")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer but corrupt snapshot (e.g. bit rot) must fall back to the
	// older intact one without losing the trailing records.
	if err := os.WriteFile(filepath.Join(dir, snapName(1<<40)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := open(t, dir, nil)
	if string(rec.Snapshot) != "good-snap" {
		t.Errorf("snapshot = %q, want the intact older one", rec.Snapshot)
	}
	if got := asStrings(rec.Records); len(got) != 1 || got[0] != "r2" {
		t.Errorf("records = %v, want [r2]", got)
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncInterval, SyncNone} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := open(t, dir, func(o *Options) {
				o.Sync = mode
				o.SyncEvery = time.Millisecond
			})
			appendAll(t, j, "a", "b")
			if mode == SyncInterval {
				time.Sleep(20 * time.Millisecond) // let the batcher run
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := open(t, dir, nil)
			if len(rec.Records) != 2 {
				t.Errorf("mode %s recovered %d records, want 2", mode, len(rec.Records))
			}
		})
	}
	if _, err := ParseSyncMode("sometimes"); err == nil {
		t.Error("ParseSyncMode accepted garbage")
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	dir := t.TempDir()
	j, _, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, j, "x", "y")
	tok, err := j.StartSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.FinishSnapshot(tok, []byte("s")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if m.appends.Value() != 2 {
		t.Errorf("appends = %d", m.appends.Value())
	}
	if m.fsyncs.Value() == 0 {
		t.Error("no fsyncs recorded under SyncAlways")
	}
	if m.snapshots.Value() != 1 {
		t.Errorf("snapshots = %d", m.snapshots.Value())
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "alchemist_journal_appends_total 2") {
		t.Error("journal metrics missing from the registry export")
	}
}

func TestConcurrentAppendsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := open(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	const writers, each = 8, 50
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < each; i++ {
				if err := j.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := open(t, dir, nil)
	if len(rec.Records) != writers*each {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*each)
	}
	// Per-writer order is preserved even though writers interleave.
	next := make(map[string]int)
	for _, r := range rec.Records {
		var w, i int
		if _, err := fmt.Sscanf(string(r), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad record %q", r)
		}
		key := fmt.Sprintf("w%d", w)
		if i != next[key] {
			t.Fatalf("writer %d: record %d arrived before %d", w, i, next[key])
		}
		next[key]++
	}
}
