package journal

import "alchemist/internal/obs"

// Metrics is the journal's instrument set. Every field is optional:
// obs instruments are nil-receiver safe, so a zero Metrics (or a nil
// Options.Metrics) runs unmetered without branching at the call sites.
type Metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	rotations   *obs.Counter
	snapshots   *obs.Counter
	tornTails   *obs.Counter

	segments         *obs.Gauge
	recoveredRecords *obs.Gauge

	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	recordBytes   *obs.Histogram
	snapshotBytes *obs.Histogram
}

// NewMetrics registers the journal instrument set on r under the
// alchemist_journal_* names.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		appends: r.Counter("alchemist_journal_appends_total",
			"Records appended to the write-ahead journal."),
		appendBytes: r.Counter("alchemist_journal_append_bytes_total",
			"Framed bytes appended to the write-ahead journal."),
		fsyncs: r.Counter("alchemist_journal_fsyncs_total",
			"fsync calls issued by the journal (batched under interval sync)."),
		rotations: r.Counter("alchemist_journal_segment_rotations_total",
			"Segment files sealed and replaced with a fresh one."),
		snapshots: r.Counter("alchemist_journal_snapshots_total",
			"Snapshot+compaction cycles completed."),
		tornTails: r.Counter("alchemist_journal_torn_tails_total",
			"Torn tail records truncated during recovery."),
		segments: r.Gauge("alchemist_journal_segments",
			"Live segment files, including the active one."),
		recoveredRecords: r.Gauge("alchemist_journal_recovered_records",
			"Records replayed from disk at the last open."),
		appendSeconds: r.Histogram("alchemist_journal_append_seconds",
			"Wall-clock latency of one journal append (includes the fsync under always sync).", nil),
		fsyncSeconds: r.Histogram("alchemist_journal_fsync_seconds",
			"Wall-clock latency of one journal fsync.", nil),
		recordBytes: r.Histogram("alchemist_journal_record_bytes",
			"Payload size of appended records.", obs.ByteBuckets),
		snapshotBytes: r.Histogram("alchemist_journal_snapshot_bytes",
			"Payload size of written snapshots.", obs.ByteBuckets),
	}
}
