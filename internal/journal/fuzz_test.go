package journal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment writes a real journal segment — several framed records
// through the production append path — and returns its raw bytes, the
// honest seed for the decoder fuzzers.
func buildSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	j, _, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		tb.Fatal(err)
	}
	payloads := [][]byte{
		[]byte(`{"type":"job","id":"fuzz-1","state":"queued"}`),
		[]byte(`{"type":"event","id":"fuzz-1","event":{"seq":0,"type":"state"}}`),
		{},                 // empty record
		{0x00, 0xff, 0x7f}, // binary record
	}
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			tb.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		tb.Fatalf("no segment written (err %v)", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func addSeeds(f *testing.F) []byte {
	seg := buildSegment(f)
	f.Add(seg) // intact segment
	if len(seg) > 3 {
		f.Add(seg[:len(seg)-3]) // torn tail mid-frame
	}
	if len(seg) > frameHeader {
		corrupt := append([]byte(nil), seg...)
		corrupt[frameHeader/2] ^= 0xff // CRC byte flipped
		f.Add(corrupt)
		flipped := append([]byte(nil), seg...)
		flipped[len(flipped)-1] ^= 0x01 // payload bit rot
		f.Add(flipped)
	}
	huge := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(huge, 0xffffffff) // length far past maxRecord
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	return seg
}

// FuzzReadFrame feeds arbitrary bytes through the frame decoder the way
// recovery does — iterating frames from the front — and asserts the
// invariants a crash-safe reader lives by: no panic, guaranteed
// termination, every accepted frame in bounds and checksum-true.
func FuzzReadFrame(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for iter := 0; ; iter++ {
			if iter > len(data)/frameHeader+1 {
				t.Fatalf("frame iteration did not terminate (offset %d of %d)", off, len(data))
			}
			n, payload := readFrame(data[off:])
			if n == 0 {
				break // decoder stops at the first partial/corrupt frame
			}
			if n < frameHeader || off+n > len(data) {
				t.Fatalf("consumed %d bytes at offset %d of %d: out of bounds", n, off, len(data))
			}
			if len(payload) != n-frameHeader {
				t.Fatalf("payload length %d does not match consumed %d", len(payload), n)
			}
			if want := binary.LittleEndian.Uint32(data[off+4:]); crc32.Checksum(payload, castagnoli) != want {
				t.Fatalf("accepted a frame whose checksum does not match")
			}
			off += n
		}
	})
}

// FuzzReadSegment runs arbitrary bytes through the full segment reader
// (including its torn-tail truncation) and checks the byte accounting:
// decoded frames plus the dropped tail must cover the input exactly,
// and the truncated file must hold precisely the intact prefix.
func FuzzReadSegment(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal-0000000000000001.seg")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		records, dropped, err := readSegment(path)
		if err != nil {
			t.Fatalf("readSegment on plain file: %v", err)
		}
		total := 0
		for _, r := range records {
			total += frameHeader + len(r)
		}
		if total+int(dropped) != len(data) {
			t.Fatalf("accounting: %d framed + %d dropped != %d input bytes", total, dropped, len(data))
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(total) {
			t.Fatalf("file holds %d bytes after truncation, want the %d-byte intact prefix", fi.Size(), total)
		}
	})
}
