// Package advisor converts a dependence profile into the transformation
// guidance described in the paper's §II: which constructs to annotate as
// futures, where to join, which variables to privatize, and which resets
// to hoist into the continuation.
package advisor

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"alchemist/internal/core"
	"alchemist/internal/report"
)

// Action is the kind of transformation suggested.
type Action int

const (
	// AnnotateFuture marks the construct for asynchronous evaluation: all
	// RAW distances exceed the construct duration.
	AnnotateFuture Action = iota
	// JoinBefore asks for a join (claim point) before a specific read:
	// the RAW edge has Tdep > Tdur so a join suffices to respect it.
	JoinBefore
	// Blocking flags a RAW edge with Tdep <= Tdur: the continuation needs
	// the value too early; parallelizing requires restructuring.
	Blocking
	// Privatize suggests a private copy of the conflicting location: a
	// WAR/WAW edge with Tdep <= Tdur would let the construct observe or
	// clobber its logical future.
	Privatize
	// JoinBeforeWrite handles WAR/WAW edges with Tdep > Tdur: joining the
	// future before the conflicting write preserves ordering.
	JoinBeforeWrite
	// TooSmall reports a construct whose duration is too short to benefit
	// from asynchronous execution.
	TooSmall
)

func (a Action) String() string {
	switch a {
	case AnnotateFuture:
		return "annotate-future"
	case JoinBefore:
		return "join-before-read"
	case Blocking:
		return "blocking-dependence"
	case Privatize:
		return "privatize"
	case JoinBeforeWrite:
		return "join-before-write"
	case TooSmall:
		return "too-small"
	default:
		return "?"
	}
}

// Advice is one suggestion about one construct (and possibly one edge).
type Advice struct {
	Action Action
	// Edge is the dependence motivating the advice; zero-valued for
	// construct-level advice.
	Edge core.Edge
	Text string
}

// Report is the advisor's output for one construct.
type Report struct {
	Construct *core.ConstructStat
	// Parallelizable is the paper's headline judgment: the construct is
	// big enough and has no blocking RAW dependences.
	Parallelizable bool
	// Score ranks candidates: duration weighted down by violating
	// dependences.
	Score   float64
	Advices []Advice
}

// Config tunes the advisor.
type Config struct {
	// MinDuration is the smallest mean construct duration worth
	// parallelizing (default 1000 instructions).
	MinDuration int64
}

// Analyze produces advice for every construct, ranked by descending
// score.
func Analyze(p *core.Profile, cfg Config) []*Report {
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 1000
	}
	var reports []*Report
	for _, c := range p.Constructs {
		reports = append(reports, analyzeConstruct(c, cfg))
	}
	sort.SliceStable(reports, func(i, j int) bool {
		if reports[i].Parallelizable != reports[j].Parallelizable {
			return reports[i].Parallelizable
		}
		return reports[i].Score > reports[j].Score
	})
	return reports
}

// AnalyzeConstruct produces advice for a single construct.
func AnalyzeConstruct(c *core.ConstructStat, cfg Config) *Report {
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 1000
	}
	return analyzeConstruct(c, cfg)
}

func analyzeConstruct(c *core.ConstructStat, cfg Config) *Report {
	r := &Report{Construct: c}
	dur := c.MeanDur()
	if dur < cfg.MinDuration {
		r.Advices = append(r.Advices, Advice{
			Action: TooSmall,
			Text: fmt.Sprintf("mean duration %d < %d instructions; asynchronous execution would not pay for itself",
				dur, cfg.MinDuration),
		})
		return r
	}

	blockingRAW := 0
	for _, e := range c.Edges {
		switch e.Type {
		case core.RAW:
			if e.Violates(dur) {
				blockingRAW++
				r.Advices = append(r.Advices, Advice{
					Action: Blocking, Edge: e,
					Text: fmt.Sprintf("RAW line %d -> line %d has Tdep=%d <= Tdur=%d: the continuation needs the value before the construct would finish",
						e.HeadPos.Line, e.TailPos.Line, e.MinDist, dur),
				})
			} else {
				r.Advices = append(r.Advices, Advice{
					Action: JoinBefore, Edge: e,
					Text: fmt.Sprintf("RAW line %d -> line %d has Tdep=%d > Tdur=%d: join the future before the read at line %d",
						e.HeadPos.Line, e.TailPos.Line, e.MinDist, dur, e.TailPos.Line),
				})
			}
		case core.WAR, core.WAW:
			if e.Violates(dur) {
				verb := "the read at"
				if e.Type == core.WAW {
					verb = "the earlier write at"
				}
				r.Advices = append(r.Advices, Advice{
					Action: Privatize, Edge: e,
					Text: fmt.Sprintf("%s line %d -> line %d has Tdep=%d <= Tdur=%d: privatize the conflicting location (%s line %d would otherwise see its logical future)",
						e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist, dur, verb, e.HeadPos.Line),
				})
			} else {
				r.Advices = append(r.Advices, Advice{
					Action: JoinBeforeWrite, Edge: e,
					Text: fmt.Sprintf("%s line %d -> line %d has Tdep=%d > Tdur=%d: joining before the write at line %d suffices",
						e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist, dur, e.TailPos.Line),
				})
			}
		}
	}

	if blockingRAW == 0 {
		r.Parallelizable = true
		r.Advices = append([]Advice{{
			Action: AnnotateFuture,
			Text:   "all RAW distances exceed the construct duration: annotate as a future and join at the first conflicting access",
		}}, r.Advices...)
	}
	r.Score = float64(c.Ttotal) / float64(1+blockingRAW)
	return r
}

// WriteReports renders the top reports as text.
func WriteReports(w io.Writer, p *core.Profile, reports []*Report, top int) {
	shown := 0
	for _, r := range reports {
		if top > 0 && shown >= top {
			return
		}
		shown++
		status := "NOT parallelizable as-is"
		if r.Parallelizable {
			status = "future candidate"
		}
		c := r.Construct
		fmt.Fprintf(w, "%s (line %d): Tdur=%d inst=%d -- %s\n",
			report.ConstructName(c), c.Pos.Line, c.Ttotal, c.Instances, status)
		for _, a := range r.Advices {
			fmt.Fprintf(w, "    [%s] %s\n", a.Action, a.Text)
		}
	}
}

// TextReports renders reports to a string.
func TextReports(p *core.Profile, reports []*Report, top int) string {
	var b strings.Builder
	WriteReports(&b, p, reports, top)
	return b.String()
}
