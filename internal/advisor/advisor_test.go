package advisor_test

import (
	"strings"
	"testing"

	"alchemist/internal/advisor"
	"alchemist/internal/core"
	"alchemist/internal/vm"
)

func profileSrc(t *testing.T, src string) *core.Profile {
	t.Helper()
	p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func reportFor(t *testing.T, p *core.Profile, fn string) *advisor.Report {
	t.Helper()
	c := p.ConstructForFunc(fn)
	if c == nil {
		t.Fatalf("no construct %s", fn)
	}
	return advisor.AnalyzeConstruct(c, advisor.Config{MinDuration: 100})
}

func hasAction(r *advisor.Report, a advisor.Action) bool {
	for _, adv := range r.Advices {
		if adv.Action == a {
			return true
		}
	}
	return false
}

func TestFutureCandidate(t *testing.T) {
	src := `
int result;
int sink;
void work() {
	int s = 0;
	for (int i = 0; i < 100; i++) { s += i; }
	result = s;
}
int main() {
	work();
	int spin = 0;
	for (int i = 0; i < 2500; i++) { spin += i; }
	sink = result + spin;
	return 0;
}`
	p := profileSrc(t, src)
	r := reportFor(t, p, "work")
	if !r.Parallelizable {
		t.Fatalf("work should be parallelizable: %+v", r.Advices)
	}
	if !hasAction(r, advisor.AnnotateFuture) {
		t.Error("missing annotate-future advice")
	}
	if !hasAction(r, advisor.JoinBefore) {
		t.Error("missing join-before-read advice for the far read")
	}
}

func TestBlockingDependence(t *testing.T) {
	src := `
int result;
int sink;
void work() {
	int s = 0;
	for (int i = 0; i < 500; i++) { s += i; }
	result = s;
}
int main() {
	for (int r = 0; r < 5; r++) {
		work();
		sink = result;
	}
	return 0;
}`
	p := profileSrc(t, src)
	r := reportFor(t, p, "work")
	if r.Parallelizable {
		t.Error("work with an immediate consumer should not be parallelizable")
	}
	if !hasAction(r, advisor.Blocking) {
		t.Error("missing blocking-dependence advice")
	}
}

func TestPrivatizeAdvice(t *testing.T) {
	src := `
int buf;
int sink;
void producer() {
	buf = sink & 15;
	int s = 0;
	for (int i = 0; i < 300; i++) { s += i; }
	sink = buf + s;
}
int main() {
	for (int r = 0; r < 6; r++) {
		producer();
	}
	return 0;
}`
	p := profileSrc(t, src)
	r := reportFor(t, p, "producer")
	// producer reads buf then the next call writes it: WAR with a
	// distance of roughly one call gap vs a large duration -> privatize.
	if !hasAction(r, advisor.Privatize) {
		t.Errorf("missing privatize advice: %+v", r.Advices)
	}
}

func TestTooSmall(t *testing.T) {
	src := `
int g;
void tiny() { g = g + 1; }
int main() {
	for (int i = 0; i < 10; i++) { tiny(); }
	return 0;
}`
	p := profileSrc(t, src)
	c := p.ConstructForFunc("tiny")
	r := advisor.AnalyzeConstruct(c, advisor.Config{MinDuration: 1000})
	if r.Parallelizable {
		t.Error("tiny construct marked parallelizable")
	}
	if !hasAction(r, advisor.TooSmall) {
		t.Error("missing too-small advice")
	}
}

func TestAnalyzeRanking(t *testing.T) {
	src := `
int a;
int b;
void clean() {
	int s = 0;
	for (int i = 0; i < 2000; i++) { s += i; }
	a = s;
}
void dirty() {
	int s = 0;
	for (int i = 0; i < 2000; i++) { s += b; b = s & 7; }
}
int main() {
	for (int r = 0; r < 3; r++) {
		clean();
		dirty();
	}
	int x = a;
	out(x);
	return 0;
}`
	p := profileSrc(t, src)
	reports := advisor.Analyze(p, advisor.Config{MinDuration: 100})
	if len(reports) == 0 {
		t.Fatal("no reports")
	}
	// Parallelizable reports come first.
	seenNonPar := false
	for _, r := range reports {
		if !r.Parallelizable {
			seenNonPar = true
		} else if seenNonPar {
			t.Fatal("parallelizable report after non-parallelizable one")
		}
	}
	text := advisor.TextReports(p, reports, 5)
	if !strings.Contains(text, "future candidate") {
		t.Errorf("rendered advice lacks candidates:\n%s", text)
	}
	if !strings.Contains(text, "[annotate-future]") {
		t.Errorf("rendered advice lacks actions:\n%s", text)
	}
}

func TestActionStrings(t *testing.T) {
	for a, want := range map[advisor.Action]string{
		advisor.AnnotateFuture:  "annotate-future",
		advisor.JoinBefore:      "join-before-read",
		advisor.Blocking:        "blocking-dependence",
		advisor.Privatize:       "privatize",
		advisor.JoinBeforeWrite: "join-before-write",
		advisor.TooSmall:        "too-small",
	} {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
	if advisor.Action(99).String() != "?" {
		t.Error("unknown action string")
	}
}

func TestJoinBeforeWrite(t *testing.T) {
	src := `
int v;
int sink;
void reader() {
	int s = 0;
	for (int i = 0; i < 400; i++) { s += v; }
	sink = s;
}
int main() {
	reader();
	int spin = 0;
	for (int i = 0; i < 2500; i++) { spin += i; }
	v = spin;
	out(v);
	return 0;
}`
	p := profileSrc(t, src)
	r := reportFor(t, p, "reader")
	// reader's WAR to the far write can be satisfied by joining before
	// the write.
	if !hasAction(r, advisor.JoinBeforeWrite) {
		t.Errorf("missing join-before-write: %+v", r.Advices)
	}
}
