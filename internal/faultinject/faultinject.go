// Package faultinject is a seeded, composable fault-injection harness
// for exercising the client SDK and server against the failures a real
// deployment sees: added latency, 5xx bursts, dropped connections, and
// mid-stream cuts. Faults stack as an http.RoundTripper chain on the
// client side (so the server under test stays pristine) or as an
// http.Handler middleware on the server side.
//
// Everything is driven by a caller-supplied *rand.Rand, so a failing
// run reproduces from its seed.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDropped is the connection-level error surfaced by DropRequest and
// DropResponse: the transport equivalent of a RST mid-exchange.
var ErrDropped = errors.New("faultinject: connection dropped")

// Fault decides one request's fate. It may fail the request outright,
// fabricate a response, delay, or call next and tamper with the result.
type Fault func(req *http.Request, next http.RoundTripper) (*http.Response, error)

// Injector is an http.RoundTripper that runs each request through a
// fault chain before (and around) the base transport.
type Injector struct {
	base   http.RoundTripper
	faults []Fault

	// Injected counts the faults that actually fired.
	Injected atomic.Int64
}

// Chain wraps base (nil = http.DefaultTransport) with faults, applied
// in order: faults[0] sees the request first.
func Chain(base http.RoundTripper, faults ...Fault) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Injector{base: base, faults: faults}
}

// Use appends faults to the chain. The fault constructors below are
// methods on Injector (so firings land on its counter), which makes
// this the usual wiring: build the Injector first, then Use the faults
// it constructs. Not safe to call once requests are in flight.
func (in *Injector) Use(faults ...Fault) *Injector {
	in.faults = append(in.faults, faults...)
	return in
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	next := in.base
	// Build the chain back-to-front so faults[0] runs first.
	for i := len(in.faults) - 1; i >= 0; i-- {
		f := in.faults[i]
		inner := next
		next = roundTripperFunc(func(r *http.Request) (*http.Response, error) {
			return f(r, inner)
		})
	}
	return next.RoundTrip(req)
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// lockedRand serializes a *rand.Rand: fault chains run on concurrent
// request goroutines.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (lr *lockedRand) Float64() float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.rng.Float64()
}

func (lr *lockedRand) Int63n(n int64) int64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.rng.Int63n(n)
}

// NewRand builds the seeded source the fault constructors take.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Latency delays a fraction p of requests by a uniform duration in
// [min, max] before forwarding them.
func (in *Injector) Latency(rng *rand.Rand, p float64, min, max time.Duration) Fault {
	lr := &lockedRand{rng: rng}
	return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		if lr.Float64() < p {
			in.Injected.Add(1)
			d := min
			if max > min {
				d += time.Duration(lr.Int63n(int64(max - min + 1)))
			}
			select {
			case <-req.Context().Done():
				return nil, req.Context().Err()
			case <-time.After(d):
			}
		}
		return next.RoundTrip(req)
	}
}

// ServerError answers a fraction p of requests with a synthetic status
// (e.g. 502) without the request ever reaching the server — the shape
// of a failing proxy or LB in front of a healthy backend.
func (in *Injector) ServerError(rng *rand.Rand, p float64, status int) Fault {
	lr := &lockedRand{rng: rng}
	return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		if lr.Float64() < p {
			in.Injected.Add(1)
			body := fmt.Sprintf(`{"error":{"code":"internal","message":"faultinject: synthetic %d"}}`, status)
			return &http.Response{
				StatusCode: status,
				Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
				Proto:      req.Proto,
				ProtoMajor: req.ProtoMajor,
				ProtoMinor: req.ProtoMinor,
				Header:     http.Header{"Content-Type": []string{"application/json"}},
				Body:       io.NopCloser(strings.NewReader(body)),
				Request:    req,
			}, nil
		}
		return next.RoundTrip(req)
	}
}

// DropRequest fails a fraction p of requests with ErrDropped before
// they reach the server: a connection refused / reset on dial.
func (in *Injector) DropRequest(rng *rand.Rand, p float64) Fault {
	lr := &lockedRand{rng: rng}
	return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		if lr.Float64() < p {
			in.Injected.Add(1)
			return nil, ErrDropped
		}
		return next.RoundTrip(req)
	}
}

// DropResponse forwards a fraction p of requests to the server, then
// discards the response and reports ErrDropped — the nasty case where
// the server did the work but the client cannot know. Retrying such a
// request is only safe when it is idempotent, which is exactly what
// this fault exists to prove.
func (in *Injector) DropResponse(rng *rand.Rand, p float64) Fault {
	lr := &lockedRand{rng: rng}
	return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		drop := lr.Float64() < p
		resp, err := next.RoundTrip(req)
		if err != nil || !drop {
			return resp, err
		}
		in.Injected.Add(1)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, ErrDropped
	}
}

// CutBody lets a fraction p of responses start streaming, then severs
// the body after limit bytes with ErrDropped — a mid-stream SSE cut.
func (in *Injector) CutBody(rng *rand.Rand, p float64, limit int64) Fault {
	lr := &lockedRand{rng: rng}
	return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
		resp, err := next.RoundTrip(req)
		if err != nil || lr.Float64() >= p {
			return resp, err
		}
		in.Injected.Add(1)
		resp.Body = &cutBody{rc: resp.Body, remaining: limit}
		return resp, nil
	}
}

// cutBody reads through to its underlying body until the byte budget is
// spent, then fails like a severed TCP stream.
type cutBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (cb *cutBody) Read(p []byte) (int, error) {
	if cb.remaining <= 0 {
		return 0, ErrDropped
	}
	if int64(len(p)) > cb.remaining {
		p = p[:cb.remaining]
	}
	n, err := cb.rc.Read(p)
	cb.remaining -= int64(n)
	if err == nil && cb.remaining <= 0 {
		err = ErrDropped
	}
	return n, err
}

func (cb *cutBody) Close() error { return cb.rc.Close() }

// Middleware wraps a server handler so a fraction p of requests are
// answered with a synthetic status before the real handler runs —
// server-side injection for handlers under test. The counter reports
// how many requests were failed.
func Middleware(rng *rand.Rand, p float64, status int, next http.Handler) (http.Handler, *atomic.Int64) {
	lr := &lockedRand{rng: rng}
	var injected atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if lr.Float64() < p {
			injected.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":{"code":"internal","message":"faultinject: synthetic %d"}}`, status)
			return
		}
		next.ServeHTTP(w, r)
	})
	return h, &injected
}
