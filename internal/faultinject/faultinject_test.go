package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestChainOrderAndPassthrough(t *testing.T) {
	ts := okServer(t)
	var order []string
	tag := func(name string) Fault {
		return func(req *http.Request, next http.RoundTripper) (*http.Response, error) {
			order = append(order, name)
			return next.RoundTrip(req)
		}
	}
	in := Chain(nil, tag("a"), tag("b"))
	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	resp, err := in.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want ok", body)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("fault order = %v, want [a b]", order)
	}
}

func TestServerErrorSynthetic(t *testing.T) {
	ts := okServer(t)
	in := Chain(nil)
	in.Use(in.ServerError(NewRand(1), 1.0, http.StatusBadGateway))
	c := &http.Client{Transport: in}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if in.Injected.Load() != 1 {
		t.Fatalf("Injected = %d, want 1", in.Injected.Load())
	}
}

func TestDropRequestNeverReachesServer(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
	}))
	defer ts.Close()
	in := Chain(nil)
	in.Use(in.DropRequest(NewRand(1), 1.0))
	c := &http.Client{Transport: in}
	_, err := c.Get(ts.URL)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if hits != 0 {
		t.Fatalf("server hits = %d, want 0", hits)
	}
}

func TestDropResponseReachesServer(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, "done")
	}))
	defer ts.Close()
	in := Chain(nil)
	in.Use(in.DropResponse(NewRand(1), 1.0))
	c := &http.Client{Transport: in}
	_, err := c.Get(ts.URL)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if hits != 1 {
		t.Fatalf("server hits = %d, want 1 (the work happened; the response was lost)", hits)
	}
}

func TestCutBodySeversMidStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "0123456789abcdef")
	}))
	defer ts.Close()
	in := Chain(nil)
	in.Use(in.CutBody(NewRand(1), 1.0, 4))
	c := &http.Client{Transport: in}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("read err = %v, want ErrDropped", err)
	}
	if len(body) > 4 {
		t.Fatalf("read %d bytes past the cut limit of 4", len(body))
	}
}

func TestLatencyDelays(t *testing.T) {
	ts := okServer(t)
	in := Chain(nil)
	in.Use(in.Latency(NewRand(1), 1.0, 30*time.Millisecond, 30*time.Millisecond))
	c := &http.Client{Transport: in}
	start := time.Now()
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request took %v, want >= 30ms", d)
	}
}

func TestSeededDeterminism(t *testing.T) {
	ts := okServer(t)
	run := func(seed int64) []bool {
		in := Chain(nil)
		in.Use(in.DropRequest(NewRand(seed), 0.5))
		c := &http.Client{Transport: in}
		var outcomes []bool
		for i := 0; i < 32; i++ {
			resp, err := c.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
}

func TestMiddlewareInjects(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	h, injected := Middleware(NewRand(1), 1.0, http.StatusServiceUnavailable, inner)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if injected.Load() != 1 {
		t.Fatalf("injected = %d, want 1", injected.Load())
	}
}
