// Package dom computes dominator and post-dominator trees over a CFG
// using the Cooper-Harvey-Kennedy iterative algorithm.
//
// Alchemist uses post-dominance to delimit constructs: a construct opened
// by a predicate closes at the predicate's immediate post-dominator
// (paper §III.A). Blocks with no path to the exit (infinite loops) have no
// post-dominator; their constructs close only at function exit.
package dom

import "alchemist/internal/cfg"

// Tree holds immediate-dominator links for one direction of the CFG.
type Tree struct {
	// Idom[b] is the immediate (post-)dominator block ID of block b, or -1
	// for the root and for unreachable blocks.
	Idom []int
	root int
}

// Root returns the tree root (entry for dominators, exit for
// post-dominators).
func (t *Tree) Root() int { return t.root }

// Dominates reports whether a (post-)dominates b (reflexively).
func (t *Tree) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// Dominators computes the dominator tree rooted at the entry block.
func Dominators(g *cfg.Graph) *Tree {
	return build(g, 0, func(b *cfg.Block) []int { return b.Preds }, func(b *cfg.Block) []int { return b.Succs })
}

// PostDominators computes the post-dominator tree rooted at the virtual
// exit block.
func PostDominators(g *cfg.Graph) *Tree {
	return build(g, g.Exit, func(b *cfg.Block) []int { return b.Succs }, func(b *cfg.Block) []int { return b.Preds })
}

// build runs CHK over the graph with the given edge orientation: preds
// returns the predecessors in the chosen direction, succs the successors
// (used for the DFS ordering).
func build(g *cfg.Graph, root int, preds, succs func(*cfg.Block) []int) *Tree {
	n := len(g.Blocks)
	// Reverse postorder from root following succs.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range succs(g.Blocks[b]) {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(root)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(g.Blocks[b]) {
				if rpoNum[p] == -1 || idom[p] == -1 {
					continue // unreachable in this orientation
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	idom[root] = -1
	return &Tree{Idom: idom, root: root}
}
