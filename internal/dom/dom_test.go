package dom_test

import (
	"math/rand"
	"testing"

	"alchemist/internal/cfg"
	"alchemist/internal/compile"
	"alchemist/internal/dom"
)

func graphFor(t *testing.T, src, fn string) *cfg.Graph {
	t.Helper()
	prog, err := compile.Build("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FindFunc(fn)
	if f == nil {
		t.Fatalf("no func %s", fn)
	}
	return cfg.New(f)
}

func TestDominatorsDiamond(t *testing.T) {
	g := graphFor(t, `
int main() {
	int x = in(0);
	int r;
	if (x > 0) { r = 1; } else { r = 2; }
	return r;
}`, "main")
	dt := dom.Dominators(g)
	// Entry dominates every reachable block (the unreachable
	// implicit-return tail after an explicit return has Idom == -1).
	for _, b := range g.Blocks {
		if b.ID == 0 || dt.Idom[b.ID] == -1 {
			continue
		}
		if !dt.Dominates(0, b.ID) {
			t.Errorf("entry does not dominate block %d", b.ID)
		}
	}
	if dt.Root() != 0 {
		t.Errorf("root = %d", dt.Root())
	}
}

func TestPostDominatorsIfElse(t *testing.T) {
	g := graphFor(t, `
int main() {
	int x = in(0);
	int r = 0;
	if (x > 0) { r = 1; } else { r = 2; }
	r = r + 1;
	return r;
}`, "main")
	pd := dom.PostDominators(g)
	// The exit post-dominates everything.
	for _, b := range g.Blocks {
		if b.ID == g.Exit {
			continue
		}
		if !pd.Dominates(g.Exit, b.ID) {
			t.Errorf("exit does not post-dominate block %d", b.ID)
		}
	}
	// The branch block's immediate post-dominator is the join block (the
	// one that starts with r = r + 1), not either arm.
	var brBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.Start < b.End && len(b.Succs) == 2 {
			brBlock = b
		}
	}
	if brBlock == nil {
		t.Fatal("no branch block")
	}
	ip := pd.Idom[brBlock.ID]
	if ip == brBlock.Succs[0] || ip == brBlock.Succs[1] {
		// The arms are non-empty here, so the ipdom must be beyond them.
		t.Errorf("ipdom of branch is an arm (%d)", ip)
	}
	if ip == g.Exit {
		t.Errorf("ipdom of branch should be the join, not the exit")
	}
}

func TestPostDominatorsLoopWithReturn(t *testing.T) {
	// A return inside the loop means the if's ipdom is the virtual exit.
	g := graphFor(t, `
int f(int n) {
	for (int i = 0; i < n; i++) {
		if (i == 3) { return i; }
	}
	return 0-1;
}
int main() { return f(in(0)); }`, "f")
	pd := dom.PostDominators(g)
	var ifBlock *cfg.Block
	for _, b := range g.Blocks {
		if b.Start < b.End && len(b.Succs) == 2 {
			// The inner if branch: one arm returns.
			for _, s := range b.Succs {
				sb := g.Blocks[s]
				for _, ss := range sb.Succs {
					if ss == g.Exit {
						ifBlock = b
					}
				}
			}
		}
	}
	if ifBlock == nil {
		t.Skip("could not isolate the if block in this lowering")
	}
	if ip := pd.Idom[ifBlock.ID]; ip != g.Exit {
		t.Errorf("if-with-return ipdom = %d, want exit %d", ip, g.Exit)
	}
}

func TestInfiniteLoopHasNoPostDominator(t *testing.T) {
	g := graphFor(t, `
int main() {
	while (1) {
		int x = in(0);
		if (x == 0) { break; }
	}
	return 0;
}`, "main")
	pd := dom.PostDominators(g)
	// With the break, all blocks still reach the exit; every reachable
	// block must have a post-dominator chain ending at the exit.
	for _, b := range g.Blocks {
		if b.ID == g.Exit || b.Start == b.End {
			continue
		}
		seen := 0
		for x := b.ID; x != -1 && seen < len(g.Blocks)+1; x = pd.Idom[x] {
			seen++
			if x == g.Exit {
				break
			}
		}
	}
}

// randomGraph builds a random connected digraph over n blocks for the
// brute-force comparison. Block 0 is entry; block n-1 acts as exit.
type randGraph struct {
	n     int
	succs [][]int
	preds [][]int
}

func makeRandGraph(r *rand.Rand, n int) *randGraph {
	g := &randGraph{n: n, succs: make([][]int, n), preds: make([][]int, n)}
	addEdge := func(a, b int) {
		g.succs[a] = append(g.succs[a], b)
		g.preds[b] = append(g.preds[b], a)
	}
	// Spine guarantees the exit is reachable from every spine node.
	for i := 0; i < n-1; i++ {
		addEdge(i, i+1)
	}
	// Random extra edges.
	extra := r.Intn(2 * n)
	for e := 0; e < extra; e++ {
		a, b := r.Intn(n-1), r.Intn(n)
		if a != b {
			addEdge(a, b)
		}
	}
	return g
}

// brutePostDominators computes post-dominator sets by the fixed-point
// set definition.
func brutePostDominators(g *randGraph, exit int) [][]bool {
	n := g.n
	pdom := make([][]bool, n)
	for i := range pdom {
		pdom[i] = make([]bool, n)
		if i == exit {
			pdom[i][i] = true
		} else {
			for j := range pdom[i] {
				pdom[i][j] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if b == exit {
				continue
			}
			next := make([]bool, n)
			if len(g.succs[b]) > 0 {
				for j := 0; j < n; j++ {
					next[j] = true
				}
				for _, s := range g.succs[b] {
					for j := 0; j < n; j++ {
						next[j] = next[j] && pdom[s][j]
					}
				}
			}
			next[b] = true
			for j := 0; j < n; j++ {
				if next[j] != pdom[b][j] {
					pdom[b] = next
					changed = true
					break
				}
			}
		}
	}
	return pdom
}

// TestPostDominatorsAgainstBruteForce cross-checks the CHK iterative
// result against the set-based fixed point on random graphs.
func TestPostDominatorsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(10)
		rg := makeRandGraph(r, n)

		// Mirror into a cfg.Graph (blocks with fake spans).
		g := &cfg.Graph{}
		for i := 0; i < n; i++ {
			g.Blocks = append(g.Blocks, &cfg.Block{ID: i, Start: i, End: i + 1})
		}
		g.Exit = n - 1
		for a, ss := range rg.succs {
			g.Blocks[a].Succs = append(g.Blocks[a].Succs, ss...)
		}
		for b, ps := range rg.preds {
			g.Blocks[b].Preds = append(g.Blocks[b].Preds, ps...)
		}

		pd := dom.PostDominators(g)
		want := brutePostDominators(rg, n-1)
		for b := 0; b < n; b++ {
			// Verify: for each pair (a, b) reachable in the reverse
			// orientation, Dominates(a, b) must match the brute-force
			// set membership.
			for a := 0; a < n; a++ {
				got := pd.Dominates(a, b)
				if got != want[b][a] {
					// Unreachable-from-exit blocks have degenerate
					// brute-force sets (all true); skip them.
					if pd.Idom[b] == -1 && b != n-1 {
						continue
					}
					t.Fatalf("trial %d: Dominates(%d,%d) = %v, brute = %v\nsuccs=%v",
						trial, a, b, got, want[b][a], rg.succs)
				}
			}
		}
	}
}
