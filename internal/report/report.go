// Package report turns raw Alchemist profiles into the artifacts the
// paper presents: the ranked per-construct text profile (Fig. 2/3), the
// size-vs-violating-dependences scatter data (Fig. 6), the Fig. 6(b)
// "remove constructs parallelized along with C" analysis, and the summary
// rows of Tables III and IV.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"alchemist/internal/core"
	"alchemist/internal/indexing"
)

// Options control text rendering.
type Options struct {
	// Top limits the number of constructs printed (0 = all).
	Top int
	// MaxEdges limits the dependence edges printed per construct
	// (0 = all).
	MaxEdges int
	// Types selects which dependence types to print; empty means RAW
	// only, matching the paper's Fig. 2 (Fig. 3 adds WAR and WAW).
	Types []core.DepType
	// MinTtotal hides constructs below this duration.
	MinTtotal int64
	// ShowAllEdges prints non-violating edges too (the paper lists both
	// and boxes the violating ones).
	ShowAllEdges bool
}

// ConstructName renders a human-readable construct identity, e.g.
// "Method flush_block" or "Loop (main, gzip.mc:14)".
func ConstructName(c *core.ConstructStat) string {
	switch c.Kind {
	case indexing.KindFunc:
		return "Method " + c.FuncName
	case indexing.KindLoop:
		return fmt.Sprintf("Loop (%s, line %d)", c.FuncName, c.Pos.Line)
	default:
		return fmt.Sprintf("Cond (%s, line %d)", c.FuncName, c.Pos.Line)
	}
}

// Write renders the ranked profile in the paper's Fig. 2/3 layout.
func Write(w io.Writer, p *core.Profile, opts Options) {
	types := opts.Types
	if len(types) == 0 {
		types = []core.DepType{core.RAW}
	}
	fmt.Fprintf(w, "Profile: %d instructions, %d static constructs, %d dynamic instances\n",
		p.TotalSteps, p.StaticConstructs, p.DynamicConstructs)
	rank := 0
	for _, c := range p.Constructs {
		if opts.Top > 0 && rank >= opts.Top {
			break
		}
		if c.Ttotal < opts.MinTtotal {
			continue
		}
		rank++
		fmt.Fprintf(w, "%2d. %-40s Tdur=%-12d inst=%d\n", rank, ConstructName(c), c.Ttotal, c.Instances)
		dur := c.MeanDur()
		printed := 0
		for _, e := range c.Edges {
			if !typeIn(e.Type, types) {
				continue
			}
			viol := e.Violates(dur)
			if !viol && !opts.ShowAllEdges {
				continue
			}
			if opts.MaxEdges > 0 && printed >= opts.MaxEdges {
				fmt.Fprintf(w, "        ...\n")
				break
			}
			printed++
			mark := " "
			if viol {
				mark = "*"
			}
			fmt.Fprintf(w, "      %s %s: line %d -> line %d  Tdep=%d (x%d)\n",
				mark, e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist, e.Count)
		}
	}
}

// Text renders the profile to a string.
func Text(p *core.Profile, opts Options) string {
	var b strings.Builder
	Write(&b, p, opts)
	return b.String()
}

func typeIn(t core.DepType, ts []core.DepType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// ---------- Fig. 6 scatter data ----------

// Point is one construct in a Fig. 6 plot: normalized size (instruction
// share) against normalized violating static RAW dependence count.
type Point struct {
	// Rank is the 1-based position by size: C1, C2, ...
	Rank int
	// Label is the construct head PC.
	Label int
	// Name is the human-readable construct identity.
	Name string
	// Line is the construct head's source line.
	Line int
	// SizeNorm is Ttotal normalized to the program's total instruction
	// count.
	SizeNorm float64
	// ViolNorm is the construct's violating static RAW count normalized
	// to the total across all constructs.
	ViolNorm float64
	// Violations is the raw violating static RAW dependence count.
	Violations int
	// Instances and Ttotal carry the underlying measurements.
	Instances int64
	Ttotal    int64
}

// Fig6 computes the scatter points for the top constructs by size,
// mirroring Fig. 6's normalization. exclude removes constructs by label
// before ranking (used for the Fig. 6(b) second pass).
func Fig6(p *core.Profile, top int, exclude map[int]bool) []Point {
	totalViol := p.TotalViolating(core.RAW)
	var pts []Point
	for _, c := range p.Constructs {
		if exclude[c.Label] {
			continue
		}
		if top > 0 && len(pts) >= top {
			break
		}
		v := len(c.ViolatingEdges(core.RAW))
		pt := Point{
			Rank:       len(pts) + 1,
			Label:      c.Label,
			Name:       ConstructName(c),
			Line:       c.Pos.Line,
			Violations: v,
			Instances:  c.Instances,
			Ttotal:     c.Ttotal,
		}
		if p.TotalSteps > 0 {
			pt.SizeNorm = float64(c.Ttotal) / float64(p.TotalSteps)
		}
		if totalViol > 0 {
			pt.ViolNorm = float64(v) / float64(totalViol)
		}
		pts = append(pts, pt)
	}
	return pts
}

// WriteFig6 renders scatter points as an aligned table (one row per
// construct, the paper's bar-chart data in text form).
func WriteFig6(w io.Writer, pts []Point) {
	fmt.Fprintf(w, "%-4s %-36s %-10s %-6s %-10s %-10s\n", "C#", "construct", "Ttotal", "viol", "size%", "viol%")
	for _, pt := range pts {
		fmt.Fprintf(w, "C%-3d %-36s %-10d %-6d %-10.4f %-10.4f\n",
			pt.Rank, pt.Name, pt.Ttotal, pt.Violations, pt.SizeNorm, pt.ViolNorm)
	}
}

// ---------- Fig. 6(b): removal of co-parallelized constructs ----------

// RemoveParallelized returns the labels that drop out of consideration
// once the construct `label` is parallelized: the construct itself plus,
// transitively, every construct that has exactly one instance per
// instance of an already-removed construct (such constructs are
// "parallelized too as a result", paper §IV.B.1).
func RemoveParallelized(p *core.Profile, label int) map[int]bool {
	removed := map[int]bool{label: true}
	for changed := true; changed; {
		changed = false
		for _, c := range p.Constructs {
			if removed[c.Label] {
				continue
			}
			for parent := range removed {
				pc := p.Construct(parent)
				if pc == nil {
					continue
				}
				n := p.NestDirect[core.NestKey(c.Label, parent)]
				// Exactly one instance of c per instance of parent, and
				// every instance of c sits under parent.
				if n > 0 && n == c.Instances && n == pc.Instances {
					removed[c.Label] = true
					changed = true
					break
				}
			}
		}
	}
	return removed
}

// ---------- Table III ----------

// Table3Row is one benchmark row of Table III.
type Table3Row struct {
	Benchmark string
	LOC       int
	Static    int64
	Dynamic   int64
	// OrigSeconds and ProfSeconds are wall-clock times of the
	// uninstrumented and profiled runs.
	OrigSeconds float64
	ProfSeconds float64
}

// Slowdown returns Prof/Orig.
func (r Table3Row) Slowdown() float64 {
	if r.OrigSeconds == 0 {
		return 0
	}
	return r.ProfSeconds / r.OrigSeconds
}

// WriteTable3 renders rows in the paper's Table III layout.
func WriteTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "%-12s %-6s %-8s %-12s %-10s %-10s %-8s\n",
		"Benchmark", "LOC", "Static", "Dynamic", "Orig(s)", "Prof(s)", "Slowdown")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-6d %-8d %-12d %-10.4f %-10.3f %-8.1f\n",
			r.Benchmark, r.LOC, r.Static, r.Dynamic, r.OrigSeconds, r.ProfSeconds, r.Slowdown())
	}
}

// ---------- Table IV ----------

// Table4Row reports the static conflict counts of one parallelized
// construct (paper Table IV).
type Table4Row struct {
	Program  string
	Location string // e.g. "loop at line 887 in ProcessData"
	RAW      int
	WAW      int
	WAR      int
}

// Table4For builds a row from a profiled construct.
func Table4For(program string, p *core.Profile, c *core.ConstructStat) Table4Row {
	return Table4Row{
		Program:  program,
		Location: fmt.Sprintf("%s at line %d", ConstructName(c), c.Pos.Line),
		RAW:      len(c.ViolatingEdges(core.RAW)),
		WAW:      len(c.ViolatingEdges(core.WAW)),
		WAR:      len(c.ViolatingEdges(core.WAR)),
	}
}

// WriteTable4 renders rows in the paper's Table IV layout.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "%-10s %-44s %-5s %-5s %-5s\n", "Program", "Code Location", "RAW", "WAW", "WAR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-44s %-5d %-5d %-5d\n", r.Program, r.Location, r.RAW, r.WAW, r.WAR)
	}
}

// ---------- Table V ----------

// Table5Row reports a sequential-vs-parallel comparison (paper Table V).
// Times are virtual (instruction-count makespans from the VM's
// deterministic parallel simulation), which substitutes for the paper's
// 4-core wall-clock measurements on machines without spare cores; the
// wall-clock of both runs is reported alongside for reference.
type Table5Row struct {
	Benchmark string
	Workers   int
	// SeqSteps is the sequential program's instruction count; ParSteps
	// the spawn/sync variant's virtual makespan on Workers workers.
	SeqSteps int64
	ParSteps int64
	// SeqSeconds/ParSeconds are informational wall-clock times.
	SeqSeconds float64
	ParSeconds float64
}

// Speedup returns the virtual-time speedup SeqSteps/ParSteps.
func (r Table5Row) Speedup() float64 {
	if r.ParSteps == 0 {
		return 0
	}
	return float64(r.SeqSteps) / float64(r.ParSteps)
}

// WriteTable5 renders rows in the paper's Table V layout.
func WriteTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "%-12s %-8s %-14s %-14s %-8s\n", "Benchmark", "Workers", "Seq(instr)", "Par(instr)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-8d %-14d %-14d %-8.2f\n",
			r.Benchmark, r.Workers, r.SeqSteps, r.ParSteps, r.Speedup())
	}
}

// Rank returns the 1-based size rank of construct label within the
// profile (C1 = largest Ttotal), or 0 if absent.
func Rank(p *core.Profile, label int) int {
	for i, c := range p.Constructs {
		if c.Label == label {
			return i + 1
		}
	}
	return 0
}

// SortPointsByViolations orders points by ascending violation count then
// descending size, the order in which a user would try candidates.
func SortPointsByViolations(pts []Point) []Point {
	out := append([]Point(nil), pts...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Violations != out[j].Violations {
			return out[i].Violations < out[j].Violations
		}
		return out[i].Ttotal > out[j].Ttotal
	})
	return out
}
