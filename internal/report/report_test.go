package report_test

import (
	"strings"
	"testing"

	"alchemist/internal/core"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

func profileSrc(t *testing.T, src string) *core.Profile {
	t.Helper()
	p, _, err := core.ProfileSource("t.mc", src, vm.Config{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleSrc = `
int v;
int sink;
void produce() { v = 1; }
int main() {
	for (int i = 0; i < 30; i++) {
		produce();
		sink = v + i;
	}
	return 0;
}`

func TestTextProfile(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	text := report.Text(p, report.Options{Top: 5, ShowAllEdges: true})
	if !strings.Contains(text, "Method main") {
		t.Errorf("missing main:\n%s", text)
	}
	if !strings.Contains(text, "Method produce") {
		t.Errorf("missing produce:\n%s", text)
	}
	if !strings.Contains(text, "RAW") {
		t.Errorf("missing RAW edge:\n%s", text)
	}
	if !strings.Contains(text, "Loop (main") {
		t.Errorf("missing loop construct:\n%s", text)
	}
}

func TestTextTopAndMinTtotal(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	lines := strings.Split(report.Text(p, report.Options{Top: 2}), "\n")
	constructs := 0
	for _, l := range lines {
		if strings.Contains(l, "Tdur=") {
			constructs++
		}
	}
	if constructs != 2 {
		t.Errorf("Top=2 printed %d constructs", constructs)
	}
	// A huge MinTtotal filters everything.
	text := report.Text(p, report.Options{MinTtotal: 1 << 60})
	if strings.Contains(text, "Tdur=") {
		t.Error("MinTtotal filter failed")
	}
}

func TestTypesFilter(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	rawOnly := report.Text(p, report.Options{ShowAllEdges: true})
	if strings.Contains(rawOnly, "WAW") || strings.Contains(rawOnly, "WAR") {
		t.Error("default filter leaked WAW/WAR edges")
	}
	all := report.Text(p, report.Options{ShowAllEdges: true,
		Types: []core.DepType{core.RAW, core.WAR, core.WAW}})
	if !strings.Contains(all, "WAW") {
		t.Error("WAW missing with all types enabled")
	}
}

func TestConstructName(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	m := p.ConstructForFunc("main")
	if got := report.ConstructName(m); got != "Method main" {
		t.Errorf("name = %q", got)
	}
	for _, c := range p.Constructs {
		name := report.ConstructName(c)
		if name == "" {
			t.Error("empty construct name")
		}
	}
}

func TestFig6Normalization(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	pts := report.Fig6(p, 0, nil)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// main is the largest: normalized size 1.0, rank 1.
	if pts[0].Rank != 1 || pts[0].SizeNorm != 1.0 {
		t.Errorf("top point = %+v", pts[0])
	}
	// Sizes are non-increasing and within [0,1]; violation shares sum to
	// <= 1 over all constructs (equality when top = all).
	sum := 0.0
	for i, pt := range pts {
		if pt.SizeNorm < 0 || pt.SizeNorm > 1 {
			t.Errorf("point %d size %f out of range", i, pt.SizeNorm)
		}
		if i > 0 && pts[i-1].Ttotal < pt.Ttotal {
			t.Error("points not sorted by size")
		}
		sum += pt.ViolNorm
	}
	if sum > 1.0001 {
		t.Errorf("violation shares sum to %f", sum)
	}
}

func TestFig6TopAndExclude(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	pts := report.Fig6(p, 2, nil)
	if len(pts) != 2 {
		t.Fatalf("top=2 gave %d points", len(pts))
	}
	excluded := report.Fig6(p, 0, map[int]bool{pts[0].Label: true})
	for _, pt := range excluded {
		if pt.Label == pts[0].Label {
			t.Error("excluded construct still present")
		}
	}
}

func TestRemoveParallelized(t *testing.T) {
	// produce() runs exactly once per loop iteration: parallelizing the
	// loop removes produce too.
	p := profileSrc(t, sampleSrc)
	var loop *core.ConstructStat
	for _, c := range p.Constructs {
		if c.Kind == 1 { // KindLoop
			loop = c
		}
	}
	if loop == nil {
		t.Fatal("no loop")
	}
	removed := report.RemoveParallelized(p, loop.Label)
	if !removed[loop.Label] {
		t.Error("loop itself not removed")
	}
	produce := p.ConstructForFunc("produce")
	if !removed[produce.Label] {
		t.Error("produce (one instance per iteration) not removed")
	}
	main := p.ConstructForFunc("main")
	if removed[main.Label] {
		t.Error("main wrongly removed")
	}
}

func TestTables(t *testing.T) {
	var b strings.Builder
	report.WriteTable3(&b, []report.Table3Row{
		{Benchmark: "x", LOC: 10, Static: 5, Dynamic: 100, OrigSeconds: 0.5, ProfSeconds: 5},
	})
	if !strings.Contains(b.String(), "10.0") {
		t.Errorf("table3 slowdown missing:\n%s", b.String())
	}
	if (report.Table3Row{}).Slowdown() != 0 {
		t.Error("zero-orig slowdown should be 0")
	}

	b.Reset()
	report.WriteTable4(&b, []report.Table4Row{{Program: "p", Location: "loc", RAW: 1, WAW: 2, WAR: 3}})
	if !strings.Contains(b.String(), "loc") {
		t.Error("table4 row missing")
	}

	b.Reset()
	row := report.Table5Row{Benchmark: "b", Workers: 4, SeqSteps: 100, ParSteps: 25}
	report.WriteTable5(&b, []report.Table5Row{row})
	if !strings.Contains(b.String(), "4.00") {
		t.Errorf("table5 speedup missing:\n%s", b.String())
	}
	if (report.Table5Row{}).Speedup() != 0 {
		t.Error("zero-par speedup should be 0")
	}
}

func TestTable4For(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	row := report.Table4For("prog", p, p.ConstructForFunc("produce"))
	if row.Program != "prog" || !strings.Contains(row.Location, "produce") {
		t.Errorf("row = %+v", row)
	}
}

func TestRank(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	if r := report.Rank(p, p.Constructs[0].Label); r != 1 {
		t.Errorf("rank of largest = %d", r)
	}
	if r := report.Rank(p, -12345); r != 0 {
		t.Errorf("rank of absent = %d", r)
	}
}

func TestSortPointsByViolations(t *testing.T) {
	pts := []report.Point{
		{Rank: 1, Violations: 5, Ttotal: 100},
		{Rank: 2, Violations: 0, Ttotal: 50},
		{Rank: 3, Violations: 0, Ttotal: 80},
	}
	sorted := report.SortPointsByViolations(pts)
	if sorted[0].Rank != 3 || sorted[1].Rank != 2 || sorted[2].Rank != 1 {
		t.Errorf("sorted = %+v", sorted)
	}
	// Input untouched.
	if pts[0].Rank != 1 {
		t.Error("input mutated")
	}
}

func TestWriteFig6(t *testing.T) {
	var b strings.Builder
	report.WriteFig6(&b, []report.Point{{Rank: 1, Name: "Method main", Ttotal: 10, SizeNorm: 1}})
	if !strings.Contains(b.String(), "C1") || !strings.Contains(b.String(), "Method main") {
		t.Errorf("fig6 output:\n%s", b.String())
	}
}
