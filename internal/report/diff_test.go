package report_test

import (
	"strings"
	"testing"

	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

// The conflict in handle() is input-dependent, so profiles on different
// inputs diff in their violating sets.
const diffSrc = `
int shared;
int done[16];
void handle(int i, int mode) {
	int acc = 0;
	for (int k = 0; k < 50; k++) { acc += k ^ i; }
	if (mode == 1) {
		shared = acc;
	}
	done[i & 15] = acc;
}
int main() {
	int n = inlen() / 2;
	for (int i = 0; i < n; i++) {
		handle(in(2 * i), in(2 * i + 1));
		int audit = shared;
		out(audit & 1);
	}
	return 0;
}`

func diffProfiles(t *testing.T) (*core.Profile, *core.Profile) {
	t.Helper()
	prog, err := compile.Build("d.mc", diffSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode int64) *core.Profile {
		var input []int64
		for i := int64(0); i < 20; i++ {
			input = append(input, i, mode)
		}
		p, _, err := core.ProfileProgram(prog, vm.Config{Input: input}, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return run(0), run(1)
}

func TestDiffDetectsIntroducedViolations(t *testing.T) {
	clean, dirty := diffProfiles(t)
	entries, err := report.Diff(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	introduced := 0
	for _, d := range entries {
		introduced += len(d.Introduced)
		if len(d.Resolved) > 0 {
			t.Errorf("unexpected resolved edges in %s: %+v", d.Name, d.Resolved)
		}
	}
	if introduced == 0 {
		t.Fatal("mode-1 run should introduce violating edges")
	}
	// Reverse direction: the same edges show as resolved.
	rev, err := report.Diff(dirty, clean)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, d := range rev {
		resolved += len(d.Resolved)
	}
	if resolved != introduced {
		t.Errorf("asymmetric diff: %d introduced vs %d resolved", introduced, resolved)
	}

	var sb strings.Builder
	report.WriteDiff(&sb, entries)
	if !strings.Contains(sb.String(), "+ introduced") {
		t.Errorf("diff rendering:\n%s", sb.String())
	}
}

func TestDiffIdenticalProfiles(t *testing.T) {
	clean, _ := diffProfiles(t)
	entries, err := report.Diff(clean, clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("self-diff produced %d entries", len(entries))
	}
	var sb strings.Builder
	report.WriteDiff(&sb, entries)
	if !strings.Contains(sb.String(), "no violating-dependence changes") {
		t.Errorf("empty diff rendering: %q", sb.String())
	}
}

func TestDiffRejectsDifferentPrograms(t *testing.T) {
	a := profileSrc(t, sampleSrc)
	b := profileSrc(t, sampleSrc) // separate compile: different Program
	if _, err := report.Diff(a, b); err == nil {
		t.Error("cross-program diff accepted")
	}
}
