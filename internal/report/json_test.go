package report_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"alchemist/internal/report"
)

func TestJSONRoundTrip(t *testing.T) {
	p := profileSrc(t, sampleSrc)
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	var decoded report.JSONProfile
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded.TotalSteps != p.TotalSteps {
		t.Errorf("steps %d != %d", decoded.TotalSteps, p.TotalSteps)
	}
	if int64(len(decoded.Constructs)) != p.StaticConstructs {
		t.Errorf("constructs %d != %d", len(decoded.Constructs), p.StaticConstructs)
	}
	// First construct is main with rank-1 size.
	if decoded.Constructs[0].Func != "main" {
		t.Errorf("top construct %+v", decoded.Constructs[0])
	}
	// Edge fields carry violation status consistent with the source
	// profile.
	foundEdge := false
	for _, jc := range decoded.Constructs {
		src := p.Construct(jc.Label)
		if src == nil {
			t.Fatalf("label %d missing in source profile", jc.Label)
		}
		if jc.Instances != src.Instances || jc.Ttotal != src.Ttotal {
			t.Errorf("construct %d fields diverge", jc.Label)
		}
		dur := src.MeanDur()
		for i, je := range jc.Edges {
			foundEdge = true
			if je.Violates != src.Edges[i].Violates(dur) {
				t.Errorf("edge %d violation flag diverges", i)
			}
			if je.MinDist != src.Edges[i].MinDist {
				t.Errorf("edge %d distance diverges", i)
			}
		}
	}
	if !foundEdge {
		t.Error("no edges serialized")
	}
}
