package report

import (
	"encoding/json"
	"io"

	"alchemist/internal/core"
)

// JSONProfile is the machine-readable form of a profile, for downstream
// tooling (plotting Fig. 6, diffing profiles between runs, CI gates).
type JSONProfile struct {
	TotalSteps        int64           `json:"total_steps"`
	StaticConstructs  int64           `json:"static_constructs"`
	DynamicConstructs int64           `json:"dynamic_constructs"`
	Constructs        []JSONConstruct `json:"constructs"`
}

// JSONConstruct is one construct row.
type JSONConstruct struct {
	Label     int        `json:"label"`
	Kind      string     `json:"kind"`
	Name      string     `json:"name"`
	Line      int        `json:"line"`
	Func      string     `json:"func"`
	Ttotal    int64      `json:"ttotal"`
	Instances int64      `json:"instances"`
	MeanDur   int64      `json:"mean_dur"`
	MinDur    int64      `json:"min_dur"`
	MaxDur    int64      `json:"max_dur"`
	Edges     []JSONEdge `json:"edges,omitempty"`
}

// JSONEdge is one static dependence edge.
type JSONEdge struct {
	Type     string `json:"type"`
	HeadLine int    `json:"head_line"`
	TailLine int    `json:"tail_line"`
	HeadPC   int    `json:"head_pc"`
	TailPC   int    `json:"tail_pc"`
	MinDist  int64  `json:"min_dist"`
	Count    int64  `json:"count"`
	Violates bool   `json:"violates"`
}

// ToJSON converts a profile into its machine-readable form.
func ToJSON(p *core.Profile) *JSONProfile {
	out := &JSONProfile{
		TotalSteps:        p.TotalSteps,
		StaticConstructs:  p.StaticConstructs,
		DynamicConstructs: p.DynamicConstructs,
	}
	for _, c := range p.Constructs {
		jc := JSONConstruct{
			Label:     c.Label,
			Kind:      c.Kind.String(),
			Name:      ConstructName(c),
			Line:      c.Pos.Line,
			Func:      c.FuncName,
			Ttotal:    c.Ttotal,
			Instances: c.Instances,
			MeanDur:   c.MeanDur(),
			MinDur:    c.MinDur,
			MaxDur:    c.MaxDur,
		}
		dur := c.MeanDur()
		for _, e := range c.Edges {
			jc.Edges = append(jc.Edges, JSONEdge{
				Type:     e.Type.String(),
				HeadLine: e.HeadPos.Line,
				TailLine: e.TailPos.Line,
				HeadPC:   e.HeadPC,
				TailPC:   e.TailPC,
				MinDist:  e.MinDist,
				Count:    e.Count,
				Violates: e.Violates(dur),
			})
		}
		out.Constructs = append(out.Constructs, jc)
	}
	return out
}

// WriteJSON writes the profile as indented JSON.
func WriteJSON(w io.Writer, p *core.Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(p))
}
