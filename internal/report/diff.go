package report

import (
	"fmt"
	"io"

	"alchemist/internal/core"
)

// DiffEntry describes how one construct's violating dependences changed
// between two profiles of the same program — e.g. before and after a
// source transformation (did privatizing flag_buf actually remove the
// WAR edges?), or between two inputs.
type DiffEntry struct {
	Label int
	Name  string
	// Introduced are violating edges present only in the new profile;
	// Resolved are violating edges present only in the old one.
	Introduced []core.Edge
	Resolved   []core.Edge
	// OldDur/NewDur are the mean durations.
	OldDur int64
	NewDur int64
	// OnlyInOld/OnlyInNew mark constructs that exist in just one profile
	// (the transformation removed or introduced the construct).
	OnlyInOld bool
	OnlyInNew bool
}

// Changed reports whether the entry carries any difference worth showing.
func (d DiffEntry) Changed() bool {
	return len(d.Introduced) > 0 || len(d.Resolved) > 0 || d.OnlyInOld || d.OnlyInNew
}

// Diff compares the violating-dependence sets of two profiles. Profiles
// must come from the same compiled program so labels align.
func Diff(oldP, newP *core.Profile) ([]DiffEntry, error) {
	if oldP.Program != newP.Program {
		return nil, fmt.Errorf("report: diffing profiles of different programs")
	}
	var out []DiffEntry
	seen := map[int]bool{}

	violSet := func(c *core.ConstructStat) map[core.EdgeKey]core.Edge {
		m := map[core.EdgeKey]core.Edge{}
		for _, t := range []core.DepType{core.RAW, core.WAR, core.WAW} {
			for _, e := range c.ViolatingEdges(t) {
				m[core.EdgeKey{HeadPC: int32(e.HeadPC), TailPC: int32(e.TailPC), Type: e.Type}] = e
			}
		}
		return m
	}

	for _, oc := range oldP.Constructs {
		seen[oc.Label] = true
		nc := newP.Construct(oc.Label)
		entry := DiffEntry{Label: oc.Label, Name: ConstructName(oc), OldDur: oc.MeanDur()}
		if nc == nil {
			entry.OnlyInOld = true
			out = append(out, entry)
			continue
		}
		entry.NewDur = nc.MeanDur()
		ov, nv := violSet(oc), violSet(nc)
		for k, e := range nv {
			if _, ok := ov[k]; !ok {
				entry.Introduced = append(entry.Introduced, e)
			}
		}
		for k, e := range ov {
			if _, ok := nv[k]; !ok {
				entry.Resolved = append(entry.Resolved, e)
			}
		}
		if entry.Changed() {
			out = append(out, entry)
		}
	}
	for _, nc := range newP.Constructs {
		if !seen[nc.Label] {
			out = append(out, DiffEntry{
				Label: nc.Label, Name: ConstructName(nc),
				NewDur: nc.MeanDur(), OnlyInNew: true,
			})
		}
	}
	return out, nil
}

// WriteDiff renders a diff as text.
func WriteDiff(w io.Writer, entries []DiffEntry) {
	if len(entries) == 0 {
		fmt.Fprintln(w, "no violating-dependence changes")
		return
	}
	for _, d := range entries {
		switch {
		case d.OnlyInOld:
			fmt.Fprintf(w, "- %s: construct gone\n", d.Name)
			continue
		case d.OnlyInNew:
			fmt.Fprintf(w, "+ %s: new construct\n", d.Name)
			continue
		}
		fmt.Fprintf(w, "  %s (dur %d -> %d)\n", d.Name, d.OldDur, d.NewDur)
		for _, e := range d.Resolved {
			fmt.Fprintf(w, "    - resolved %s line %d -> line %d (Tdep=%d)\n",
				e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist)
		}
		for _, e := range d.Introduced {
			fmt.Fprintf(w, "    + introduced %s line %d -> line %d (Tdep=%d)\n",
				e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist)
		}
	}
}
