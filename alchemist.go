// Package alchemist is a transparent dependence-distance profiling
// infrastructure for finding parallelization opportunities in sequential
// programs, reproducing "Alchemist: A Transparent Dependence Distance
// Profiling Infrastructure" (Zhang, Navabi, Jagannathan; CGO 2009) in
// pure Go.
//
// The paper profiles C binaries under Valgrind; this reproduction ships
// its own substrate: a small C-like language ("mini-C") compiled to
// bytecode and executed on an instrumented VM. On top of that substrate
// the package implements the paper's contribution unchanged — execution
// indexing with a lazily-retired construct pool, online RAW/WAR/WAW
// dependence-distance profiling for every program construct, and the
// transformation guidance derived from comparing dependence distances
// with construct durations.
//
// Typical use:
//
//	eng := alchemist.NewEngine(alchemist.WithWorkers(4))
//	prog, err := eng.Compile(ctx, "gzip.mc", src)
//	profile, _, err := eng.Profile(ctx, prog, alchemist.ProfileConfig{})
//	fmt.Print(alchemist.Report(profile, alchemist.ReportOptions{Top: 10}))
//	for _, r := range alchemist.Advise(profile) { ... }
//
// The Engine is the service entry point: it caches compiled programs,
// threads context.Context through compilation and execution, and fans
// batch profiling runs over a bounded worker pool (ProfileBatch).
// Programs that have been annotated with spawn/sync can also be executed
// in parallel (Run with Parallel: true) to measure realized speedups.
package alchemist

import (
	"context"
	"errors"
	"io"

	"alchemist/internal/advisor"
	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/indexing"
	"alchemist/internal/ir"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

// Re-exported result types. These are aliases so that the full profiling
// data model defined in the internal packages is part of the public API.
type (
	// Profile is the result of one profiled execution.
	Profile = core.Profile
	// ConstructStat is the profile of one static construct.
	ConstructStat = core.ConstructStat
	// Edge is one static dependence edge with its minimal distance.
	Edge = core.Edge
	// DepType classifies dependences (RAW, WAR, WAW).
	DepType = core.DepType
	// ConstructKind classifies constructs (function, loop, conditional).
	ConstructKind = indexing.Kind
	// RunResult summarizes an execution.
	RunResult = vm.Result
	// Advice is one transformation suggestion.
	Advice = advisor.Advice
	// AdviceReport is the advisor output for one construct.
	AdviceReport = advisor.Report
	// Fig6Point is one construct's coordinates in a Fig. 6-style plot.
	Fig6Point = report.Point
	// ReportOptions controls profile rendering.
	ReportOptions = report.Options
)

// Dependence types.
const (
	RAW = core.RAW
	WAR = core.WAR
	WAW = core.WAW
)

// Construct kinds.
const (
	KindFunc = indexing.KindFunc
	KindLoop = indexing.KindLoop
	KindCond = indexing.KindCond
)

// Program is a compiled mini-C program.
type Program struct {
	ir *ir.Program
	// Source is the original source text.
	Source string
	// Name is the file name used in diagnostics and positions.
	Name string
}

// compileProgram runs the full lexer/parser/sema/compile pipeline. The
// Engine's cache sits in front of this.
func compileProgram(name, src string, co CompileOptions) (*Program, error) {
	p, err := compile.BuildConfig(name, src, compile.Config{Optimize: co.Optimize})
	if err != nil {
		return nil, err
	}
	return &Program{ir: p, Source: src, Name: name}, nil
}

// CompileCtx compiles mini-C source text through the package-default
// Engine: repeated compiles of the same source hit its program cache.
func CompileCtx(ctx context.Context, name, src string) (*Program, error) {
	return DefaultEngine().Compile(ctx, name, src)
}

// Compile parses, type-checks, and compiles mini-C source text.
//
// Deprecated: use Engine.Compile (or CompileCtx), which supports
// cancellation and caches compiled programs.
func Compile(name, src string) (*Program, error) {
	return DefaultEngine().Compile(context.Background(), name, src)
}

// CompileOptimized additionally runs the optimization passes (constant
// folding, unreachable-code elimination). Profiles of optimized code are
// still well-formed: predicates — and therefore constructs — are never
// folded away.
//
// Deprecated: use Engine.CompileWith with CompileOptions{Optimize: true}.
func CompileOptimized(name, src string) (*Program, error) {
	return DefaultEngine().CompileWith(context.Background(), name, src, CompileOptions{Optimize: true})
}

// IR exposes the compiled program for tooling (disassembly, PC lookup).
func (p *Program) IR() *ir.Program { return p.ir }

// RunConfig parameterizes an uninstrumented execution.
type RunConfig struct {
	// Input is served to the program via the in()/inlen() builtins.
	Input []int64
	// MemWords sizes the flat memory (default 1<<22 words).
	MemWords int64
	// StepLimit aborts runaway sequential programs (0 = off).
	StepLimit int64
	// Parallel executes spawn statements on goroutines.
	Parallel bool
	// SimWorkers > 0 enables the deterministic virtual-time parallel
	// simulation with that many workers; RunResult.VirtualSteps then
	// reports the instruction-count makespan. Mutually exclusive with
	// Parallel.
	SimWorkers int
	// Stdout receives print() output (default: discarded).
	Stdout io.Writer
	// Seed seeds the program-visible PRNG.
	Seed uint64
	// OnProgress, when set, receives the executed instruction count from
	// the root interpreter goroutine every vm.CancelCheckInterval steps
	// (piggybacked on the existing cancellation check, so the hot path
	// is untouched) and once more with the final total on successful
	// completion. Reports are monotonically non-decreasing.
	OnProgress func(steps int64)

	// metrics is the VM instrumentation sink, injected by the Engine.
	metrics *vm.Metrics
}

func (c RunConfig) vmConfig() vm.Config {
	return vm.Config{
		Input:      c.Input,
		MemWords:   c.MemWords,
		StepLimit:  c.StepLimit,
		Parallel:   c.Parallel,
		SimWorkers: c.SimWorkers,
		Out:        c.Stdout,
		Seed:       c.Seed,
		OnProgress: c.OnProgress,
		Metrics:    c.metrics,
	}
}

// RunCtx executes the program without instrumentation under ctx.
// Cancellation is observed by every interpreter goroutine within one VM
// step-check window (vm.CancelCheckInterval instructions); the error is
// then ctx.Err().
func (p *Program) RunCtx(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	return core.RunProgramCtx(ctx, p.ir, cfg.vmConfig())
}

// Run executes the program without instrumentation.
//
// Deprecated: use RunCtx (or Engine.Run), which supports cancellation
// and timeouts.
func (p *Program) Run(cfg RunConfig) (*RunResult, error) {
	return p.RunCtx(context.Background(), cfg)
}

// ErrProfileNeedsSequential is returned by Profile when the config
// requests parallel execution: the profiler is a sequential-mode VM
// tracer, and dependence distances are defined over the sequential
// instruction stream (the paper profiles the sequential program).
var ErrProfileNeedsSequential = errors.New(
	"alchemist: profiling requires sequential execution: unset RunConfig.Parallel and RunConfig.SimWorkers")

// ProfileConfig parameterizes a profiled execution.
//
// Profiling always runs the program sequentially: the embedded
// RunConfig must not set Parallel or SimWorkers, otherwise Profile
// fails with ErrProfileNeedsSequential. (Earlier versions silently
// forced sequential execution instead.)
type ProfileConfig struct {
	RunConfig
	// TrackWAR / TrackWAW enable anti- and output-dependence profiling;
	// both default to true unless DisableWAR/DisableWAW is set.
	DisableWAR bool
	DisableWAW bool
	// ReaderSlots bounds the distinct reader PCs remembered per memory
	// word (WAR recall vs. memory; default 4).
	ReaderSlots int
	// PoolPrealloc warms the construct pool (default 4096 nodes).
	PoolPrealloc int

	// scratch recycles profiling buffers across runs, injected by the
	// Engine batch path.
	scratch *core.Scratch
}

// ProfileCtx executes the program sequentially under the profiler,
// observing ctx like RunCtx does.
func (p *Program) ProfileCtx(ctx context.Context, cfg ProfileConfig) (*Profile, *RunResult, error) {
	if cfg.Parallel || cfg.SimWorkers > 0 {
		return nil, nil, ErrProfileNeedsSequential
	}
	opts := core.DefaultOptions()
	opts.TrackWAR = !cfg.DisableWAR
	opts.TrackWAW = !cfg.DisableWAW
	opts.ReaderSlots = cfg.ReaderSlots
	opts.PoolPrealloc = cfg.PoolPrealloc
	opts.Scratch = cfg.scratch
	return core.ProfileProgramCtx(ctx, p.ir, cfg.vmConfig(), opts)
}

// Profile executes the program sequentially under the profiler.
//
// Deprecated: use ProfileCtx (or Engine.Profile), which supports
// cancellation and timeouts.
func (p *Program) Profile(cfg ProfileConfig) (*Profile, *RunResult, error) {
	return p.ProfileCtx(context.Background(), cfg)
}

// Report renders a ranked Fig. 2/3-style text profile.
func Report(p *Profile, opts ReportOptions) string {
	return report.Text(p, opts)
}

// Advise analyzes a profile and returns ranked transformation guidance.
func Advise(p *Profile) []*AdviceReport {
	return advisor.Analyze(p, advisor.Config{})
}

// AdviceText renders advice reports as text.
func AdviceText(p *Profile, reports []*AdviceReport, top int) string {
	return advisor.TextReports(p, reports, top)
}

// Fig6 computes normalized size-vs-violations points for the top
// constructs, as plotted in the paper's Fig. 6.
func Fig6(p *Profile, top int) []Fig6Point {
	return report.Fig6(p, top, nil)
}

// Fig6Excluding recomputes Fig. 6 after removing the given construct and
// everything parallelized along with it (the paper's Fig. 6(b) step).
func Fig6Excluding(p *Profile, top int, label int) []Fig6Point {
	return report.Fig6(p, top, report.RemoveParallelized(p, label))
}

// Merge combines profiles from several runs of the same program on
// different inputs: durations and edge counts are summed, minimal
// distances kept. The paper notes profile completeness is a function of
// the test inputs (§II); merging judges constructs against the union of
// observed dependences.
func Merge(profiles ...*Profile) (*Profile, error) {
	return core.Merge(profiles...)
}

// WriteJSON writes the profile in a machine-readable JSON form.
func WriteJSON(w io.Writer, p *Profile) error {
	return report.WriteJSON(w, p)
}

// ProfileDiff is one construct's change between two profiles.
type ProfileDiff = report.DiffEntry

// Diff compares the violating-dependence sets of two profiles of the
// same program — before/after a transformation, or across inputs.
func Diff(oldP, newP *Profile) ([]ProfileDiff, error) {
	return report.Diff(oldP, newP)
}
