package alchemist

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

const runBatchSrc = `
int main() {
	int n = in(0);
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	out(s);
	return s % 1000;
}
`

func TestRunBatchOrderAndResults(t *testing.T) {
	eng := NewEngine(WithWorkers(4))
	prog, err := eng.Compile(context.Background(), "rb.mc", runBatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []RunJob{
		{Input: []int64{10}},
		{Input: []int64{100}},
		{Input: []int64{1000}},
	}
	results, err := eng.RunBatch(context.Background(), prog, jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{45, 4950, 499500}
	for i, r := range results {
		if r.Job != i {
			t.Errorf("result %d has Job=%d", i, r.Job)
		}
		if r.Err != nil {
			t.Errorf("job %d: %v", i, r.Err)
			continue
		}
		if len(r.Run.Output) != 1 || r.Run.Output[0] != want[i] {
			t.Errorf("job %d output = %v, want [%d]", i, r.Run.Output, want[i])
		}
	}
}

func TestRunBatchSharesJobMetrics(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	prog, err := eng.Compile(context.Background(), "rb.mc", runBatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunBatch(context.Background(), prog, []RunJob{
		{Input: []int64{5}}, {Input: []int64{6}},
	}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	if got := snap.Counters["alchemist_engine_jobs_total"]; got != 2 {
		t.Errorf("jobs_total = %d, want 2", got)
	}
	if got := snap.Histograms["alchemist_engine_job_wall_seconds"].Count; got != 2 {
		t.Errorf("job_wall count = %d, want 2", got)
	}
}

func TestRunBatchCancellation(t *testing.T) {
	eng := NewEngine(WithWorkers(1))
	prog, err := eng.Compile(context.Background(), "rb.mc", runBatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := eng.RunBatch(ctx, prog, []RunJob{
		{Input: []int64{1 << 40}}, {Input: []int64{1 << 40}},
	})
	if err == nil {
		t.Fatal("expected error from cancelled batch")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d unexpectedly succeeded", i)
		}
	}
}

func TestRunBatchDeadline(t *testing.T) {
	eng := NewEngine(WithWorkers(1))
	prog, err := eng.Compile(context.Background(), "rb.mc", runBatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = eng.RunBatch(ctx, prog, []RunJob{{Input: []int64{1 << 40}}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunJobOnProgress(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	prog, err := eng.Compile(context.Background(), "rb.mc", runBatchSrc)
	if err != nil {
		t.Fatal(err)
	}
	var last atomic.Int64
	var calls atomic.Int64
	results, err := eng.RunBatch(context.Background(), prog, []RunJob{{
		Input: []int64{50000},
		OnProgress: func(steps int64) {
			calls.Add(1)
			if prev := last.Load(); steps < prev {
				t.Errorf("progress went backwards: %d after %d", steps, prev)
			}
			last.Store(steps)
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 2 {
		t.Errorf("OnProgress called %d times, want >= 2 (interval + final)", calls.Load())
	}
	if got := last.Load(); got != results[0].Run.Steps {
		t.Errorf("final progress = %d, want total steps %d", got, results[0].Run.Steps)
	}
}
