// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§IV). Run with:
//
//	go test -bench=. -benchmem
//
// Table III  -> BenchmarkTable3_*      (native vs profiled cost, construct counts)
// Fig. 2/3   -> BenchmarkFig2GzipProfile
// Fig. 6     -> BenchmarkFig6a/b/c/d   (profile quality on parallelized programs)
// Table IV   -> BenchmarkTable4        (conflicts at the parallelized locations)
// Table V    -> BenchmarkTable5_*      (virtual-time speedups, 4 workers)
// Ablations  -> BenchmarkAblation*     (design choices called out in DESIGN.md)
//
// Benchmarks report paper-facing numbers as custom metrics (slowdown-x,
// speedup-x, violRAW, ...) so `go test -bench` output doubles as the
// experiment log.
package alchemist_test

import (
	"strconv"
	"testing"

	"alchemist/internal/bench"
	"alchemist/internal/core"
	"alchemist/internal/progs"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

func vmCfg() vm.Config { return vm.Config{} }

// benchScale keeps -bench runs tractable while staying at the paper's
// default input sizes.
var benchScale = bench.Scale{}

// ---------- Table III ----------

func benchTable3(b *testing.B, w *progs.Workload) {
	b.Helper()
	var row report.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.Table3Row(w, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Slowdown(), "slowdown-x")
	b.ReportMetric(float64(row.Static), "static-constructs")
	b.ReportMetric(float64(row.Dynamic), "dynamic-constructs")
	b.ReportMetric(float64(row.LOC), "loc")
}

func BenchmarkTable3_Parser(b *testing.B)   { benchTable3(b, progs.Parser()) }
func BenchmarkTable3_Bzip2(b *testing.B)    { benchTable3(b, progs.Bzip2()) }
func BenchmarkTable3_Gzip(b *testing.B)     { benchTable3(b, progs.Gzip()) }
func BenchmarkTable3_Lisp(b *testing.B)     { benchTable3(b, progs.Lisp()) }
func BenchmarkTable3_Ogg(b *testing.B)      { benchTable3(b, progs.Ogg()) }
func BenchmarkTable3_AES(b *testing.B)      { benchTable3(b, progs.AES()) }
func BenchmarkTable3_Par2(b *testing.B)     { benchTable3(b, progs.Par2()) }
func BenchmarkTable3_Delaunay(b *testing.B) { benchTable3(b, progs.Delaunay()) }

// ---------- Fig. 2 / Fig. 3 ----------

// BenchmarkFig2GzipProfile regenerates the paper's running example: the
// gzip profile with flush_block's RAW/WAR/WAW dependence distances.
func BenchmarkFig2GzipProfile(b *testing.B) {
	var prof *core.Profile
	for i := 0; i < b.N; i++ {
		var err error
		prof, _, err = bench.RunProfiled(progs.Gzip(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	flush := prof.ConstructForFunc("flush_block")
	if flush == nil {
		b.Fatal("flush_block not profiled")
	}
	b.ReportMetric(float64(flush.Instances), "flush-inst")
	b.ReportMetric(float64(flush.CountEdges(core.RAW)), "flush-RAW-edges")
	b.ReportMetric(float64(len(flush.ViolatingEdges(core.RAW))), "flush-RAW-viol")
	b.ReportMetric(float64(len(flush.ViolatingEdges(core.WAR))+len(flush.ViolatingEdges(core.WAW))), "flush-WARWAW-viol")
}

// ---------- Fig. 6 ----------

func BenchmarkFig6a(b *testing.B) {
	var a bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		a, _, _, err = bench.Fig6Gzip(benchScale, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCandidate(b, a.Points)
}

func BenchmarkFig6b(b *testing.B) {
	var res bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, _, err = bench.Fig6Gzip(benchScale, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Removed)), "removed-constructs")
	reportCandidate(b, res.Points)
}

func BenchmarkFig6c(b *testing.B) {
	var res bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = bench.Fig6Parser(benchScale, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCandidate(b, res.Points)
}

func BenchmarkFig6d(b *testing.B) {
	var res bench.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, _, err = bench.Fig6Lisp(benchScale, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCandidate(b, res.Points)
}

// reportCandidate reports the best candidate's coordinates (largest
// construct with the fewest violating RAW deps, skipping main itself).
func reportCandidate(b *testing.B, pts []report.Point) {
	b.Helper()
	if len(pts) < 2 {
		return
	}
	cand := pts[1] // pts[0] is Method main
	for _, p := range pts[1:] {
		if p.Violations < cand.Violations ||
			(p.Violations == cand.Violations && p.Ttotal > cand.Ttotal) {
			cand = p
		}
	}
	b.ReportMetric(cand.SizeNorm, "cand-size-norm")
	b.ReportMetric(float64(cand.Violations), "cand-violRAW")
}

// BenchmarkDelaunayNegativeControl regenerates the §IV.B.1 Delaunay
// result: the computation-heavy constructs carry many violating static
// RAW dependences, confirming the algorithm resists this style of
// parallelization.
func BenchmarkDelaunayNegativeControl(b *testing.B) {
	var prof *core.Profile
	for i := 0; i < b.N; i++ {
		var err error
		prof, _, err = bench.RunProfiled(progs.Delaunay(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	refine := bench.LargestLoopIn(prof, "refine")
	if refine == nil {
		b.Fatal("no refine loop")
	}
	b.ReportMetric(float64(len(refine.ViolatingEdges(core.RAW))), "refine-violRAW")
}

// ---------- Table IV ----------

func BenchmarkTable4(b *testing.B) {
	var rows []report.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.RAW), r.Program+"-RAW")
	}
}

// ---------- Table V ----------

func benchTable5(b *testing.B, w *progs.Workload) {
	b.Helper()
	var row report.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.Table5Bench(w, benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Speedup(), "speedup-x")
	b.ReportMetric(float64(row.SeqSteps), "seq-instr")
	b.ReportMetric(float64(row.ParSteps), "par-instr")
}

func BenchmarkTable5_Bzip2(b *testing.B) { benchTable5(b, progs.Bzip2()) }
func BenchmarkTable5_Ogg(b *testing.B)   { benchTable5(b, progs.Ogg()) }
func BenchmarkTable5_Par2(b *testing.B)  { benchTable5(b, progs.Par2()) }
func BenchmarkTable5_AES(b *testing.B)   { benchTable5(b, progs.AES()) }

// ---------- Ablations (DESIGN.md §6) ----------

// BenchmarkAblationPoolSize varies the construct-pool preallocation; the
// profile must not change, and allocation counts show how lazy
// retirement bounds memory (Theorem 1).
func BenchmarkAblationPoolSize(b *testing.B) {
	for _, size := range []int{64, 4096, 1 << 20} {
		b.Run(sizeName(size), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.PoolPrealloc = size
			var prof *core.Profile
			for i := 0; i < b.N; i++ {
				var err error
				prof, err = bench.Profile(progs.Gzip(), benchScale, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(prof.Pool.Allocated), "nodes-allocated")
			b.ReportMetric(float64(prof.Pool.Reused), "nodes-reused")
		})
	}
}

// BenchmarkAblationNoRetirement disables lazy retirement: every dynamic
// construct instance allocates a node, demonstrating the memory the
// Table I pool saves.
func BenchmarkAblationNoRetirement(b *testing.B) {
	opts := core.DefaultOptions()
	opts.DisablePoolReuse = true
	var prof *core.Profile
	for i := 0; i < b.N; i++ {
		var err error
		prof, err = bench.Profile(progs.Gzip(), benchScale, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prof.Pool.Allocated), "nodes-allocated")
	b.ReportMetric(float64(prof.DynamicConstructs), "dynamic-constructs")
}

// BenchmarkAblationReaderK varies the per-word reader-slot bound: fewer
// slots evict more readers and can miss WAR edges.
func BenchmarkAblationReaderK(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(sizeName(k), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.ReaderSlots = k
			var prof *core.Profile
			for i := 0; i < b.N; i++ {
				var err error
				prof, err = bench.Profile(progs.Bzip2(), benchScale, opts)
				if err != nil {
					b.Fatal(err)
				}
			}
			war := 0
			for _, c := range prof.Constructs {
				war += c.CountEdges(core.WAR)
			}
			b.ReportMetric(float64(war), "WAR-edges")
			b.ReportMetric(float64(prof.Shadow.EvictedReaders), "evicted-readers")
		})
	}
}

// BenchmarkAblationRAWOnly measures the cost of WAR/WAW tracking by
// disabling it (the paper's RAW-only configuration).
func BenchmarkAblationRAWOnly(b *testing.B) {
	opts := core.DefaultOptions()
	opts.TrackWAR = false
	opts.TrackWAW = false
	for i := 0; i < b.N; i++ {
		if _, err := bench.Profile(progs.Gzip(), benchScale, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilerOverheadMicro isolates profiler cost on a tight
// pure-compute loop (no memory traffic): the floor of the Table III
// slowdown.
func BenchmarkProfilerOverheadMicro(b *testing.B) {
	const src = `
int main() {
	int s = 0;
	for (int i = 0; i < 200000; i++) {
		s += i ^ (i >> 3);
	}
	out(s);
	return 0;
}`
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ProfileSource("micro.mc", src, vmCfg(), core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func sizeName(n int) string {
	if n >= 1<<20 {
		return "1M"
	}
	return strconv.Itoa(n)
}
