module alchemist

go 1.24
