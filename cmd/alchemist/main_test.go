package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binary builds the alchemist CLI once per test run.
var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "alchemist-cli")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binary = filepath.Join(dir, "alchemist")
	cmd := exec.Command("go", "build", "-o", binary, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func run(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("alchemist %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func runFail(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("alchemist %s: expected failure\n%s", strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCLIList(t *testing.T) {
	out := run(t, "list")
	for _, w := range []string{"gzip", "bzip2", "197.parser", "130.li", "ogg", "aes", "par2", "delaunay"} {
		if !strings.Contains(out, w) {
			t.Errorf("list output lacks %s:\n%s", w, out)
		}
	}
}

func TestCLIProfileWorkload(t *testing.T) {
	out := run(t, "profile", "-w", "gzip", "-scale", "1200", "-top", "5")
	if !strings.Contains(out, "Method main") || !strings.Contains(out, "Tdur=") {
		t.Errorf("profile output:\n%s", out)
	}
}

func TestCLIProfileJSON(t *testing.T) {
	out := run(t, "profile", "-w", "aes", "-scale", "1024", "-json")
	if !strings.Contains(out, `"total_steps"`) || !strings.Contains(out, `"constructs"`) {
		t.Errorf("json output:\n%.400s", out)
	}
}

func TestCLIProfileFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	src := `int main() { int s = 0; for (int i = 0; i < in(0); i++) { s += i; } out(s); return 0; }`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, "profile", "-f", path, "-input", "25")
	if !strings.Contains(out, "Method main") {
		t.Errorf("file profile output:\n%s", out)
	}
	out = run(t, "run", "-f", path, "-input", "25")
	if !strings.Contains(out, "out=[300]") {
		t.Errorf("run output:\n%s", out)
	}
}

func TestCLIProfileMetricsAddr(t *testing.T) {
	out := run(t, "profile", "-w", "aes", "-scale", "1024", "-top", "3", "-metrics-addr", "127.0.0.1:0")
	if !strings.Contains(out, "metrics: serving /metrics /metrics.json /debug/pprof on http://127.0.0.1:") {
		t.Errorf("missing serving line:\n%s", out)
	}
	sum := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "metrics: vm_runs=") {
			sum = line
		}
	}
	if sum == "" {
		t.Fatalf("missing metrics summary line:\n%s", out)
	}
	if !strings.Contains(sum, "vm_runs=1") || strings.Contains(sum, "vm_steps=0") ||
		!strings.Contains(sum, "cache_misses=1") || !strings.Contains(sum, "compiles=1") {
		t.Errorf("summary line = %q, want vm_runs=1, nonzero vm_steps, cache_misses=1, compiles=1", sum)
	}
}

func TestCLIAdvise(t *testing.T) {
	out := run(t, "advise", "-w", "aes", "-scale", "1024", "-top", "4")
	if !strings.Contains(out, "future candidate") && !strings.Contains(out, "NOT parallelizable") {
		t.Errorf("advise output:\n%s", out)
	}
}

func TestCLIRunParallelVariant(t *testing.T) {
	out := run(t, "run", "-w", "ogg", "-scale", "256", "-par-src", "-parallel")
	if !strings.Contains(out, "steps=") {
		t.Errorf("run output:\n%s", out)
	}
}

func TestCLIDisasm(t *testing.T) {
	out := run(t, "disasm", "-w", "aes")
	if !strings.Contains(out, "func main") || !strings.Contains(out, "br r") {
		t.Errorf("disasm output:\n%.400s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	runFail(t, "profile")                       // neither -w nor -f
	runFail(t, "profile", "-w", "nope")         // unknown workload
	runFail(t, "nonsense")                      // unknown command
	runFail(t, "run", "-w", "gzip", "-par-src") // gzip has no parallel variant
	out := runFail(t, "profile", "-f", "/does/not/exist.mc")
	if !strings.Contains(out, "alchemist:") {
		t.Errorf("error output: %s", out)
	}
}
