package main

import (
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe launches the built binary's serve command on a free port
// and returns its base URL plus the running command.
func startServe(t *testing.T, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	cmd := exec.Command(binary, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// The listen line is the first stdout line: "serve: listening on URL".
	buf := make([]byte, 256)
	line := ""
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(line, "\n") {
		if time.Now().After(deadline) {
			t.Fatalf("no listen line from serve; got %q", line)
		}
		n, err := stdout.Read(buf)
		line += string(buf[:n])
		if err != nil {
			break
		}
	}
	const prefix = "serve: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected serve output %q", line)
	}
	url := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return url, cmd
}

func TestCLIServeProfileAndGracefulShutdown(t *testing.T) {
	url, cmd := startServe(t)

	resp, err := http.Post(url+"/v1/profile", "application/json",
		strings.NewReader(`{"workload":"aes","scales":[1024],"top":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"total_steps"`) {
		t.Errorf("profile body:\n%.400s", body)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"alchemist_server_requests_total",
		"alchemist_process_goroutines",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// SIGTERM starts the drain; with nothing in flight the process must
	// exit promptly and cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve did not exit after SIGTERM")
	}
}

func TestCLIProfileProgressFlag(t *testing.T) {
	// Stderr is a pipe here (not a TTY), so the display must degrade to
	// plain lines; the final snapshot always prints, even on fast runs.
	out := run(t, "profile", "-w", "aes", "-scale", "1024", "-top", "3", "-progress", "-jobs", "2", "-scales", "512,1024")
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "progress: ") {
			found = true
			if !strings.Contains(line, "jobs done") || !strings.Contains(line, "steps") {
				t.Errorf("malformed progress line %q", line)
			}
		}
	}
	if !found {
		t.Errorf("no progress lines in output:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("progress: %d/%d jobs done", 2, 2)) {
		t.Errorf("final progress snapshot should report 2/2 jobs done:\n%s", out)
	}
}

func TestCLITable5ProgressFlag(t *testing.T) {
	out := run(t, "table5", "-small", "-runs", "1", "-progress")
	if !strings.Contains(out, "jobs done") {
		t.Errorf("table5 -progress output lacks progress lines:\n%s", out)
	}
	// 4 workloads x (sequential + parallel) x 1 run = 8 progress slots.
	if !strings.Contains(out, "progress: 8/8 jobs done") {
		t.Errorf("final snapshot should report 8/8 runs done:\n%s", out)
	}
}
