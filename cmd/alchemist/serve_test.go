package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe launches the built binary's serve command on a free port
// and returns its base URL, the running command, and the stdout banner
// that preceded the listen line (the journal-recovery summary, when a
// -data-dir is set, prints there).
func startServe(t *testing.T, extra ...string) (string, *exec.Cmd, string) {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, extra...)
	cmd := exec.Command(binary, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	// Read stdout until the "serve: listening on URL" line shows up;
	// banner lines (recovery summary) may precede it.
	const prefix = "serve: listening on "
	buf := make([]byte, 256)
	out := ""
	deadline := time.Now().Add(10 * time.Second)
	for {
		if idx := strings.Index(out, prefix); idx >= 0 && strings.Contains(out[idx:], "\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line from serve; got %q", out)
		}
		n, err := stdout.Read(buf)
		out += string(buf[:n])
		if err != nil && !strings.Contains(out, prefix) {
			t.Fatalf("serve stdout ended early: %v (got %q)", err, out)
		}
	}
	idx := strings.Index(out, prefix)
	banner := out[:idx]
	rest := out[idx+len(prefix):]
	url := strings.TrimSpace(rest[:strings.Index(rest, "\n")])
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return url, cmd, banner
}

func TestCLIServeProfileAndGracefulShutdown(t *testing.T) {
	url, cmd, _ := startServe(t)

	resp, err := http.Post(url+"/v1/profile", "application/json",
		strings.NewReader(`{"workload":"aes","scales":[1024],"top":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"total_steps"`) {
		t.Errorf("profile body:\n%.400s", body)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"alchemist_server_requests_total",
		"alchemist_process_goroutines",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// SIGTERM starts the drain; with nothing in flight the process must
	// exit promptly and cleanly.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestCLIServeCrashRecovery SIGKILLs a journal-backed serve process
// mid-job and restarts it over the same data dir: the finished job comes
// back with its result, the in-flight one comes back interrupted, and
// the recovery summary line reports both.
func TestCLIServeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	url, cmd, _ := startServe(t, "-data-dir", dir)

	postJob := func(base, body string) serveJobStatus {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job create = %d: %s", resp.StatusCode, b)
		}
		var st serveJobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	getJob := func(base, id string) serveJobStatus {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get = %d: %s", resp.StatusCode, b)
		}
		var st serveJobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// One quick job runs to completion...
	quick := postJob(url, `{"kind":"run","source":"int main() { return 7; }"}`)
	deadline := time.Now().Add(30 * time.Second)
	for getJob(url, quick.ID).State != "succeeded" {
		if time.Now().After(deadline) {
			t.Fatal("quick job never succeeded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and one effectively-infinite job is mid-flight at kill time.
	hogSrc := `int main() { int s = 0; for (int i = 0; i < 1000000000; i++) { s += i; } return s % 2; }`
	hog := postJob(url, fmt.Sprintf(`{"kind":"run","source":%q,"timeout_ms":60000}`, hogSrc))
	for getJob(url, hog.ID).State != "running" {
		if time.Now().After(deadline) {
			t.Fatal("hog job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hard kill: no drain, no journal close.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	url2, cmd2, banner := startServe(t, "-data-dir", dir)
	if !strings.Contains(banner, "serve: journal recovered 2 jobs (1 interrupted") {
		t.Errorf("recovery banner = %q", banner)
	}
	if st := getJob(url2, quick.ID); st.State != "succeeded" {
		t.Errorf("finished job state after crash = %q, want succeeded", st.State)
	}
	st := getJob(url2, hog.ID)
	if st.State != "interrupted" {
		t.Errorf("in-flight job state after crash = %q, want interrupted", st.State)
	}
	if !strings.Contains(st.Error, "interrupted") {
		t.Errorf("interrupted job error = %q", st.Error)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("recovered serve exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd2.Process.Kill()
		t.Fatal("recovered serve did not exit after SIGTERM")
	}
}

// serveJobStatus is the subset of the job wire form the CLI tests need.
type serveJobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

func TestCLIProfileProgressFlag(t *testing.T) {
	// Stderr is a pipe here (not a TTY), so the display must degrade to
	// plain lines; the final snapshot always prints, even on fast runs.
	out := run(t, "profile", "-w", "aes", "-scale", "1024", "-top", "3", "-progress", "-jobs", "2", "-scales", "512,1024")
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "progress: ") {
			found = true
			if !strings.Contains(line, "jobs done") || !strings.Contains(line, "steps") {
				t.Errorf("malformed progress line %q", line)
			}
		}
	}
	if !found {
		t.Errorf("no progress lines in output:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("progress: %d/%d jobs done", 2, 2)) {
		t.Errorf("final progress snapshot should report 2/2 jobs done:\n%s", out)
	}
}

func TestCLITable5ProgressFlag(t *testing.T) {
	out := run(t, "table5", "-small", "-runs", "1", "-progress")
	if !strings.Contains(out, "jobs done") {
		t.Errorf("table5 -progress output lacks progress lines:\n%s", out)
	}
	// 4 workloads x (sequential + parallel) x 1 run = 8 progress slots.
	if !strings.Contains(out, "progress: 8/8 jobs done") {
		t.Errorf("final snapshot should report 8/8 runs done:\n%s", out)
	}
}

// TestCLIServeResilienceFlags exercises the admission-control flags:
// -api-keys gates every /v1 endpoint, -rate meters work creation, and
// -client-quota caps concurrent jobs per key.
func TestCLIServeResilienceFlags(t *testing.T) {
	keyFile := t.TempDir() + "/keys"
	if err := os.WriteFile(keyFile, []byte("# test keys\nalpha: key-alpha\nbeta: key-beta\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	url, _, _ := startServe(t, "-api-keys", keyFile, "-rate", "50", "-client-quota", "1")

	get := func(key string) int {
		req, err := http.NewRequest(http.MethodGet, url+"/v1/jobs", nil)
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("X-Api-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("nope"); code != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d, want 401", code)
	}
	if code := get("key-alpha"); code != http.StatusOK {
		t.Fatalf("known key: status %d, want 200", code)
	}
	if code := get(""); code != http.StatusOK {
		t.Fatalf("anonymous: status %d, want 200", code)
	}

	// Quota 1: alpha's second concurrent job is refused; beta still gets in.
	submit := func(key string) int {
		body := `{"kind":"run","name":"f","source":"int main() { int s = 0; for (int i = 0; i < 1000000000; i++) { s += i; } return s % 2; }","timeout_ms":30000}`
		req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Api-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := submit("key-alpha"); code != http.StatusAccepted {
		t.Fatalf("alpha job 1: status %d, want 202", code)
	}
	if code := submit("key-alpha"); code != http.StatusTooManyRequests {
		t.Fatalf("alpha job 2: status %d, want 429 quota_exceeded", code)
	}
	if code := submit("key-beta"); code != http.StatusAccepted {
		t.Fatalf("beta job: status %d, want 202 (alpha's quota must not starve beta)", code)
	}
}
