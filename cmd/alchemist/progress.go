package main

import (
	"fmt"
	"os"
	"time"

	"alchemist/internal/obs"
)

// startProgress renders a live progress display on stderr from the
// aggregate p while a command runs. On a terminal it rewrites one
// status line ~10x per second; otherwise it prints a plain line every
// couple of seconds so redirected logs stay readable. The returned stop
// function ends the display, emitting one final snapshot; it is a no-op
// when enabled is false.
func startProgress(enabled bool, p *obs.Progress) (stop func()) {
	if !enabled {
		return func() {}
	}
	tty := false
	if fi, err := os.Stderr.Stat(); err == nil {
		tty = fi.Mode()&os.ModeCharDevice != 0
	}
	period := 2 * time.Second
	if tty {
		period = 100 * time.Millisecond
	}
	render := func(final bool) {
		snap := p.Snapshot()
		doneN := 0
		for _, jp := range snap {
			if jp.Done {
				doneN++
			}
		}
		line := fmt.Sprintf("progress: %d/%d jobs done, %d steps", doneN, len(snap), p.TotalSteps())
		if tty {
			// Rewrite in place; the final snapshot commits the line so
			// the next output starts fresh.
			fmt.Fprintf(os.Stderr, "\r\x1b[K%s", line)
			if final {
				fmt.Fprintln(os.Stderr)
			}
			return
		}
		fmt.Fprintln(os.Stderr, line)
	}
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				render(false)
			}
		}
	}()
	return func() {
		close(quit)
		<-finished
		render(true)
	}
}
