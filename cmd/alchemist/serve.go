package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"alchemist"
	"alchemist/internal/journal"
	"alchemist/internal/server"
)

// cmdServe runs the profiling-as-a-service HTTP front end: one shared
// Engine behind the internal/server API (sync compile/profile/advise/run,
// async jobs with SSE progress streams, /metrics, /healthz). SIGINT or
// SIGTERM starts a graceful drain: in-flight jobs finish (bounded by
// -drain-timeout) while new submissions are refused.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "compiled-program cache budget (0 = default)")
	queue := fs.Int("queue", 0, "admission queue depth; full queue answers 429 (0 = 4x workers)")
	timeout := fs.Duration("timeout", time.Minute, "default per-job deadline")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "upper bound on request-supplied deadlines")
	jobTTL := fs.Duration("job-ttl", 15*time.Minute, "retire finished async jobs after this long")
	maxBody := fs.Int64("max-body", 1<<20, "request body size cap in bytes")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window; jobs still running after it are aborted")
	quiet := fs.Bool("quiet", false, "disable per-request access logging")
	dataDir := fs.String("data-dir", "", "journal job state under this directory so jobs survive restarts (empty = in-memory only)")
	fsync := fs.String("fsync", "interval", "journal fsync policy: always, interval, or none")
	snapshotEvery := fs.Int64("snapshot-every", 4096, "compact the journal after this many records (negative disables)")
	requeue := fs.Bool("requeue-on-recovery", false, "re-enqueue jobs that were queued or running at crash time instead of marking them interrupted")
	fs.Parse(args)

	syncMode, err := journal.ParseSyncMode(*fsync)
	if err != nil {
		return err
	}

	eng := alchemist.NewEngine(
		alchemist.WithWorkers(*workers),
		alchemist.WithCacheSize(*cacheSize),
	)
	var accessLog io.Writer = os.Stderr
	if *quiet {
		accessLog = nil
	}
	srv, err := server.New(server.Options{
		Engine:            eng,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		JobTTL:            *jobTTL,
		MaxBodyBytes:      *maxBody,
		AccessLog:         accessLog,
		DataDir:           *dataDir,
		Fsync:             syncMode,
		SnapshotEvery:     *snapshotEvery,
		RequeueOnRecovery: *requeue,
	})
	if err != nil {
		return err
	}
	if rec := srv.Recovery(); rec.Durable {
		// The recovery line goes to stdout with the listen line: restart
		// scripts (and the CI smoke test) scrape it.
		fmt.Printf("serve: journal recovered %d jobs (%d interrupted, %d requeued, %d torn bytes dropped)\n",
			rec.Jobs, rec.Interrupted, rec.Requeued, rec.TruncatedBytes)
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	// The listen line goes to stdout so scripts can scrape the bound
	// address (the port is dynamic with -addr :0).
	fmt.Printf("serve: listening on %s\n", srv.URL())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	<-ctx.Done()
	stopSignals() // a second signal kills the process instead of waiting

	fmt.Fprintf(os.Stderr, "serve: draining (up to %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "serve: drained cleanly")
	return nil
}
