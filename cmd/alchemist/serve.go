package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alchemist"
	"alchemist/internal/journal"
	"alchemist/internal/server"
)

// cmdServe runs the profiling-as-a-service HTTP front end: one shared
// Engine behind the internal/server API (sync compile/profile/advise/run,
// async jobs with SSE progress streams, /metrics, /healthz). SIGINT or
// SIGTERM starts a graceful drain: in-flight jobs finish (bounded by
// -drain-timeout) while new submissions are refused.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
	workers := fs.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "compiled-program cache budget (0 = default)")
	queue := fs.Int("queue", 0, "admission queue depth; full queue answers 429 (0 = 4x workers)")
	timeout := fs.Duration("timeout", time.Minute, "default per-job deadline")
	maxTimeout := fs.Duration("max-timeout", 10*time.Minute, "upper bound on request-supplied deadlines")
	jobTTL := fs.Duration("job-ttl", 15*time.Minute, "retire finished async jobs after this long")
	maxBody := fs.Int64("max-body", 1<<20, "request body size cap in bytes")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain window; jobs still running after it are aborted")
	quiet := fs.Bool("quiet", false, "disable per-request access logging")
	logFormat := fs.String("log-format", "text", "access/server log encoding: text or json")
	dataDir := fs.String("data-dir", "", "journal job state under this directory so jobs survive restarts (empty = in-memory only)")
	fsync := fs.String("fsync", "interval", "journal fsync policy: always, interval, or none")
	snapshotEvery := fs.Int64("snapshot-every", 4096, "compact the journal after this many records (negative disables)")
	requeue := fs.Bool("requeue-on-recovery", false, "re-enqueue jobs that were queued or running at crash time instead of marking them interrupted")
	apiKeys := fs.String("api-keys", "", "file of name:key lines; requests must present a listed key via X-Api-Key (empty = open server)")
	rate := fs.Float64("rate", 0, "per-client request rate limit for work-creating endpoints, requests/second (0 = unlimited)")
	clientQuota := fs.Int("client-quota", 0, "per-client cap on concurrent admitted work units; 429 quota_exceeded beyond it (0 = unlimited)")
	shed := fs.Bool("shed", false, "reject jobs on arrival when the estimated queue wait already exceeds their deadline")
	fs.Parse(args)

	syncMode, err := journal.ParseSyncMode(*fsync)
	if err != nil {
		return err
	}
	keys, err := loadAPIKeys(*apiKeys)
	if err != nil {
		return err
	}

	eng := alchemist.NewEngine(
		alchemist.WithWorkers(*workers),
		alchemist.WithCacheSize(*cacheSize),
	)
	var logger *slog.Logger
	if !*quiet {
		switch *logFormat {
		case "text":
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		case "json":
			logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
		default:
			return fmt.Errorf("serve: -log-format must be text or json, got %q", *logFormat)
		}
	}
	srv, err := server.New(server.Options{
		Engine:            eng,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		JobTTL:            *jobTTL,
		MaxBodyBytes:      *maxBody,
		Logger:            logger,
		DataDir:           *dataDir,
		Fsync:             syncMode,
		SnapshotEvery:     *snapshotEvery,
		RequeueOnRecovery: *requeue,
		APIKeys:           keys,
		RatePerSec:        *rate,
		ClientQuota:       *clientQuota,
		ShedDeadlines:     *shed,
	})
	if err != nil {
		return err
	}
	if rec := srv.Recovery(); rec.Durable {
		// The recovery line goes to stdout with the listen line: restart
		// scripts (and the CI smoke test) scrape it.
		fmt.Printf("serve: journal recovered %d jobs (%d interrupted, %d requeued, %d torn bytes dropped)\n",
			rec.Jobs, rec.Interrupted, rec.Requeued, rec.TruncatedBytes)
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	// The listen line goes to stdout so scripts can scrape the bound
	// address (the port is dynamic with -addr :0).
	fmt.Printf("serve: listening on %s\n", srv.URL())

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	<-ctx.Done()
	stopSignals() // a second signal kills the process instead of waiting

	fmt.Fprintf(os.Stderr, "serve: draining (up to %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "serve: drained cleanly")
	return nil
}

// loadAPIKeys reads a key file: one name:key per line, blank lines and
// #-comments skipped. The returned map is keyed by the API key (what a
// request presents), valued by the client name (what quotas and logs
// use).
func loadAPIKeys(path string) (map[string]string, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading -api-keys: %w", err)
	}
	keys := make(map[string]string)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, key, ok := strings.Cut(line, ":")
		name, key = strings.TrimSpace(name), strings.TrimSpace(key)
		if !ok || name == "" || key == "" {
			return nil, fmt.Errorf("serve: -api-keys line %d: want name:key, got %q", i+1, line)
		}
		if prev, dup := keys[key]; dup {
			return nil, fmt.Errorf("serve: -api-keys line %d: key already assigned to %q", i+1, prev)
		}
		keys[key] = name
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("serve: -api-keys file %s holds no keys", path)
	}
	return keys, nil
}
