// Command alchemist profiles mini-C programs for parallelization
// opportunities and regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	alchemist profile   (-w workload | -f file.mc) [flags]  ranked dependence profile (Fig. 2/3)
//	alchemist advise    (-w workload | -f file.mc) [flags]  transformation guidance
//	alchemist fig6      [-small]                            Fig. 6(a)-(d) scatter data
//	alchemist table3    [-small]                            Table III (profiling cost)
//	alchemist table4    [-small]                            Table IV (conflicts at parallelized spots)
//	alchemist table5    [-small] [-runs N] [-jobs N]        Table V (speedups)
//	alchemist run       (-w workload | -f file.mc) [-parallel] [-par-src]
//	alchemist disasm    (-w workload | -f file.mc)
//	alchemist serve     [-addr host:port] [flags]           HTTP profiling service
//	alchemist list                                          available workloads
//
// profile and advise accept an input suite — several profiling jobs that
// are fanned over -jobs workers and merged into one union profile
// (paper §II: profile completeness is a function of the test inputs):
// -scales "0,1,2" profiles a workload at several input scales, and for
// -f programs -input takes ';'-separated streams. profile, advise,
// table5, and run accept -timeout to bound the wall-clock time; a
// timed-out run fails with context.DeadlineExceeded.
//
// profile and table5 accept -metrics-addr to serve the observability
// endpoint (/metrics in Prometheus text format, /metrics.json, and
// net/http/pprof under /debug/pprof/) on a side listener while the
// command runs, and print a one-line metrics summary on completion.
// Both also accept -progress for a live per-job progress display on
// stderr (a rewriting status line on a terminal, periodic plain lines
// otherwise).
//
// serve exposes the same engine as a JSON-over-HTTP service with an
// async job queue, backpressure, and SSE progress streaming; see
// internal/server for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"alchemist"
	"alchemist/internal/advisor"
	"alchemist/internal/bench"
	"alchemist/internal/ir"
	"alchemist/internal/obs"
	"alchemist/internal/progs"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "advise":
		err = cmdAdvise(args)
	case "fig6":
		err = cmdFig6(args)
	case "table3":
		err = cmdTable3(args)
	case "table4":
		err = cmdTable4(args)
	case "table5":
		err = cmdTable5(args)
	case "run":
		err = cmdRun(args)
	case "disasm":
		err = cmdDisasm(args)
	case "serve":
		err = cmdServe(args)
	case "list":
		err = cmdList(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "alchemist: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "alchemist: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `alchemist - transparent dependence distance profiler (CGO'09 reproduction)

commands:
  profile   ranked per-construct dependence profile (paper Fig. 2/3)
  advise    transformation guidance per construct
  fig6      Fig. 6(a)-(d): size vs violating RAW deps for parallelized programs
  table3    Table III: LOC, construct counts, native vs profiled time
  table4    Table IV: conflict counts at the parallelized locations
  table5    Table V: sequential vs parallel wall-clock and speedup
  run       execute a program (optionally the spawn/sync variant in parallel)
  disasm    dump compiled bytecode
  serve     HTTP profiling service: sync + async jobs, SSE progress, /metrics
  list      list embedded workloads

run 'alchemist <command> -h' for flags`)
}

// newCtx builds the command context, honoring a -timeout flag.
func newCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// startMetrics serves the registry's /metrics, /metrics.json, and
// /debug/pprof endpoints on a side listener when addr is non-empty
// (":0" picks a free port). The returned stop function closes the
// listener; it is a no-op when no address was given.
func startMetrics(addr string, reg *obs.Registry) (stop func(), err error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := obs.StartServer(addr, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "metrics: serving /metrics /metrics.json /debug/pprof on %s\n", srv.URL())
	return func() { srv.Close() }, nil
}

// metricsSummary renders the one-line completion summary from the
// registry's headline counters.
func metricsSummary(reg *obs.Registry) string {
	s := reg.Snapshot()
	c := func(name string) int64 { return s.Counters[name] }
	return fmt.Sprintf(
		"metrics: vm_runs=%d vm_steps=%d cache_hits=%d cache_misses=%d compiles=%d jobs=%d job_errors=%d",
		c("alchemist_vm_runs_total"), c("alchemist_vm_steps_total"),
		c("alchemist_engine_cache_hits_total"), c("alchemist_engine_cache_misses_total"),
		c("alchemist_engine_compiles_total"),
		c("alchemist_engine_jobs_total"), c("alchemist_engine_job_errors_total"))
}

// sourceFlags resolves -w / -f / -scale into a program + input.
type sourceFlags struct {
	workload string
	file     string
	scale    int
	parSrc   bool
}

func (sf *sourceFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&sf.workload, "w", "", "embedded workload name (see 'alchemist list')")
	fs.StringVar(&sf.file, "f", "", "mini-C source file")
	fs.IntVar(&sf.scale, "scale", 0, "workload input scale (0 = paper default)")
	fs.BoolVar(&sf.parSrc, "par-src", false, "use the workload's spawn/sync variant")
}

// loadJobs resolves the source plus the multi-input flags into one
// profiling job per input: -scales (workloads) or ';'-separated -input
// groups (files). With neither, there is exactly one job.
func (sf *sourceFlags) loadJobs(inputCSV, scalesCSV string) (name, src string, jobs []alchemist.ProfileJob, memWords int64, err error) {
	switch {
	case sf.workload != "":
		if inputCSV != "" {
			return "", "", nil, 0, fmt.Errorf("-input applies to -f programs; use -scale/-scales with -w")
		}
		w, err := progs.ByName(sf.workload)
		if err != nil {
			return "", "", nil, 0, err
		}
		src := w.Source
		if sf.parSrc {
			if !w.HasParallel() {
				return "", "", nil, 0, fmt.Errorf("workload %s has no parallel variant", w.Name)
			}
			src = w.ParSource
		}
		scales := []int{sf.scale}
		if scalesCSV != "" {
			scales = scales[:0]
			for _, p := range strings.Split(scalesCSV, ",") {
				s, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil {
					return "", "", nil, 0, fmt.Errorf("bad scale %q", p)
				}
				scales = append(scales, s)
			}
		}
		for _, s := range scales {
			jobs = append(jobs, alchemist.ProfileJob{Input: w.InputFor(s)})
		}
		return w.Name + ".mc", src, jobs, w.MemWords, nil
	case sf.file != "":
		if scalesCSV != "" {
			return "", "", nil, 0, fmt.Errorf("-scales applies to -w workloads; use ';'-separated -input groups with -f")
		}
		data, err := os.ReadFile(sf.file)
		if err != nil {
			return "", "", nil, 0, err
		}
		groups := strings.Split(inputCSV, ";")
		for i, group := range groups {
			// An empty -input means one job with no input, but an empty
			// group inside a suite is a typo (stray ';'), not a request
			// to merge in an input-less run.
			if strings.TrimSpace(group) == "" && len(groups) > 1 {
				return "", "", nil, 0, fmt.Errorf("empty input group %d in %q (stray ';'?)", i+1, inputCSV)
			}
			input, err := parseInput(group)
			if err != nil {
				return "", "", nil, 0, err
			}
			jobs = append(jobs, alchemist.ProfileJob{Input: input})
		}
		return sf.file, string(data), jobs, 0, nil
	default:
		return "", "", nil, 0, fmt.Errorf("need -w <workload> or -f <file.mc>")
	}
}

// load resolves the single-run form: exactly one input stream.
func (sf *sourceFlags) load(inputCSV string) (name, src string, input []int64, memWords int64, err error) {
	name, src, jobs, memWords, err := sf.loadJobs(inputCSV, "")
	if err != nil {
		return "", "", nil, 0, err
	}
	if len(jobs) != 1 {
		return "", "", nil, 0, fmt.Errorf("this command takes a single input stream, got %d", len(jobs))
	}
	return name, src, jobs[0].Input, memWords, nil
}

func parseInput(csv string) ([]int64, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input element %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseTypes(s string) ([]alchemist.DepType, error) {
	if s == "" {
		return []alchemist.DepType{alchemist.RAW}, nil
	}
	var out []alchemist.DepType
	for _, p := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(p)) {
		case "raw":
			out = append(out, alchemist.RAW)
		case "war":
			out = append(out, alchemist.WAR)
		case "waw":
			out = append(out, alchemist.WAW)
		case "all":
			out = append(out, alchemist.RAW, alchemist.WAR, alchemist.WAW)
		default:
			return nil, fmt.Errorf("unknown dependence type %q", p)
		}
	}
	return out, nil
}

// profileMerged compiles the source through an Engine instrumented into
// reg and profiles every job concurrently, returning the union profile.
// A non-nil progress receives live per-job step counts, with each job
// marked done as it completes.
func profileMerged(ctx context.Context, reg *obs.Registry, name, src string, jobs []alchemist.ProfileJob, memWords int64, workers int, progress *obs.Progress) (*alchemist.Profile, error) {
	eng := alchemist.NewEngine(
		alchemist.WithWorkers(workers),
		alchemist.WithRegistry(reg),
		alchemist.WithDefaultProfileConfig(alchemist.ProfileConfig{
			RunConfig: alchemist.RunConfig{MemWords: memWords},
		}),
	)
	prog, err := eng.Compile(ctx, name, src)
	if err != nil {
		return nil, err
	}
	if progress == nil {
		merged, _, err := eng.ProfileBatch(ctx, prog, jobs)
		return merged, err
	}
	// Stream per-job completions so the live display can count finished
	// jobs, then merge exactly as ProfileBatch would.
	for i := range jobs {
		i := i
		progress.Update(i, 0)
		jobs[i].OnProgress = func(steps int64) { progress.Update(i, steps) }
	}
	results := make([]alchemist.BatchResult, len(jobs))
	for r := range eng.ProfileEach(ctx, prog, jobs) {
		results[r.Job] = r
		progress.MarkDone(r.Job)
	}
	profiles := make([]*alchemist.Profile, len(jobs))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("batch job %d: %w", i, r.Err)
		}
		profiles[i] = r.Profile
	}
	return alchemist.Merge(profiles...)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	top := fs.Int("top", 12, "constructs to print (0 = all)")
	edges := fs.Int("edges", 8, "edges per construct (0 = all)")
	all := fs.Bool("all", false, "print non-violating edges too")
	typesCSV := fs.String("types", "raw", "dependence types: raw,war,waw or all")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs; ';' separates per-job streams")
	scalesCSV := fs.String("scales", "", "comma-separated workload scales: one profiling job per scale, merged")
	jobs := fs.Int("jobs", 1, "concurrent profiling jobs")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	jsonOut := fs.Bool("json", false, "emit the profile as JSON")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/pprof on this address (\":0\" picks a port)")
	liveProgress := fs.Bool("progress", false, "render live per-job progress on stderr")
	fs.Parse(args)

	name, src, pjobs, memWords, err := sf.loadJobs(*inputCSV, *scalesCSV)
	if err != nil {
		return err
	}
	types, err := parseTypes(*typesCSV)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	stopMetrics, err := startMetrics(*metricsAddr, reg)
	if err != nil {
		return err
	}
	defer stopMetrics()
	var progress *obs.Progress
	if *liveProgress {
		progress = &obs.Progress{}
	}
	stopProgress := startProgress(*liveProgress, progress)
	ctx, cancel := newCtx(*timeout)
	defer cancel()
	prof, err := profileMerged(ctx, reg, name, src, pjobs, memWords, *jobs, progress)
	stopProgress()
	if err != nil {
		return err
	}
	defer fmt.Fprintln(os.Stderr, metricsSummary(reg))
	if *jsonOut {
		return report.WriteJSON(os.Stdout, prof)
	}
	report.Write(os.Stdout, prof, report.Options{
		Top: *top, MaxEdges: *edges, Types: types, ShowAllEdges: *all,
	})
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	top := fs.Int("top", 8, "constructs to advise on")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs; ';' separates per-job streams")
	scalesCSV := fs.String("scales", "", "comma-separated workload scales: one profiling job per scale, merged")
	jobs := fs.Int("jobs", 1, "concurrent profiling jobs")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	fs.Parse(args)

	name, src, pjobs, memWords, err := sf.loadJobs(*inputCSV, *scalesCSV)
	if err != nil {
		return err
	}
	ctx, cancel := newCtx(*timeout)
	defer cancel()
	prof, err := profileMerged(ctx, obs.NewRegistry(), name, src, pjobs, memWords, *jobs, nil)
	if err != nil {
		return err
	}
	reports := advisor.Analyze(prof, advisor.Config{})
	advisor.WriteReports(os.Stdout, prof, reports, *top)
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	top := fs.Int("top", 11, "constructs per panel")
	fs.Parse(args)
	sc := bench.Scale{Small: *small}

	a, b, _, err := bench.Fig6Gzip(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 6(a): %s\n", a.Title)
	report.WriteFig6(os.Stdout, a.Points)
	fmt.Printf("\nFig 6(b): %s\n", b.Title)
	report.WriteFig6(os.Stdout, b.Points)

	c, _, err := bench.Fig6Parser(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig 6(c): %s\n", c.Title)
	report.WriteFig6(os.Stdout, c.Points)

	d, _, err := bench.Fig6Lisp(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig 6(d): %s\n", d.Title)
	report.WriteFig6(os.Stdout, d.Points)
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	fs.Parse(args)
	rows, err := bench.Table3(bench.Scale{Small: *small})
	if err != nil {
		return err
	}
	report.WriteTable3(os.Stdout, rows)
	return nil
}

func cmdTable4(args []string) error {
	fs := flag.NewFlagSet("table4", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	fs.Parse(args)
	rows, err := bench.Table4(bench.Scale{Small: *small})
	if err != nil {
		return err
	}
	report.WriteTable4(os.Stdout, rows)
	return nil
}

func cmdTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	runs := fs.Int("runs", 3, "timed runs per configuration (best kept)")
	jobs := fs.Int("jobs", 1, "concurrent workload benchmarks (>1 skews wall-clock columns only)")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/pprof on this address (\":0\" picks a port)")
	liveProgress := fs.Bool("progress", false, "render live per-run progress on stderr")
	fs.Parse(args)
	reg := obs.NewRegistry()
	stopMetrics, err := startMetrics(*metricsAddr, reg)
	if err != nil {
		return err
	}
	defer stopMetrics()
	var progress *obs.Progress
	if *liveProgress {
		progress = &obs.Progress{}
	}
	stopProgress := startProgress(*liveProgress, progress)
	ctx, cancel := newCtx(*timeout)
	defer cancel()
	rows, err := bench.Table5Ctx(ctx, bench.Scale{Small: *small, Metrics: vm.NewMetrics(reg), Progress: progress}, *runs, *jobs)
	stopProgress()
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, metricsSummary(reg))
	report.WriteTable5(os.Stdout, rows)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	parallel := fs.Bool("parallel", false, "execute spawns on goroutines")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs")
	timeout := fs.Duration("timeout", 0, "abort after this duration (0 = none)")
	fs.Parse(args)

	name, src, input, memWords, err := sf.load(*inputCSV)
	if err != nil {
		return err
	}
	ctx, cancel := newCtx(*timeout)
	defer cancel()
	prog, err := alchemist.CompileCtx(ctx, name, src)
	if err != nil {
		return err
	}
	res, err := prog.RunCtx(ctx, alchemist.RunConfig{
		Input: input, MemWords: memWords, Parallel: *parallel, Stdout: os.Stdout,
	})
	if err != nil {
		return err
	}
	fmt.Printf("steps=%d ret=%d out=%v\n", res.Steps, res.Ret, res.Output)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	fs.Parse(args)

	name, src, _, _, err := sf.load("")
	if err != nil {
		return err
	}
	prog, err := alchemist.CompileCtx(context.Background(), name, src)
	if err != nil {
		return err
	}
	for _, f := range prog.IR().Funcs {
		fmt.Print(ir.Disassemble(f))
	}
	return nil
}

func cmdList(args []string) error {
	fmt.Printf("%-12s %-6s %-9s %s\n", "name", "LOC", "parallel", "description")
	for _, w := range progs.All() {
		par := "-"
		if w.HasParallel() {
			par = "yes"
		}
		fmt.Printf("%-12s %-6d %-9s %s\n", w.Name, w.LOC(), par, w.Description)
	}
	return nil
}
