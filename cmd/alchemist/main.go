// Command alchemist profiles mini-C programs for parallelization
// opportunities and regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	alchemist profile   (-w workload | -f file.mc) [flags]  ranked dependence profile (Fig. 2/3)
//	alchemist advise    (-w workload | -f file.mc) [flags]  transformation guidance
//	alchemist fig6      [-small]                            Fig. 6(a)-(d) scatter data
//	alchemist table3    [-small]                            Table III (profiling cost)
//	alchemist table4    [-small]                            Table IV (conflicts at parallelized spots)
//	alchemist table5    [-small] [-runs N]                  Table V (speedups)
//	alchemist run       (-w workload | -f file.mc) [-parallel] [-par-src]
//	alchemist disasm    (-w workload | -f file.mc)
//	alchemist list                                          available workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alchemist/internal/advisor"
	"alchemist/internal/bench"
	"alchemist/internal/compile"
	"alchemist/internal/core"
	"alchemist/internal/ir"
	"alchemist/internal/progs"
	"alchemist/internal/report"
	"alchemist/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "profile":
		err = cmdProfile(args)
	case "advise":
		err = cmdAdvise(args)
	case "fig6":
		err = cmdFig6(args)
	case "table3":
		err = cmdTable3(args)
	case "table4":
		err = cmdTable4(args)
	case "table5":
		err = cmdTable5(args)
	case "run":
		err = cmdRun(args)
	case "disasm":
		err = cmdDisasm(args)
	case "list":
		err = cmdList(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "alchemist: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "alchemist: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `alchemist - transparent dependence distance profiler (CGO'09 reproduction)

commands:
  profile   ranked per-construct dependence profile (paper Fig. 2/3)
  advise    transformation guidance per construct
  fig6      Fig. 6(a)-(d): size vs violating RAW deps for parallelized programs
  table3    Table III: LOC, construct counts, native vs profiled time
  table4    Table IV: conflict counts at the parallelized locations
  table5    Table V: sequential vs parallel wall-clock and speedup
  run       execute a program (optionally the spawn/sync variant in parallel)
  disasm    dump compiled bytecode
  list      list embedded workloads

run 'alchemist <command> -h' for flags`)
}

// sourceFlags resolves -w / -f / -scale into a program + input.
type sourceFlags struct {
	workload string
	file     string
	scale    int
	parSrc   bool
}

func (sf *sourceFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&sf.workload, "w", "", "embedded workload name (see 'alchemist list')")
	fs.StringVar(&sf.file, "f", "", "mini-C source file")
	fs.IntVar(&sf.scale, "scale", 0, "workload input scale (0 = paper default)")
	fs.BoolVar(&sf.parSrc, "par-src", false, "use the workload's spawn/sync variant")
}

func (sf *sourceFlags) load(inputCSV string) (name, src string, input []int64, memWords int64, err error) {
	switch {
	case sf.workload != "":
		w, err := progs.ByName(sf.workload)
		if err != nil {
			return "", "", nil, 0, err
		}
		src := w.Source
		if sf.parSrc {
			if !w.HasParallel() {
				return "", "", nil, 0, fmt.Errorf("workload %s has no parallel variant", w.Name)
			}
			src = w.ParSource
		}
		return w.Name + ".mc", src, w.InputFor(sf.scale), w.MemWords, nil
	case sf.file != "":
		data, err := os.ReadFile(sf.file)
		if err != nil {
			return "", "", nil, 0, err
		}
		input, err := parseInput(inputCSV)
		if err != nil {
			return "", "", nil, 0, err
		}
		return sf.file, string(data), input, 0, nil
	default:
		return "", "", nil, 0, fmt.Errorf("need -w <workload> or -f <file.mc>")
	}
}

func parseInput(csv string) ([]int64, error) {
	if csv == "" {
		return nil, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad input element %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseTypes(s string) ([]core.DepType, error) {
	if s == "" {
		return []core.DepType{core.RAW}, nil
	}
	var out []core.DepType
	for _, p := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(p)) {
		case "raw":
			out = append(out, core.RAW)
		case "war":
			out = append(out, core.WAR)
		case "waw":
			out = append(out, core.WAW)
		case "all":
			out = append(out, core.RAW, core.WAR, core.WAW)
		default:
			return nil, fmt.Errorf("unknown dependence type %q", p)
		}
	}
	return out, nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	top := fs.Int("top", 12, "constructs to print (0 = all)")
	edges := fs.Int("edges", 8, "edges per construct (0 = all)")
	all := fs.Bool("all", false, "print non-violating edges too")
	typesCSV := fs.String("types", "raw", "dependence types: raw,war,waw or all")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs")
	jsonOut := fs.Bool("json", false, "emit the profile as JSON")
	fs.Parse(args)

	name, src, input, memWords, err := sf.load(*inputCSV)
	if err != nil {
		return err
	}
	types, err := parseTypes(*typesCSV)
	if err != nil {
		return err
	}
	prof, _, err := core.ProfileSource(name, src, vm.Config{Input: input, MemWords: memWords}, core.DefaultOptions())
	if err != nil {
		return err
	}
	if *jsonOut {
		return report.WriteJSON(os.Stdout, prof)
	}
	report.Write(os.Stdout, prof, report.Options{
		Top: *top, MaxEdges: *edges, Types: types, ShowAllEdges: *all,
	})
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	top := fs.Int("top", 8, "constructs to advise on")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs")
	fs.Parse(args)

	name, src, input, memWords, err := sf.load(*inputCSV)
	if err != nil {
		return err
	}
	prof, _, err := core.ProfileSource(name, src, vm.Config{Input: input, MemWords: memWords}, core.DefaultOptions())
	if err != nil {
		return err
	}
	reports := advisor.Analyze(prof, advisor.Config{})
	advisor.WriteReports(os.Stdout, prof, reports, *top)
	return nil
}

func cmdFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	top := fs.Int("top", 11, "constructs per panel")
	fs.Parse(args)
	sc := bench.Scale{Small: *small}

	a, b, _, err := bench.Fig6Gzip(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("Fig 6(a): %s\n", a.Title)
	report.WriteFig6(os.Stdout, a.Points)
	fmt.Printf("\nFig 6(b): %s\n", b.Title)
	report.WriteFig6(os.Stdout, b.Points)

	c, _, err := bench.Fig6Parser(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig 6(c): %s\n", c.Title)
	report.WriteFig6(os.Stdout, c.Points)

	d, _, err := bench.Fig6Lisp(sc, *top)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig 6(d): %s\n", d.Title)
	report.WriteFig6(os.Stdout, d.Points)
	return nil
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	fs.Parse(args)
	rows, err := bench.Table3(bench.Scale{Small: *small})
	if err != nil {
		return err
	}
	report.WriteTable3(os.Stdout, rows)
	return nil
}

func cmdTable4(args []string) error {
	fs := flag.NewFlagSet("table4", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	fs.Parse(args)
	rows, err := bench.Table4(bench.Scale{Small: *small})
	if err != nil {
		return err
	}
	report.WriteTable4(os.Stdout, rows)
	return nil
}

func cmdTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	small := fs.Bool("small", false, "use small inputs")
	runs := fs.Int("runs", 3, "timed runs per configuration (best kept)")
	fs.Parse(args)
	rows, err := bench.Table5(bench.Scale{Small: *small}, *runs)
	if err != nil {
		return err
	}
	report.WriteTable5(os.Stdout, rows)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	parallel := fs.Bool("parallel", false, "execute spawns on goroutines")
	inputCSV := fs.String("input", "", "comma-separated input stream for -f programs")
	fs.Parse(args)

	name, src, input, memWords, err := sf.load(*inputCSV)
	if err != nil {
		return err
	}
	prog, err := compile.Build(name, src)
	if err != nil {
		return err
	}
	m, err := vm.New(prog, vm.Config{Input: input, MemWords: memWords, Parallel: *parallel, Out: os.Stdout})
	if err != nil {
		return err
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("steps=%d ret=%d out=%v\n", res.Steps, res.Ret, res.Output)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	var sf sourceFlags
	sf.register(fs)
	fs.Parse(args)

	name, src, _, _, err := sf.load("")
	if err != nil {
		return err
	}
	prog, err := compile.Build(name, src)
	if err != nil {
		return err
	}
	for _, f := range prog.Funcs {
		fmt.Print(ir.Disassemble(f))
	}
	return nil
}

func cmdList(args []string) error {
	fmt.Printf("%-12s %-6s %-9s %s\n", "name", "LOC", "parallel", "description")
	for _, w := range progs.All() {
		par := "-"
		if w.HasParallel() {
			par = "yes"
		}
		fmt.Printf("%-12s %-6d %-9s %s\n", w.Name, w.LOC(), par, w.Description)
	}
	return nil
}
