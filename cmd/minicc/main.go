// Command minicc is the standalone mini-C toolchain driver: it checks,
// runs, disassembles, and dumps programs without involving the profiler.
//
// Usage:
//
//	minicc run file.mc [-input 1,2,3] [-parallel] [-workers N] [-mem words]
//	minicc check file.mc
//	minicc disasm file.mc
//	minicc ast file.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"alchemist/internal/ast"
	"alchemist/internal/compile"
	"alchemist/internal/ir"
	"alchemist/internal/parser"
	"alchemist/internal/sema"
	"alchemist/internal/source"
	"alchemist/internal/vm"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd, file := os.Args[1], os.Args[2]
	args := os.Args[3:]
	data, err := os.ReadFile(file)
	if err != nil {
		fail(err)
	}
	src := string(data)
	switch cmd {
	case "run":
		err = cmdRun(file, src, args)
	case "check":
		err = cmdCheck(file, src)
	case "disasm":
		err = cmdDisasm(file, src)
	case "ast":
		err = cmdAST(file, src)
	default:
		fmt.Fprintf(os.Stderr, "minicc: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `minicc - mini-C compiler and VM

usage:
  minicc run    file.mc [-input 1,2,3] [-parallel] [-workers N] [-mem words]
  minicc check  file.mc
  minicc disasm file.mc
  minicc ast    file.mc`)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "minicc: %v\n", err)
	os.Exit(1)
}

func cmdRun(name, src string, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	inputCSV := fs.String("input", "", "comma-separated int64 input stream")
	parallel := fs.Bool("parallel", false, "execute spawns on goroutines")
	workers := fs.Int("workers", 0, "virtual-time simulation with N workers")
	memWords := fs.Int64("mem", 0, "flat memory size in words")
	steps := fs.Int64("steplimit", 0, "abort after this many instructions (sequential)")
	optimize := fs.Bool("O", false, "enable optimization passes")
	fs.Parse(args)

	var input []int64
	if *inputCSV != "" {
		for _, p := range strings.Split(*inputCSV, ",") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil {
				return fmt.Errorf("bad -input element %q", p)
			}
			input = append(input, v)
		}
	}
	prog, err := compile.BuildConfig(name, src, compile.Config{Optimize: *optimize})
	if err != nil {
		return err
	}
	m, err := vm.New(prog, vm.Config{
		Input:      input,
		Parallel:   *parallel,
		SimWorkers: *workers,
		MemWords:   *memWords,
		StepLimit:  *steps,
		Out:        os.Stdout,
	})
	if err != nil {
		return err
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	fmt.Printf("steps=%d", res.Steps)
	if *workers > 0 {
		fmt.Printf(" virtual=%d", res.VirtualSteps)
	}
	fmt.Printf(" ret=%d out=%v\n", res.Ret, res.Output)
	return nil
}

func cmdCheck(name, src string) error {
	file := source.NewFile(name, src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if !diags.HasErrors() {
		sema.Check(prog, &diags)
	}
	for _, d := range diags.Diags {
		fmt.Println(d)
	}
	if diags.HasErrors() {
		return fmt.Errorf("%s: check failed", name)
	}
	fmt.Printf("%s: ok (%d globals, %d functions)\n", name, len(prog.Globals), len(prog.Funcs))
	return nil
}

func cmdDisasm(name, src string) error {
	prog, err := compile.Build(name, src)
	if err != nil {
		return err
	}
	fmt.Printf("globals: %d words; strings: %d\n", prog.GlobalWords, len(prog.Strings))
	for _, f := range prog.Funcs {
		fmt.Print(ir.Disassemble(f))
	}
	return nil
}

func cmdAST(name, src string) error {
	file := source.NewFile(name, src)
	var diags source.DiagList
	prog := parser.Parse(file, &diags)
	if err := diags.Err(); err != nil {
		return err
	}
	ast.Dump(os.Stdout, prog)
	return nil
}
