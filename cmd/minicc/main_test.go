package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "minicc-cli")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binary = filepath.Join(dir, "minicc")
	cmd := exec.Command("go", "build", "-o", binary, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command(binary, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("minicc %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

const sampleProg = `
int acc[4];
void work(int i) { acc[i] = i * i; }
int main() {
	for (int i = 0; i < 4; i++) { spawn work(i); }
	sync;
	out(acc[0] + acc[1] + acc[2] + acc[3]);
	print("done");
	return 0;
}`

func TestMiniccRun(t *testing.T) {
	path := writeProg(t, sampleProg)
	out := run(t, "run", path)
	if !strings.Contains(out, "done") || !strings.Contains(out, "out=[14]") {
		t.Errorf("run output:\n%s", out)
	}
}

func TestMiniccRunModes(t *testing.T) {
	path := writeProg(t, sampleProg)
	par := run(t, "run", path, "-parallel")
	if !strings.Contains(par, "out=[14]") {
		t.Errorf("parallel output:\n%s", par)
	}
	sim := run(t, "run", path, "-workers", "2")
	if !strings.Contains(sim, "virtual=") || !strings.Contains(sim, "out=[14]") {
		t.Errorf("simulated output:\n%s", sim)
	}
	opt := run(t, "run", path, "-O")
	if !strings.Contains(opt, "out=[14]") {
		t.Errorf("optimized output:\n%s", opt)
	}
}

func TestMiniccCheck(t *testing.T) {
	path := writeProg(t, sampleProg)
	out := run(t, "check", path)
	if !strings.Contains(out, "ok (1 globals, 2 functions)") {
		t.Errorf("check output: %s", out)
	}
	bad := writeProg(t, `int main() { return x; }`)
	if out, err := exec.Command(binary, "check", bad).CombinedOutput(); err == nil {
		t.Errorf("check accepted bad program:\n%s", out)
	} else if !strings.Contains(string(out), "undefined variable") {
		t.Errorf("check error output: %s", out)
	}
}

func TestMiniccDisasmAndAST(t *testing.T) {
	path := writeProg(t, sampleProg)
	dis := run(t, "disasm", path)
	if !strings.Contains(dis, "func work") || !strings.Contains(dis, "spawn work") {
		t.Errorf("disasm output:\n%s", dis)
	}
	tree := run(t, "ast", path)
	if !strings.Contains(tree, "func void work(i)") || !strings.Contains(tree, "spawn") {
		t.Errorf("ast output:\n%s", tree)
	}
}

func TestMiniccInput(t *testing.T) {
	path := writeProg(t, `int main() { out(in(0) + in(1)); return 0; }`)
	out := run(t, "run", path, "-input", "40,2")
	if !strings.Contains(out, "out=[42]") {
		t.Errorf("input run output: %s", out)
	}
}

func TestMiniccStepLimit(t *testing.T) {
	path := writeProg(t, `int main() { while (1) {} return 0; }`)
	out, err := exec.Command(binary, "run", path, "-steplimit", "5000").CombinedOutput()
	if err == nil || !strings.Contains(string(out), "step limit") {
		t.Errorf("step limit run: err=%v out=%s", err, out)
	}
}
