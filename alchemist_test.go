package alchemist_test

import (
	"bytes"
	"strings"
	"testing"

	"alchemist"
	"alchemist/internal/progs"
)

const apiSrc = `
int staged[16];
int total;
void stage(int r) {
	for (int i = 0; i < 16; i++) {
		staged[i] = r * 16 + i;
	}
}
void fold() {
	for (int i = 0; i < 16; i++) {
		total += staged[i];
	}
}
int main() {
	for (int r = 0; r < 20; r++) {
		stage(r);
		fold();
	}
	out(total);
	return 0;
}
`

func TestCompileAndRun(t *testing.T) {
	prog, err := alchemist.Compile("api.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(alchemist.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for r := 0; r < 20; r++ {
		for i := 0; i < 16; i++ {
			want += int64(r*16 + i)
		}
	}
	if res.Output[0] != want {
		t.Fatalf("output %d, want %d", res.Output[0], want)
	}
	if res.Steps == 0 || res.VirtualSteps != res.Steps {
		t.Errorf("steps=%d virtual=%d", res.Steps, res.VirtualSteps)
	}
}

func TestCompileError(t *testing.T) {
	_, err := alchemist.Compile("bad.mc", "int main() { return x; }")
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Fatalf("err = %v", err)
	}
}

func TestProfileAPI(t *testing.T) {
	prog, err := alchemist.Compile("api.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	profile, res, err := prog.Profile(alchemist.ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if profile.TotalSteps != res.Steps {
		t.Error("profile steps mismatch")
	}
	stage := profile.ConstructForFunc("stage")
	fold := profile.ConstructForFunc("fold")
	if stage == nil || fold == nil {
		t.Fatal("constructs missing")
	}
	if stage.Instances != 20 || fold.Instances != 20 {
		t.Errorf("instances stage=%d fold=%d", stage.Instances, fold.Instances)
	}
	// stage -> fold RAW edges exist with short distances (fold runs right
	// after stage).
	raw := stage.CountEdges(alchemist.RAW)
	if raw == 0 {
		t.Error("no RAW edges out of stage")
	}
	text := alchemist.Report(profile, alchemist.ReportOptions{Top: 5, ShowAllEdges: true})
	if !strings.Contains(text, "Method stage") {
		t.Errorf("report:\n%s", text)
	}
	advice := alchemist.Advise(profile)
	if len(advice) == 0 {
		t.Fatal("no advice")
	}
	atext := alchemist.AdviceText(profile, advice, 3)
	if atext == "" {
		t.Error("empty advice text")
	}
	pts := alchemist.Fig6(profile, 5)
	if len(pts) == 0 || pts[0].Rank != 1 {
		t.Errorf("fig6 points = %+v", pts)
	}
	excl := alchemist.Fig6Excluding(profile, 5, pts[1].Label)
	for _, pt := range excl {
		if pt.Label == pts[1].Label {
			t.Error("excluded label still present")
		}
	}
}

func TestProfileWAROptions(t *testing.T) {
	prog, err := alchemist.Compile("api.mc", apiSrc)
	if err != nil {
		t.Fatal(err)
	}
	profile, _, err := prog.Profile(alchemist.ProfileConfig{DisableWAR: true, DisableWAW: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range profile.Constructs {
		if c.CountEdges(alchemist.WAR)+c.CountEdges(alchemist.WAW) != 0 {
			t.Fatal("WAR/WAW edges present despite disabling")
		}
	}
}

func TestRunParallelAndSim(t *testing.T) {
	w := progs.Ogg()
	input := w.InputFor(w.SmallScale)

	seqProg, err := alchemist.Compile("ogg.mc", w.Source)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqProg.Run(alchemist.RunConfig{Input: input, MemWords: w.MemWords})
	if err != nil {
		t.Fatal(err)
	}

	parProg, err := alchemist.Compile("ogg_par.mc", w.ParSource)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := parProg.Run(alchemist.RunConfig{Input: input, MemWords: w.MemWords, SimWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sim.VirtualSteps >= seq.VirtualSteps {
		t.Errorf("no simulated speedup: %d vs %d", sim.VirtualSteps, seq.VirtualSteps)
	}
	if len(sim.Output) != len(seq.Output) {
		t.Fatalf("output lengths differ")
	}
	for i := range seq.Output {
		if sim.Output[i] != seq.Output[i] {
			t.Fatalf("output %d differs: %d vs %d", i, sim.Output[i], seq.Output[i])
		}
	}

	// Goroutine mode produces the same output.
	parProg2, err := alchemist.Compile("ogg_par.mc", w.ParSource)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parProg2.Run(alchemist.RunConfig{Input: input, MemWords: w.MemWords, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Output {
		if par.Output[i] != seq.Output[i] {
			t.Fatalf("parallel output %d differs", i)
		}
	}
}

func TestStdout(t *testing.T) {
	prog, err := alchemist.Compile("p.mc", `int main() { print("hi ", 7); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := prog.Run(alchemist.RunConfig{Stdout: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hi 7\n" {
		t.Fatalf("stdout = %q", buf.String())
	}
}

func TestIRAccess(t *testing.T) {
	prog, err := alchemist.Compile("p.mc", `int main() { return 42; }`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.IR() == nil || prog.IR().Main == nil {
		t.Fatal("IR not exposed")
	}
	if prog.Name != "p.mc" || prog.Source == "" {
		t.Error("metadata missing")
	}
}
