package alchemist_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alchemist"
)

// loadTestdata compiles one file from testdata/.
func loadTestdata(t *testing.T, name string) *alchemist.Program {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := alchemist.Compile(name, string(data))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestTestdataGoldens runs every sample program against known outputs.
func TestTestdataGoldens(t *testing.T) {
	cases := []struct {
		file  string
		input []int64
		want  []int64
	}{
		// 168 primes below 1000, largest 997.
		{"sieve.mc", []int64{1000}, []int64{168, 997}},
		// 25 primes below 100, largest 97.
		{"sieve.mc", []int64{100}, []int64{25, 97}},
		// Collatz below 100: start 97 with chain length 118.
		{"collatz.mc", []int64{100}, []int64{97, 118}},
		// Collatz below 1000: start 871, length 178.
		{"collatz.mc", []int64{1000}, []int64{871, 178}},
	}
	for _, tc := range cases {
		res, err := loadTestdata(t, tc.file).Run(alchemist.RunConfig{Input: tc.input})
		if err != nil {
			t.Errorf("%s: %v", tc.file, err)
			continue
		}
		if !reflect.DeepEqual(res.Output, tc.want) {
			t.Errorf("%s(%v) = %v, want %v", tc.file, tc.input, res.Output, tc.want)
		}
	}
}

// TestTestdataSort checks the quicksort program sorts arbitrary inputs
// (its own assert enforces sortedness; we verify the checksum matches a
// reference sort).
func TestTestdataSort(t *testing.T) {
	input := make([]int64, 0, 500)
	seed := int64(987654321)
	for i := 0; i < 500; i++ {
		seed = (seed*6364136223846793005 + 1442695040888963407) % (1 << 40)
		if seed < 0 {
			seed = -seed
		}
		input = append(input, seed%100000)
	}
	res, err := loadTestdata(t, "sort.mc").Run(alchemist.RunConfig{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 1 {
		t.Fatal("sort.mc reported unsorted output")
	}
	// Reference checksum.
	ref := append([]int64(nil), input...)
	for i := 1; i < len(ref); i++ {
		for j := i; j > 0 && ref[j-1] > ref[j]; j-- {
			ref[j-1], ref[j] = ref[j], ref[j-1]
		}
	}
	ck := int64(0)
	for _, v := range ref {
		ck = (ck*31 + v) & 16777215
	}
	if res.Output[1] != ck {
		t.Errorf("checksum %d, want %d", res.Output[1], ck)
	}
}

// TestTestdataMatmulModes runs the spawn-annotated matmul in all three
// execution modes and demands identical results.
func TestTestdataMatmulModes(t *testing.T) {
	input := []int64{48}
	seq, err := loadTestdata(t, "matmul.mc").Run(alchemist.RunConfig{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := loadTestdata(t, "matmul.mc").Run(alchemist.RunConfig{Input: input, SimWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := loadTestdata(t, "matmul.mc").Run(alchemist.RunConfig{Input: input, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Output, sim.Output) || !reflect.DeepEqual(seq.Output, par.Output) {
		t.Fatalf("outputs diverge: seq=%v sim=%v par=%v", seq.Output, sim.Output, par.Output)
	}
	// The band decomposition is compute-heavy and balanced: the simulated
	// makespan must show speedup.
	if ratio := float64(seq.VirtualSteps) / float64(sim.VirtualSteps); ratio < 2.5 {
		t.Errorf("matmul simulated speedup %.2f too low", ratio)
	}
}

// TestTestdataProfiles profiles each sample and sanity-checks candidate
// detection: matmul's band() must be a future candidate, the sieve's
// inner marking loop must not.
func TestTestdataProfiles(t *testing.T) {
	profile, _, err := loadTestdata(t, "matmul.mc").Profile(alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{Input: []int64{48}},
	})
	if err != nil {
		t.Fatal(err)
	}
	band := profile.ConstructForFunc("band")
	if band == nil {
		t.Fatal("band not profiled")
	}
	// band's only violating RAW edges are reads after the join point in
	// main (the trace loop) — precisely what the program's sync protects.
	// No violating edge may point back into band itself, which would
	// forbid running bands concurrently with each other.
	for _, e := range band.ViolatingEdges(alchemist.RAW) {
		tailFn := profile.Program.FuncAt(e.TailPC)
		if tailFn != nil && tailFn.Name == "band" {
			t.Errorf("band-internal violating RAW edge: %+v", e)
		}
	}

	sieveProf, _, err := loadTestdata(t, "sieve.mc").Profile(alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{Input: []int64{2000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The outer sieve loop carries RAW deps (composite[] written by inner
	// loops, read by later iterations at short distances).
	var outer *alchemist.ConstructStat
	for _, c := range sieveProf.Constructs {
		if c.Kind == alchemist.KindLoop && c.FuncName == "main" {
			outer = c
			break
		}
	}
	if outer == nil {
		t.Fatal("no sieve loop")
	}
	// The sieve's cross-iteration RAW dependences (marking writes feeding
	// later primality reads) must be attributed to the outer loop. Their
	// *minimum* distances are long — the last write to composite[p] comes
	// from p's largest prime factor, many iterations earlier — so the
	// profile correctly reports edges without short-distance violations.
	if outer.CountEdges(alchemist.RAW) == 0 {
		t.Error("sieve loop should carry cross-iteration RAW dependences")
	}
}
