package alchemist_test

import (
	"bytes"
	"strings"
	"testing"

	"alchemist"
)

func TestCompileOptimizedFacade(t *testing.T) {
	src := `
int main() {
	int x = 2 + 3 * 4;
	out(x);
	return 0;
}`
	plain, err := alchemist.Compile("p.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	optd, err := alchemist.CompileOptimized("p.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Run(alchemist.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := optd.Run(alchemist.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Output[0] != ro.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", rp.Output, ro.Output)
	}
	if ro.Steps > rp.Steps {
		t.Errorf("optimized ran more steps: %d vs %d", ro.Steps, rp.Steps)
	}
}

func TestMergeAndDiffFacade(t *testing.T) {
	src := `
int shared;
int sink[8];
void handle(int i, int mode) {
	int acc = i * 3;
	if (mode == 1) { shared = acc; }
	sink[i & 7] = acc;
}
int main() {
	int n = inlen() / 2;
	for (int i = 0; i < n; i++) {
		handle(in(2 * i), in(2 * i + 1));
		out(shared);
	}
	return 0;
}`
	prog, err := alchemist.Compile("m.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	profileWith := func(mode int64) *alchemist.Profile {
		var input []int64
		for i := int64(0); i < 12; i++ {
			input = append(input, i, mode)
		}
		p, _, err := prog.Profile(alchemist.ProfileConfig{
			RunConfig: alchemist.RunConfig{Input: input},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	clean := profileWith(0)
	dirty := profileWith(1)

	merged, err := alchemist.Merge(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	h := merged.ConstructForFunc("handle")
	if h == nil || h.Instances != 24 {
		t.Fatalf("merged handle: %+v", h)
	}

	diffs, err := alchemist.Diff(clean, dirty)
	if err != nil {
		t.Fatal(err)
	}
	introduced := 0
	for _, d := range diffs {
		introduced += len(d.Introduced)
	}
	if introduced == 0 {
		t.Error("diff found no introduced violations")
	}

	var buf bytes.Buffer
	if err := alchemist.WriteJSON(&buf, merged); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"constructs"`) {
		t.Error("JSON export looks wrong")
	}
}

func TestRunConfigValidation(t *testing.T) {
	prog, err := alchemist.Compile("p.mc", `int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(alchemist.RunConfig{Parallel: true, SimWorkers: 2}); err == nil {
		t.Error("Parallel+SimWorkers accepted")
	}
}

func TestProfileSeedAffectsRand(t *testing.T) {
	src := `
int main() {
	out(rand() & 65535);
	return 0;
}`
	prog, err := alchemist.Compile("r.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := prog.Run(alchemist.RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := prog.Run(alchemist.RunConfig{Seed: 99999})
	if err != nil {
		t.Fatal(err)
	}
	c, err := prog.Run(alchemist.RunConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Output[0] != c.Output[0] {
		t.Error("same seed produced different streams")
	}
	if a.Output[0] == b.Output[0] {
		t.Error("different seeds produced the same first value (unlikely)")
	}
}
