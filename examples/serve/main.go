// serve demonstrates the profiling-as-a-service subsystem end to end:
// an in-process internal/server instance on a free port, a synchronous
// profile call, an async job followed over its SSE progress stream, a
// /metrics scrape, and a graceful drain.
//
// Run with: go run ./examples/serve
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"alchemist"
	"alchemist/internal/server"
)

func main() {
	eng := alchemist.NewEngine(alchemist.WithWorkers(2))
	srv, err := server.New(server.Options{Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := srv.URL()
	fmt.Printf("serving %s\n\n", base)

	// Synchronous profiling: one POST, the merged profile comes back in
	// the response. Two scales of the aes workload are profiled
	// concurrently and merged into one union profile.
	resp, err := http.Post(base+"/v1/profile", "application/json",
		strings.NewReader(`{"workload":"aes","scales":[512,1024],"top":3}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("=== POST /v1/profile -> %d (excerpt) ===\n%.600s...\n\n", resp.StatusCode, body)

	// Async: POST /v1/jobs answers 202 immediately with the job id.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"profile","workload":"aes","scales":[1024]}`))
	if err != nil {
		log.Fatal(err)
	}
	loc := resp.Header.Get("Location")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("=== POST /v1/jobs -> %d, Location: %s ===\n", resp.StatusCode, loc)

	// Follow the job's SSE stream: the full event log is replayed in
	// order (queued, running, progress..., terminal) and the stream ends
	// itself after the terminal event.
	resp, err = http.Get(base + loc + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			events++
			if events <= 3 || strings.Contains(line, `"state"`) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	resp.Body.Close()
	fmt.Printf("(%d events total)\n\n", events)

	// The same registry serves the engine, VM, process, and server
	// metrics on one endpoint.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("=== GET /metrics (excerpt) ===")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "alchemist_server_requests_total") ||
			strings.HasPrefix(line, "alchemist_server_jobs_created_total") ||
			strings.HasPrefix(line, "alchemist_engine_jobs_total") ||
			strings.HasPrefix(line, "alchemist_process_goroutines") {
			fmt.Println(line)
		}
	}

	// Graceful drain: new jobs are refused while in-flight ones finish.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")

	// --- Durability: jobs survive a restart -------------------------
	// With a DataDir every job mutation is journaled; a new server over
	// the same directory replays the log and serves finished jobs —
	// results and event logs included — as if nothing happened.
	dataDir, err := os.MkdirTemp("", "alchemist-serve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	srv2, err := server.New(server.Options{Engine: eng, DataDir: dataDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(srv2.URL()+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","workload":"aes"}`))
	if err != nil {
		log.Fatal(err)
	}
	loc = resp.Header.Get("Location")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	for { // poll to completion
		resp, err = http.Get(srv2.URL() + loc)
		if err != nil {
			log.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"state": "succeeded"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	srv3, err := server.New(server.Options{Engine: eng, DataDir: dataDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv3.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	rec := srv3.Recovery()
	fmt.Printf("\n=== restart over %s ===\nrecovered %d job(s), %d interrupted, %d torn bytes dropped\n",
		dataDir, rec.Jobs, rec.Interrupted, rec.TruncatedBytes)
	resp, err = http.Get(srv3.URL() + loc)
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET %s after restart -> %d (excerpt)\n%.300s...\n", loc, resp.StatusCode, body)
	if err := srv3.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndurable store drained cleanly")
}
