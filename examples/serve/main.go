// serve demonstrates the profiling-as-a-service subsystem end to end:
// an in-process internal/server instance on a free port, a synchronous
// profile call, an async job followed over its SSE progress stream, a
// /metrics scrape, a graceful drain, durable restarts, and finally the
// client SDK riding out a mid-run server restart.
//
// Run with: go run ./examples/serve
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"alchemist"
	"alchemist/client"
	"alchemist/internal/server"
)

func main() {
	eng := alchemist.NewEngine(alchemist.WithWorkers(2))
	srv, err := server.New(server.Options{Engine: eng})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	base := srv.URL()
	fmt.Printf("serving %s\n\n", base)

	// Synchronous profiling: one POST, the merged profile comes back in
	// the response. Two scales of the aes workload are profiled
	// concurrently and merged into one union profile.
	resp, err := http.Post(base+"/v1/profile", "application/json",
		strings.NewReader(`{"workload":"aes","scales":[512,1024],"top":3}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("=== POST /v1/profile -> %d (excerpt) ===\n%.600s...\n\n", resp.StatusCode, body)

	// Async: POST /v1/jobs answers 202 immediately with the job id.
	resp, err = http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"profile","workload":"aes","scales":[1024]}`))
	if err != nil {
		log.Fatal(err)
	}
	loc := resp.Header.Get("Location")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("=== POST /v1/jobs -> %d, Location: %s ===\n", resp.StatusCode, loc)

	// Follow the job's SSE stream: the full event log is replayed in
	// order (queued, running, progress..., terminal) and the stream ends
	// itself after the terminal event.
	resp, err = http.Get(base + loc + "/events")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			events++
			if events <= 3 || strings.Contains(line, `"state"`) {
				fmt.Printf("  %s\n", line)
			}
		}
	}
	resp.Body.Close()
	fmt.Printf("(%d events total)\n\n", events)

	// The same registry serves the engine, VM, process, and server
	// metrics on one endpoint.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("=== GET /metrics (excerpt) ===")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "alchemist_server_requests_total") ||
			strings.HasPrefix(line, "alchemist_server_jobs_created_total") ||
			strings.HasPrefix(line, "alchemist_engine_jobs_total") ||
			strings.HasPrefix(line, "alchemist_process_goroutines") {
			fmt.Println(line)
		}
	}

	// Graceful drain: new jobs are refused while in-flight ones finish.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained cleanly")

	// --- Durability: jobs survive a restart -------------------------
	// With a DataDir every job mutation is journaled; a new server over
	// the same directory replays the log and serves finished jobs —
	// results and event logs included — as if nothing happened.
	dataDir, err := os.MkdirTemp("", "alchemist-serve-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)

	srv2, err := server.New(server.Options{Engine: eng, DataDir: dataDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(srv2.URL()+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","workload":"aes"}`))
	if err != nil {
		log.Fatal(err)
	}
	loc = resp.Header.Get("Location")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	for { // poll to completion
		resp, err = http.Get(srv2.URL() + loc)
		if err != nil {
			log.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), `"state": "succeeded"`) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := srv2.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	srv3, err := server.New(server.Options{Engine: eng, DataDir: dataDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := srv3.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	rec := srv3.Recovery()
	fmt.Printf("\n=== restart over %s ===\nrecovered %d job(s), %d interrupted, %d torn bytes dropped\n",
		dataDir, rec.Jobs, rec.Interrupted, rec.TruncatedBytes)
	resp, err = http.Get(srv3.URL() + loc)
	if err != nil {
		log.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET %s after restart -> %d (excerpt)\n%.300s...\n", loc, resp.StatusCode, body)
	if err := srv3.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndurable store drained cleanly")

	// --- Resilience: the client SDK survives a mid-run restart ------
	// The SDK retries with capped, jittered backoff (honoring the
	// server's Retry-After), submits jobs under auto-generated
	// idempotency keys, and resumes SSE streams with Last-Event-ID.
	// Here a job is submitted, the server is torn down mid-watch, and a
	// requeue-on-recovery replacement comes up on the same port — one
	// SubmitAndWait call rides across the whole incident.
	resDir, err := os.MkdirTemp("", "alchemist-resilience-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(resDir)

	newDurable := func() *server.Server {
		s, err := server.New(server.Options{
			Engine:            alchemist.NewEngine(alchemist.WithWorkers(2)),
			DataDir:           resDir,
			RequeueOnRecovery: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	srv4 := newDurable()
	if err := srv4.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	addr := srv4.Addr().String()
	fmt.Printf("\n=== client SDK vs. restart (serving %s) ===\n", addr)

	c := client.New("http://"+addr,
		client.WithRetry(40, 10*time.Millisecond, 250*time.Millisecond))
	type outcome struct {
		st  *client.JobStatus
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		st, err := c.SubmitAndWait(ctx, client.JobRequest{
			Kind:       "profile",
			SourceSpec: client.SourceSpec{Workload: "aes", Scales: []int{8192, 16384}},
			TimeoutMS:  60_000,
		})
		done <- outcome{st, err}
	}()

	// Kill the server while the client is mid-watch. Kill is the
	// crash-shaped stop: sockets severed, journal frozen, in-flight work
	// abandoned exactly as a SIGKILL would leave it.
	time.Sleep(50 * time.Millisecond)
	srv4.Kill()
	fmt.Println("server killed mid-run; client is retrying against a dead port")

	// ...and bring a replacement up on the same address. Recovery
	// requeues the journaled job; the client's stream resumes.
	srv5 := newDurable()
	for i := 0; ; i++ {
		if err := srv5.Start(addr); err == nil {
			break
		} else if i > 200 {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("replacement up on %s (recovered %d, requeued %d)\n",
		addr, srv5.Recovery().Jobs, srv5.Recovery().Requeued)

	res := <-done
	if res.err != nil {
		log.Fatal(res.err)
	}
	fmt.Printf("SubmitAndWait survived the restart: state=%s, %d result bytes\n",
		res.st.State, len(res.st.Result))
	if err := srv5.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresilient client drained cleanly")
}
