// gzipprofile reproduces the paper's running example (Fig. 2 and Fig. 3):
// profiling the gzip analog, listing flush_block's RAW dependences with
// their distances, then the WAR/WAW profile that motivates privatizing
// flag_buf and hoisting the last_flags reset.
//
// Run with: go run ./examples/gzipprofile
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"alchemist"
	"alchemist/internal/progs"
)

func main() {
	// A service would hold one long-lived Engine; the timeout bounds the
	// profiling run end to end.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	eng := alchemist.NewEngine()

	w := progs.Gzip()
	prog, err := eng.Compile(ctx, "gzip.mc", w.Source)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := eng.Profile(ctx, prog, alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{
			Input:    w.InputFor(0),
			MemWords: w.MemWords,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Fig. 2: ranked profile with RAW dependences ===")
	fmt.Print(alchemist.Report(profile, alchemist.ReportOptions{
		Top: 8, MaxEdges: 6, ShowAllEdges: true,
	}))

	flush := profile.ConstructForFunc("flush_block")
	if flush == nil {
		log.Fatal("flush_block not profiled")
	}
	dur := flush.MeanDur()
	fmt.Printf("\nMethod flush_block: Tdur(total)=%d inst=%d mean=%d\n", flush.Ttotal, flush.Instances, dur)
	fmt.Println("RAW edges (paper Fig. 2 box: only the short-distance ones violate):")
	for _, e := range flush.Edges {
		if e.Type != alchemist.RAW {
			continue
		}
		mark := "        "
		if e.Violates(dur) {
			mark = "VIOLATES"
		}
		fmt.Printf("  RAW line %3d -> line %3d  Tdep=%-10d %s\n",
			e.HeadPos.Line, e.TailPos.Line, e.MinDist, mark)
	}

	fmt.Println("\n=== Fig. 3: WAR and WAW profile for flush_block ===")
	for _, e := range flush.Edges {
		if e.Type == alchemist.RAW {
			continue
		}
		mark := "        "
		if e.Violates(dur) {
			mark = "VIOLATES -> privatize / hoist"
		}
		fmt.Printf("  %s line %3d -> line %3d  Tdep=%-10d %s\n",
			e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist, mark)
	}

	fmt.Println("\n=== Fig. 6(a)/(b): candidate ranking and removal ===")
	for _, pt := range alchemist.Fig6(profile, 8) {
		fmt.Printf("  C%-2d %-38s size=%.3f violRAW=%d\n", pt.Rank, pt.Name, pt.SizeNorm, pt.Violations)
	}
	c1 := alchemist.Fig6(profile, 8)[1] // the per-file loop
	fmt.Printf("\nafter parallelizing %s and removing its co-parallelized constructs:\n", c1.Name)
	for _, pt := range alchemist.Fig6Excluding(profile, 8, c1.Label) {
		fmt.Printf("  C%-2d %-38s size=%.3f violRAW=%d\n", pt.Rank, pt.Name, pt.SizeNorm, pt.Violations)
	}
}
