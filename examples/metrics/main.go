// metrics demonstrates the observability subsystem end to end: an
// Engine instrumented into an obs.Registry, per-job progress reporting
// piggybacked on the VM's cancellation check, a /metrics + /metrics.json
// + pprof side listener, and the Prometheus text rendering of the
// collected counters.
//
// Run with: go run ./examples/metrics
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"alchemist"
	"alchemist/internal/obs"
	"alchemist/internal/progs"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// One registry can back several engines (WithRegistry); here one
	// engine owns it and Metrics() hands it out.
	eng := alchemist.NewEngine(alchemist.WithWorkers(2))

	// Serve /metrics, /metrics.json, and /debug/pprof on a side
	// listener; ":0" picks a free port.
	srv, err := obs.StartServer("127.0.0.1:0", eng.Metrics())
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving %s/metrics\n\n", srv.URL())

	w := progs.AES()
	prog, err := eng.Compile(ctx, "aes.mc", w.Source)
	if err != nil {
		log.Fatal(err)
	}

	// Profile three input scales concurrently, streaming per-job
	// progress into an obs.Progress aggregate. Reports arrive every
	// vm.CancelCheckInterval steps plus once on completion.
	var progress obs.Progress
	scales := []int{512, 768, 1024}
	jobs := make([]alchemist.ProfileJob, len(scales))
	for i, scale := range scales {
		i := i
		jobs[i] = alchemist.ProfileJob{
			Input: w.InputFor(scale),
			Config: &alchemist.ProfileConfig{
				RunConfig: alchemist.RunConfig{MemWords: w.MemWords},
			},
			OnProgress: func(steps int64) {
				progress.Update(i, steps)
			},
		}
	}
	merged, _, err := eng.ProfileBatch(ctx, prog, jobs)
	if err != nil {
		log.Fatal(err)
	}
	for _, jp := range progress.Snapshot() {
		fmt.Printf("job %d: %d steps in %d reports (total)\n", jp.Job, jp.Steps, progress.Updates())
	}
	fmt.Printf("profiled %d constructs across %d inputs\n\n", len(merged.Constructs), len(jobs))

	// The endpoint serves what the engine recorded; show the VM and
	// cache counters a scrape would collect.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== /metrics (excerpt) ===")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "alchemist_vm_") ||
			strings.HasPrefix(line, "alchemist_engine_cache_") ||
			strings.HasPrefix(line, "alchemist_engine_jobs_total") {
			fmt.Println(line)
		}
	}
}
