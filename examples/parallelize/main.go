// parallelize walks the paper's §IV.B.2 workflow on the AES-CTR
// workload: profile the sequential program, find the big construct with
// no violating RAW dependences, read the WAW/WAR advice (the ivec
// conflicts that demand per-thread counters), and then measure the
// speedup of the hand-parallelized spawn/sync variant on four virtual
// workers.
//
// Run with: go run ./examples/parallelize
package main

import (
	"context"
	"fmt"
	"log"

	"alchemist"
	"alchemist/internal/progs"
)

func main() {
	ctx := context.Background()
	eng := alchemist.NewEngine()
	w := progs.AES()
	input := w.InputFor(0)

	// Step 1: profile the sequential program.
	seq, err := eng.Compile(ctx, "aes.mc", w.Source)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := eng.Profile(ctx, seq, alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{Input: input, MemWords: w.MemWords},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== sequential profile (top constructs) ===")
	fmt.Print(alchemist.Report(profile, alchemist.ReportOptions{Top: 7, MaxEdges: 3, ShowAllEdges: true}))

	// Step 2: pick the candidate — a large loop with no violating RAW
	// dependences.
	var candidate *alchemist.ConstructStat
	for _, c := range profile.Constructs {
		if c.Kind != alchemist.KindLoop || c.FuncName != "main" {
			continue
		}
		if len(c.ViolatingEdges(alchemist.RAW)) == 0 && c.CountEdges(alchemist.WAW)+c.CountEdges(alchemist.WAR) > 0 {
			candidate = c
			break
		}
	}
	if candidate == nil {
		log.Fatal("no parallelization candidate found")
	}
	fmt.Printf("\ncandidate: loop at line %d (Ttotal=%d, no violating RAW)\n", candidate.Pos.Line, candidate.Ttotal)
	fmt.Println("conflicts requiring privatization (the paper's per-thread ivec):")
	for _, e := range candidate.Edges {
		if e.Type == alchemist.RAW {
			continue
		}
		fmt.Printf("  %s line %d -> line %d Tdep=%d\n", e.Type, e.HeadPos.Line, e.TailPos.Line, e.MinDist)
	}

	// Step 3: run the sequential and the hand-parallelized versions and
	// compare (deterministic virtual-time simulation, 4 workers).
	seqRes, err := eng.Run(ctx, seq, alchemist.RunConfig{Input: input, MemWords: w.MemWords})
	if err != nil {
		log.Fatal(err)
	}
	par, err := eng.Compile(ctx, "aes_par.mc", w.ParSource)
	if err != nil {
		log.Fatal(err)
	}
	parRes, err := eng.Run(ctx, par, alchemist.RunConfig{Input: input, MemWords: w.MemWords, SimWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	if fmt.Sprint(seqRes.Output) != fmt.Sprint(parRes.Output) {
		log.Fatalf("parallel output %v differs from sequential %v", parRes.Output, seqRes.Output)
	}
	fmt.Printf("\nsequential:        %d instructions\n", seqRes.VirtualSteps)
	fmt.Printf("parallel (4 workers): %d instruction makespan\n", parRes.VirtualSteps)
	fmt.Printf("speedup: %.2fx (outputs identical)\n",
		float64(seqRes.VirtualSteps)/float64(parRes.VirtualSteps))
}
