// Quickstart: profile a small program end to end.
//
// The program below repeatedly produces a value in produce() and consumes
// it later; Alchemist's profile shows produce() is a future candidate
// (all its RAW distances exceed its duration) while the accumulation loop
// carries a violating cross-iteration dependence.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"alchemist"
)

const src = `// quickstart.mc
int staging[64];
int history[4096];
int nhist;

// produce fills the staging buffer with derived values.
void produce(int round) {
	for (int i = 0; i < 64; i++) {
		int x = round * 64 + i;
		int acc = 0;
		for (int k = 0; k < 20; k++) {
			acc += (x * 31 + k) & 255;
		}
		staging[i] = acc;
	}
}

// consume folds the staging buffer into the running history.
void consume() {
	for (int i = 0; i < 64; i++) {
		history[nhist] = staging[i];
		nhist++;
	}
}

int main() {
	for (int round = 0; round < 50; round++) {
		produce(round);
		// Unrelated work between production and consumption gives the
		// RAW edges room to exceed produce's duration.
		int spin = 0;
		for (int k = 0; k < 3000; k++) {
			spin += k ^ round;
		}
		consume();
		out(spin & 1);
	}
	out(nhist);
	return 0;
}
`

func main() {
	ctx := context.Background()
	eng := alchemist.NewEngine()

	prog, err := eng.Compile(ctx, "quickstart.mc", src)
	if err != nil {
		log.Fatal(err)
	}

	profile, result, err := eng.Profile(ctx, prog, alchemist.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d instructions; %d static constructs, %d dynamic instances\n\n",
		result.Steps, profile.StaticConstructs, profile.DynamicConstructs)

	fmt.Println("=== ranked dependence profile (RAW edges, violating marked *) ===")
	fmt.Print(alchemist.Report(profile, alchemist.ReportOptions{Top: 6, MaxEdges: 4, ShowAllEdges: true}))

	fmt.Println("\n=== transformation advice ===")
	advice := alchemist.Advise(profile)
	fmt.Print(alchemist.AdviceText(profile, advice, 4))

	// Programmatic access: is produce() a future candidate?
	produce := profile.ConstructForFunc("produce")
	if produce == nil {
		log.Fatal("produce not profiled")
	}
	dur := produce.MeanDur()
	clean := true
	for _, e := range produce.Edges {
		if e.Type == alchemist.RAW && e.Violates(dur) {
			clean = false
		}
	}
	fmt.Printf("\nproduce(): mean duration %d instructions, %d RAW edges, future candidate: %v\n",
		dur, produce.CountEdges(alchemist.RAW), clean)
}
