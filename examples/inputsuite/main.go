// inputsuite demonstrates profiling over an input suite. The paper notes
// that "the completeness of the dependencies identified by Alchemist is a
// function of the test inputs used to run the profiler" (§II): a
// dependence that a single input never exercises is invisible. This
// example profiles a dispatcher under three different inputs, shows the
// per-input profiles disagree about parallelizability, and merges them
// into a judgment over the whole suite.
//
// Run with: go run ./examples/inputsuite
package main

import (
	"fmt"
	"log"

	"alchemist"
)

// The slow path (mode 1) writes a shared log that the continuation reads
// immediately — a blocking dependence that only some inputs exercise.
const src = `// dispatcher.mc
int shared_log[64];
int log_pos;
int done[256];

void handle(int req, int mode) {
	int acc = 0;
	for (int k = 0; k < 150; k++) {
		acc += (req * 31 + k) & 255;
	}
	if (mode == 1) {
		shared_log[log_pos & 63] = acc;
		log_pos++;
	}
	done[req & 255] = acc;
}

int main() {
	int n = inlen() / 2;
	for (int i = 0; i < n; i++) {
		handle(in(2 * i), in(2 * i + 1));
		// The continuation audits the log tail right after each request.
		int audit = shared_log[(log_pos - 1) & 63];
		out(audit & 1);
	}
	out(log_pos);
	return 0;
}
`

// Profiles to be merged must come from one compiled program, so PCs
// (construct labels) line up.
var program = func() *alchemist.Program {
	prog, err := alchemist.Compile("dispatcher.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	return prog
}()

func profileOn(input []int64) *alchemist.Profile {
	p, _, err := program.Profile(alchemist.ProfileConfig{
		RunConfig: alchemist.RunConfig{Input: input},
	})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func violations(p *alchemist.Profile) int {
	h := p.ConstructForFunc("handle")
	if h == nil {
		return -1
	}
	return len(h.ViolatingEdges(alchemist.RAW))
}

func main() {
	// Three inputs: all fast-path, mixed, all slow-path.
	fast := make([]int64, 0, 80)
	mixed := make([]int64, 0, 80)
	slow := make([]int64, 0, 80)
	for i := int64(0); i < 40; i++ {
		fast = append(fast, i, 0)
		mixed = append(mixed, i, i%2)
		slow = append(slow, i, 1)
	}

	pFast := profileOn(fast)
	pMixed := profileOn(mixed)
	pSlow := profileOn(slow)

	fmt.Println("violating RAW deps on handle(), per input:")
	fmt.Printf("  fast-path only: %d  (handle looks like a clean future candidate!)\n", violations(pFast))
	fmt.Printf("  mixed:          %d\n", violations(pMixed))
	fmt.Printf("  slow-path only: %d\n", violations(pSlow))

	merged, err := alchemist.Merge(pFast, pMixed, pSlow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged over the suite: %d violating RAW deps\n", violations(merged))
	h := merged.ConstructForFunc("handle")
	for _, e := range h.ViolatingEdges(alchemist.RAW) {
		fmt.Printf("  RAW line %d -> line %d  Tdep=%d (seen %d times across the suite)\n",
			e.HeadPos.Line, e.TailPos.Line, e.MinDist, e.Count)
	}
	fmt.Println("\nJudging handle() on the fast-path profile alone would green-light a")
	fmt.Println("future annotation the slow path violates; the merged profile catches it.")
}
