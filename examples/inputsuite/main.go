// inputsuite demonstrates profiling over an input suite. The paper notes
// that "the completeness of the dependencies identified by Alchemist is a
// function of the test inputs used to run the profiler" (§II): a
// dependence that a single input never exercises is invisible. This
// example profiles a dispatcher under three different inputs with one
// Engine.ProfileBatch call — the jobs run concurrently on the engine's
// worker pool and the per-job profiles are merged into a judgment over
// the whole suite.
//
// Run with: go run ./examples/inputsuite
package main

import (
	"context"
	"fmt"
	"log"

	"alchemist"
)

// The slow path (mode 1) writes a shared log that the continuation reads
// immediately — a blocking dependence that only some inputs exercise.
const src = `// dispatcher.mc
int shared_log[64];
int log_pos;
int done[256];

void handle(int req, int mode) {
	int acc = 0;
	for (int k = 0; k < 150; k++) {
		acc += (req * 31 + k) & 255;
	}
	if (mode == 1) {
		shared_log[log_pos & 63] = acc;
		log_pos++;
	}
	done[req & 255] = acc;
}

int main() {
	int n = inlen() / 2;
	for (int i = 0; i < n; i++) {
		handle(in(2 * i), in(2 * i + 1));
		// The continuation audits the log tail right after each request.
		int audit = shared_log[(log_pos - 1) & 63];
		out(audit & 1);
	}
	out(log_pos);
	return 0;
}
`

func violations(p *alchemist.Profile) int {
	h := p.ConstructForFunc("handle")
	if h == nil {
		return -1
	}
	return len(h.ViolatingEdges(alchemist.RAW))
}

func main() {
	// Three inputs: all fast-path, mixed, all slow-path.
	fast := make([]int64, 0, 80)
	mixed := make([]int64, 0, 80)
	slow := make([]int64, 0, 80)
	for i := int64(0); i < 40; i++ {
		fast = append(fast, i, 0)
		mixed = append(mixed, i, i%2)
		slow = append(slow, i, 1)
	}

	ctx := context.Background()
	eng := alchemist.NewEngine(alchemist.WithWorkers(3))

	// Profiles to be merged must come from one compiled program, so PCs
	// (construct labels) line up; the engine's cache guarantees that for
	// repeated compiles of the same source.
	program, err := eng.Compile(ctx, "dispatcher.mc", src)
	if err != nil {
		log.Fatal(err)
	}

	// One batch call: the three jobs profile concurrently and the union
	// profile comes back merged in job order.
	merged, results, err := eng.ProfileBatch(ctx, program, []alchemist.ProfileJob{
		{Input: fast}, {Input: mixed}, {Input: slow},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("violating RAW deps on handle(), per input:")
	fmt.Printf("  fast-path only: %d  (handle looks like a clean future candidate!)\n", violations(results[0].Profile))
	fmt.Printf("  mixed:          %d\n", violations(results[1].Profile))
	fmt.Printf("  slow-path only: %d\n", violations(results[2].Profile))

	fmt.Printf("\nmerged over the suite: %d violating RAW deps\n", violations(merged))
	h := merged.ConstructForFunc("handle")
	for _, e := range h.ViolatingEdges(alchemist.RAW) {
		fmt.Printf("  RAW line %d -> line %d  Tdep=%d (seen %d times across the suite)\n",
			e.HeadPos.Line, e.TailPos.Line, e.MinDist, e.Count)
	}
	fmt.Println("\nJudging handle() on the fast-path profile alone would green-light a")
	fmt.Println("future annotation the slow path violates; the merged profile catches it.")
}
