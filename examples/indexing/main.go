// indexing demonstrates the execution index tree on the paper's Fig. 4
// examples and the §III.B context-sensitivity example: the same
// dependence lands on different constructs depending on which dynamic
// boundaries it crosses — information a context-sensitive profiler
// cannot recover.
//
// Run with: go run ./examples/indexing
package main

import (
	"context"
	"fmt"
	"log"

	"alchemist"
)

// The §III.B example: four dependences between A() and B() share one
// calling context but cross different construct boundaries.
const src = `// contexts.mc (paper section III.B)
int withinJ;
int acrossJ;
int acrossI;
int acrossF;

void A(int i, int j) {
	withinJ = 1;
	if (j == 0) { acrossJ = 1; }
	if (i == 0 && j == 0) {
		acrossI = 1;
		acrossF = acrossF + 1;
	}
}

void B(int i, int j) {
	int t = withinJ;
	if (j == 1) { t = acrossJ; }
	if (i == 1 && j == 0) { t = acrossI; }
	if (i == 0 && j == 0) { t = acrossF; }
	out(t);
}

void F() {
	for (int i = 0; i < 2; i++) {
		for (int j = 0; j < 2; j++) {
			A(i, j);
			B(i, j);
		}
	}
}

int main() {
	F();
	F();
	return 0;
}
`

func main() {
	// The lightweight path: CompileCtx/ProfileCtx go through the
	// package-default Engine without constructing one explicitly.
	ctx := context.Background()
	prog, err := alchemist.CompileCtx(ctx, "contexts.mc", src)
	if err != nil {
		log.Fatal(err)
	}
	profile, _, err := prog.ProfileCtx(ctx, alchemist.ProfileConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Four dependences, one calling context, four different construct attributions:")
	fmt.Println()
	show := func(title string, c *alchemist.ConstructStat) {
		if c == nil {
			fmt.Printf("%s: <not profiled>\n", title)
			return
		}
		fmt.Printf("%-34s (line %d, %d instances)\n", title, c.Pos.Line, c.Instances)
		for _, e := range c.Edges {
			if e.Type != alchemist.RAW {
				continue
			}
			fmt.Printf("    RAW line %2d -> line %2d  Tdep=%d\n", e.HeadPos.Line, e.TailPos.Line, e.MinDist)
		}
	}

	// The inner j loop: carries only the dependence that crosses
	// iteration boundaries of j but not i.
	var loops []*alchemist.ConstructStat
	for _, c := range profile.Constructs {
		if c.Kind == alchemist.KindLoop && c.FuncName == "F" {
			loops = append(loops, c)
		}
	}
	if len(loops) != 2 {
		log.Fatalf("expected 2 loops in F, got %d", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Pos.Line > inner.Pos.Line {
		outer, inner = inner, outer
	}

	show("Method A (within one j iteration)", profile.ConstructForFunc("A"))
	fmt.Println()
	show("j loop (crosses j, not i)", inner)
	fmt.Println()
	show("i loop (crosses i, within F)", outer)
	fmt.Println()
	show("Method F (crosses calls to F)", profile.ConstructForFunc("F"))

	fmt.Println()
	fmt.Println("Reading the edges: withinJ appears only on A; acrossJ first appears on the")
	fmt.Println("j loop; acrossI on the i loop; acrossF only on F itself. A context-sensitive")
	fmt.Println("profile keyed on call stacks would merge all four (paper section III.B).")
}
